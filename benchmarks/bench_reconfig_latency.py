"""E-RL: IPC vs reconfiguration latency (§3.2 sensitivity).

Expected shape: steering IPC falls as the per-slot reconfiguration latency
grows, degrading toward (never catastrophically below) the FFU-only floor,
while the number of reconfigurations shrinks (busy-slot skipping + slower
bus = fewer completed loads).
"""

from repro.evaluation.experiments import run_reconfig_latency_sweep
from repro.evaluation.report import render_table
from repro.workloads.phases import phased_program
from repro.workloads.synthetic import FP_MIX, INT_MIX, MEM_MIX

_PROGRAM = phased_program([(INT_MIX, 40), (FP_MIX, 40), (MEM_MIX, 40)], seed=11)
_LATENCIES = [1, 4, 16, 64, 256]


def test_reconfig_latency_sweep(benchmark, save_artifact):
    rows = benchmark.pedantic(
        run_reconfig_latency_sweep,
        kwargs={"latencies": _LATENCIES, "program": _PROGRAM},
        rounds=1,
        iterations=1,
    )
    save_artifact(
        "e_reconfig_latency",
        render_table(
            ["latency (cycles/slot)", "steering IPC", "ffu-only IPC", "reconfigs"],
            rows,
            title="E-RL: IPC vs reconfiguration latency",
        ),
    )
    ipcs = [r[1] for r in rows]
    floors = [r[2] for r in rows]
    # fast reconfiguration beats slow reconfiguration
    assert ipcs[0] > ipcs[-1]
    # steering never falls far below the FFU floor even at extreme latency
    assert ipcs[-1] >= floors[-1] * 0.9
    # the FFU floor is latency-independent
    assert max(floors) - min(floors) < 0.02
