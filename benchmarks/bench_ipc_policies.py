"""E-IPC: steering vs every baseline across the kernel suite.

The headline experiment: the paper's objective is higher achieved ILP from
matching the configuration to the ready instructions.  Expected shape:
steering > FFU-only everywhere, steering ~ the best-matched static config
per workload, oracle >= steering, mismatched static configs fall to the
FFU floor.
"""

import pytest

from repro.core.params import ProcessorParams
from repro.evaluation.experiments import run_ipc_comparison
from repro.workloads.kernels import (
    checksum,
    dot_product,
    fir_filter,
    memcpy,
    newton_sqrt,
    saxpy,
    sum_reduction,
)

_WORKLOADS = [
    ("checksum", checksum(iterations=300).program),
    ("sum_reduction", sum_reduction(n=96).program),
    ("dot_product", dot_product(n=64).program),
    ("memcpy", memcpy(n=120).program),
    ("saxpy", saxpy(n=64).program),
    ("fir_filter", fir_filter(n=48).program),
    ("newton_sqrt", newton_sqrt(iterations=24).program),
]


def test_ipc_policy_comparison(benchmark, save_artifact):
    comparison = benchmark.pedantic(
        run_ipc_comparison,
        kwargs={
            "workloads": _WORKLOADS,
            "params": ProcessorParams(reconfig_latency=8),
        },
        rounds=1,
        iterations=1,
    )
    save_artifact("e_ipc_policies", comparison.render())

    # shape checks ---------------------------------------------------------
    # steering never loses to the FFU-only baseline...
    for w in comparison.workloads:
        row = comparison.ipc[w]
        assert row["steering"] >= row["ffu-only"] * 0.99, w
    # ...and strictly wins wherever the workload has ILP to harvest
    # (newton_sqrt is a serial fdiv chain: one FP-MDU is already enough,
    # steering correctly gains nothing there)
    for w in comparison.workloads:
        if w == "newton_sqrt":
            continue
        row = comparison.ipc[w]
        assert row["steering"] > row["ffu-only"], w
    # steering within 15% of the best static config on every workload
    for w in comparison.workloads:
        row = comparison.ipc[w]
        best_static = max(
            v for k, v in row.items() if k.startswith("static-")
        )
        assert row["steering"] >= best_static * 0.85, w
    # oracle is the strongest reconfigurable policy on average
    assert comparison.mean_ipc("oracle") >= comparison.mean_ipc("random") - 0.02
    assert comparison.mean_ipc("steering") >= comparison.mean_ipc("random") - 0.02
