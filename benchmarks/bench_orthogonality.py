"""E-ORTH (§5 future work): steering-basis orthogonality study.

The paper conjectures that designing the predefined steering
configurations "to be relatively orthogonal to one another" underpins
good coverage of the configuration space.  Expected shape: the paper's
hand-designed basis is competitive with or better than most random bases,
and bases with very similar (non-orthogonal) members do worse on
phase-changing workloads.
"""

from repro.evaluation.experiments import run_orthogonality_study
from repro.evaluation.report import render_table


def test_orthogonality_study(benchmark, save_artifact):
    rows = benchmark.pedantic(
        run_orthogonality_study,
        kwargs={"n_bases": 6, "seed": 0},
        rounds=1,
        iterations=1,
    )
    save_artifact(
        "e_orthogonality",
        render_table(
            ["basis", "mean pairwise cosine similarity", "IPC"],
            rows,
            title="E-ORTH: steering-basis orthogonality vs achieved IPC",
        ),
    )
    by_name = {name: (sim, ipc) for name, sim, ipc in rows}
    paper_sim, paper_ipc = by_name["paper"]
    degen_sim, degen_ipc = by_name["degenerate"]
    # the controlled anchor: a maximally self-similar basis (three identical
    # configs) must not beat the paper's diverse basis on phased code
    assert degen_sim > 0.999
    assert paper_ipc >= degen_ipc - 0.01
    # diversity direction: similarity and IPC are not positively correlated
    sims = [s for _, s, _ in rows]
    ipcs = [i for _, _, i in rows]
    n = len(rows)
    ms, mi = sum(sims) / n, sum(ipcs) / n
    cov = sum((s - ms) * (i - mi) for s, i in zip(sims, ipcs))
    vs = sum((s - ms) ** 2 for s in sims) ** 0.5
    vi = sum((i - mi) ** 2 for i in ipcs) ** 0.5
    corr = cov / (vs * vi) if vs and vi else 0.0
    assert corr <= 0.25, f"similarity should not help: corr={corr:.2f}"
