"""F1: regenerate Figure 1 (architecture module inventory) from a live,
fully wired processor."""

from repro.evaluation.artifacts import figure1_inventory


def test_fig1_inventory(benchmark, save_artifact):
    text = benchmark(figure1_inventory)
    save_artifact("fig1_architecture", text)
    for module in (
        "instruction memory",
        "data memory",
        "fetch unit",
        "trace cache",
        "instruction decoder",
        "register update unit",
        "register files",
        "fixed functional units",
        "reconfigurable slots",
        "configuration management",
    ):
        assert module in text
