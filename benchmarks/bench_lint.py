"""Cold vs warm static-analysis wall clock (``BENCH_lint.json``).

The lint engine promises day-to-day runs are a cache sweep: the per-file
phase re-parses only changed files, module summaries are content-cached,
and interprocedural findings re-derive only inside the edited file's
reverse-dependency cone.  This bench pins that promise with numbers:

* **cold** — empty cache directory: parse + summarise + link + analyse
  the whole tree;
* **warm** — the very next run over an unchanged tree: everything must
  come from the cache, and the wall clock is what CI budgets.

Usage:

    PYTHONPATH=src python benchmarks/bench_lint.py \
        [-o BENCH_lint.json] [--repeats 3] [--max-warm-seconds 0]

``--max-warm-seconds`` > 0 turns the warm wall clock into a gate (the CI
budget); the gate also fails if the warm run missed its caches, which
would make the timing meaningless.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.config import DEFAULT_CONFIG_PATH, load_config  # noqa: E402
from repro.analysis.engine import AnalysisEngine  # noqa: E402


def timed_run(config, root, cache_path):
    engine = AnalysisEngine(
        config, root=root, repo_root=REPO_ROOT, cache_path=cache_path
    )
    start = time.perf_counter()
    findings = engine.run([root / config.package])
    elapsed = time.perf_counter() - start
    return elapsed, findings, engine


def lint_record(repeats: int) -> dict:
    config = load_config(REPO_ROOT / DEFAULT_CONFIG_PATH)
    root = REPO_ROOT / "src"
    cold_best = warm_best = float("inf")
    record: dict = {}
    for _ in range(repeats):
        workdir = pathlib.Path(tempfile.mkdtemp(prefix="bench-lint-"))
        try:
            cache = workdir / "findings.json"
            cold, findings, _ = timed_run(config, root, cache)
            warm, _, engine = timed_run(config, root, cache)
            cold_best = min(cold_best, cold)
            warm_best = min(warm_best, warm)
            record = {
                "files": engine.files_checked,
                "findings": len(findings),
                "cache_hits": engine.cache_hits,
                "graph_cache_hits": engine.graph_cache_hits,
            }
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
    record.update({
        "cold_seconds": round(cold_best, 3),
        "warm_seconds": round(warm_best, 3),
        "speedup": round(cold_best / warm_best, 2) if warm_best > 0 else None,
    })
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-o", "--output", default="BENCH_lint.json")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--max-warm-seconds", type=float, default=0.0,
        help="fail when the warm (fully cached) run exceeds this wall "
             "clock; <= 0 disables the gate",
    )
    args = parser.parse_args(argv)

    record = lint_record(repeats=max(1, args.repeats))
    pathlib.Path(args.output).write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    print(f"\nwrote {args.output}")

    if record["cache_hits"] != record["files"]:
        print(
            f"REGRESSION warm run re-analysed "
            f"{record['files'] - record['cache_hits']} file(s); "
            "the per-file cache is not sticking"
        )
        return 1
    if record["graph_cache_hits"] != record["files"]:
        print(
            f"REGRESSION warm run re-derived interprocedural findings for "
            f"{record['files'] - record['graph_cache_hits']} file(s); "
            "the dependency-aware cache is not sticking"
        )
        return 1
    if 0 < args.max_warm_seconds < record["warm_seconds"]:
        print(
            f"REGRESSION warm lint took {record['warm_seconds']}s, over "
            f"the {args.max_warm_seconds}s budget"
        )
        return 1
    print(
        f"lint: cold {record['cold_seconds']}s -> warm "
        f"{record['warm_seconds']}s over {record['files']} files "
        f"({record['speedup']}x)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
