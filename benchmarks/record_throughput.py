"""Record simulator throughput to a JSON artifact.

Standalone counterpart of ``bench_simulator_throughput.py`` for CI: times
the same checksum workload under the steering and ffu-only policies,
smoke-tests the parallel batch engine, and writes the cycles-per-second
numbers to ``BENCH_throughput.json`` so runs can be compared over time.

Usage::

    PYTHONPATH=src python benchmarks/record_throughput.py [-o out.json]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import time

from repro.core.baselines import fixed_superscalar, steering_processor
from repro.core.params import ProcessorParams
from repro.evaluation.batch import ResultCache, SimJob, run_many
from repro.workloads.kernels import checksum

_PARAMS = ProcessorParams(reconfig_latency=8)


def _throughput(factory, program, repeats: int = 3) -> dict:
    """Best-of-N cycles per wall-clock second."""
    best = 0.0
    cycles = 0
    for _ in range(repeats):
        proc = factory(program, _PARAMS)
        start = time.perf_counter()
        result = proc.run(max_cycles=100_000)
        elapsed = time.perf_counter() - start
        assert result.halted, "benchmark workload must run to completion"
        cycles = result.cycles
        best = max(best, result.cycles / elapsed)
    return {"cycles": cycles, "cycles_per_second": round(best, 1)}


def _batch_smoke(program) -> dict:
    """Exercise run_many with two workers + the result cache."""
    jobs = [
        SimJob("steering", program, _PARAMS, max_cycles=100_000),
        SimJob("ffu-only", program, _PARAMS, max_cycles=100_000),
    ]
    cache = ResultCache()
    start = time.perf_counter()
    first = run_many(jobs, workers=2, cache=cache)
    elapsed = time.perf_counter() - start
    again = run_many(jobs, workers=2, cache=cache)
    assert all(r.halted for r in first)
    assert [a.to_dict() for a in again] == [f.to_dict() for f in first]
    assert cache.hits == len(jobs), "resubmission must be answered from cache"
    return {
        "jobs": len(jobs),
        "workers": 2,
        "wall_seconds": round(elapsed, 3),
        "cache_hits_on_resubmit": cache.hits,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "-o", "--output", default="BENCH_throughput.json",
        help="where to write the JSON artifact",
    )
    args = parser.parse_args(argv)

    program = checksum(iterations=150).program
    record = {
        "workload": "checksum(iterations=150)",
        "reconfig_latency": _PARAMS.reconfig_latency,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "steering": _throughput(steering_processor, program),
        "ffu_only": _throughput(fixed_superscalar, program),
        "batch_engine": _batch_smoke(program),
    }
    path = pathlib.Path(args.output)
    path.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    print(f"\nwritten to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
