"""Record simulator throughput to a JSON artifact.

Standalone counterpart of ``bench_simulator_throughput.py`` for CI: times
the same checksum workload under the steering and ffu-only policies,
smoke-tests the parallel batch engine, and writes the cycles-per-second
numbers to ``BENCH_throughput.json`` so runs can be compared over time.

With ``--baseline`` the record is additionally diffed against a previous
run's artifact: any policy whose cycles-per-second dropped by more than
``--max-regression`` (default 20%) fails the run with exit code 1.  A
missing or unreadable baseline is tolerated (first run, cold cache).

``--max-telemetry-overhead`` additionally A/Bs the cycle loop with an
attached-but-disabled telemetry object against no telemetry at all and
fails when the delta exceeds the given fraction; ``--trace-out`` writes
a Chrome/Perfetto trace JSON from a short instrumented run;
``--vector-baseline`` records the lock-step vector engine's cycles/sec
(``bench_vector_stepping``'s 64-lane sweep) as a ``vector`` column and
gates it with the same regression rule as the scalar policies;
``--serving-baseline`` records a short HTTP load run against a
self-hosted multi-process server (``bench_serving_load``) as a
``serving`` column whose requests/sec is gated the same way.

Usage::

    PYTHONPATH=src python benchmarks/record_throughput.py [-o out.json] \
        [--baseline previous.json] [--max-regression 0.20] \
        [--max-telemetry-overhead 0.02] [--trace-out trace.json]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import time

from repro.core.baselines import fixed_superscalar, steering_processor
from repro.core.params import ProcessorParams
from repro.evaluation.batch import ResultCache, SimJob, run_many
from repro.workloads.kernels import checksum

_PARAMS = ProcessorParams(reconfig_latency=8)


def _throughput(factory, program, repeats: int = 3) -> dict:
    """Best-of-N cycles per wall-clock second."""
    best = 0.0
    cycles = 0
    for _ in range(repeats):
        proc = factory(program, _PARAMS)
        start = time.perf_counter()
        result = proc.run(max_cycles=100_000)
        elapsed = time.perf_counter() - start
        assert result.halted, "benchmark workload must run to completion"
        cycles = result.cycles
        best = max(best, result.cycles / elapsed)
    return {"cycles": cycles, "cycles_per_second": round(best, 1)}


def _telemetry_overhead(program, repeats: int = 3) -> dict:
    """A/B the cycle loop with telemetry disabled vs absent.

    An attached-but-disabled :class:`ProcessorTelemetry` must normalise to
    ``None`` inside the processor, so the instrumented build pays exactly
    one truthiness check per cycle — the measured delta is noise.  The
    ``enabled`` number (full registry + series + spans) is recorded for
    the docs but never gated.
    """
    from repro.telemetry import ProcessorTelemetry, SpanTracer

    def timed(telemetry_factory):
        best = 0.0
        for _ in range(repeats):
            proc = steering_processor(program, _PARAMS)
            tel = telemetry_factory()
            if tel is not None:
                proc.attach_telemetry(tel)
            start = time.perf_counter()
            result = proc.run(max_cycles=100_000)
            elapsed = time.perf_counter() - start
            assert result.halted
            best = max(best, result.cycles / elapsed)
        return best

    without = timed(lambda: None)
    disabled = timed(ProcessorTelemetry.disabled)
    enabled = timed(lambda: ProcessorTelemetry(tracer=SpanTracer()))
    return {
        "without_cps": round(without, 1),
        "disabled_cps": round(disabled, 1),
        "enabled_cps": round(enabled, 1),
        "disabled_overhead": round(max(0.0, 1.0 - disabled / without), 4),
        "enabled_overhead": round(max(0.0, 1.0 - enabled / without), 4),
    }


def _write_trace(program, path: str) -> dict:
    """Short instrumented steering run -> Chrome/Perfetto trace JSON."""
    from repro.telemetry import ProcessorTelemetry, SpanTracer

    tracer = SpanTracer()
    tel = ProcessorTelemetry(tracer=tracer, profile_stages=True)
    proc = steering_processor(program, _PARAMS)
    proc.attach_telemetry(tel)
    result = proc.run(max_cycles=100_000)
    tracer.write(path)
    return {
        "path": path,
        "events": len(tracer),
        "dropped": tracer.dropped,
        "cycles": result.cycles,
    }


def _batch_smoke(program) -> dict:
    """Exercise run_many with two workers + the result cache."""
    jobs = [
        SimJob("steering", program, _PARAMS, max_cycles=100_000),
        SimJob("ffu-only", program, _PARAMS, max_cycles=100_000),
    ]
    cache = ResultCache()
    start = time.perf_counter()
    first = run_many(jobs, workers=2, cache=cache)
    elapsed = time.perf_counter() - start
    again = run_many(jobs, workers=2, cache=cache)
    assert all(r.halted for r in first)
    assert [a.to_dict() for a in again] == [f.to_dict() for f in first]
    assert cache.hits == len(jobs), "resubmission must be answered from cache"
    return {
        "jobs": len(jobs),
        "workers": 2,
        "wall_seconds": round(elapsed, 3),
        "cache_hits_on_resubmit": cache.hits,
    }


def compare_to_baseline(
    record: dict, baseline: dict, max_regression: float
) -> list[str]:
    """Regression messages for every policy slower than the baseline allows.

    Only the throughput metrics are compared; a baseline from a different
    machine or Python is still compared (CI restores the cache per runner
    image, so in practice the environments match).
    """
    failures = []
    for policy in ("steering", "ffu_only", "vector"):
        then = baseline.get(policy, {}).get("cycles_per_second")
        now = record.get(policy, {}).get("cycles_per_second")
        if not then or not now:
            continue
        drop = (then - now) / then
        if drop > max_regression:
            failures.append(
                f"{policy}: {now:.1f} cycles/sec is {drop:.1%} below "
                f"baseline {then:.1f} (allowed {max_regression:.0%})"
            )
    then = baseline.get("serving", {}).get("requests_per_second")
    now = record.get("serving", {}).get("requests_per_second")
    if then and now:
        drop = (then - now) / then
        if drop > max_regression:
            failures.append(
                f"serving: {now:.1f} requests/sec is {drop:.1%} below "
                f"baseline {then:.1f} (allowed {max_regression:.0%})"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "-o", "--output", default="BENCH_throughput.json",
        help="where to write the JSON artifact",
    )
    parser.add_argument(
        "--baseline", default=None,
        help="previous BENCH_throughput.json to diff against "
             "(missing file = no comparison)",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.20,
        help="fail when cycles/sec drops by more than this fraction "
             "against the baseline (default 0.20)",
    )
    parser.add_argument(
        "--store", default=None,
        help="also register the throughput numbers as a run in this "
             "SQLite run store (see 'repro serve')",
    )
    parser.add_argument(
        "--max-telemetry-overhead", type=float, default=None,
        help="fail when an attached-but-disabled telemetry object slows "
             "the cycle loop by more than this fraction (the ISSUE gate "
             "is 0.02); also records the enabled-telemetry overhead",
    )
    parser.add_argument(
        "--trace-out", default=None,
        help="write a Chrome/Perfetto trace JSON from a short "
             "instrumented steering run to this path",
    )
    parser.add_argument(
        "--vector-baseline", action="store_true",
        help="also record the lock-step vector engine's cycles/sec "
             "(the bench_vector_stepping sweep) as a 'vector' column, "
             "gated by --max-regression like the scalar policies",
    )
    parser.add_argument(
        "--serving-baseline", action="store_true",
        help="also record a short serving load run (bench_serving_load: "
             "2 API workers + sim pool, mixed read/submit) as a "
             "'serving' column whose requests/sec is gated by "
             "--max-regression",
    )
    args = parser.parse_args(argv)

    program = checksum(iterations=150).program
    record = {
        "workload": "checksum(iterations=150)",
        "reconfig_latency": _PARAMS.reconfig_latency,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "steering": _throughput(steering_processor, program),
        "ffu_only": _throughput(fixed_superscalar, program),
        "batch_engine": _batch_smoke(program),
    }
    if args.vector_baseline:
        # same-directory import: both scripts run as benchmarks/*.py
        from bench_vector_stepping import vector_record

        record["vector"] = vector_record()
    if args.serving_baseline:
        from bench_serving_load import _hosted_load

        record["serving"] = _hosted_load(
            workers=2, sim_pool=1, clients=8, duration=4.0,
            submit_ratio=0.2, queue_capacity=8,
        )
    if args.max_telemetry_overhead is not None:
        record["telemetry"] = _telemetry_overhead(program)
    if args.trace_out:
        record["trace"] = _write_trace(program, args.trace_out)
    path = pathlib.Path(args.output)
    path.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    print(f"\nwritten to {path}")

    if args.store:
        import hashlib

        from repro.serving.store import RunStore

        config_hash = hashlib.sha256(
            f"{record['workload']}|latency={record['reconfig_latency']}".encode()
        ).hexdigest()
        metrics = {
            "steering_cycles_per_second": record["steering"]["cycles_per_second"],
            "ffu_only_cycles_per_second": record["ffu_only"]["cycles_per_second"],
            "batch_wall_seconds": record["batch_engine"]["wall_seconds"],
        }
        if "vector" in record:
            metrics["vector_cycles_per_second"] = record["vector"][
                "cycles_per_second"
            ]
            metrics["vector_speedup"] = record["vector"]["speedup"]
        if "serving" in record:
            metrics["serving_requests_per_second"] = record["serving"][
                "requests_per_second"
            ]
            metrics["serving_p99_ms"] = record["serving"]["p99_ms"]
        with RunStore(args.store) as store:
            run_id = store.record_run(
                "BENCH-throughput", config_hash, metrics,
                label=record["workload"],
            )
        print(f"registered run {run_id} in {args.store}")

    if args.max_telemetry_overhead is not None:
        overhead = record["telemetry"]["disabled_overhead"]
        if overhead > args.max_telemetry_overhead:
            print(
                f"REGRESSION disabled-telemetry overhead {overhead:.1%} "
                f"exceeds {args.max_telemetry_overhead:.0%}"
            )
            return 1
        print(
            f"disabled-telemetry overhead {overhead:.1%} within "
            f"{args.max_telemetry_overhead:.0%} "
            f"(enabled: {record['telemetry']['enabled_overhead']:.1%})"
        )

    if args.baseline:
        baseline_path = pathlib.Path(args.baseline)
        if not baseline_path.exists():
            print(f"no baseline at {baseline_path}; skipping comparison")
            return 0
        try:
            baseline = json.loads(baseline_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"unreadable baseline {baseline_path} ({exc}); skipping")
            return 0
        failures = compare_to_baseline(record, baseline, args.max_regression)
        if failures:
            for message in failures:
                print(f"REGRESSION {message}")
            return 1
        print(
            f"no throughput regression beyond {args.max_regression:.0%} "
            f"vs {baseline_path}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
