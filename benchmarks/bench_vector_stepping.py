"""Lock-step vector engine vs the scalar batch path (ISSUE 6 gate).

Times a 64-lane shared-program steering sweep — the exact shape the
paper's experiments take: one workload, many configurations — first as 64
sequential scalar simulations (:func:`execute_job`, the pre-vector
``run_many`` inner loop), then as one :func:`run_vector_batch` call.  The
workload is a phase-changing program (eight single-iteration mixes), so
the steering policy's selection inputs churn and the sweep exercises the
shared-memo and batched-kernel machinery rather than a warm steady state.

The acceptance gate is a >=3x cycles-per-second speedup.  Results merge
into ``BENCH_throughput.json`` under the ``"vector"`` key (the artifact
``record_throughput.py`` writes), shaped so the same >20% regression rule
applies to the vectorized path::

    PYTHONPATH=src python benchmarks/bench_vector_stepping.py \
        [-o BENCH_throughput.json] [--lanes 64] [--repeats 2] [--min-speedup 3.0]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

from repro.core.params import ProcessorParams
from repro.evaluation.batch import SimJob, execute_job
from repro.evaluation.vector import run_vector_batch
from repro.isa.futypes import FU_TYPES
from repro.workloads import MixSpec, phased_program

_WORKLOAD = "phased(8 mixes x 96, 1 iteration each)"


def build_jobs(lanes: int = 64) -> list[SimJob]:
    """The 64-configuration steering sweep over one phase-churning program."""
    i_alu, mdu, lsu, fp1, fp2 = FU_TYPES
    phases = [
        (MixSpec("fma", {mdu: 0.3, fp1: 0.3, fp2: 0.4}, dep_density=0.8), 1),
        (MixSpec("mul", {i_alu: 0.2, mdu: 0.6, lsu: 0.2}, dep_density=0.8), 1),
        (
            MixSpec(
                "fp", {i_alu: 0.1, lsu: 0.2, fp1: 0.3, fp2: 0.4},
                dep_density=0.7,
            ),
            1,
        ),
        (MixSpec("mem", {i_alu: 0.3, lsu: 0.6, mdu: 0.1}, dep_density=0.6), 1),
        (
            MixSpec(
                "mix",
                {i_alu: 0.2, mdu: 0.3, lsu: 0.1, fp1: 0.2, fp2: 0.2},
                dep_density=0.8,
            ),
            1,
        ),
        (MixSpec("int", {i_alu: 0.6, mdu: 0.2, lsu: 0.2}, dep_density=0.7), 1),
        (MixSpec("fma2", {mdu: 0.2, fp1: 0.4, fp2: 0.4}, dep_density=0.9), 1),
        (MixSpec("mdu", {i_alu: 0.1, mdu: 0.7, fp2: 0.2}, dep_density=0.9), 1),
    ]
    program = phased_program(phases, body_len=96, seed=11)
    return [
        SimJob(
            "steering",
            program,
            params=ProcessorParams(
                window_size=24, n_slots=14, reconfig_latency=4 + (i % 16)
            ),
            kwargs={"use_exact_metric": True},
        )
        for i in range(lanes)
    ]


def vector_record(lanes: int = 64, repeats: int = 2) -> dict:
    """Best-of-N vector and scalar cycles/sec over the shared-program sweep.

    The scalar side runs the batch exactly as the pre-vector ``run_many``
    sequential path did — one :func:`execute_job` per job — and both
    sides must produce bit-identical results (checked here on every run,
    not only in the test suite).
    """
    jobs = build_jobs(lanes)
    vector_best = scalar_best = 0.0
    total_cycles = 0
    scalar_results = vector_results = None
    for _ in range(repeats):
        start = time.perf_counter()
        vector_results = run_vector_batch(jobs)
        elapsed = time.perf_counter() - start
        total_cycles = sum(r.cycles for r in vector_results)
        vector_best = max(vector_best, total_cycles / elapsed)
    for _ in range(repeats):
        start = time.perf_counter()
        scalar_results = [execute_job(job) for job in jobs]
        elapsed = time.perf_counter() - start
        scalar_best = max(scalar_best, total_cycles / elapsed)
    mismatches = sum(
        1
        for s, v in zip(scalar_results, vector_results)
        if s.to_dict() != v.to_dict()
    )
    assert mismatches == 0, f"{mismatches}/{lanes} lanes diverge from scalar"
    return {
        "workload": _WORKLOAD,
        "lanes": lanes,
        "cycles": total_cycles,
        "cycles_per_second": round(vector_best, 1),
        "scalar_cycles_per_second": round(scalar_best, 1),
        "speedup": round(vector_best / scalar_best, 2),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "-o", "--output", default="BENCH_throughput.json",
        help="throughput artifact to merge the 'vector' section into "
             "(created if missing)",
    )
    parser.add_argument("--lanes", type=int, default=64)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument(
        "--min-speedup", type=float, default=3.0,
        help="fail when vector/scalar cycles-per-second falls below this "
             "(the ISSUE gate is 3.0); <= 0 disables the gate",
    )
    args = parser.parse_args(argv)

    record = vector_record(lanes=args.lanes, repeats=args.repeats)
    path = pathlib.Path(args.output)
    try:
        artifact = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        artifact = {}
    artifact["vector"] = record
    path.write_text(json.dumps(artifact, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    print(f"\nmerged 'vector' section into {path}")

    if args.min_speedup > 0 and record["speedup"] < args.min_speedup:
        print(
            f"REGRESSION vector speedup {record['speedup']}x below the "
            f"{args.min_speedup}x gate "
            f"({record['cycles_per_second']:.0f} vs "
            f"{record['scalar_cycles_per_second']:.0f} cycles/sec)"
        )
        return 1
    print(
        f"vector engine: {record['speedup']}x over the scalar batch path "
        f"({record['lanes']} lanes, {record['cycles']} cycles)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
