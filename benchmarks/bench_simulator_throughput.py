"""Simulator performance: simulated cycles per second of wall clock.

Not a paper artifact — this tracks the cost of the cycle-level model
itself so regressions in the simulator's own speed are visible.
"""

from repro.core.baselines import fixed_superscalar, steering_processor
from repro.core.params import ProcessorParams
from repro.workloads.kernels import checksum

_KERNEL = checksum(iterations=150)
_PARAMS = ProcessorParams(reconfig_latency=8)


def _run_steering():
    proc = steering_processor(_KERNEL.program, _PARAMS)
    result = proc.run(max_cycles=100_000)
    assert result.halted
    return result


def _run_ffu_only():
    proc = fixed_superscalar(_KERNEL.program, _PARAMS)
    result = proc.run(max_cycles=100_000)
    assert result.halted
    return result


def test_steering_simulation_throughput(benchmark):
    result = benchmark(_run_steering)
    assert result.retired > 0


def test_ffu_only_simulation_throughput(benchmark):
    result = benchmark(_run_ffu_only)
    assert result.retired > 0
