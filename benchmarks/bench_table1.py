"""T1: regenerate Table 1 (functional units per configuration)."""

from repro.evaluation.artifacts import table1
from repro.fabric.configuration import NUM_RFU_SLOTS, PREDEFINED_CONFIGS


def test_table1_regeneration(benchmark, save_artifact):
    text = benchmark(table1)
    save_artifact("table1", text)
    # reproduction checks: three steering configs, each exactly 8 slots
    assert len(PREDEFINED_CONFIGS) == 3
    for cfg in PREDEFINED_CONFIGS:
        assert cfg.slot_usage == NUM_RFU_SLOTS
    for name in ("FFUs", "integer", "memory", "floating"):
        assert name in text
