"""E-FLOW: module-based vs difference-based partial reconfiguration [8].

The paper's reference 8 (Xilinx XAPP290) offers two flows; the paper uses
partial reconfiguration without committing to one.  Expected shape: the
difference-based flow spends fewer configuration-bus cycles (same-family
unit swaps are cheap) and therefore adapts faster, with the gap growing as
the per-slot latency grows.
"""

from repro.core.baselines import steering_processor
from repro.core.params import ProcessorParams
from repro.evaluation.report import render_table
from repro.workloads.phases import phased_program
from repro.workloads.synthetic import FP_MIX, INT_MIX, MEM_MIX

_PROGRAM = phased_program([(INT_MIX, 40), (MEM_MIX, 40), (FP_MIX, 40)], seed=9)


def _sweep():
    rows = []
    for latency in (4, 16, 64):
        per_mode = {}
        for mode in ("module", "difference"):
            params = ProcessorParams(reconfig_latency=latency, reconfig_mode=mode)
            result = steering_processor(_PROGRAM, params).run()
            per_mode[mode] = result
        rows.append(
            (
                latency,
                per_mode["module"].ipc,
                per_mode["difference"].ipc,
                per_mode["module"].reconfig_bus_cycles,
                per_mode["difference"].reconfig_bus_cycles,
            )
        )
    return rows


def test_reconfiguration_flows(benchmark, save_artifact):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    save_artifact(
        "e_reconfig_flows",
        render_table(
            ["latency/slot", "module IPC", "difference IPC",
             "module bus cycles", "difference bus cycles"],
            rows,
            title="E-FLOW: XAPP290 module-based vs difference-based flows",
        ),
    )
    for latency, m_ipc, d_ipc, m_bus, d_bus in rows:
        assert d_bus <= m_bus, latency           # difference writes fewer frames
        assert d_ipc >= m_ipc * 0.97, latency    # and never hurts IPC materially
