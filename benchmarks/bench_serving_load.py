"""Closed-loop load benchmark for the serving layer (stdlib only).

Drives a running ``repro serve`` endpoint — or self-hosts one, single- or
multi-process — with N concurrent clients issuing a mixed read/submit
scenario, and reports latency percentiles, throughput and error rate:

- reads: ``GET /api/health``, ``GET /api/runs``, ``GET /api/experiments``
  and an occasional ``GET /metrics`` scrape (the expensive one — under
  ``--workers N`` it merges every worker's published snapshot);
- submits: ``POST /api/jobs`` drawn from a small pool of distinct specs,
  so the first submission of each spec simulates and the rest are
  answered from the content-keyed result cache — the realistic steady
  state for a dashboard under traffic.

A 503 on submit is the queue's *designed* backpressure (bounded queue +
``Retry-After``), so it counts as ``rejected``, never as an error; the
error rate covers transport failures and 5xx responses the contract does
not promise.

The JSON artifact (``BENCH_serving_load.json``) is diffed over time by
``record_throughput.py --serving-baseline`` under the same >20% rule as
the simulator columns, and CI's ``serve-load`` job gates every run on
``--max-p99-ms`` / ``--max-error-rate`` directly.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving_load.py \
        [--clients 16] [--duration 10] [--workers 2] [--sim-pool 1] \
        [--url http://host:port] [-o BENCH_serving_load.json] \
        [--store runs.sqlite] [--max-p99-ms 500] [--max-error-rate 0.01] \
        [--scaleout]
"""

from __future__ import annotations

import argparse
import http.client
import json
import pathlib
import platform
import random
import tempfile
import threading
import time
from urllib.parse import urlsplit

#: submit specs: small pool, tiny workloads -> first run simulates,
#: repeats hit the cache (content-keyed on the job spec).
_SUBMIT_SPECS = [
    {"target": "checksum", "max_cycles": 4_000 + i * 97} for i in range(4)
]

#: read endpoints with selection weights (metrics scrapes are rare).
_READS = (
    ("/api/health", 4),
    ("/api/runs?limit=20", 3),
    ("/api/experiments", 2),
    ("/metrics", 1),
)
_READ_PATHS = [path for path, weight in _READS for _ in range(weight)]


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of pre-sorted values."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      round(q / 100.0 * (len(sorted_values) - 1))))
    return sorted_values[rank]


class _Client(threading.Thread):
    """One closed-loop client: issue, wait, record, repeat."""

    def __init__(self, host, port, deadline, submit_ratio, seed):
        super().__init__(daemon=True, name=f"load-client-{seed}")
        self.host, self.port = host, port
        self.deadline = deadline
        self.submit_ratio = submit_ratio
        self.rng = random.Random(seed)
        self.latencies: list[float] = []
        self.ok = 0
        self.rejected = 0
        self.errors = 0
        self.by_kind = {"read": 0, "submit": 0}

    def _request(self, conn):
        if self.rng.random() < self.submit_ratio:
            kind = "submit"
            spec = self.rng.choice(_SUBMIT_SPECS)
            body = json.dumps(spec).encode()
            conn.request(
                "POST", "/api/jobs", body=body,
                headers={"Content-Type": "application/json"},
            )
        else:
            kind = "read"
            conn.request("GET", self.rng.choice(_READ_PATHS))
        response = conn.getresponse()
        response.read()  # drain for keep-alive
        return kind, response.status

    def run(self) -> None:
        conn = http.client.HTTPConnection(self.host, self.port, timeout=10)
        try:
            while time.monotonic() < self.deadline:
                start = time.perf_counter()
                try:
                    kind, status = self._request(conn)
                except (OSError, http.client.HTTPException):
                    self.errors += 1
                    conn.close()  # reconnect on the next iteration
                    continue
                self.latencies.append(time.perf_counter() - start)
                self.by_kind[kind] += 1
                if status < 400:
                    self.ok += 1
                elif status == 503 and kind == "submit":
                    self.rejected += 1  # designed backpressure
                elif status < 500:
                    self.ok += 1  # 4xx we provoked is not a server fault
                else:
                    self.errors += 1
        finally:
            conn.close()


def run_load(
    url: str,
    clients: int = 8,
    duration: float = 5.0,
    submit_ratio: float = 0.2,
    seed: int = 0,
) -> dict:
    """Run the mixed scenario against ``url``; return the metrics record."""
    parts = urlsplit(url)
    deadline = time.monotonic() + duration
    threads = [
        _Client(parts.hostname, parts.port, deadline, submit_ratio, seed + i)
        for i in range(clients)
    ]
    start = time.monotonic()
    for t in threads:
        t.start()
    for t in threads:
        t.join(duration + 30)
    elapsed = time.monotonic() - start

    latencies = sorted(lat for t in threads for lat in t.latencies)
    completed = len(latencies)
    errors = sum(t.errors for t in threads)
    rejected = sum(t.rejected for t in threads)
    total = completed + errors
    return {
        "clients": clients,
        "duration_seconds": round(elapsed, 2),
        "submit_ratio": submit_ratio,
        "requests": total,
        "reads": sum(t.by_kind["read"] for t in threads),
        "submits": sum(t.by_kind["submit"] for t in threads),
        "ok": sum(t.ok for t in threads),
        "rejected": rejected,
        "errors": errors,
        "error_rate": round(errors / total, 4) if total else 0.0,
        "requests_per_second": round(completed / elapsed, 1) if elapsed else 0.0,
        "p50_ms": round(percentile(latencies, 50) * 1000, 2),
        "p90_ms": round(percentile(latencies, 90) * 1000, 2),
        "p99_ms": round(percentile(latencies, 99) * 1000, 2),
        "max_ms": round(latencies[-1] * 1000, 2) if latencies else 0.0,
    }


def _hosted_load(
    workers: int,
    sim_pool: int,
    clients: int,
    duration: float,
    submit_ratio: float,
    queue_capacity: int,
) -> dict:
    """Self-host a server in a temp dir, load it, tear it down."""
    import os

    with tempfile.TemporaryDirectory(prefix="repro-load-") as tmp:
        store_path = os.path.join(tmp, "runs.sqlite")
        cache_dir = os.path.join(tmp, "cache")
        if workers >= 1:
            record = _load_supervised(
                store_path, cache_dir, workers, sim_pool, clients,
                duration, submit_ratio, queue_capacity,
            )
        else:
            record = _load_single(
                store_path, cache_dir, clients, duration, submit_ratio,
                queue_capacity,
            )
    record["workers"] = workers
    record["sim_pool"] = sim_pool if workers >= 1 else 0
    return record


def _wait_healthy(port: int, timeout: float = 15.0) -> None:
    deadline = time.monotonic() + timeout
    last: Exception | None = None
    while time.monotonic() < deadline:
        try:
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=2)
            conn.request("GET", "/api/health")
            if conn.getresponse().status == 200:
                conn.close()
                return
        except OSError as exc:
            last = exc
            time.sleep(0.1)
    raise RuntimeError(f"server on :{port} never became healthy: {last}")


def _load_supervised(
    store_path, cache_dir, workers, sim_pool, clients, duration,
    submit_ratio, queue_capacity,
) -> dict:
    from repro.serving.supervisor import Supervisor

    sup = Supervisor(
        store_path, cache_dir=cache_dir, host="127.0.0.1", port=0,
        workers=workers, sim_pool=sim_pool, queue_capacity=queue_capacity,
    )
    sup.start()
    runner = threading.Thread(target=sup.run, daemon=True)
    runner.start()
    try:
        _wait_healthy(sup.port)
        return run_load(
            f"http://127.0.0.1:{sup.port}", clients=clients,
            duration=duration, submit_ratio=submit_ratio,
        )
    finally:
        sup._stopping.set()
        runner.join(20)


def _load_single(
    store_path, cache_dir, clients, duration, submit_ratio, queue_capacity,
) -> dict:
    from repro.evaluation.batch import ResultCache
    from repro.serving.app import ServingApp, make_server
    from repro.serving.jobs import StoreJobQueue
    from repro.serving.store import RunStore
    from repro.telemetry import MetricsRegistry

    store = RunStore(store_path)
    registry = MetricsRegistry()
    jobs = StoreJobQueue(
        store, cache=ResultCache(cache_dir), capacity=queue_capacity,
        registry=registry,
    )
    jobs.start()
    app = ServingApp(
        store, cache=jobs.cache, jobs=jobs, registry=registry
    )
    server = make_server(app, "127.0.0.1", 0)
    runner = threading.Thread(target=server.serve_forever, daemon=True)
    runner.start()
    try:
        _wait_healthy(server.server_port)
        return run_load(
            f"http://127.0.0.1:{server.server_port}", clients=clients,
            duration=duration, submit_ratio=submit_ratio,
        )
    finally:
        server.shutdown()
        server.server_close()
        jobs.stop()
        store.close()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-o", "--output", default="BENCH_serving_load.json")
    parser.add_argument("--url", default=None,
                        help="load an already-running server instead of "
                             "self-hosting one")
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent closed-loop clients")
    parser.add_argument("--duration", type=float, default=5.0,
                        help="seconds of sustained load")
    parser.add_argument("--submit-ratio", type=float, default=0.2,
                        help="fraction of requests that POST a job")
    parser.add_argument("--workers", type=int, default=2,
                        help="API worker processes for the self-hosted "
                             "server (0 = single process)")
    parser.add_argument("--sim-pool", type=int, default=1,
                        help="simulation pool processes (self-hosted, "
                             "--workers >= 1)")
    parser.add_argument("--queue-capacity", type=int, default=8)
    parser.add_argument("--scaleout", action="store_true",
                        help="also run the single-process configuration "
                             "and report multi/single throughput")
    parser.add_argument("--store", default=None,
                        help="register the result as a run in this SQLite "
                             "run store")
    parser.add_argument("--max-p99-ms", type=float, default=None,
                        help="fail when p99 latency exceeds this bound")
    parser.add_argument("--max-error-rate", type=float, default=None,
                        help="fail when the error rate exceeds this bound")
    args = parser.parse_args(argv)

    record: dict = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": __import__("os").cpu_count(),
    }
    if args.url:
        load = run_load(
            args.url, clients=args.clients, duration=args.duration,
            submit_ratio=args.submit_ratio,
        )
        load["workers"] = None  # external server: topology unknown
        record["serving"] = load
    else:
        record["serving"] = _hosted_load(
            args.workers, args.sim_pool, args.clients, args.duration,
            args.submit_ratio, args.queue_capacity,
        )
        if args.scaleout and args.workers >= 1:
            record["single_process"] = _hosted_load(
                0, 0, args.clients, args.duration, args.submit_ratio,
                args.queue_capacity,
            )
            single = record["single_process"]["requests_per_second"]
            multi = record["serving"]["requests_per_second"]
            record["scaleout"] = round(multi / single, 2) if single else None

    path = pathlib.Path(args.output)
    path.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    print(f"\nwritten to {path}")

    if args.store:
        import hashlib

        from repro.serving.store import RunStore

        load = record["serving"]
        config_hash = hashlib.sha256(
            json.dumps(
                {k: load[k] for k in ("clients", "submit_ratio", "workers")},
                sort_keys=True,
            ).encode()
        ).hexdigest()
        metrics = {
            "requests_per_second": load["requests_per_second"],
            "p50_ms": load["p50_ms"],
            "p99_ms": load["p99_ms"],
            "error_rate": load["error_rate"],
            "rejected": load["rejected"],
        }
        if record.get("scaleout") is not None:
            metrics["scaleout"] = record["scaleout"]
        with RunStore(args.store) as store:
            run_id = store.record_run(
                "BENCH-serving-load", config_hash, metrics,
                label=f"{load['clients']} clients x {load['workers']} workers",
            )
        print(f"registered run {run_id} in {args.store}")

    failures = []
    load = record["serving"]
    if args.max_p99_ms is not None and load["p99_ms"] > args.max_p99_ms:
        failures.append(
            f"p99 {load['p99_ms']:.1f}ms exceeds {args.max_p99_ms:.1f}ms"
        )
    if (
        args.max_error_rate is not None
        and load["error_rate"] > args.max_error_rate
    ):
        failures.append(
            f"error rate {load['error_rate']:.2%} exceeds "
            f"{args.max_error_rate:.2%}"
        )
    for message in failures:
        print(f"REGRESSION {message}")
    if not failures and (
        args.max_p99_ms is not None or args.max_error_rate is not None
    ):
        print("within latency/error-rate bounds")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
