"""F2: the four-stage selection unit (Fig. 2) end-to-end.

Regenerates the selection demonstration and times a single selection-unit
evaluation — the operation the hardware performs every cycle, so its
(model) throughput is also reported.
"""

from repro.evaluation.artifacts import figure2_selection_demo
from repro.fabric.configuration import FFU_COUNTS
from repro.isa.assembler import assemble
from repro.isa.futypes import FU_TYPES
from repro.steering.selection import ConfigurationSelectionUnit

_QUEUE = assemble(
    "add x1, x2, x3\nmul x4, x5, x6\nlw x7, 0(x8)\n"
    "fadd f1, f2, f3\nfmul f4, f5, f6\nsub x9, x1, x2\nsw x9, 4(x8)\n"
).instructions
_COUNTS = tuple(FFU_COUNTS[t] for t in FU_TYPES)


def test_fig2_selection_demo(benchmark, save_artifact):
    text = benchmark(figure2_selection_demo)
    save_artifact("fig2_selection", text)
    assert "integer" in text and "memory" in text and "floating" in text


def test_fig2_selection_throughput(benchmark):
    unit = ConfigurationSelectionUnit()
    result = benchmark(unit.select, _QUEUE, _COUNTS)
    assert 0 <= result.index <= 3
    assert sum(result.required) == 7
