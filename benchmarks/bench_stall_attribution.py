"""E-STALL: where do the cycles go, and what does steering remove?

Attributes waiting entry-cycles to their cause: front-end starvation,
data-ready-but-no-unit (structural — what configuration steering attacks),
and grant contention.  Expected shape: steering slashes the
resource-blocked count relative to the FFU-only baseline on every
ILP-bearing workload, and the structural savings explain the IPC gain.
"""

from repro.core.baselines import fixed_superscalar, steering_processor
from repro.core.params import ProcessorParams
from repro.evaluation.report import render_table
from repro.workloads.kernels import checksum, fir_filter, memcpy, saxpy

_PARAMS = ProcessorParams(reconfig_latency=8)
_WORKLOADS = [
    ("checksum", checksum(iterations=300).program),
    ("memcpy", memcpy(n=120).program),
    ("saxpy", saxpy(n=64).program),
    ("fir_filter", fir_filter(n=48).program),
]


def _attribute():
    rows = []
    for name, program in _WORKLOADS:
        ffu = fixed_superscalar(program, _PARAMS).run()
        steer = steering_processor(program, _PARAMS).run()
        rows.append(
            (
                name,
                ffu.resource_blocked_cycles,
                steer.resource_blocked_cycles,
                ffu.contention_cycles,
                steer.contention_cycles,
                f"{ffu.ipc:.3f} -> {steer.ipc:.3f}",
            )
        )
    return rows


def test_stall_attribution(benchmark, save_artifact):
    rows = benchmark.pedantic(_attribute, rounds=1, iterations=1)
    save_artifact(
        "e_stall_attribution",
        render_table(
            ["workload", "blocked (ffu)", "blocked (steer)",
             "contention (ffu)", "contention (steer)", "IPC"],
            rows,
            title="E-STALL: structural-stall entry-cycles, FFU-only vs steering",
        ),
    )
    for name, b_ffu, b_steer, c_ffu, c_steer, _ in rows:
        # structural pressure = blocked-on-type + lost-arbitration; the
        # split depends on how many idle units of the type exist (a single
        # busy FFU shows up as contention, a missing type as blocked), so
        # steering is judged on the sum
        assert (b_steer + c_steer) <= (b_ffu + c_ffu) * 0.6, name
