"""E-PH: steering trajectory across workload phases (§3.1 stability).

Expected shape: the steering selection is busy early in each phase (loads
happen), then settles on 'current' — the paper's "stable and well-matched
current configuration ... implies the architecture has settled".
"""

from repro.core.params import ProcessorParams
from repro.evaluation.experiments import run_phase_adaptation
from repro.evaluation.report import render_table
from repro.workloads.synthetic import FP_MIX, INT_MIX, MEM_MIX

_PHASES = [(INT_MIX, 60), (MEM_MIX, 60), (FP_MIX, 60)]


def test_phase_adaptation(benchmark, save_artifact):
    adaptation = benchmark.pedantic(
        run_phase_adaptation,
        kwargs={"phases": _PHASES, "params": ProcessorParams(reconfig_latency=4)},
        rounds=1,
        iterations=1,
    )
    settles = adaptation.settle_points(window=50)
    summary = render_table(
        ["metric", "value"],
        [
            ("cycles", adaptation.result.cycles),
            ("IPC", adaptation.result.ipc),
            ("reconfigurations", adaptation.result.reconfigurations),
            ("loads (cycles)", len(adaptation.load_cycles)),
            ("kept-current fraction", adaptation.kept_fraction),
            ("settle points", ", ".join(map(str, settles[:8])) or "-"),
        ],
        title="E-PH: phase adaptation (int -> mem -> fp)",
    )
    save_artifact("e_phase_adaptation", summary)
    # steering reacts: loads happen, spread across the run
    assert adaptation.load_cycles
    # and settles: long stretches of 'keep current'
    assert settles
    assert adaptation.kept_fraction > 0.3
