"""E-DEMAND (§5 extension): steering *without* predefined configurations.

Compares the demand-driven synthesizer against the paper's candidate-set
steering and the baselines.  Expected shape: demand steering matches or
beats paper steering (it can provision unit mixes no predefined candidate
offers) while keeping reconfiguration counts modest (hysteresis).
"""

from repro.core.baselines import (
    demand_processor,
    fixed_superscalar,
    steering_processor,
)
from repro.core.params import ProcessorParams
from repro.evaluation.report import render_table
from repro.workloads.kernels import checksum, fir_filter, memcpy, saxpy
from repro.workloads.phases import phased_program
from repro.workloads.synthetic import FP_MIX, INT_MIX, MEM_MIX

_PARAMS = ProcessorParams(reconfig_latency=8)
_WORKLOADS = [
    ("checksum", checksum(iterations=300).program),
    ("memcpy", memcpy(n=120).program),
    ("saxpy", saxpy(n=64).program),
    ("fir_filter", fir_filter(n=48).program),
    ("phased", phased_program([(INT_MIX, 40), (MEM_MIX, 40), (FP_MIX, 40)], seed=11)),
]


def _run_all():
    rows = []
    for name, program in _WORKLOADS:
        ffu = fixed_superscalar(program, _PARAMS).run()
        steer = steering_processor(program, _PARAMS).run()
        demand = demand_processor(program, _PARAMS).run()
        rows.append(
            (
                name,
                ffu.ipc,
                steer.ipc,
                demand.ipc,
                steer.reconfigurations,
                demand.reconfigurations,
            )
        )
    return rows


def test_demand_steering(benchmark, save_artifact):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    save_artifact(
        "e_demand_steering",
        render_table(
            ["workload", "ffu-only", "paper steering", "demand", "reconf (paper)", "reconf (demand)"],
            rows,
            title="E-DEMAND: predefined-config-free steering (S5 extension)",
        ),
    )
    for name, ffu, steer, demand, rc_steer, rc_demand in rows:
        # demand steering competitive with paper steering everywhere
        assert demand >= steer * 0.9, name
        # and never below the FFU floor
        assert demand >= ffu * 0.98, name
        # hysteresis keeps the bus calm
        assert rc_demand <= 40, name
    mean_steer = sum(r[2] for r in rows) / len(rows)
    mean_demand = sum(r[3] for r in rows) / len(rows)
    assert mean_demand >= mean_steer * 0.95
