"""E-FRONT: ablations of the Fig. 1 front-end substrate choices.

Not a paper artifact — these back DESIGN.md's requirement that the design
choices of the substrate (trace cache, predictor sizing, machine width)
be justified by measurement.  Expected shapes: the trace cache helps tight
loops; a larger predictor table never hurts; IPC saturates with width.

The study itself lives in :func:`repro.evaluation.experiments.
run_frontend_ablation` (one batch job graph); this benchmark times the
whole graph and asserts the shapes.
"""

from repro.evaluation.experiments import run_frontend_ablation


def test_front_end_ablation(benchmark, save_artifact):
    study = benchmark.pedantic(run_frontend_ablation, rounds=1, iterations=1)
    save_artifact("e_frontend_ablation", study.render())

    base = study.variant("baseline (tc=64, bp=256)")
    # the trace cache never hurts the tight loop
    assert base[1] >= study.variant("no trace cache")[1] * 0.999
    # predictor aliasing cannot *improve* accuracy materially
    assert base[3] >= study.variant("tiny predictor (4)")[3] - 0.02
    # wider machines are monotone-ish up to saturation
    widths = dict(study.width_rows)
    assert widths[4] >= widths[1]
    assert widths[8] >= widths[4] * 0.95
