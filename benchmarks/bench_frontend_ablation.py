"""E-FRONT: ablations of the Fig. 1 front-end substrate choices.

Not a paper artifact — these back DESIGN.md's requirement that the design
choices of the substrate (trace cache, predictor sizing, machine width)
be justified by measurement.  Expected shapes: the trace cache helps tight
loops; a larger predictor table never hurts; IPC saturates with width.
"""

from repro.core.baselines import steering_processor
from repro.core.params import ProcessorParams
from repro.evaluation.report import render_table
from repro.workloads.kernels import checksum
from repro.workloads.kernels_extra import bubble_sort

_LOOPY = checksum(iterations=250).program
_BRANCHY = bubble_sort(n=20).program


def _front_end_study():
    rows = []
    variants = {
        "baseline (tc=64, bp=256)": ProcessorParams(reconfig_latency=8),
        "no trace cache": ProcessorParams(reconfig_latency=8, use_trace_cache=False),
        "tiny predictor (4)": ProcessorParams(reconfig_latency=8, predictor_entries=4),
        "tiny BTB (1)": ProcessorParams(reconfig_latency=8, btb_entries=1),
    }
    for label, params in variants.items():
        loopy = steering_processor(_LOOPY, params).run()
        branchy = steering_processor(_BRANCHY, params).run()
        rows.append(
            (label, loopy.ipc, branchy.ipc, f"{branchy.branch_accuracy:.3f}")
        )
    return rows


def _width_study():
    rows = []
    for width in (1, 2, 4, 8):
        params = ProcessorParams(
            reconfig_latency=8, fetch_width=width, retire_width=width
        )
        result = steering_processor(_LOOPY, params).run()
        rows.append((width, result.ipc))
    return rows


def test_front_end_ablation(benchmark, save_artifact):
    rows = benchmark.pedantic(_front_end_study, rounds=1, iterations=1)
    width_rows = _width_study()
    save_artifact(
        "e_frontend_ablation",
        render_table(
            ["variant", "checksum IPC", "bubble_sort IPC", "branch accuracy"],
            rows,
            title="E-FRONT: front-end ablations",
        )
        + "\n\n"
        + render_table(
            ["fetch/retire width", "checksum IPC"],
            width_rows,
            title="E-FRONT: machine width sweep",
        ),
    )
    by_label = {r[0]: r for r in rows}
    base = by_label["baseline (tc=64, bp=256)"]
    # the trace cache never hurts the tight loop
    assert base[1] >= by_label["no trace cache"][1] * 0.999
    # predictor aliasing cannot *improve* accuracy materially
    assert float(base[3]) >= float(by_label["tiny predictor (4)"][3]) - 0.02
    # wider machines are monotone-ish up to saturation
    widths = dict(width_rows)
    assert widths[4] >= widths[1]
    assert widths[8] >= widths[4] * 0.95
