"""E-COST: gate count and critical path of the selection unit.

Backs the paper's "fast and efficient micro-architectural solution" claim
with analytic gate-equivalent and logic-depth estimates, including how the
cost scales with the queue size.
"""

from repro.circuits.cost import selection_unit_cost
from repro.circuits.netlist import Netlist
from repro.circuits.selection_netlist import (
    build_requirement_encoders,
    build_selection_core,
)
from repro.evaluation.experiments import run_circuit_cost_report


def _measured_netlist_report() -> str:
    core = build_selection_core()
    enc = Netlist()
    build_requirement_encoders(enc, n_entries=7)
    return (
        "Measured gate-level netlists (2-input gates, synthesised here):\n"
        f"  requirement encoders (stage 2): {enc.gate_count} gates, depth {enc.depth}\n"
        f"  CEM generators + selector (stages 3-4): {core.gate_count} gates, "
        f"depth {core.depth}"
    )


def test_circuit_cost_report(benchmark, save_artifact):
    text = benchmark(run_circuit_cost_report, [4, 7, 16])
    text = text + "\n\n" + _measured_netlist_report()
    save_artifact("e_circuit_cost", text)
    costs = selection_unit_cost(n_entries=7)
    # a few thousand gate equivalents, a few pipeline stages of logic:
    # cheap next to any superscalar core
    assert costs["total"].gates < 10_000
    assert costs["total"].depth < 120
    # cost scales sub-quadratically with the queue size
    g4 = selection_unit_cost(n_entries=4)["total"].gates
    g16 = selection_unit_cost(n_entries=16)["total"].gates
    assert g16 < g4 * 16
