"""F4-F6: the wake-up array worked example (dependency graph, array
contents, cycle-by-cycle request/grant trace)."""

from repro.evaluation.artifacts import figure456_wakeup_example


def test_fig456_wakeup_example(benchmark, save_artifact):
    text = benchmark(figure456_wakeup_example)
    save_artifact("fig456_wakeup", text)
    # the paper's dependency structure must appear verbatim
    assert "Entry 3 (Add) <- Shift, Sub" in text
    assert "Entry 4 (Mul) <- Sub" in text
    assert "Entry 6 (FPMul) <- Load" in text
    assert "Entry 7 (FPAdd) <- FPMul" in text
    # first wake-up wave = the three independent instructions
    assert "request=['Shift', 'Sub', 'Load']" in text
