"""E-CEM: does the cheap shift-approximate metric cost any performance?

Expected shape: IPC with the Fig. 3 barrel-shifter metric is within a few
percent of IPC with exact division — the justification for the paper's
"more accurate divider ... at the expense of increased complexity and
latency" trade-off.
"""

from repro.core.params import ProcessorParams
from repro.evaluation.experiments import run_cem_ablation
from repro.evaluation.report import render_table
from repro.workloads.kernels import checksum, memcpy, newton_sqrt, saxpy

_WORKLOADS = [
    ("checksum", checksum(iterations=300).program),
    ("memcpy", memcpy(n=120).program),
    ("saxpy", saxpy(n=64).program),
    ("newton_sqrt", newton_sqrt(iterations=24).program),
]


def test_cem_ablation(benchmark, save_artifact):
    rows = benchmark.pedantic(
        run_cem_ablation,
        kwargs={
            "workloads": _WORKLOADS,
            "params": ProcessorParams(reconfig_latency=8),
        },
        rounds=1,
        iterations=1,
    )
    table_rows = [
        (name, approx, exact, f"{(approx / exact - 1) * 100:+.1f}%")
        for name, approx, exact in rows
    ]
    save_artifact(
        "e_cem_ablation",
        render_table(
            ["workload", "shift-approx IPC", "exact-division IPC", "delta"],
            table_rows,
            title="E-CEM: approximate vs exact error metric",
        ),
    )
    for name, approx, exact in rows:
        assert approx >= exact * 0.8, name  # never a large loss
