"""T2: regenerate Table 2 (3-bit resource-type encodings)."""

from repro.evaluation.artifacts import table2
from repro.fabric.allocation import EMPTY_ENCODING, SPAN_ENCODING
from repro.isa.futypes import FU_TYPES


def test_table2_regeneration(benchmark, save_artifact):
    text = benchmark(table2)
    save_artifact("table2", text)
    assert EMPTY_ENCODING == 0b000 and SPAN_ENCODING == 0b111
    encodings = {t.encoding for t in FU_TYPES}
    assert encodings == {0b001, 0b010, 0b011, 0b100, 0b101}
    for token in ("EMPTY", "SPAN", "IALU", "FPMDU"):
        assert token in text
