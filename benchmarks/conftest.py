"""Shared fixtures for the benchmark harness.

Every bench regenerates one paper artifact or experiment.  Besides timing
(pytest-benchmark), each bench writes its regenerated table/figure to
``benchmarks/out/<name>.txt`` so the outputs that back EXPERIMENTS.md are
inspectable after a run.
"""

from __future__ import annotations

import pathlib

import pytest

_OUT = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def artifact_dir() -> pathlib.Path:
    _OUT.mkdir(exist_ok=True)
    return _OUT


@pytest.fixture
def save_artifact(artifact_dir):
    """Write a regenerated artifact to benchmarks/out/<name>.txt."""

    def _save(name: str, text: str) -> None:
        (artifact_dir / f"{name}.txt").write_text(text + "\n")

    return _save
