"""Vectorised vs scalar selection-unit throughput.

Not a paper artifact — measures the numpy batch evaluator against the
bit-faithful scalar model (the classic vectorise-the-hot-loop win for
design-space sweeps).  Expected: the batch path evaluates thousands of
queue vectors per scalar-model evaluation's worth of wall clock.
"""

import numpy as np

from repro.fabric.configuration import FFU_COUNTS
from repro.isa.futypes import FU_TYPES
from repro.steering.batch import BatchSelectionUnit
from repro.steering.selection import ConfigurationSelectionUnit

_N = 10_000
_RNG = np.random.default_rng(7)
_REQUIRED = _RNG.integers(0, 8, size=(_N, 5))
_COUNTS = np.array([FFU_COUNTS[t] for t in FU_TYPES], dtype=np.int64)


def test_batch_selection_throughput(benchmark):
    unit = BatchSelectionUnit()
    picks = benchmark(unit.select, _REQUIRED, _COUNTS)
    assert picks.shape == (_N,)
    assert set(np.unique(picks)) <= {0, 1, 2, 3}


def test_scalar_equivalent_workload(benchmark):
    """Scalar baseline doing the same stage 3+4 work on 100 vectors (the
    full 10k would dominate the bench run)."""
    scalar = ConfigurationSelectionUnit()
    counts = tuple(int(v) for v in _COUNTS)
    sample = [tuple(int(v) for v in row) for row in _REQUIRED[:100]]

    def run():
        out = []
        for row in sample:
            errors = scalar.candidate_errors(row, counts)
            out.append(errors.index(min(errors)))
        return out

    picks = benchmark(run)
    assert len(picks) == 100


def test_batch_agreement_study_throughput(benchmark):
    unit = BatchSelectionUnit()
    agreement = benchmark(unit.agreement_with_exact, _REQUIRED, _COUNTS)
    assert 0.7 <= agreement <= 1.0
