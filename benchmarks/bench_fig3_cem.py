"""F3: the configuration-error-metric circuit (Fig. 3).

Regenerates the approximation study (shift-divide vs exact division) and
times one CEM evaluation (the per-cycle hardware operation).
"""

import pytest

from repro.evaluation.artifacts import figure3_cem_study
from repro.steering.error_metric import cem_error, hardwired_shifts
from repro.fabric.configuration import CONFIG_INTEGER


def test_fig3_cem_study(benchmark, save_artifact):
    study = benchmark.pedantic(
        figure3_cem_study, kwargs={"samples": 2000}, rounds=1, iterations=1
    )
    save_artifact(
        "fig3_cem",
        "\n\n".join(
            [
                study.shift_table,
                study.table,
                f"max per-term |approx - exact| : {study.max_term_error:.3f}",
                f"mean per-term error           : {study.mean_term_error:.3f}",
                f"selection agreement (random)  : {study.selection_agreement:.3f}",
            ]
        ),
    )
    # reproduction checks
    assert study.max_term_error <= 1.0
    assert study.selection_agreement > 0.75


def test_fig3_cem_throughput(benchmark):
    shifts = hardwired_shifts(CONFIG_INTEGER)
    error = benchmark(cem_error, (5, 2, 0, 0, 0), shifts)
    assert error == (5 >> 2) + (2 >> 1)
