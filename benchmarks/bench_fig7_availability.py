"""F7: the resource-availability circuit (Fig. 7 / Eq. 1)."""

from repro.evaluation.artifacts import figure7_availability_check
from repro.fabric.availability import available
from repro.isa.futypes import FUType


def test_fig7_availability_check(benchmark, save_artifact):
    text = benchmark.pedantic(
        figure7_availability_check, kwargs={"samples": 500}, rounds=1, iterations=1
    )
    save_artifact("fig7_availability", text)
    assert "all agree" in text


def test_fig7_circuit_throughput(benchmark):
    allocation = [1, 2, 7, 3, 0, 4, 7, 7, 1, 2, 7, 3, 5]
    availability = [True, False, False, True, False, True, True, True,
                    False, True, True, False, True]
    result = benchmark(available, FUType.LSU, allocation, availability)
    assert result is True
