"""E-SPEC: atomic vs pipelined select-free scheduling ([9] extension).

The paper notes its scheduling "can be extended using the same techniques
employed in [9]" — pipelined, select-free wake-up where instructions may
speculatively consider themselves scheduled and replay on collision.
Expected shape: IPC within a few percent of the atomic scheduler (the
replays are rare and cheap), with the replay count scaling with unit
contention — the data behind [9]'s claim that select-free logic is a
viable pipelining strategy.
"""

from repro.core.baselines import steering_processor
from repro.core.params import ProcessorParams
from repro.evaluation.report import render_table
from repro.workloads.kernels import checksum, fir_filter, memcpy, saxpy

_WORKLOADS = [
    ("checksum", checksum(iterations=300).program),
    ("memcpy", memcpy(n=120).program),
    ("saxpy", saxpy(n=64).program),
    ("fir_filter", fir_filter(n=48).program),
]


def _compare():
    rows = []
    for name, program in _WORKLOADS:
        atomic = steering_processor(
            program, ProcessorParams(reconfig_latency=8)
        ).run()
        pipelined = steering_processor(
            program,
            ProcessorParams(reconfig_latency=8, pipelined_scheduling=True),
        ).run()
        rows.append(
            (name, atomic.ipc, pipelined.ipc, pipelined.scheduling_replays)
        )
    return rows


def test_pipelined_scheduling(benchmark, save_artifact):
    rows = benchmark.pedantic(_compare, rounds=1, iterations=1)
    save_artifact(
        "e_pipelined_scheduling",
        render_table(
            ["workload", "atomic IPC", "select-free IPC", "replays"],
            rows,
            title="E-SPEC: atomic vs pipelined select-free scheduling [9]",
        ),
    )
    for name, atomic, pipelined, replays in rows:
        # select-free costs single-digit percent, ~9 % worst case on the
        # contention-heavy FP kernel
        assert pipelined >= atomic * 0.88, name
    # contention-heavy FP code replays more than the serial integer loop
    by_name = {r[0]: r[3] for r in rows}
    assert by_name["fir_filter"] > by_name["checksum"]
