"""E-BASIS (§5 extension): formulating an optimal steering basis.

Designs a basis for the kernel-suite demand profile with the k-means
search and compares it against the paper's hand-designed basis — both on
the clustering objective (mean best-candidate exact error) and end-to-end
(steered IPC on a held-out mixed workload).
"""

from repro.core.params import ProcessorParams
from repro.core.policies import PaperSteering
from repro.core.processor import Processor
from repro.evaluation.basis_search import demand_profile, design_basis, profile_cost
from repro.evaluation.report import render_table
from repro.fabric.configuration import PREDEFINED_CONFIGS
from repro.workloads.kernels import all_kernels
from repro.workloads.phases import phased_program
from repro.workloads.synthetic import FP_MIX, INT_MIX, MEM_MIX

_PARAMS = ProcessorParams(reconfig_latency=8)


def _study():
    programs = [k.program for k in all_kernels()]
    profile = demand_profile(programs)
    paper_cost = profile_cost(profile, PREDEFINED_CONFIGS)
    designed, designed_cost = design_basis(profile, seed=1)

    held_out = phased_program([(INT_MIX, 40), (MEM_MIX, 40), (FP_MIX, 40)], seed=23)
    ipc = {}
    for label, basis in (("paper", PREDEFINED_CONFIGS), ("designed", tuple(designed))):
        proc = Processor(held_out, params=_PARAMS, policy=PaperSteering(configs=basis))
        ipc[label] = proc.run().ipc
    return profile, paper_cost, designed, designed_cost, ipc


def test_basis_design(benchmark, save_artifact):
    profile, paper_cost, designed, designed_cost, ipc = benchmark.pedantic(
        _study, rounds=1, iterations=1
    )
    rows = [
        ("paper", f"{paper_cost:.4f}", f"{ipc['paper']:.3f}",
         " | ".join(str(c) for c in PREDEFINED_CONFIGS)),
        ("designed", f"{designed_cost:.4f}", f"{ipc['designed']:.3f}",
         " | ".join(str(c) for c in designed)),
    ]
    save_artifact(
        "e_basis_design",
        render_table(
            ["basis", "profile cost (mean err)", "held-out IPC", "members"],
            rows,
            title=f"E-BASIS: designed vs paper basis ({len(profile)} demand samples)",
        ),
    )
    # the search never returns a basis worse than the paper's on the profile
    assert designed_cost <= paper_cost + 1e-9
    # and the designed basis remains usable end-to-end
    assert ipc["designed"] > 0.3
