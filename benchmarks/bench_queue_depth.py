"""E-Q: sensitivity to the instruction-queue / wake-up-window depth.

The paper fixes the queue at seven entries; this sweep shows what that
choice costs or buys.  Expected shape: IPC grows with depth and saturates
near the paper's seven (the 3-bit requirement encoders are sized for it).
"""

from repro.evaluation.experiments import run_queue_depth_sweep
from repro.evaluation.report import render_table
from repro.workloads.phases import phased_program
from repro.workloads.synthetic import FP_MIX, INT_MIX

_PROGRAM = phased_program([(INT_MIX, 50), (FP_MIX, 50)], seed=7)
_DEPTHS = [3, 5, 7, 11, 16]


def test_queue_depth_sweep(benchmark, save_artifact):
    rows = benchmark.pedantic(
        run_queue_depth_sweep,
        kwargs={"depths": _DEPTHS, "program": _PROGRAM},
        rounds=1,
        iterations=1,
    )
    save_artifact(
        "e_queue_depth",
        render_table(
            ["window depth", "steering IPC"],
            rows,
            title="E-Q: IPC vs wake-up window depth",
        ),
    )
    ipcs = dict(rows)
    # a deeper window exposes at least as much ILP as a shallow one
    assert ipcs[7] >= ipcs[3] * 0.95
    assert ipcs[16] >= ipcs[3] * 0.95
