# Convenience targets for the repro library.

PYTHON ?= python

.PHONY: install test bench report examples lint lint-clean

install:
	pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

report:
	$(PYTHON) -m repro report -o report.md

examples:
	for ex in examples/*.py; do echo "== $$ex =="; $(PYTHON) $$ex || exit 1; done

lint:
	PYTHONPATH=src $(PYTHON) -m repro lint

lint-clean:
	rm -rf .analysis-cache
