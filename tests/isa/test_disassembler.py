"""Tests for the disassembler, including assemble->disassemble->assemble."""

from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble, format_instruction
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode


class TestFormat:
    def test_r_type(self):
        assert format_instruction(Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3)) == "add x1, x2, x3"

    def test_two_operand_r_type(self):
        assert format_instruction(Instruction(Opcode.FABS, rd=1, rs1=2)) == "fabs f1, f2"

    def test_i_type(self):
        assert format_instruction(Instruction(Opcode.ADDI, rd=1, rs1=2, imm=-7)) == "addi x1, x2, -7"

    def test_load_store_syntax(self):
        assert format_instruction(Instruction(Opcode.LW, rd=1, rs1=2, imm=8)) == "lw x1, 8(x2)"
        assert format_instruction(Instruction(Opcode.SW, rs1=2, rs2=3, imm=-4)) == "sw x3, -4(x2)"
        assert format_instruction(Instruction(Opcode.FLW, rd=1, rs1=2, imm=0)) == "flw f1, 0(x2)"
        assert format_instruction(Instruction(Opcode.FSW, rs1=2, rs2=3, imm=0)) == "fsw f3, 0(x2)"

    def test_branch_and_jump(self):
        assert format_instruction(Instruction(Opcode.BEQ, rs1=1, rs2=2, imm=-3)) == "beq x1, x2, -3"
        assert format_instruction(Instruction(Opcode.JAL, rd=1, imm=5)) == "jal x1, 5"

    def test_lui_and_halt(self):
        assert format_instruction(Instruction(Opcode.LUI, rd=1, imm=9)) == "lui x1, 9"
        assert format_instruction(Instruction(Opcode.HALT)) == "halt"

    def test_fp_compare_mixes_classes(self):
        assert format_instruction(Instruction(Opcode.FLT, rd=1, rs1=2, rs2=3)) == "flt x1, f2, f3"


class TestRoundTrip:
    def test_disassemble_binary(self):
        p = assemble("add x1, x2, x3\nlw x4, 4(x5)\nhalt\n")
        lines = disassemble(p.to_binary())
        assert lines == ["add x1, x2, x3", "lw x4, 4(x5)", "halt"]

    def test_reassembling_disassembly_is_identity(self):
        src = """
            addi x1, x0, 10
            addi x2, x0, 0
            mul x3, x1, x1
            lw x4, 0(x3)
            sw x4, 4(x3)
            fadd f1, f2, f3
            fdiv f4, f5, f6
            beq x1, x2, 2
            jal x1, -3
            halt
        """
        p1 = assemble(src)
        p2 = assemble("\n".join(disassemble(p1.to_binary())))
        assert p1.instructions == p2.instructions
