"""Tests for the execution semantics (int32 wrap, float32 rounding, control)."""

import math
import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.semantics import (
    access_size,
    alu_result,
    control_outcome,
    effective_address,
    f32,
    load_value,
    store_bytes,
)
from repro.utils.bitops import to_signed, to_unsigned

_U32 = st.integers(0, 2**32 - 1)


def _r(op, s1=0, s2=0, imm=0, rd=1):
    return alu_result(Instruction(op, rd=rd, rs1=2, rs2=3, imm=imm), s1, s2)


class TestIntegerAlu:
    @given(_U32, _U32)
    def test_add_wraps(self, a, b):
        assert _r(Opcode.ADD, a, b) == (a + b) & 0xFFFFFFFF

    @given(_U32, _U32)
    def test_sub_wraps(self, a, b):
        assert _r(Opcode.SUB, a, b) == (a - b) & 0xFFFFFFFF

    def test_logic(self):
        assert _r(Opcode.AND, 0b1100, 0b1010) == 0b1000
        assert _r(Opcode.OR, 0b1100, 0b1010) == 0b1110
        assert _r(Opcode.XOR, 0b1100, 0b1010) == 0b0110
        assert _r(Opcode.NOR, 0, 0) == 0xFFFFFFFF

    def test_shifts(self):
        assert _r(Opcode.SLL, 1, 4) == 16
        assert _r(Opcode.SRL, 0x80000000, 31) == 1
        assert _r(Opcode.SRA, 0x80000000, 31) == 0xFFFFFFFF

    def test_shift_amount_masked_to_5_bits(self):
        assert _r(Opcode.SLL, 1, 33) == 2

    def test_set_less_than(self):
        assert _r(Opcode.SLT, to_unsigned(-1, 32), 0) == 1
        assert _r(Opcode.SLTU, to_unsigned(-1, 32), 0) == 0

    def test_immediates(self):
        assert _r(Opcode.ADDI, 5, imm=-3) == 2
        assert _r(Opcode.ORI, 0xF0, imm=0x0F) == 0xFF
        assert _r(Opcode.SLLI, 1, imm=8) == 256
        assert _r(Opcode.SLTI, 1, imm=2) == 1

    def test_lui(self):
        assert _r(Opcode.LUI, imm=1) == 1 << 15


class TestIntegerMdu:
    @given(st.integers(-(2**31), 2**31 - 1), st.integers(-(2**31), 2**31 - 1))
    def test_mul_matches_wrapped_product(self, a, b):
        got = _r(Opcode.MUL, to_unsigned(a, 32), to_unsigned(b, 32))
        assert got == to_unsigned(a * b, 32)

    def test_mulh(self):
        a, b = 0x12345678, 0x7FFFFFFF
        assert _r(Opcode.MULH, a, b) == to_unsigned((a * b) >> 32, 32)

    def test_div_semantics(self):
        assert to_signed(_r(Opcode.DIV, to_unsigned(-7, 32), 2), 32) == -3
        assert _r(Opcode.DIV, 7, 0) == 0xFFFFFFFF  # div by zero -> -1
        assert _r(Opcode.DIVU, 7, 0) == 0xFFFFFFFF
        assert _r(Opcode.REM, 7, 0) == 7
        assert _r(Opcode.DIV, 0x80000000, to_unsigned(-1, 32)) == 0x80000000  # overflow

    @given(st.integers(-1000, 1000), st.integers(1, 1000))
    def test_div_rem_identity(self, a, b):
        q = to_signed(_r(Opcode.DIV, to_unsigned(a, 32), to_unsigned(b, 32)), 32)
        r = to_signed(_r(Opcode.REM, to_unsigned(a, 32), to_unsigned(b, 32)), 32)
        assert q * b + r == a


class TestFloatingPoint:
    def test_float32_rounding(self):
        # 0.1 + 0.2 in binary32 differs from binary64
        got = _r(Opcode.FADD, f32(0.1), f32(0.2))
        assert got == f32(f32(0.1) + f32(0.2))
        assert got != 0.1 + 0.2

    def test_arith(self):
        assert _r(Opcode.FSUB, 3.0, 1.5) == 1.5
        assert _r(Opcode.FMUL, 3.0, 2.0) == 6.0
        assert _r(Opcode.FDIV, 3.0, 2.0) == 1.5
        assert _r(Opcode.FSQRT, 9.0) == 3.0

    def test_fdiv_by_zero(self):
        assert math.isinf(_r(Opcode.FDIV, 1.0, 0.0))
        assert _r(Opcode.FDIV, -1.0, 0.0) < 0
        assert math.isnan(_r(Opcode.FDIV, 0.0, 0.0))

    def test_fsqrt_negative_is_nan(self):
        assert math.isnan(_r(Opcode.FSQRT, -1.0))

    def test_min_max_abs_neg_mov(self):
        assert _r(Opcode.FMIN, 1.0, 2.0) == 1.0
        assert _r(Opcode.FMAX, 1.0, 2.0) == 2.0
        assert _r(Opcode.FABS, -1.5) == 1.5
        assert _r(Opcode.FNEG, 1.5) == -1.5
        assert _r(Opcode.FMOV, 2.5) == 2.5

    def test_compares_produce_int(self):
        assert _r(Opcode.FEQ, 1.0, 1.0) == 1
        assert _r(Opcode.FLT, 1.0, 2.0) == 1
        assert _r(Opcode.FLE, 2.0, 2.0) == 1
        assert _r(Opcode.FLT, 2.0, 1.0) == 0

    def test_conversions(self):
        assert _r(Opcode.FCVTWS, 3.7) == 3
        assert to_signed(_r(Opcode.FCVTWS, -3.7), 32) == -3
        assert _r(Opcode.FCVTSW, to_unsigned(-5, 32)) == -5.0

    def test_fcvtws_clamps(self):
        assert to_signed(_r(Opcode.FCVTWS, 1e20), 32) == 2**31 - 1
        assert to_signed(_r(Opcode.FCVTWS, -1e20), 32) == -(2**31)


class TestControl:
    def test_branches(self):
        beq = Instruction(Opcode.BEQ, rs1=1, rs2=2, imm=10)
        assert control_outcome(beq, 100, 5, 5) == (True, 110, None)
        assert control_outcome(beq, 100, 5, 6) == (False, 101, None)

    def test_signed_vs_unsigned_branches(self):
        blt = Instruction(Opcode.BLT, imm=4)
        bltu = Instruction(Opcode.BLTU, imm=4)
        neg1 = to_unsigned(-1, 32)
        assert control_outcome(blt, 0, neg1, 0)[0] is True
        assert control_outcome(bltu, 0, neg1, 0)[0] is False

    def test_jal(self):
        jal = Instruction(Opcode.JAL, rd=1, imm=-5)
        taken, target, link = control_outcome(jal, 50)
        assert (taken, target, link) == (True, 45, 51)

    def test_jalr(self):
        jalr = Instruction(Opcode.JALR, rd=1, rs1=2, imm=4)
        taken, target, link = control_outcome(jalr, 10, s1=100)
        assert (taken, target, link) == (True, 104, 11)

    def test_halt_falls_through(self):
        taken, target, link = control_outcome(Instruction(Opcode.HALT), 7)
        assert taken is False and target == 8


class TestMemoryHelpers:
    def test_effective_address(self):
        i = Instruction(Opcode.LW, rd=1, rs1=2, imm=-4)
        assert effective_address(i, 100) == 96

    def test_access_sizes(self):
        assert access_size(Instruction(Opcode.LW)) == 4
        assert access_size(Instruction(Opcode.LH)) == 2
        assert access_size(Instruction(Opcode.LB)) == 1
        assert access_size(Instruction(Opcode.FLW)) == 4
        assert access_size(Instruction(Opcode.SB)) == 1

    def test_store_load_roundtrip_int(self):
        raw = store_bytes(Instruction(Opcode.SW), 0xDEADBEEF)
        assert load_value(Instruction(Opcode.LW), raw) == 0xDEADBEEF

    def test_store_load_roundtrip_float(self):
        raw = store_bytes(Instruction(Opcode.FSW), 1.5)
        assert load_value(Instruction(Opcode.FLW), raw) == 1.5

    def test_signed_byte_loads(self):
        raw = struct.pack("<B", 0xFF)
        assert load_value(Instruction(Opcode.LB), raw) == 0xFFFFFFFF
        assert load_value(Instruction(Opcode.LBU), raw) == 0xFF

    def test_signed_half_loads(self):
        raw = struct.pack("<H", 0x8000)
        assert load_value(Instruction(Opcode.LH), raw) == 0xFFFF8000
        assert load_value(Instruction(Opcode.LHU), raw) == 0x8000

    def test_store_truncates(self):
        assert store_bytes(Instruction(Opcode.SB), 0x1FF) == b"\xff"
        assert store_bytes(Instruction(Opcode.SH), 0x1FFFF) == b"\xff\xff"
