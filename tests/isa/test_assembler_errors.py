"""Additional assembler error-path and corner-case tests."""

import pytest

from repro.errors import AssemblerError
from repro.isa.assembler import assemble
from repro.isa.opcodes import Opcode


class TestDirectiveErrors:
    def test_align_non_positive(self):
        with pytest.raises(AssemblerError, match="positive"):
            assemble(".data\n.align 0\n.text\nhalt\n")

    def test_bad_float(self):
        with pytest.raises(AssemblerError, match="float"):
            assemble(".data\n.float abc\n.text\nhalt\n")

    def test_bad_word(self):
        with pytest.raises(AssemblerError, match="integer"):
            assemble(".data\n.word x\n.text\nhalt\n")

    def test_unknown_directive(self):
        with pytest.raises(AssemblerError, match="directive"):
            assemble(".globl main\nhalt\n")

    def test_float_outside_data(self):
        with pytest.raises(AssemblerError):
            assemble(".float 1.0\n")


class TestOperandErrors:
    def test_missing_memory_parens(self):
        with pytest.raises(AssemblerError, match="imm\\(base\\)"):
            assemble("lw x1, 4\n")

    def test_fp_base_register_rejected(self):
        with pytest.raises(AssemblerError, match="integer register"):
            assemble("lw x1, 0(f2)\n")

    def test_store_data_register_class(self):
        with pytest.raises(AssemblerError):
            assemble("fsw x1, 0(x2)\n")  # fsw stores an fp register

    def test_undefined_label_is_int_error(self):
        with pytest.raises(AssemblerError):
            assemble("beq x1, x2, nowhere\nhalt\n")

    def test_la_overflow(self):
        # data segment large enough that the address exceeds imm15
        src = ".data\nbig: .space 40000\ntail: .word 1\n.text\nla x1, tail\nhalt\n"
        with pytest.raises(AssemblerError, match="la address"):
            assemble(src)


class TestLabelArithmetic:
    def test_label_plus_offset(self):
        p = assemble(".data\narr: .word 1, 2, 3\n.text\nlw x1, arr+8(x0)\nhalt\n")
        assert p[0].imm == 8

    def test_label_minus_offset(self):
        p = assemble(".data\npad: .space 8\nv: .word 5\n.text\nlw x1, v-4(x0)\nhalt\n")
        assert p[0].imm == 4

    def test_hex_offset(self):
        p = assemble(".data\narr: .word 1\n.text\nlw x1, arr+0x4(x0)\nhalt\n")
        assert p[0].imm == 4


class TestImmediateForms:
    def test_negative_hex(self):
        p = assemble("addi x1, x0, -0x10\n")
        assert p[0].imm == -16

    def test_branch_literal_offset(self):
        p = assemble("beq x0, x0, -2\nhalt\n")
        assert p[0].imm == -2

    def test_li_negative_in_range(self):
        p = assemble("li x1, -16384\n")
        assert p[0].opcode is Opcode.ADDI and p[0].imm == -16384

    def test_li_large_negative_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("li x1, -16385\n")
