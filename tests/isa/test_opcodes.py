"""Tests for the opcode table."""

import pytest

from repro.isa.futypes import FUType
from repro.isa.opcodes import ALL_SPECS, Format, Opcode, OperandClass, spec_of


def test_opcode_numbers_unique():
    numbers = [int(op) for op in Opcode]
    assert len(set(numbers)) == len(numbers)


def test_every_opcode_has_spec():
    for op in Opcode:
        spec = spec_of(op)
        assert spec.mnemonic
        assert spec.latency >= 1


def test_lookup_by_mnemonic_and_number():
    assert spec_of("add") is spec_of(Opcode.ADD)
    assert spec_of(int(Opcode.ADD)) is spec_of(Opcode.ADD)
    with pytest.raises(KeyError):
        spec_of("bogus")


def test_each_instruction_single_fu_type():
    """Paper assumption: each instruction is supported by one unit type."""
    for spec in ALL_SPECS:
        assert isinstance(spec.fu_type, FUType)


def test_latency_ordering():
    assert spec_of("add").latency == 1
    assert spec_of("mul").latency > spec_of("add").latency
    assert spec_of("div").latency > spec_of("mul").latency
    assert spec_of("fdiv").latency > spec_of("fmul").latency
    assert spec_of("fsqrt").latency >= spec_of("fdiv").latency


def test_branches_on_int_alu():
    for m in ("beq", "bne", "blt", "bge", "bltu", "bgeu", "jal", "jalr"):
        assert spec_of(m).fu_type is FUType.INT_ALU


def test_classification_flags():
    assert spec_of("beq").is_branch and not spec_of("beq").is_jump
    assert spec_of("jal").is_jump and not spec_of("jal").is_branch
    assert spec_of("lw").is_load and not spec_of("lw").is_store
    assert spec_of("sw").is_store and not spec_of("sw").is_load
    assert spec_of("flw").is_load
    assert spec_of("fsw").is_store
    assert spec_of("halt").is_halt


def test_fp_loads_write_fp_regs():
    assert spec_of("flw").dst is OperandClass.FP
    assert spec_of("fsw").src2 is OperandClass.FP
    assert spec_of("feq").dst is OperandClass.INT


def test_fu_type_coverage():
    """Every unit type has at least one opcode."""
    covered = {spec.fu_type for spec in ALL_SPECS}
    assert covered == set(FUType)


def test_format_operand_consistency():
    for spec in ALL_SPECS:
        if spec.format is Format.N:
            assert spec.dst is OperandClass.NONE
        if spec.format is Format.J:
            assert spec.dst is OperandClass.INT
        if spec.format in (Format.S, Format.B):
            assert spec.dst is OperandClass.NONE
