"""Encode/decode round-trip tests, including a hypothesis property over
the whole instruction space."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DisassemblerError, EncodingError
from repro.isa.encoding import WORD_BITS, decode, encode, imm_range
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Format, Opcode, spec_of

_REG = st.integers(0, 31)


def _instruction_strategy():
    def build(opcode, rd, rs1, rs2, imm_frac):
        spec = spec_of(opcode)
        fmt = spec.format
        lo, hi = imm_range(fmt)
        imm = lo + int(imm_frac * (hi - lo)) if hi > lo else 0
        if fmt is Format.R:
            return Instruction(opcode, rd=rd, rs1=rs1, rs2=rs2)
        if fmt is Format.I:
            return Instruction(opcode, rd=rd, rs1=rs1, imm=imm)
        if fmt in (Format.S, Format.B):
            return Instruction(opcode, rs1=rs1, rs2=rs2, imm=imm)
        if fmt is Format.J:
            return Instruction(opcode, rd=rd, imm=imm)
        return Instruction(opcode)

    return st.builds(
        build,
        st.sampled_from(list(Opcode)),
        _REG,
        _REG,
        _REG,
        st.floats(0, 1, allow_nan=False),
    )


class TestRoundTrip:
    @given(_instruction_strategy())
    def test_decode_inverts_encode(self, instr):
        word = encode(instr)
        assert 0 <= word < 2**WORD_BITS
        assert decode(word) == instr

    def test_specific_examples(self):
        cases = [
            Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3),
            Instruction(Opcode.ADDI, rd=31, rs1=30, imm=-16384),
            Instruction(Opcode.ADDI, rd=31, rs1=30, imm=16383),
            Instruction(Opcode.SW, rs1=5, rs2=6, imm=-1),
            Instruction(Opcode.BEQ, rs1=1, rs2=2, imm=-100),
            Instruction(Opcode.JAL, rd=1, imm=-(1 << 19)),
            Instruction(Opcode.HALT),
            Instruction(Opcode.FSW, rs1=2, rs2=3, imm=16383),
        ]
        for instr in cases:
            assert decode(encode(instr)) == instr


class TestEncodeErrors:
    def test_imm_overflow_i(self):
        with pytest.raises(EncodingError):
            encode(Instruction(Opcode.ADDI, rd=1, imm=1 << 14))

    def test_imm_underflow_b(self):
        with pytest.raises(EncodingError):
            encode(Instruction(Opcode.BEQ, imm=-(1 << 14) - 1))

    def test_imm_overflow_j(self):
        with pytest.raises(EncodingError):
            encode(Instruction(Opcode.JAL, rd=1, imm=1 << 19))


class TestDecodeErrors:
    def test_unknown_opcode(self):
        with pytest.raises(DisassemblerError):
            decode(0x7F << 25)  # opcode 0x7f is unassigned

    def test_out_of_range_word(self):
        with pytest.raises(DisassemblerError):
            decode(1 << 32)
        with pytest.raises(DisassemblerError):
            decode(-1)


def test_opcode_field_position():
    word = encode(Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3))
    assert (word >> 25) == int(Opcode.ADD)
