"""Tests for the two-pass assembler."""

import struct

import pytest

from repro.errors import AssemblerError
from repro.isa.assembler import assemble
from repro.isa.opcodes import Opcode


class TestBasic:
    def test_simple_program(self):
        p = assemble("add x1, x2, x3\nhalt\n")
        assert len(p) == 2
        assert p[0].opcode is Opcode.ADD
        assert (p[0].rd, p[0].rs1, p[0].rs2) == (1, 2, 3)
        assert p[1].opcode is Opcode.HALT

    def test_comments_and_blank_lines(self):
        p = assemble(
            """
            # full-line comment
            add x1, x2, x3   # trailing comment
            ; semicolon comment
            sub x4, x5, x6   ; another
            """
        )
        assert len(p) == 2

    def test_immediates(self):
        p = assemble("addi x1, x0, -42\n")
        assert p[0].imm == -42

    def test_hex_immediates(self):
        p = assemble("addi x1, x0, 0xff\n")
        assert p[0].imm == 255

    def test_memory_operands(self):
        p = assemble("lw x1, 8(x2)\nsw x3, -4(x4)\n")
        assert (p[0].rs1, p[0].imm) == (2, 8)
        assert (p[1].rs1, p[1].rs2, p[1].imm) == (4, 3, -4)

    def test_fp_instructions(self):
        p = assemble("fadd f1, f2, f3\nflw f4, 0(x5)\nfsw f4, 4(x5)\n")
        assert p[0].rd == 1 and p[1].rd == 4
        assert p[2].rs2 == 4


class TestLabels:
    def test_branch_to_label(self):
        p = assemble(
            """
            loop: addi x1, x1, 1
                  blt x1, x2, loop
                  halt
            """
        )
        assert p[1].imm == -1  # branch at word 1 targets word 0

    def test_forward_reference(self):
        p = assemble(
            """
            beq x0, x0, done
            addi x1, x1, 1
            done: halt
            """
        )
        assert p[0].imm == 2

    def test_jal_to_label(self):
        p = assemble("j end\nnop\nend: halt\n")
        assert p[0].opcode is Opcode.JAL and p[0].imm == 2

    def test_label_on_own_line(self):
        p = assemble("start:\n  addi x1, x0, 1\n  j start\n")
        assert p[1].imm == -1

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError, match="duplicate"):
            assemble("a: nop\na: nop\n")

    def test_entry_label(self):
        p = assemble("nop\nmain: halt\n")
        assert p.entry() == 1
        assert assemble("nop\n").entry() == 0


class TestDataSection:
    def test_words_and_labels(self):
        p = assemble(
            """
            .data
            vec: .word 1, 2, 3
            tail: .word -1
            .text
            la x1, vec
            lw x2, tail(x0)
            halt
            """
        )
        assert p.data_labels["vec"] == 0
        assert p.data_labels["tail"] == 12
        assert struct.unpack("<3i", bytes(p.data[:12])) == (1, 2, 3)
        assert struct.unpack("<i", bytes(p.data[12:16])) == (-1,)
        assert p[0].imm == 0  # la resolves to the data address
        assert p[1].imm == 12

    def test_float_directive(self):
        p = assemble(".data\nc: .float 0.5, 2.0\n.text\nhalt\n")
        assert struct.unpack("<2f", bytes(p.data)) == (0.5, 2.0)

    def test_space_and_align(self):
        p = assemble(".data\n.space 3\n.align 4\nv: .word 9\n.text\nhalt\n")
        assert p.data_labels["v"] == 4

    def test_word_outside_data_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".word 1\n")


class TestPseudoInstructions:
    def test_nop_mv(self):
        p = assemble("nop\nmv x1, x2\n")
        assert p[0].opcode is Opcode.ADDI and p[0].rd == 0
        assert p[1].opcode is Opcode.ADDI and (p[1].rd, p[1].rs1) == (1, 2)

    def test_li_small(self):
        p = assemble("li x1, 100\n")
        assert len(p) == 1
        assert p[0].opcode is Opcode.ADDI and p[0].imm == 100

    def test_li_large_expands_to_lui_ori(self):
        value = 0x12345678 & 0x3FFFFFFF
        p = assemble(f"li x1, {value}\n")
        assert len(p) == 2
        assert p[0].opcode is Opcode.LUI
        assert p[1].opcode is Opcode.ORI
        assert ((p[0].imm & 0x7FFF) << 15) | (p[1].imm & 0x7FFF) == value

    def test_li_large_keeps_labels_aligned(self):
        p = assemble(
            """
            li x1, 1000000
            target: halt
            """
        )
        assert p.labels["target"] == 2

    def test_li_out_of_range(self):
        with pytest.raises(AssemblerError):
            assemble(f"li x1, {1 << 31}\n")

    def test_swapped_branches(self):
        p = assemble("bgt x1, x2, 0\nble x1, x2, 0\n")
        assert p[0].opcode is Opcode.BLT and (p[0].rs1, p[0].rs2) == (2, 1)
        assert p[1].opcode is Opcode.BGE and (p[1].rs1, p[1].rs2) == (2, 1)

    def test_call_ret(self):
        p = assemble("call f\nhalt\nf: ret\n")
        assert p[0].opcode is Opcode.JAL and p[0].rd == 1
        assert p[2].opcode is Opcode.JALR and p[2].rs1 == 1

    def test_not_neg(self):
        p = assemble("not x1, x2\nneg x3, x4\n")
        assert p[0].opcode is Opcode.NOR
        assert p[1].opcode is Opcode.SUB and p[1].rs1 == 0


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError, match="unknown mnemonic"):
            assemble("frobnicate x1\n")

    def test_wrong_arity(self):
        with pytest.raises(AssemblerError, match="operand"):
            assemble("add x1, x2\n")

    def test_wrong_register_class(self):
        with pytest.raises(AssemblerError, match="expected"):
            assemble("add x1, f2, x3\n")

    def test_bad_register(self):
        with pytest.raises(AssemblerError):
            assemble("add x1, x2, x99\n")

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblerError, match="line 3"):
            assemble("nop\nnop\nbogus x1\n")

    def test_aliases(self):
        p = assemble("add x1, zero, ra\nmv sp, x1\n")
        assert (p[0].rs1, p[0].rs2) == (0, 1)
        assert p[1].rd == 2


class TestBinaryRoundTrip:
    def test_assemble_encode_decode(self):
        from repro.isa.encoding import decode

        p = assemble(
            """
            main: addi x1, x0, 10
            loop: addi x1, x1, -1
                  bne x1, x0, loop
                  mul x2, x1, x1
                  fadd f1, f2, f3
                  halt
            """
        )
        words = p.to_binary()
        assert [decode(w) for w in words] == p.instructions

    def test_fu_histogram(self):
        from repro.isa.futypes import FUType

        p = assemble("add x1, x2, x3\nmul x4, x5, x6\nlw x7, 0(x8)\nhalt\n")
        hist = p.fu_type_histogram()
        assert hist[FUType.INT_ALU] == 2  # add + halt
        assert hist[FUType.INT_MDU] == 1
        assert hist[FUType.LSU] == 1
