"""Tests for the Instruction value type."""

import pytest

from repro.isa.futypes import FUType
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode


def test_basic_properties():
    i = Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3)
    assert i.fu_type is FUType.INT_ALU
    assert i.latency == 1
    assert i.mnemonic == "add"
    assert not i.is_branch and not i.is_control


def test_register_range_checked():
    with pytest.raises(ValueError):
        Instruction(Opcode.ADD, rd=32)
    with pytest.raises(ValueError):
        Instruction(Opcode.ADD, rs1=-1)


def test_destination_and_sources():
    i = Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3)
    assert i.destination() == ("int", 1)
    assert i.sources() == (("int", 2), ("int", 3))


def test_zero_register_creates_no_deps():
    i = Instruction(Opcode.ADD, rd=0, rs1=0, rs2=3)
    assert i.destination() is None
    assert i.sources() == (("int", 3),)


def test_fp_instruction_register_classes():
    i = Instruction(Opcode.FADD, rd=1, rs1=2, rs2=3)
    assert i.destination() == ("fp", 1)
    assert i.sources() == (("fp", 2), ("fp", 3))


def test_fp_reg_zero_is_a_real_register():
    """f0 is NOT hard-wired: fp deps on index 0 are real."""
    i = Instruction(Opcode.FADD, rd=0, rs1=0, rs2=0)
    assert i.destination() == ("fp", 0)
    assert i.sources() == (("fp", 0), ("fp", 0))


def test_mixed_class_instruction():
    i = Instruction(Opcode.FCVTSW, rd=1, rs1=2)  # fp <- int
    assert i.destination() == ("fp", 1)
    assert i.sources() == (("int", 2),)


def test_store_sources():
    i = Instruction(Opcode.FSW, rs1=2, rs2=3, imm=4)
    assert i.destination() is None
    assert i.sources() == (("int", 2), ("fp", 3))


def test_control_classification():
    assert Instruction(Opcode.BEQ).is_control
    assert Instruction(Opcode.JAL).is_control
    assert Instruction(Opcode.HALT).is_control and Instruction(Opcode.HALT).is_halt
    assert not Instruction(Opcode.LW).is_control


def test_frozen():
    i = Instruction(Opcode.ADD)
    with pytest.raises(AttributeError):
        i.rd = 5  # type: ignore[misc]


def test_str_roundtrips_through_disassembler():
    i = Instruction(Opcode.ADDI, rd=5, rs1=6, imm=-3)
    assert str(i) == "addi x5, x6, -3"
