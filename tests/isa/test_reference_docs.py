"""Tests for the generated ISA reference (docs can't drift from code)."""

import pathlib

from repro.isa.opcodes import ALL_SPECS
from repro.isa.reference import format_reference, isa_reference


class TestIsaReference:
    def test_every_opcode_listed(self):
        text = isa_reference()
        for spec in ALL_SPECS:
            assert f"{spec.mnemonic:10s}" in text

    def test_grouped_by_unit_type(self):
        text = isa_reference()
        for name in ("INT_ALU", "INT_MDU", "LSU", "FP_ALU", "FP_MDU"):
            assert f"--- {name}" in text

    def test_latencies_shown(self):
        assert " 16 " in isa_reference()  # fdiv
        assert " 20 " in isa_reference()  # fsqrt


class TestFormatReference:
    def test_all_formats(self):
        text = format_reference()
        for fmt in ("R", "I", "S", "B", "J", "N"):
            assert text.count(f"\n{fmt} ") or text.startswith(f"{fmt} ") or f"\n{fmt:7s}" in text

    def test_imm_ranges(self):
        text = format_reference()
        assert "[-16384, 16383]" in text
        assert "[-524288, 524287]" in text


class TestDocsEmbedding:
    def test_docs_file_contains_current_reference(self):
        """docs/isa.md embeds the generated tables; regenerating must be a
        no-op or the docs have drifted from the implementation."""
        doc = pathlib.Path(__file__).parents[2] / "docs" / "isa.md"
        text = doc.read_text()
        assert isa_reference() in text
        assert format_reference() in text
