"""Tests for the functional-unit type definitions (Tables 1 and 2)."""

from repro.isa.futypes import FU_TYPES, NUM_FU_TYPES, FUType


def test_five_types():
    assert NUM_FU_TYPES == 5
    assert len(set(FU_TYPES)) == 5


def test_table2_encodings():
    assert FUType.INT_ALU.encoding == 0b001
    assert FUType.INT_MDU.encoding == 0b010
    assert FUType.LSU.encoding == 0b011
    assert FUType.FP_ALU.encoding == 0b100
    assert FUType.FP_MDU.encoding == 0b101


def test_encodings_are_unique_3bit():
    encs = [t.encoding for t in FU_TYPES]
    assert len(set(encs)) == 5
    assert all(0 < e < 8 for e in encs)
    assert 0b111 not in encs  # reserved for the SPAN continuation marker
    assert 0b000 not in encs  # reserved for EMPTY


def test_slot_costs():
    assert FUType.INT_ALU.slot_cost == 1
    assert FUType.LSU.slot_cost == 1
    assert FUType.INT_MDU.slot_cost == 2
    assert FUType.FP_ALU.slot_cost == 3
    assert FUType.FP_MDU.slot_cost == 3


def test_bit_indices_match_fig2_order():
    assert [t.bit_index for t in FU_TYPES] == [0, 1, 2, 3, 4]


def test_short_names_unique():
    assert len({t.short_name for t in FU_TYPES}) == 5
