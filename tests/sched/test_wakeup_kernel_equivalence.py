"""Equivalence proofs for the bit-packed wake-up/select scheduler kernel.

The packed kernel (:meth:`WakeupArray.requests_mask`) must be
bit-identical to the original per-row loop, kept alive as
:meth:`WakeupArray.requests_reference`; and the grant loop inlined in the
register update unit must match :func:`select_grants`.  These tests drive
both pairs across randomized window states, availability buses and whole
reconfiguring simulations.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baselines import steering_processor
from repro.core.params import ProcessorParams
from repro.isa.futypes import FU_TYPES, NUM_FU_TYPES
from repro.sched.select import select_grants
from repro.sched.wakeup import WakeupArray
from repro.workloads.kernels import checksum


def _assert_equivalent(arr, resource_bits, result_bits):
    mask = arr.requests_mask(resource_bits, result_bits)
    reference = arr.requests_reference(resource_bits, result_bits)
    assert arr.requests(resource_bits, result_bits) == reference
    assert mask == sum(1 << i for i in reference)


# ------------------------------------------------------- randomized states
@pytest.mark.parametrize("seed", range(8))
def test_random_operation_sequences_match_reference(seed):
    """Evolve an array through random insert/remove/schedule/reschedule
    operations; after every step the kernel must agree with the reference
    on every availability-bus combination probed."""
    rng = random.Random(seed)
    n = rng.choice([3, 5, 7, 9])
    arr = WakeupArray(n_entries=n)
    occupied: set[int] = set()
    scheduled: set[int] = set()
    for _ in range(300):
        ops = ["probe"]
        if len(occupied) < n:
            ops.append("insert")
        if occupied:
            ops += ["remove", "reschedule", "column"]
        if occupied - scheduled:
            ops.append("schedule")
        op = rng.choice(ops)
        if op == "insert":
            deps = {
                d for d in occupied if rng.random() < 0.4
            }
            row = arr.insert(rng.choice(FU_TYPES), deps)
            occupied.add(row)
        elif op == "remove":
            row = rng.choice(sorted(occupied))
            arr.remove(row)
            occupied.discard(row)
            scheduled.discard(row)
        elif op == "schedule":
            row = rng.choice(sorted(occupied - scheduled))
            arr.mark_scheduled(row)
            scheduled.add(row)
        elif op == "reschedule":
            row = rng.choice(sorted(occupied))
            arr.reschedule(row)
            scheduled.discard(row)
        elif op == "column":
            arr.clear_column(rng.randrange(n))
        resource_bits = rng.randrange(1 << NUM_FU_TYPES)
        result_bits = rng.randrange(1 << n)
        _assert_equivalent(arr, resource_bits, result_bits)
    # exhaustive resource-bus sweep on the final state
    result_bits = rng.randrange(1 << n)
    for resource_bits in range(1 << NUM_FU_TYPES):
        _assert_equivalent(arr, resource_bits, result_bits)


@given(
    rows=st.lists(
        st.tuples(
            st.integers(0, NUM_FU_TYPES - 1),  # fu type
            st.integers(0, 127),               # dep mask (over earlier rows)
            st.booleans(),                     # scheduled
        ),
        max_size=7,
    ),
    resource_bits=st.integers(0, (1 << NUM_FU_TYPES) - 1),
    result_bits=st.integers(0, 127),
)
@settings(max_examples=200)
def test_kernel_equals_reference_property(rows, resource_bits, result_bits):
    arr = WakeupArray(n_entries=7)
    for i, (type_index, dep_mask, sched) in enumerate(rows):
        deps = {d for d in range(i) if (dep_mask >> d) & 1}
        row = arr.insert(FU_TYPES[type_index], deps)
        if sched:
            arr.mark_scheduled(row)
    _assert_equivalent(arr, resource_bits, result_bits)


def test_out_of_range_resource_bus_rejected():
    arr = WakeupArray(n_entries=7)
    from repro.errors import SchedulerError

    with pytest.raises(SchedulerError):
        arr.requests_mask(1 << NUM_FU_TYPES, 0)
    with pytest.raises(SchedulerError):
        arr.requests_mask(-1, 0)


# -------------------------------------------------- grant-loop equivalence
def _inline_grants(requests, idle_units):
    """Mirror of the RUU's inlined grant loop: walk the window oldest
    first (ascending seq — the order of ``RegisterUpdateUnit._order``) and
    grant any requesting row whose unit type still has an idle unit."""
    remaining = dict(idle_units)
    granted = []
    for row, _seq, fu_type in sorted(requests, key=lambda r: r[1]):
        if remaining.get(fu_type, 0) > 0:
            remaining[fu_type] -= 1
            granted.append(row)
    return granted


@pytest.mark.parametrize("seed", range(12))
def test_inline_grant_loop_matches_select_grants(seed):
    rng = random.Random(1000 + seed)
    n = 7
    rows = rng.sample(range(n), rng.randint(0, n))
    seqs = rng.sample(range(100), len(rows))
    requests = [
        (row, seq, rng.choice(FU_TYPES)) for row, seq in zip(rows, seqs)
    ]
    idle = {t: rng.randint(0, 3) for t in FU_TYPES}
    assert select_grants(requests, idle) == _inline_grants(requests, idle)


# ------------------------------------------------- whole-simulation check
def test_crosschecked_simulation_is_bit_identical():
    """Run a steering simulation with the kernel cross-check armed: every
    per-cycle request mask is compared against the reference loop inside
    requests_mask (divergence raises), and the final result must equal an
    unchecked run exactly."""
    program = checksum(iterations=30).program
    params = ProcessorParams(reconfig_latency=8)
    plain = steering_processor(program, params).run(max_cycles=60_000)
    assert not WakeupArray.crosscheck
    WakeupArray.crosscheck = True
    try:
        checked = steering_processor(program, params).run(max_cycles=60_000)
    finally:
        WakeupArray.crosscheck = False
    assert checked.to_dict() == plain.to_dict()
