"""Tests for the architectural register file."""

import pytest

from repro.errors import SchedulerError
from repro.sched.regfile import RegisterFile


class TestRegisterFile:
    def test_initial_state_zero(self):
        rf = RegisterFile()
        assert rf.x(5) == 0
        assert rf.f(5) == 0.0

    def test_int_write_read(self):
        rf = RegisterFile()
        rf.write("int", 3, 42)
        assert rf.read("int", 3) == 42
        assert rf.x(3) == 42

    def test_x0_hardwired(self):
        rf = RegisterFile()
        rf.write("int", 0, 99)
        assert rf.x(0) == 0

    def test_int_values_wrap_to_u32(self):
        rf = RegisterFile()
        rf.write("int", 1, -1)
        assert rf.x(1) == 0xFFFFFFFF

    def test_fp_write_read(self):
        rf = RegisterFile()
        rf.write("fp", 0, 2.5)  # f0 is a real register
        assert rf.f(0) == 2.5

    def test_unknown_class_rejected(self):
        rf = RegisterFile()
        with pytest.raises(SchedulerError):
            rf.read("vec", 0)
        with pytest.raises(SchedulerError):
            rf.write("vec", 0, 1)

    def test_snapshot_is_copy(self):
        rf = RegisterFile()
        snap = rf.snapshot()
        rf.write("int", 1, 7)
        assert snap["int"][1] == 0
        assert rf.snapshot()["int"][1] == 7
