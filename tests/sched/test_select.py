"""Tests for grant arbitration."""

from hypothesis import given
from hypothesis import strategies as st

from repro.isa.futypes import FU_TYPES, FUType
from repro.sched.select import select_grants


class TestSelectGrants:
    def test_grants_limited_by_idle_units(self):
        requests = [(0, 10, FUType.INT_ALU), (1, 11, FUType.INT_ALU), (2, 12, FUType.INT_ALU)]
        granted = select_grants(requests, {FUType.INT_ALU: 2})
        assert len(granted) == 2

    def test_oldest_first(self):
        requests = [(0, 30, FUType.LSU), (1, 10, FUType.LSU), (2, 20, FUType.LSU)]
        granted = select_grants(requests, {FUType.LSU: 1})
        assert granted == [1]  # seq 10 is oldest

    def test_types_arbitrated_independently(self):
        requests = [
            (0, 5, FUType.INT_ALU),
            (1, 1, FUType.FP_MDU),
            (2, 3, FUType.INT_ALU),
        ]
        granted = select_grants(requests, {FUType.INT_ALU: 1, FUType.FP_MDU: 1})
        assert set(granted) == {1, 2}

    def test_no_units_no_grants(self):
        requests = [(0, 1, FUType.FP_ALU)]
        assert select_grants(requests, {}) == []
        assert select_grants(requests, {FUType.FP_ALU: 0}) == []

    def test_empty_requests(self):
        assert select_grants([], {t: 1 for t in FU_TYPES}) == []

    @given(
        st.lists(
            st.tuples(st.integers(0, 6), st.integers(0, 100), st.sampled_from(list(FU_TYPES))),
            max_size=7,
            unique_by=lambda r: r[0],
        ),
        st.dictionaries(st.sampled_from(list(FU_TYPES)), st.integers(0, 3)),
    )
    def test_never_overcommits(self, requests, idle):
        granted = select_grants(requests, idle)
        by_type = {}
        lookup = {row: t for row, _, t in requests}
        for row in granted:
            t = lookup[row]
            by_type[t] = by_type.get(t, 0) + 1
        for t, n in by_type.items():
            assert n <= idle.get(t, 0)
