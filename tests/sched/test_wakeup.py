"""Tests for the wake-up array (Figs. 5 and 6), including the paper's
seven-instruction worked example."""

import pytest

from repro.errors import SchedulerError
from repro.isa.futypes import FUType
from repro.sched.wakeup import WakeupArray


def _bits(*types):
    v = 0
    for t in types:
        v |= 1 << t.bit_index
    return v


ALL_RESOURCES = _bits(*FUType)


class TestInsertRemove:
    def test_insert_allocates_rows_in_order(self):
        arr = WakeupArray(4)
        assert arr.insert(FUType.INT_ALU, set()) == 0
        assert arr.insert(FUType.LSU, set()) == 1
        assert len(arr) == 2
        assert arr.free_rows() == [2, 3]

    def test_full_array_rejects(self):
        arr = WakeupArray(1)
        arr.insert(FUType.INT_ALU, set())
        assert arr.full
        with pytest.raises(SchedulerError):
            arr.insert(FUType.LSU, set())

    def test_dependency_on_invalid_row_rejected(self):
        arr = WakeupArray(4)
        with pytest.raises(SchedulerError):
            arr.insert(FUType.INT_ALU, {2})  # row 2 unoccupied

    def test_remove_frees_and_clears_column(self):
        arr = WakeupArray(4)
        r0 = arr.insert(FUType.INT_ALU, set())
        r1 = arr.insert(FUType.INT_ALU, {r0})
        arr.remove(r0)
        # consumer no longer waits on the retired producer
        assert arr.requests(ALL_RESOURCES, 0) == [r1]

    def test_remove_unoccupied_rejected(self):
        with pytest.raises(SchedulerError):
            WakeupArray(4).remove(0)


class TestRequestLogic:
    def test_requests_require_resource(self):
        arr = WakeupArray(4)
        arr.insert(FUType.FP_MDU, set())
        assert arr.requests(0, 0) == []
        assert arr.requests(_bits(FUType.FP_MDU), 0) == [0]
        assert arr.requests(_bits(FUType.FP_ALU), 0) == []

    def test_requests_require_results(self):
        arr = WakeupArray(4)
        r0 = arr.insert(FUType.INT_ALU, set())
        r1 = arr.insert(FUType.INT_MDU, {r0})
        assert arr.requests(ALL_RESOURCES, 0) == [r0]
        assert arr.requests(ALL_RESOURCES, 1 << r0) == [r0, r1]

    def test_scheduled_bit_suppresses(self):
        arr = WakeupArray(4)
        r0 = arr.insert(FUType.INT_ALU, set())
        arr.mark_scheduled(r0)
        assert arr.requests(ALL_RESOURCES, 0) == []

    def test_reschedule_reactivates(self):
        arr = WakeupArray(4)
        r0 = arr.insert(FUType.INT_ALU, set())
        arr.mark_scheduled(r0)
        arr.reschedule(r0)
        assert arr.requests(ALL_RESOURCES, 0) == [r0]

    def test_double_schedule_rejected(self):
        arr = WakeupArray(4)
        arr.insert(FUType.INT_ALU, set())
        arr.mark_scheduled(0)
        with pytest.raises(SchedulerError):
            arr.mark_scheduled(0)

    def test_bus_width_checked(self):
        arr = WakeupArray(4)
        with pytest.raises(SchedulerError):
            arr.requests(1 << 5, 0)


class TestPaperExample:
    """The Figs. 4-5 worked example: Shift, Sub, Add, Mul, Load, FPMul,
    FPAdd with the paper's dependency graph."""

    def _build(self):
        arr = WakeupArray(7)
        shift = arr.insert(FUType.INT_ALU, set())            # E1 Shift
        sub = arr.insert(FUType.INT_ALU, set())              # E2 Sub
        add = arr.insert(FUType.INT_ALU, {shift, sub})       # E3 Add
        mul = arr.insert(FUType.INT_MDU, {sub})              # E4 Mul <- Sub
        load = arr.insert(FUType.LSU, set())                 # E5 Load
        fpmul = arr.insert(FUType.FP_MDU, {load})            # E6 FPMul <- Load
        fpadd = arr.insert(FUType.FP_ALU, {fpmul})           # E7 FPAdd <- FPMul
        return arr, (shift, sub, add, mul, load, fpmul, fpadd)

    def test_load_row_matches_figure5(self):
        arr, rows = self._build()
        load = arr.rows[rows[4]]
        assert load.resource_bits == 1 << FUType.LSU.bit_index
        assert load.dep_bits == 0  # depends on no other entry

    def test_mul_row_matches_figure5(self):
        arr, rows = self._build()
        mul = arr.rows[rows[3]]
        assert mul.resource_bits == 1 << FUType.INT_MDU.bit_index
        assert mul.dep_bits == 1 << rows[1]  # needs the Sub result

    def test_initial_requests_are_the_independent_entries(self):
        arr, (shift, sub, add, mul, load, fpmul, fpadd) = self._build()
        assert arr.requests(ALL_RESOURCES, 0) == [shift, sub, load]

    def test_dataflow_wavefronts(self):
        arr, (shift, sub, add, mul, load, fpmul, fpadd) = self._build()
        # wave 1 completes: shift, sub, load
        avail = (1 << shift) | (1 << sub) | (1 << load)
        for r in (shift, sub, load):
            arr.mark_scheduled(r)
        assert arr.requests(ALL_RESOURCES, avail) == [add, mul, fpmul]
        # wave 2 completes: fpmul -> fpadd wakes
        for r in (add, mul, fpmul):
            arr.mark_scheduled(r)
        avail |= (1 << add) | (1 << mul) | (1 << fpmul)
        assert arr.requests(ALL_RESOURCES, avail) == [fpadd]

    def test_render_shows_matrix(self):
        arr, rows = self._build()
        text = arr.render({rows[0]: "(Shift) E1", rows[4]: "(Load) E5"})
        assert "IALU" in text and "FPMDU" in text
        assert "(Shift) E1" in text
        assert "(Load) E5" in text
        assert "E7" in text  # entry columns


class TestValidation:
    def test_positive_size_required(self):
        with pytest.raises(SchedulerError):
            WakeupArray(0)

    def test_reschedule_unoccupied_rejected(self):
        with pytest.raises(SchedulerError):
            WakeupArray(2).reschedule(0)
