"""Property tests: the wake-up array under random operation sequences."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.futypes import FU_TYPES
from repro.sched.wakeup import WakeupArray

_ALL_RESOURCES = (1 << len(FU_TYPES)) - 1

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.sampled_from(list(FU_TYPES)), st.booleans()),
        st.tuples(st.just("remove"), st.integers(0, 6)),
        st.tuples(st.just("schedule"), st.integers(0, 6)),
        st.tuples(st.just("reschedule"), st.integers(0, 6)),
    ),
    max_size=50,
)


def _apply(arr: WakeupArray, op) -> None:
    kind = op[0]
    if kind == "insert" and not arr.full:
        # optionally depend on some currently occupied row
        deps = set()
        if op[2]:
            occupied = [i for i, r in enumerate(arr.rows) if r is not None]
            if occupied:
                deps = {occupied[0]}
        arr.insert(op[1], deps)
    elif kind == "remove" and arr.rows[op[1]] is not None:
        arr.remove(op[1])
    elif kind == "schedule" and arr.rows[op[1]] is not None:
        if not arr.rows[op[1]].scheduled:
            arr.mark_scheduled(op[1])
    elif kind == "reschedule" and arr.rows[op[1]] is not None:
        arr.reschedule(op[1])


@settings(max_examples=150, deadline=None)
@given(ops=_OPS)
def test_invariants_under_random_operations(ops):
    arr = WakeupArray(7)
    for op in ops:
        _apply(arr, op)
        # dep bits only reference occupied rows (columns cleared on remove)
        for row in arr.rows:
            if row is None:
                continue
            for j in range(arr.n_entries):
                if (row.dep_bits >> j) & 1:
                    assert arr.rows[j] is not None
        # requests never include scheduled or empty rows
        requests = arr.requests(_ALL_RESOURCES, (1 << arr.n_entries) - 1)
        for r in requests:
            assert arr.rows[r] is not None
            assert not arr.rows[r].scheduled


@settings(max_examples=100, deadline=None)
@given(ops=_OPS)
def test_full_availability_wakes_all_unscheduled(ops):
    """With every resource and result available, the request set is
    exactly the occupied, unscheduled rows."""
    arr = WakeupArray(7)
    for op in ops:
        _apply(arr, op)
    expected = [
        i for i, r in enumerate(arr.rows) if r is not None and not r.scheduled
    ]
    assert arr.requests(_ALL_RESOURCES, (1 << arr.n_entries) - 1) == expected


@settings(max_examples=100, deadline=None)
@given(ops=_OPS)
def test_no_availability_wakes_only_independent_rows(ops):
    """With no results available, only rows without dependences (and with
    their resource available) may request."""
    arr = WakeupArray(7)
    for op in ops:
        _apply(arr, op)
    for r in arr.requests(_ALL_RESOURCES, 0):
        assert arr.rows[r].dep_bits == 0
