"""Tests for the [9] pipelined select-free scheduling extension."""

import pytest

from repro.core.baselines import steering_processor
from repro.core.params import ProcessorParams
from repro.core.reference import run_reference
from repro.fabric.fabric import Fabric
from repro.frontend.fetch import FetchedInstruction
from repro.frontend.memory import DataMemory
from repro.isa.assembler import assemble
from repro.sched.entry import EntryState
from repro.sched.ruu import RegisterUpdateUnit
from repro.workloads.kernels import all_kernels, saxpy

_PIPE = ProcessorParams(reconfig_latency=4, pipelined_scheduling=True)


def _ruu():
    fabric = Fabric(reconfig_latency=1)
    return RegisterUpdateUnit(
        fabric, DataMemory(size=1024), pipelined_scheduling=True
    )


def _dispatch(ruu, src):
    entries = []
    for pc, instr in enumerate(assemble(src).instructions):
        entries.append(
            ruu.dispatch(FetchedInstruction(pc=pc, instruction=instr, predicted_next=pc + 1))
        )
    return entries


class TestCollisionReplay:
    def test_losers_replay_one_cycle_later(self):
        ruu = _ruu()
        e = _dispatch(ruu, "fmul f1, f2, f3\nfmul f4, f5, f6\n")
        report = ruu.issue_and_execute()
        # one FP-MDU: the older wins, the younger is a select-free loser
        assert len(report.granted) == 1
        assert ruu.scheduling_replays == 1
        assert e[1].state is EntryState.WAITING
        # the loser's scheduled bit is set (it believed it was selected)
        row1 = ruu._row_of_seq(e[1].seq)
        assert ruu.wakeup.rows[row1].scheduled
        # next cycle the reschedule input clears it; once the unit frees
        # (fmul latency 5), the loser issues
        for _ in range(5):
            ruu.fabric.tick()
            ruu.tick()
        report = ruu.issue_and_execute()
        assert len(report.granted) == 1
        assert e[1].state is EntryState.ISSUED

    def test_no_replays_without_contention(self):
        ruu = _ruu()
        _dispatch(ruu, "add x1, x2, x3\nlw x4, 0(x0)\n")
        ruu.issue_and_execute()
        assert ruu.scheduling_replays == 0

    def test_stale_availability_window(self):
        """The wake-up bus lags one cycle: the first call uses live bits,
        later calls see the previous cycle's availability."""
        ruu = _ruu()
        e = _dispatch(ruu, "fdiv f1, f2, f3\nfadd f4, f5, f6\n")
        ruu.issue_and_execute()  # both types available, both issue
        assert e[0].state is EntryState.ISSUED


class TestArchitecturalEquivalence:
    @pytest.mark.parametrize(
        "kernel", all_kernels(), ids=lambda k: k.name
    )
    def test_pipelined_mode_matches_golden_model(self, kernel):
        proc = steering_processor(kernel.program, _PIPE)
        result = proc.run(max_cycles=300_000)
        assert result.halted
        kernel.verify(proc.dmem)
        assert result.retired == run_reference(kernel.program).executed

    def test_replays_counted_in_stats(self):
        kernel = saxpy(n=24)
        result = steering_processor(kernel.program, _PIPE).run()
        assert result.scheduling_replays > 0

    def test_atomic_mode_never_replays(self):
        kernel = saxpy(n=24)
        result = steering_processor(
            kernel.program, ProcessorParams(reconfig_latency=4)
        ).run()
        assert result.scheduling_replays == 0
