"""Lane-bank equivalence: numpy kernel vs pure-Python fallback.

The vector engine's packed banks come in two builds: the numpy kernel
(:class:`LaneWakeupBank` / :class:`LaneCountdownBank`) and the stdlib
fallback (:class:`PyLaneWakeupBank` / :class:`PyLaneCountdownBank`) that
keeps tier-1 numpy-free.  Both must be interchangeable bit for bit: same
request masks under random operation sequences, same expiry sets from the
batched timers, and identical end-to-end simulation results when the
vector engine is forced onto the fallback.
"""

import random

import pytest

from repro.core.params import ProcessorParams
from repro.errors import SchedulerError
from repro.evaluation.batch import SimJob, execute_job
from repro.isa.futypes import NUM_FU_TYPES
from repro.sched.wakeup_vec import (
    HAVE_NUMPY,
    MAX_KERNEL_ROWS,
    PyLaneCountdownBank,
    PyLaneWakeupBank,
    make_countdown_bank,
    make_lane_bank,
)
from repro.workloads.kernels import checksum

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")


# ------------------------------------------------------- wake-up bank pair
@needs_numpy
@pytest.mark.parametrize("seed", range(6))
def test_random_operations_match_fallback(seed):
    """Random set_row/clear_row/avail sequences: identical request masks."""
    from repro.sched.wakeup_vec import LaneWakeupBank

    rng = random.Random(seed)
    n_lanes, n_rows = rng.choice([(1, 4), (3, 8), (8, 16), (5, MAX_KERNEL_ROWS)])
    fast = LaneWakeupBank(n_lanes, n_rows)
    slow = PyLaneWakeupBank(n_lanes, n_rows)
    width = NUM_FU_TYPES + n_rows
    for _ in range(400):
        op = rng.random()
        lane = rng.randrange(n_lanes)
        if op < 0.45:
            row = rng.randrange(n_rows)
            field = rng.getrandbits(width)
            fast.set_row(lane, row, field)
            slow.set_row(lane, row, field)
        elif op < 0.65:
            row = rng.randrange(n_rows)
            fast.clear_row(lane, row)
            slow.clear_row(lane, row)
        else:
            avail = rng.getrandbits(width)
            fast.set_avail(lane, avail)
            slow.set_avail(lane, avail)
        assert fast.requests() == slow.requests()


@needs_numpy
def test_set_avail_many_matches_fallback():
    from repro.sched.wakeup_vec import LaneWakeupBank

    fast = LaneWakeupBank(4, 6)
    slow = PyLaneWakeupBank(4, 6)
    for bank in (fast, slow):
        bank.set_row(1, 2, 0b100)
        bank.set_avail_many([0, 2, 3], [7, 1, 0b11111])
    assert fast.requests() == slow.requests()


def test_free_rows_request_in_both_masks():
    """The documented contract: zero need fields report as requesting."""
    bank = PyLaneWakeupBank(2, 3)
    req, alls = bank.requests()
    assert req == [0b111, 0b111] and alls == [0b111, 0b111]


# ----------------------------------------------------- countdown bank pair
@needs_numpy
@pytest.mark.parametrize("seed", range(4))
def test_countdown_expiries_match_fallback(seed):
    from repro.sched.wakeup_vec import LaneCountdownBank

    rng = random.Random(seed)
    n_lanes, n_rows = 6, 10
    fast = LaneCountdownBank(n_lanes, n_rows)
    slow = PyLaneCountdownBank(n_lanes, n_rows)
    armed: set[tuple[int, int]] = set()
    for _ in range(200):
        op = rng.random()
        if op < 0.4 and len(armed) < n_lanes * n_rows:
            lane, row = rng.randrange(n_lanes), rng.randrange(n_rows)
            if (lane, row) not in armed:
                latency = rng.randint(1, 6)
                fast.start(lane, row, latency)
                slow.start(lane, row, latency)
                armed.add((lane, row))
        elif op < 0.5 and armed:
            lane, row = rng.choice(sorted(armed))
            fast.cancel(lane, row)
            slow.cancel(lane, row)
            armed.discard((lane, row))
        elif op < 0.55:
            lane = rng.randrange(n_lanes)
            fast.clear_lane(lane)
            slow.clear_lane(lane)
            armed = {(ln, r) for ln, r in armed if ln != lane}
        else:
            a, b = fast.advance(), slow.advance()
            # expiry *sets* must agree; emission order is backend-specific
            # and the driver's per-completion updates commute.
            assert set(a) == set(b) and len(a) == len(b)
            armed -= set(a)


# ------------------------------------------------------------- factories
def test_factory_falls_back_on_wide_windows():
    bank = make_lane_bank(2, MAX_KERNEL_ROWS + 1)
    assert isinstance(bank, PyLaneWakeupBank)


@needs_numpy
def test_factory_prefers_numpy_kernel():
    from repro.sched.wakeup_vec import LaneCountdownBank, LaneWakeupBank

    assert isinstance(make_lane_bank(2, MAX_KERNEL_ROWS), LaneWakeupBank)
    assert isinstance(make_countdown_bank(2, 4), LaneCountdownBank)


@pytest.mark.parametrize("cls", [PyLaneWakeupBank, PyLaneCountdownBank])
def test_rejects_degenerate_geometry(cls):
    with pytest.raises(SchedulerError, match="positive dimensions"):
        cls(0, 4)


# --------------------------------------------- end-to-end on the fallback
def test_vector_engine_on_pure_python_banks(monkeypatch):
    """Force the fallback banks under the whole lane engine: results must
    stay bit-identical to the scalar reference (tier-1 stays numpy-free)."""
    from repro.evaluation import vector

    monkeypatch.setattr(vector, "make_lane_bank", PyLaneWakeupBank)
    monkeypatch.setattr(vector, "make_countdown_bank", PyLaneCountdownBank)
    program = checksum(iterations=10).program
    jobs = [
        SimJob(
            "steering", program,
            ProcessorParams(window_size=10, reconfig_latency=4 + i),
        )
        for i in range(3)
    ] + [SimJob("ffu-only", program, ProcessorParams(window_size=10))]
    vectored = vector.run_vector_batch(jobs)
    scalar = [execute_job(job) for job in jobs]
    for v, s in zip(vectored, scalar):
        assert v.to_dict() == s.to_dict()


def test_wide_window_batch_uses_fallback_and_matches():
    """A window wider than the packed kernel routes to the Py bank."""
    program = checksum(iterations=8).program
    params = ProcessorParams(window_size=MAX_KERNEL_ROWS + 3, reconfig_latency=6)
    jobs = [SimJob("steering", program, params), SimJob("ffu-only", program, params)]
    from repro.evaluation.vector import run_vector_batch

    vectored = run_vector_batch(jobs)
    scalar = [execute_job(job) for job in jobs]
    for v, s in zip(vectored, scalar):
        assert v.to_dict() == s.to_dict()
