"""Tests for the in-flight instruction record."""

from repro.frontend.fetch import FetchedInstruction
from repro.isa.futypes import FUType
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.sched.entry import EntryState, RuuEntry


def _entry(opcode=Opcode.ADD, seq=0, **instr_kwargs):
    instr = Instruction(opcode, **instr_kwargs)
    fetched = FetchedInstruction(pc=0, instruction=instr, predicted_next=1)
    return RuuEntry(seq=seq, fetched=fetched, sources=(None, None))


class TestLifecycle:
    def test_starts_waiting(self):
        e = _entry()
        assert e.state is EntryState.WAITING
        assert not e.completed

    def test_countdown_to_completion(self):
        e = _entry(Opcode.MUL)
        e.state = EntryState.ISSUED
        e.countdown = 3
        e.tick()
        e.tick()
        assert not e.completed
        e.tick()
        assert e.completed

    def test_single_cycle_completes_after_one_tick(self):
        e = _entry()
        e.state = EntryState.ISSUED
        e.countdown = 1
        e.tick()
        assert e.completed

    def test_waiting_entry_does_not_tick(self):
        e = _entry()
        e.countdown = 5
        e.tick()
        assert e.countdown == 5
        assert e.state is EntryState.WAITING


class TestClassification:
    def test_properties_delegate_to_instruction(self):
        e = _entry(Opcode.MUL, rd=1, rs1=2, rs2=3)
        assert e.fu_type is FUType.INT_MDU
        assert e.instruction.mnemonic == "mul"
        assert e.pc == 0

    def test_memory_flags(self):
        assert _entry(Opcode.LW, rd=1, rs1=2).is_load
        assert _entry(Opcode.SW, rs1=1, rs2=2).is_store
        assert not _entry(Opcode.ADD).is_load
