"""Tests for the register update unit: renaming, forwarding, memory
ordering, flushing and in-order retirement."""

import pytest

from repro.errors import SchedulerError
from repro.fabric.fabric import Fabric
from repro.frontend.fetch import FetchedInstruction
from repro.frontend.memory import DataMemory
from repro.isa.assembler import assemble
from repro.isa.futypes import FUType
from repro.sched.entry import EntryState
from repro.sched.ruu import RegisterUpdateUnit


def _ruu(window=7):
    fabric = Fabric(reconfig_latency=1)
    dmem = DataMemory(size=4096)
    return RegisterUpdateUnit(fabric, dmem, window_size=window)


def _dispatch(ruu, src, predicted=None):
    """Assemble and dispatch all instructions; returns the entries."""
    program = assemble(src)
    entries = []
    for pc, instr in enumerate(program.instructions):
        fetched = FetchedInstruction(
            pc=pc,
            instruction=instr,
            predicted_next=(predicted.get(pc, pc + 1) if predicted else pc + 1),
        )
        entries.append(ruu.dispatch(fetched))
    return entries


def _cycle(ruu, n=1):
    reports = []
    for _ in range(n):
        reports.append(ruu.issue_and_execute())
        ruu.fabric.tick()
        ruu.tick()
    return reports


class TestDispatch:
    def test_window_fills(self):
        ruu = _ruu(window=2)
        _dispatch(ruu, "add x1, x2, x3\nadd x4, x5, x6\n")
        assert ruu.full
        with pytest.raises(SchedulerError):
            _dispatch(ruu, "add x7, x8, x9\n")

    def test_renaming_creates_dependency(self):
        ruu = _ruu()
        e = _dispatch(ruu, "add x1, x2, x3\nsub x4, x1, x5\n")
        # the sub's first source must be bound to the add's seq
        assert e[1].sources[0].producer_seq == e[0].seq

    def test_x0_source_never_binds(self):
        ruu = _ruu()
        e = _dispatch(ruu, "add x0, x2, x3\nadd x4, x0, x5\n")
        assert e[1].sources[0] is None  # x0 read is constant

    def test_ready_unscheduled_feeds_config_manager(self):
        ruu = _ruu()
        _dispatch(ruu, "add x1, x2, x3\nmul x4, x5, x6\n")
        ready = ruu.ready_unscheduled()
        assert [i.mnemonic for i in ready] == ["add", "mul"]
        _cycle(ruu)
        assert ruu.ready_unscheduled() == []  # both granted


class TestIssueAndForwarding:
    def test_independent_ops_issue_together(self):
        ruu = _ruu()
        _dispatch(ruu, "add x1, x2, x3\nlw x4, 0(x0)\nfadd f1, f2, f3\n")
        report = ruu.issue_and_execute()
        assert len(report.granted) == 3

    def test_dependent_op_waits_for_producer_latency(self):
        ruu = _ruu()
        e = _dispatch(ruu, "mul x1, x2, x3\nadd x4, x1, x5\n")
        _cycle(ruu)  # mul issues (latency 4)
        assert e[0].state is EntryState.ISSUED
        assert e[1].state is EntryState.WAITING
        _cycle(ruu, 3)  # mul completes after 4 ticks total
        assert e[0].completed
        report = ruu.issue_and_execute()
        assert len(report.granted) == 1
        assert e[1].state is EntryState.ISSUED

    def test_operand_forwarded_from_producer(self):
        ruu = _ruu()
        ruu.regfile.write("int", 2, 20)
        ruu.regfile.write("int", 3, 22)
        e = _dispatch(ruu, "add x1, x2, x3\nadd x4, x1, x1\n")
        _cycle(ruu, 2)
        _cycle(ruu)  # let the dependent complete
        assert e[0].result == 42
        assert e[1].result == 84  # read from the producer entry, not regfile

    def test_same_type_contention_respects_unit_count(self):
        ruu = _ruu()
        _dispatch(ruu, "fmul f1, f2, f3\nfmul f4, f5, f6\n")
        report = ruu.issue_and_execute()
        assert len(report.granted) == 1  # single FP-MDU (the FFU)

    def test_structural_stall_resolved_by_extra_rfu_unit(self):
        ruu = _ruu()
        ruu.fabric.rfus.begin_reconfigure(0, FUType.FP_MDU)
        for _ in range(10):
            ruu.fabric.tick()
        _dispatch(ruu, "fmul f1, f2, f3\nfmul f4, f5, f6\n")
        report = ruu.issue_and_execute()
        assert len(report.granted) == 2


class TestMemoryOrdering:
    def test_store_then_load_forwards(self):
        ruu = _ruu()
        ruu.regfile.write("int", 1, 7)
        e = _dispatch(ruu, "sw x1, 0(x0)\nlw x2, 0(x0)\n")
        _cycle(ruu, 5)
        assert e[1].result == 7
        # memory untouched until the store retires
        assert ruu.dmem.peek_word(0) == 0

    def test_load_waits_for_unknown_store_address(self):
        ruu = _ruu()
        e = _dispatch(ruu, "mul x1, x2, x3\nsw x4, 0(x1)\nlw x5, 8(x0)\n")
        report = ruu.issue_and_execute()
        # load requested but denied: the store's address is unknown
        granted_entries = [e_ for e_ in e if e_.state is EntryState.ISSUED]
        assert all(not g.is_load for g in granted_entries)
        assert report.memory_stalls == 1

    def test_partial_overlap_blocks_until_store_retires(self):
        ruu = _ruu()
        e = _dispatch(ruu, "sw x1, 0(x0)\nlb x2, 1(x0)\n")
        _cycle(ruu, 4)
        assert e[0].completed
        assert e[1].state is EntryState.WAITING  # overlap but not exact
        ruu.retire()  # store commits to memory
        report = ruu.issue_and_execute()
        assert len(report.granted) == 1

    def test_disjoint_load_proceeds(self):
        ruu = _ruu()
        # add a second LSU so the store and the load don't contend
        ruu.fabric.rfus.begin_reconfigure(0, FUType.LSU)
        for _ in range(5):
            ruu.fabric.tick()
        e = _dispatch(ruu, "sw x1, 0(x0)\nlw x2, 64(x0)\n")
        report = ruu.issue_and_execute()
        assert len(report.granted) == 2
        assert report.memory_stalls == 0

    def test_store_writes_memory_at_retire(self):
        ruu = _ruu()
        ruu.regfile.write("int", 1, 0xABCD)
        _dispatch(ruu, "sw x1, 4(x0)\n")
        _cycle(ruu, 3)
        ruu.retire()
        assert ruu.dmem.peek_word(4) == 0xABCD


class TestRetire:
    def test_in_order_retirement(self):
        ruu = _ruu()
        e = _dispatch(ruu, "mul x1, x2, x3\nadd x4, x5, x6\n")
        _cycle(ruu, 2)
        assert e[1].completed and not e[0].completed
        assert ruu.retire() == []  # head (mul) not done: nothing retires
        _cycle(ruu, 3)
        retired = ruu.retire()
        assert [r.seq for r in retired] == [e[0].seq, e[1].seq]

    def test_retire_width_respected(self):
        ruu = _ruu()
        ruu.retire_width = 2
        _dispatch(ruu, "add x1, x0, x0\nadd x2, x0, x0\nadd x3, x0, x0\n")
        _cycle(ruu, 3)  # one IALU: the adds issue one per cycle
        assert len(ruu.retire()) == 2
        assert len(ruu.retire()) == 1

    def test_retire_commits_registers(self):
        ruu = _ruu()
        ruu.regfile.write("int", 2, 5)
        _dispatch(ruu, "addi x1, x2, 10\n")
        _cycle(ruu, 2)
        ruu.retire()
        assert ruu.regfile.x(1) == 15

    def test_halt_sets_flag_and_stops_retirement(self):
        ruu = _ruu()
        _dispatch(ruu, "halt\nadd x1, x2, x3\n")
        _cycle(ruu, 3)
        ruu.retire()
        assert ruu.halted

    def test_rename_cleaned_at_retire(self):
        ruu = _ruu()
        e = _dispatch(ruu, "add x1, x2, x3\n")
        _cycle(ruu, 2)
        ruu.retire()
        e2 = _dispatch(ruu, "add x4, x1, x0\n")
        # producer retired: source reads the architectural file
        assert e2[0].sources[0].producer_seq is None


class TestFlush:
    def test_flush_younger_removes_entries(self):
        ruu = _ruu()
        e = _dispatch(ruu, "add x1, x2, x3\nadd x4, x5, x6\nadd x7, x8, x9\n")
        squashed = ruu.flush_younger(e[0].seq)
        assert squashed == 2
        assert len(ruu) == 1
        assert ruu.flushed == 2

    def test_flush_releases_busy_units(self):
        ruu = _ruu()
        e = _dispatch(ruu, "fdiv f1, f2, f3\n")
        _cycle(ruu)  # fdiv issues, occupies the FP-MDU for 16 cycles
        assert not ruu.fabric.available(FUType.FP_MDU)
        ruu.flush_younger(-1)
        assert ruu.fabric.available(FUType.FP_MDU)

    def test_flush_rebuilds_rename(self):
        ruu = _ruu()
        e = _dispatch(ruu, "add x1, x2, x3\nadd x1, x4, x5\n")
        ruu.flush_younger(e[0].seq)
        e2 = _dispatch(ruu, "add x6, x1, x0\n")
        assert e2[0].sources[0].producer_seq == e[0].seq

    def test_flush_frees_wakeup_rows(self):
        ruu = _ruu(window=2)
        e = _dispatch(ruu, "add x1, x2, x3\nadd x4, x5, x6\n")
        ruu.flush_younger(e[0].seq)
        assert not ruu.full
        _dispatch(ruu, "add x7, x8, x9\n")  # row reusable


class TestControl:
    def test_branch_resolution_reported(self):
        ruu = _ruu()
        _dispatch(ruu, "beq x0, x0, 5\n", predicted={0: 5})
        report = ruu.issue_and_execute()
        assert len(report.resolutions) == 1
        res = report.resolutions[0]
        assert res.taken and res.target == 5 and not res.mispredicted

    def test_mispredict_detected(self):
        ruu = _ruu()
        _dispatch(ruu, "beq x0, x0, 5\n", predicted={0: 1})
        report = ruu.issue_and_execute()
        assert report.resolutions[0].mispredicted

    def test_jal_writes_link(self):
        ruu = _ruu()
        _dispatch(ruu, "jal x1, 3\n", predicted={0: 3})
        _cycle(ruu, 2)
        ruu.retire()
        assert ruu.regfile.x(1) == 1  # return address = pc + 1
