"""Tests for one-hot encoders, priority encoders and population counters."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuits.encoders import one_hot, popcount_tree, priority_encoder
from repro.errors import CircuitError


class TestOneHot:
    @pytest.mark.parametrize("i", range(5))
    def test_each_position(self, i):
        v = one_hot(i, 5)
        assert v == 1 << i
        assert bin(v).count("1") == 1

    def test_rejects_out_of_range(self):
        with pytest.raises(CircuitError):
            one_hot(5, 5)
        with pytest.raises(CircuitError):
            one_hot(-1, 5)


class TestPriorityEncoder:
    def test_lowest_bit_wins(self):
        assert priority_encoder(0b0110, 4) == (1, 1)
        assert priority_encoder(0b1000, 4) == (3, 1)

    def test_zero_input_invalid(self):
        index, valid = priority_encoder(0, 4)
        assert valid == 0

    def test_rejects_oversized(self):
        with pytest.raises(CircuitError):
            priority_encoder(16, 4)

    @given(st.integers(1, 255))
    def test_index_is_lowest_set_bit(self, bitmap):
        index, valid = priority_encoder(bitmap, 8)
        assert valid == 1
        assert bitmap & ((1 << index) - 1) == 0
        assert bitmap & (1 << index)


class TestPopcountTree:
    def test_counts_seven_inputs(self):
        assert popcount_tree([1] * 7) == 7
        assert popcount_tree([0] * 7) == 0
        assert popcount_tree([1, 0, 1, 0, 1, 0, 1]) == 4

    @given(st.lists(st.integers(0, 1), min_size=0, max_size=7))
    def test_matches_sum(self, inputs):
        assert popcount_tree(inputs) == sum(inputs)

    def test_truncates_to_out_width(self):
        # a 2-bit counter overflows with 4 ones, as hardware would
        assert popcount_tree([1, 1, 1, 1], out_width=2) == 0

    def test_rejects_non_bit(self):
        with pytest.raises(CircuitError):
            popcount_tree([2])
