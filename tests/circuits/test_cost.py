"""Tests for the analytic circuit-cost estimators."""

from repro.circuits.cost import (
    CircuitCost,
    barrel_shifter_cost,
    cem_generator_cost,
    comparator_cost,
    minimum_selector_cost,
    multi_operand_adder_cost,
    popcount_cost,
    requirement_encoder_cost,
    ripple_adder_cost,
    selection_unit_cost,
    unit_decoder_cost,
)


class TestCombinators:
    def test_in_series_adds_depth(self):
        a = CircuitCost(10, 3)
        b = CircuitCost(5, 2)
        assert a.in_series(b) == CircuitCost(15, 5)

    def test_in_parallel_max_depth(self):
        a = CircuitCost(10, 3)
        b = CircuitCost(5, 7)
        assert a.in_parallel(b) == CircuitCost(15, 7)

    def test_replicated(self):
        assert CircuitCost(4, 2).replicated(5) == CircuitCost(20, 2)
        assert CircuitCost(4, 2).replicated(0) == CircuitCost(0, 0)


class TestBlockCosts:
    def test_adder_scales_linearly(self):
        assert ripple_adder_cost(6).gates == 2 * ripple_adder_cost(3).gates

    def test_shifter_positive(self):
        c = barrel_shifter_cost(3, 2)
        assert c.gates > 0 and c.depth > 0

    def test_comparator_positive(self):
        c = comparator_cost(6)
        assert c.gates > 0 and c.depth > 0

    def test_popcount_grows_with_inputs(self):
        assert popcount_cost(7, 3).gates > popcount_cost(3, 3).gates

    def test_multi_operand_tree(self):
        c = multi_operand_adder_cost(5, 3, 6)
        assert c.gates == 4 * ripple_adder_cost(6).gates


class TestSelectionUnitCost:
    def test_breakdown_has_all_stages(self):
        costs = selection_unit_cost()
        assert set(costs) == {
            "unit_decoders",
            "requirement_encoders",
            "cem_generators",
            "minimal_error_selector",
            "total",
        }

    def test_total_is_series_composition(self):
        costs = selection_unit_cost()
        stage_gates = sum(v.gates for k, v in costs.items() if k != "total")
        stage_depth = sum(v.depth for k, v in costs.items() if k != "total")
        assert costs["total"].gates == stage_gates
        assert costs["total"].depth == stage_depth

    def test_total_is_modest(self):
        """The paper's efficiency claim: a few thousand gate equivalents."""
        total = selection_unit_cost()["total"]
        assert total.gates < 10_000
        assert total.depth < 120

    def test_scales_with_queue_size(self):
        small = selection_unit_cost(n_entries=4)["total"].gates
        big = selection_unit_cost(n_entries=16)["total"].gates
        assert big > small

    def test_stage_helpers_positive(self):
        assert unit_decoder_cost(7, 5).gates > 0
        assert requirement_encoder_cost(7, 5, 3).gates > 0
        assert cem_generator_cost(5, 3, 6).gates > 0
        assert minimum_selector_cost(4, 6).gates > 0
