"""Tests for adder circuit models against plain arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuits.adders import (
    full_adder,
    multi_operand_add,
    ripple_carry_add,
    saturating_add,
)
from repro.errors import CircuitError


class TestFullAdder:
    @pytest.mark.parametrize("a", [0, 1])
    @pytest.mark.parametrize("b", [0, 1])
    @pytest.mark.parametrize("cin", [0, 1])
    def test_truth_table(self, a, b, cin):
        s, cout = full_adder(a, b, cin)
        assert s + 2 * cout == a + b + cin

    def test_rejects_non_bit(self):
        with pytest.raises(CircuitError):
            full_adder(2, 0)


class TestRippleCarry:
    @given(st.integers(0, 255), st.integers(0, 255))
    def test_matches_arithmetic_8bit(self, a, b):
        s, cout = ripple_carry_add(a, b, 8)
        assert s == (a + b) & 0xFF
        assert cout == ((a + b) >> 8) & 1

    @given(st.integers(0, 7), st.integers(0, 7), st.integers(0, 1))
    def test_3bit_with_carry_in(self, a, b, cin):
        s, cout = ripple_carry_add(a, b, 3, cin)
        assert s + 8 * cout == a + b + cin

    def test_rejects_oversized_input(self):
        with pytest.raises(CircuitError):
            ripple_carry_add(8, 0, 3)
        with pytest.raises(CircuitError):
            ripple_carry_add(0, 8, 3)

    def test_rejects_bad_carry(self):
        with pytest.raises(CircuitError):
            ripple_carry_add(0, 0, 3, cin=2)


class TestSaturatingAdd:
    @given(st.integers(0, 7), st.integers(0, 7))
    def test_saturates_at_7(self, a, b):
        assert saturating_add(a, b, 3) == min(7, a + b)

    def test_exact_saturation_boundary(self):
        assert saturating_add(3, 4, 3) == 7
        assert saturating_add(4, 4, 3) == 7
        assert saturating_add(7, 7, 3) == 7


class TestMultiOperand:
    def test_paper_parameters(self):
        # five 3-bit operands into a 6-bit sum: the Fig. 3(b) adder.
        assert multi_operand_add([7, 7, 7, 7, 7], 3, 6) == 35
        assert multi_operand_add([0, 0, 0, 0, 0], 3, 6) == 0
        assert multi_operand_add([1, 2, 3, 4, 5], 3, 6) == 15

    @given(st.lists(st.integers(0, 7), min_size=1, max_size=5))
    def test_matches_sum(self, values):
        assert multi_operand_add(values, 3, 6) == sum(values) & 0x3F

    def test_truncates_like_hardware(self):
        # 4-bit result register wraps
        assert multi_operand_add([7, 7, 7], 3, 4) == 21 % 16

    def test_rejects_empty(self):
        with pytest.raises(CircuitError):
            multi_operand_add([], 3, 6)

    def test_rejects_wide_operand(self):
        with pytest.raises(CircuitError):
            multi_operand_add([8], 3, 6)
