"""The gate-level selection core vs the functional selection unit."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.netlist import Netlist
from repro.circuits.selection_netlist import (
    SelectionCore,
    build_requirement_encoders,
    build_selection_core,
)
from repro.errors import CircuitError
from repro.fabric.configuration import PREDEFINED_CONFIGS
from repro.steering.error_metric import ErrorMetricGenerator
from repro.steering.selection import ConfigurationSelectionUnit

_COUNTS = st.tuples(*[st.integers(0, 7)] * 5)


@pytest.fixture(scope="module")
def core():
    return SelectionCore()


@pytest.fixture(scope="module")
def functional():
    return ConfigurationSelectionUnit()


class TestGateLevelEquivalence:
    @settings(max_examples=150, deadline=None)
    @given(required=_COUNTS, current=_COUNTS)
    def test_errors_match_functional_generators(self, required, current):
        core = SelectionCore()
        out = core.select(required, current)
        current_gen = ErrorMetricGenerator(None)
        assert out["error0"] == current_gen.error(required, current)
        for k, cfg in enumerate(PREDEFINED_CONFIGS, start=1):
            assert out[f"error{k}"] == ErrorMetricGenerator(cfg).error(required)

    @settings(max_examples=150, deadline=None)
    @given(required=_COUNTS, current=_COUNTS)
    def test_select_matches_functional_unit(self, required, current):
        """The two-bit output of the gates equals the functional stage-3+4
        pipeline for every input in the 3-bit hardware domain."""
        core = SelectionCore()
        functional = ConfigurationSelectionUnit()
        errors = functional.candidate_errors(required, current)
        distances = functional._distances(current)
        keys = [(e << 6) | d for e, d in zip(errors, distances)]
        from repro.circuits.comparators import minimum_index

        expected = minimum_index(keys, 12)
        assert core.select(required, current)["select"] == expected


class TestStructure:
    def test_gate_count_reported(self, core):
        # the measured cost of the real gates: order-of-magnitude agreement
        # with the analytic estimate (cost.py says ~1000 GE for stages 3+4)
        assert 500 < core.netlist.gate_count < 5000
        assert core.netlist.depth < 150

    def test_requires_three_configs(self):
        with pytest.raises(CircuitError):
            SelectionCore(configs=PREDEFINED_CONFIGS[:2])

    def test_outputs_declared(self, core):
        assert set(core.netlist.outputs) == {
            "error0", "error1", "error2", "error3", "select",
        }


class TestRequirementEncoderNetlist:
    def test_counts_onehot_columns(self):
        nl = Netlist()
        required = build_requirement_encoders(nl, n_entries=7)
        for i, bus in enumerate(required):
            nl.output_bus(f"count{i}", bus)
        # queue: 3 IALU (bit0), 2 LSU (bit2), 2 FPMDU (bit4)
        onehots = [0b00001, 0b00001, 0b00001, 0b00100, 0b00100, 0b10000, 0b10000]
        out = nl.evaluate(**{f"entry{i}": v for i, v in enumerate(onehots)})
        assert out["count0"] == 3
        assert out["count1"] == 0
        assert out["count2"] == 2
        assert out["count3"] == 0
        assert out["count4"] == 2
