"""Tests for barrel shifters and the Fig. 3(c) shift-control rule."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuits.shifters import barrel_shift_right, cem_shift_control
from repro.errors import CircuitError


class TestBarrelShift:
    @given(st.integers(0, 7), st.integers(0, 2))
    def test_matches_python_shift(self, value, shift):
        assert barrel_shift_right(value, shift, 3) == value >> shift

    def test_divide_by_4_2_1(self):
        assert barrel_shift_right(7, 2, 3) == 1  # 7 // 4
        assert barrel_shift_right(7, 1, 3) == 3  # 7 // 2
        assert barrel_shift_right(7, 0, 3) == 7  # 7 // 1

    def test_rejects_oversized_value(self):
        with pytest.raises(CircuitError):
            barrel_shift_right(8, 0, 3)

    def test_rejects_out_of_range_shift(self):
        with pytest.raises(CircuitError):
            barrel_shift_right(0, 3, 3)
        with pytest.raises(CircuitError):
            barrel_shift_right(0, -1, 3)


class TestCemShiftControl:
    """Fig. 3(c): upper two bits of the available count select the divisor."""

    @pytest.mark.parametrize(
        "available,shift",
        [(0, 0), (1, 0), (2, 1), (3, 1), (4, 2), (5, 2), (6, 2), (7, 2)],
    )
    def test_full_table(self, available, shift):
        assert cem_shift_control(available) == shift

    @given(st.integers(0, 7))
    def test_is_floor_log2_capped_at_2(self, available):
        """The rule is 'available rounded down to a power of two', capped."""
        if available >= 4:
            expected = 2
        elif available >= 2:
            expected = 1
        else:
            expected = 0
        assert cem_shift_control(available) == expected

    def test_rejects_oversized(self):
        with pytest.raises(CircuitError):
            cem_shift_control(8)
