"""Gate-level netlists verified against the functional circuit models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuits.netlist import (
    Netlist,
    build_barrel_shifter,
    build_cem_generator,
    build_less_than,
    build_minimum_selector,
    build_popcount,
    build_ripple_adder,
)
from repro.errors import CircuitError
from repro.steering.error_metric import cem_error


class TestNetlistBasics:
    def test_constants(self):
        nl = Netlist()
        nl.output_bus("z", [nl.zero, nl.one])
        assert nl.evaluate() == {"z": 0b10}

    def test_primitive_gates(self):
        nl = Netlist()
        a = nl.input_bus("a", 1)
        b = nl.input_bus("b", 1)
        nl.output_bus("and", [nl.and_(a[0], b[0])])
        nl.output_bus("or", [nl.or_(a[0], b[0])])
        nl.output_bus("xor", [nl.xor(a[0], b[0])])
        nl.output_bus("not", [nl.not_(a[0])])
        for av in (0, 1):
            for bv in (0, 1):
                out = nl.evaluate(a=av, b=bv)
                assert out["and"] == (av & bv)
                assert out["or"] == (av | bv)
                assert out["xor"] == (av ^ bv)
                assert out["not"] == (av ^ 1)

    def test_mux(self):
        nl = Netlist()
        s = nl.input_bus("s", 1)
        nl.output_bus("y", [nl.mux(s[0], nl.zero, nl.one)])
        assert nl.evaluate(s=0)["y"] == 0
        assert nl.evaluate(s=1)["y"] == 1

    def test_gate_count_and_depth_tracked(self):
        nl = Netlist()
        a = nl.input_bus("a", 1)
        y = nl.and_(nl.and_(a[0], nl.one), nl.one)
        nl.output_bus("y", [y])
        assert nl.gate_count == 2
        assert nl.depth == 2

    def test_input_validation(self):
        nl = Netlist()
        nl.input_bus("a", 2)
        with pytest.raises(CircuitError, match="already declared"):
            nl.input_bus("a", 2)
        with pytest.raises(CircuitError, match="missing value"):
            nl.evaluate()
        with pytest.raises(CircuitError, match="does not fit"):
            nl.evaluate(a=4)
        with pytest.raises(CircuitError, match="unknown input"):
            nl.evaluate(a=0, b=0)

    def test_bad_gate_rejected(self):
        nl = Netlist()
        with pytest.raises(CircuitError):
            nl.gate("NAND3", 0, 0)
        with pytest.raises(CircuitError):
            nl.gate("AND", 0)


class TestAdderNetlist:
    @given(st.integers(0, 63), st.integers(0, 63))
    def test_matches_arithmetic(self, a, b):
        nl = Netlist()
        abus = nl.input_bus("a", 6)
        bbus = nl.input_bus("b", 6)
        s, cout = build_ripple_adder(nl, abus, bbus)
        nl.output_bus("sum", s)
        nl.output_bus("cout", [cout])
        out = nl.evaluate(a=a, b=b)
        assert out["sum"] == (a + b) & 63
        assert out["cout"] == (a + b) >> 6

    def test_width_mismatch(self):
        nl = Netlist()
        with pytest.raises(CircuitError):
            build_ripple_adder(nl, nl.input_bus("a", 2), nl.input_bus("b", 3))


class TestPopcountNetlist:
    @given(st.integers(0, 127))
    def test_matches_bit_count(self, v):
        nl = Netlist()
        bits = nl.input_bus("v", 7)
        nl.output_bus("count", build_popcount(nl, bits, 3))
        assert nl.evaluate(v=v)["count"] == bin(v).count("1")


class TestShifterNetlist:
    @given(st.integers(0, 7), st.integers(0, 3))
    def test_matches_right_shift(self, v, s):
        nl = Netlist()
        vbus = nl.input_bus("v", 3)
        sbus = nl.input_bus("s", 2)
        nl.output_bus("y", build_barrel_shifter(nl, vbus, sbus))
        assert nl.evaluate(v=v, s=s)["y"] == v >> s


class TestComparatorNetlist:
    @given(st.integers(0, 63), st.integers(0, 63))
    def test_matches_less_than(self, a, b):
        nl = Netlist()
        abus = nl.input_bus("a", 6)
        bbus = nl.input_bus("b", 6)
        nl.output_bus("lt", [build_less_than(nl, abus, bbus)])
        assert nl.evaluate(a=a, b=b)["lt"] == int(a < b)


class TestMinimumSelectorNetlist:
    @given(st.lists(st.integers(0, 63), min_size=2, max_size=4))
    def test_matches_functional_selector(self, values):
        from repro.circuits.comparators import minimum_index

        nl = Netlist()
        buses = [nl.input_bus(f"c{i}", 6) for i in range(len(values))]
        nl.output_bus("index", build_minimum_selector(nl, buses))
        got = nl.evaluate(**{f"c{i}": v for i, v in enumerate(values)})["index"]
        assert got == minimum_index(values, 6)

    def test_tie_keeps_candidate_zero(self):
        nl = Netlist()
        buses = [nl.input_bus(f"c{i}", 6) for i in range(4)]
        nl.output_bus("index", build_minimum_selector(nl, buses))
        assert nl.evaluate(c0=5, c1=5, c2=5, c3=5)["index"] == 0


class TestCemNetlist:
    @given(st.tuples(*[st.integers(0, 7)] * 5))
    def test_matches_functional_cem(self, required):
        shifts = (2, 1, 0, 0, 1)
        nl = Netlist()
        buses = [nl.input_bus(f"r{i}", 3) for i in range(5)]
        nl.output_bus("error", build_cem_generator(nl, buses, list(shifts)))
        got = nl.evaluate(**{f"r{i}": v for i, v in enumerate(required)})["error"]
        assert got == cem_error(required, shifts)

    def test_gate_count_is_concrete(self):
        """The real netlist calibrates the analytic estimate: same order
        of magnitude, a few hundred gates per generator."""
        nl = Netlist()
        buses = [nl.input_bus(f"r{i}", 3) for i in range(5)]
        nl.output_bus("error", build_cem_generator(nl, buses, [2, 1, 0, 0, 1]))
        assert 50 < nl.gate_count < 500
        assert nl.depth < 70
