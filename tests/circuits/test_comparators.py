"""Tests for comparators and the minimal-error selection network."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuits.comparators import equals, less_than, minimum_index
from repro.errors import CircuitError


class TestEquals:
    @given(st.integers(0, 63), st.integers(0, 63))
    def test_matches_python(self, a, b):
        assert equals(a, b, 6) == int(a == b)

    def test_rejects_oversized(self):
        with pytest.raises(CircuitError):
            equals(64, 0, 6)


class TestLessThan:
    @given(st.integers(0, 63), st.integers(0, 63))
    def test_matches_python(self, a, b):
        assert less_than(a, b, 6) == int(a < b)

    def test_not_less_when_equal(self):
        assert less_than(5, 5, 6) == 0

    def test_rejects_oversized(self):
        with pytest.raises(CircuitError):
            less_than(0, 64, 6)


class TestMinimumIndex:
    def test_simple_minimum(self):
        assert minimum_index([5, 3, 7, 1], 6) == 3

    def test_tie_prefers_earliest_index(self):
        """Candidate 0 is the current configuration: it must win ties."""
        assert minimum_index([2, 2, 2, 2], 6) == 0
        assert minimum_index([5, 2, 2, 9], 6) == 1

    def test_single_candidate(self):
        assert minimum_index([9], 6) == 0

    def test_rejects_empty(self):
        with pytest.raises(CircuitError):
            minimum_index([], 6)

    @given(st.lists(st.integers(0, 63), min_size=1, max_size=8))
    def test_matches_python_min_with_first_tie(self, values):
        assert values[minimum_index(values, 6)] == min(values)
        # earliest minimal index wins
        assert minimum_index(values, 6) == values.index(min(values))
