"""Tests for the validation helpers."""

import pytest

from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_width,
)


def test_check_in_range_passes_and_returns():
    assert check_in_range("x", 5, 0, 10) == 5
    assert check_in_range("x", 0, 0, 10) == 0
    assert check_in_range("x", 10, 0, 10) == 10


def test_check_in_range_rejects():
    with pytest.raises(ValueError, match="x must be in"):
        check_in_range("x", 11, 0, 10)
    with pytest.raises(ValueError):
        check_in_range("x", -1, 0, 10)


def test_check_non_negative():
    assert check_non_negative("n", 0) == 0
    with pytest.raises(ValueError):
        check_non_negative("n", -1)


def test_check_positive():
    assert check_positive("n", 1) == 1
    with pytest.raises(ValueError):
        check_positive("n", 0)


def test_check_width():
    assert check_width("v", 7, 3) == 7
    with pytest.raises(ValueError):
        check_width("v", 8, 3)
    with pytest.raises(ValueError):
        check_width("v", -1, 3)
