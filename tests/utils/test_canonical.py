"""The canonical JSON encoder: one byte stream per value, ever."""

import json
import math

import pytest

from repro.errors import ConfigurationError
from repro.utils.canonical import canonical_dumps, canonical_normalise


class TestCanonicalDumps:
    def test_keys_sorted(self):
        assert canonical_dumps({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_insertion_order_irrelevant(self):
        assert canonical_dumps({"x": 1, "y": 2}) == canonical_dumps(
            {"y": 2, "x": 1}
        )

    def test_compact_separators(self):
        assert canonical_dumps([1, 2, {"k": 3}]) == '[1,2,{"k":3}]'

    def test_pretty_is_parse_equal(self):
        value = {"nested": {"list": [1, 2.5, None, True]}}
        assert json.loads(canonical_dumps(value, pretty=True)) == value

    def test_non_string_keys_stringified(self):
        assert canonical_dumps({1: "a", 2: "b"}) == '{"1":"a","2":"b"}'

    def test_nan_rejected(self):
        with pytest.raises(ConfigurationError):
            canonical_dumps({"ipc": float("nan")})

    def test_infinity_rejected(self):
        with pytest.raises(ConfigurationError):
            canonical_dumps([math.inf])

    def test_negative_zero_normalised(self):
        assert canonical_dumps(-0.0) == canonical_dumps(0.0)

    def test_unicode_escaped(self):
        # ensure_ascii keeps the byte stream encoding-independent
        assert canonical_dumps("µ") == '"\\u00b5"'

    def test_float_shortest_repr_round_trips(self):
        for value in (0.1, 1 / 3, 2**53 + 1.0, 1e-300):
            assert json.loads(canonical_dumps(value)) == value


class TestCanonicalNormalise:
    def test_reports_offending_path(self):
        with pytest.raises(ConfigurationError, match=r"\$\.a\[1\]"):
            canonical_normalise({"a": [0.0, float("inf")]})

    def test_rejects_non_json_type(self):
        with pytest.raises(ConfigurationError):
            canonical_normalise({"a": {1, 2}})

    def test_nested_negative_zero(self):
        out = canonical_normalise({"v": [-0.0]})
        assert math.copysign(1.0, out["v"][0]) == 1.0
