"""Unit and property tests for bit-manipulation helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bitops import (
    bit,
    bits,
    mask,
    ones,
    popcount,
    reverse_bits,
    set_bits,
    sign_extend,
    to_signed,
    to_unsigned,
)


class TestMask:
    def test_zero_width(self):
        assert mask(0) == 0

    @pytest.mark.parametrize("w,expected", [(1, 1), (3, 7), (8, 255), (32, 0xFFFFFFFF)])
    def test_values(self, w, expected):
        assert mask(w) == expected

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            mask(-1)


class TestBitAndBits:
    def test_bit_extraction(self):
        assert bit(0b1010, 1) == 1
        assert bit(0b1010, 0) == 0
        assert bit(0b1010, 3) == 1

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            bit(1, -1)

    def test_bits_field(self):
        assert bits(0xDEADBEEF, 31, 16) == 0xDEAD
        assert bits(0xDEADBEEF, 15, 0) == 0xBEEF
        assert bits(0b110100, 5, 2) == 0b1101

    def test_bits_single(self):
        assert bits(0b100, 2, 2) == 1

    def test_bits_empty_range_rejected(self):
        with pytest.raises(ValueError):
            bits(0, 1, 2)


class TestSetBits:
    def test_replace_field(self):
        assert set_bits(0, 7, 4, 0xA) == 0xA0
        assert set_bits(0xFF, 3, 0, 0) == 0xF0

    def test_field_too_wide_rejected(self):
        with pytest.raises(ValueError):
            set_bits(0, 3, 0, 16)

    @given(st.integers(0, 2**16 - 1), st.integers(0, 15))
    def test_roundtrip(self, value, field):
        assert bits(set_bits(value, 11, 8, field), 11, 8) == field


class TestSignExtend:
    @pytest.mark.parametrize(
        "value,width,expected",
        [(0x7F, 8, 127), (0x80, 8, -128), (0xFF, 8, -1), (0, 8, 0), (0x4000, 15, -16384)],
    )
    def test_values(self, value, width, expected):
        assert sign_extend(value, width) == expected

    @given(st.integers(-(2**14), 2**14 - 1))
    def test_roundtrip_15bit(self, v):
        assert to_signed(to_unsigned(v, 15), 15) == v

    @given(st.integers(-(2**31), 2**31 - 1))
    def test_roundtrip_32bit(self, v):
        assert to_signed(to_unsigned(v, 32), 32) == v


class TestPopcountOnes:
    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3

    def test_popcount_rejects_negative(self):
        with pytest.raises(ValueError):
            popcount(-1)

    def test_ones(self):
        assert ones(0b1011, 4) == [0, 1, 3]
        assert ones(0, 8) == []

    @given(st.integers(0, 2**20 - 1))
    def test_ones_matches_popcount(self, v):
        assert len(ones(v, 20)) == popcount(v)


class TestReverseBits:
    def test_simple(self):
        assert reverse_bits(0b001, 3) == 0b100
        assert reverse_bits(0b110, 3) == 0b011

    @given(st.integers(0, 2**12 - 1))
    def test_involution(self, v):
        assert reverse_bits(reverse_bits(v, 12), 12) == v
