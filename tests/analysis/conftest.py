"""Shared harness for the static-analysis tests.

``lint_tree`` writes snippet files into a throwaway package tree and runs
the real :class:`AnalysisEngine` over them (suppressions, caching and all),
against a small self-contained configuration that mirrors the shape of the
checked-in ``analysis/layers.toml``.
"""

from pathlib import Path

import pytest

from repro.analysis.config import AnalysisConfig
from repro.analysis.engine import AnalysisEngine


def make_test_config(**overrides) -> AnalysisConfig:
    """The default test configuration; keyword overrides replace fields
    (e.g. ``process_roles=...`` for the cross-process checker tests)."""
    fields = dict(
        package="repro",
        layers={
            "cli": ("errors", "serving", "telemetry"),
            "errors": (),
            "isa": ("errors",),
            "sched": ("errors", "isa"),
            "serving": ("errors", "isa", "telemetry"),
            "telemetry": ("errors", "isa", "utils"),
            "utils": (),
        },
        hotzones={
            "repro/sched/hot.py": ("Kernel.step", "Kernel.tick", "helper"),
            "repro/sched/allhot.py": ("*",),
            "repro/sched/lanes.py": ("Bank.requests", "Bank.advance"),
        },
        vector_kernel_scope=("repro/sched/lanes.py",),
        determinism_scope=("repro/sched", "repro/isa", "repro/utils"),
        concurrency_scope=("repro/serving", "repro/evaluation/batch.py"),
        config_modules=("repro/utils/env.py",),
        canonical_json_scope=("repro/sched/golden.py",),
        event_log_modules=("repro/telemetry/events.py",),
        source_text="<test-config>",
    )
    fields.update(overrides)
    return AnalysisConfig(**fields)


@pytest.fixture()
def test_config():
    return make_test_config()


@pytest.fixture()
def lint_tree(tmp_path, test_config):
    """lint_tree({"repro/sched/hot.py": source, ...}) -> sorted findings."""

    def run(files: dict[str, str], rules=None, cache_path=None):
        for rel, source in files.items():
            target = tmp_path / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(source)
        engine = AnalysisEngine(
            test_config,
            root=tmp_path,
            repo_root=tmp_path,
            cache_path=cache_path,
            rules=rules,
        )
        return engine.run([tmp_path / rel for rel in sorted(files)])

    return run


@pytest.fixture()
def lint_source(lint_tree):
    """lint_source(source) -> findings for one file at repro/sched/hot.py."""

    def run(source: str, path: str = "repro/sched/hot.py"):
        return lint_tree({path: source})

    return run


def rule_ids(findings) -> list[str]:
    return [f.rule for f in findings]
