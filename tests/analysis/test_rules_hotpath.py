"""HOT rule family: allocations and telemetry discipline in hot zones."""

import textwrap

from tests.analysis.conftest import rule_ids


def src(body: str) -> str:
    return textwrap.dedent(body)


class TestHotAllocations:
    def test_comprehension_in_hot_function_flagged(self, lint_source):
        findings = lint_source(src("""
            class Kernel:
                def step(self):
                    return [x * 2 for x in self.window]
        """))
        assert rule_ids(findings) == ["HOT001"]
        assert "ListComp" in findings[0].message

    def test_generator_and_container_call_flagged(self, lint_source):
        findings = lint_source(src("""
            class Kernel:
                def step(self):
                    counts = dict(self.live_counts())
                    return sum(x for x in counts)
        """))
        assert sorted(rule_ids(findings)) == ["HOT001", "HOT002"]

    def test_fstring_and_lambda_flagged(self, lint_source):
        findings = lint_source(src("""
            class Kernel:
                def tick(self):
                    label = f"cycle {self.cycle}"
                    key = lambda e: e.seq
                    return label, key
        """))
        assert sorted(rule_ids(findings)) == ["HOT003", "HOT004"]

    def test_cold_function_in_same_file_not_flagged(self, lint_source):
        findings = lint_source(src("""
            class Kernel:
                def snapshot(self):
                    return [x * 2 for x in self.window]

                def report(self):
                    return f"retired {dict(self.counts)}"
        """))
        assert findings == []

    def test_raise_paths_are_exempt(self, lint_source):
        findings = lint_source(src("""
            class Kernel:
                def step(self):
                    if self.full:
                        raise RuntimeError(f"window full: {list(self.rows)}")
                    return self.grant()
        """))
        assert findings == []

    def test_wildcard_hotzone_covers_every_function(self, lint_source):
        findings = lint_source(
            src("""
                def anything():
                    return {k: v for k, v in pairs}
            """),
            path="repro/sched/allhot.py",
        )
        assert rule_ids(findings) == ["HOT001"]

    def test_non_hotzone_file_not_flagged(self, lint_source):
        findings = lint_source(
            src("""
                class Kernel:
                    def step(self):
                        return [x for x in self.window]
            """),
            path="repro/sched/cold.py",
        )
        assert findings == []


class TestHotDataclassSlots:
    def test_dataclass_without_slots_in_hotzone_file_flagged(self, lint_source):
        findings = lint_source(src("""
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Record:
                seq: int
        """))
        assert rule_ids(findings) == ["HOT005"]
        assert "Record" in findings[0].message

    def test_bare_dataclass_decorator_flagged(self, lint_source):
        findings = lint_source(src("""
            from dataclasses import dataclass

            @dataclass
            class Record:
                seq: int
        """))
        assert rule_ids(findings) == ["HOT005"]

    def test_slotted_dataclass_ok(self, lint_source):
        findings = lint_source(src("""
            from dataclasses import dataclass

            @dataclass(frozen=True, slots=True)
            class Record:
                seq: int
        """))
        assert findings == []

    def test_plain_class_ok(self, lint_source):
        findings = lint_source(src("""
            class Record:
                pass
        """))
        assert findings == []


class TestHotTelemetryGuard:
    def test_unguarded_telemetry_call_flagged(self, lint_source):
        findings = lint_source(src("""
            class Kernel:
                def step(self):
                    tel = self._telemetry
                    tel.on_cycle(self, 1)
        """))
        assert rule_ids(findings) == ["HOT006"]

    def test_attribute_receiver_flagged(self, lint_source):
        findings = lint_source(src("""
            class Kernel:
                def tick(self):
                    self._telemetry.on_cycle(self, 1)
        """))
        assert rule_ids(findings) == ["HOT006"]

    def test_one_truthiness_check_pattern_ok(self, lint_source):
        findings = lint_source(src("""
            class Kernel:
                def step(self):
                    tel = self._telemetry
                    if tel is not None:
                        tel.on_cycle(self, 1)
        """))
        assert findings == []

    def test_guard_on_self_attribute_ok(self, lint_source):
        findings = lint_source(src("""
            class Kernel:
                def tick(self):
                    if self._telemetry:
                        self._telemetry.on_cycle(self, 1)
        """))
        assert findings == []


class TestHotPerLaneLoop:
    """HOT007: no interpreter-level lane/row loops in vectorized kernels."""

    def test_for_loop_in_vector_kernel_flagged(self, lint_source):
        findings = lint_source(src("""
            class Bank:
                def requests(self):
                    out = 0
                    for lane in self.lanes:
                        out |= lane
                    return out
        """), path="repro/sched/lanes.py")
        assert rule_ids(findings) == ["HOT007"]
        assert "whole-array" in findings[0].message

    def test_while_loop_flagged(self, lint_source):
        findings = lint_source(src("""
            class Bank:
                def advance(self):
                    row = self.head
                    while row:
                        row = self.step(row)
        """), path="repro/sched/lanes.py")
        assert rule_ids(findings) == ["HOT007"]

    def test_loop_free_kernel_passes(self, lint_source):
        findings = lint_source(src("""
            class Bank:
                def requests(self):
                    need = self._need
                    req = ((need & ~self._avail[:, None]) == 0) @ self._weights
                    return req.tolist()
        """), path="repro/sched/lanes.py")
        assert findings == []

    def test_cold_fallback_in_same_file_not_flagged(self, lint_source):
        findings = lint_source(src("""
            class PyBank:
                def requests(self):
                    out = 0
                    for lane in self.lanes:
                        out |= lane
                    return out
        """), path="repro/sched/lanes.py")
        assert findings == []

    def test_hot_loop_outside_vector_scope_not_hot007(self, lint_source):
        findings = lint_source(src("""
            class Kernel:
                def step(self):
                    total = 0
                    for row in self.rows:
                        total += row
                    return total
        """))
        assert "HOT007" not in rule_ids(findings)
