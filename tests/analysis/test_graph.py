"""Call-graph construction: resolution kinds, confidence, determinism."""

import ast
import textwrap

from repro.analysis.graph import (
    build_graph,
    canonical_graph_json,
    summarize_module,
)
from tests.analysis.conftest import make_test_config


def graph_of(files, config=None):
    config = config or make_test_config()
    summaries = {}
    for mp, source in files.items():
        source = textwrap.dedent(source)
        summaries[mp] = summarize_module(mp, source, ast.parse(source), config)
    return build_graph(summaries, config)


def edges_from(graph, src):
    return [(dst, kind, conf) for s, dst, kind, conf, _, _ in graph.edges if s == src]


class TestResolution:
    def test_same_module_function_call(self):
        graph = graph_of({
            "repro/sched/a.py": """
                def helper():
                    return 1

                def caller():
                    return helper()
            """,
        })
        edges = edges_from(graph, "repro/sched/a.py::caller")
        assert ("repro/sched/a.py::helper", "static", 1.0) in edges

    def test_cross_module_import_call(self):
        graph = graph_of({
            "repro/sched/a.py": """
                from repro.sched.b import helper

                def caller():
                    return helper()
            """,
            "repro/sched/b.py": """
                def helper():
                    return 1
            """,
        })
        edges = edges_from(graph, "repro/sched/a.py::caller")
        assert ("repro/sched/b.py::helper", "static", 1.0) in edges

    def test_lazy_function_level_import_resolved(self):
        """Imports inside a function body (the repo's cycle-breaking idiom)
        must still resolve — a silent miss is a silent false negative."""
        graph = graph_of({
            "repro/sched/a.py": """
                def caller():
                    from repro.sched.b import helper
                    return helper()
            """,
            "repro/sched/b.py": """
                def helper():
                    return 1
            """,
        })
        edges = edges_from(graph, "repro/sched/a.py::caller")
        assert ("repro/sched/b.py::helper", "static", 1.0) in edges

    def test_self_method_call(self):
        graph = graph_of({
            "repro/sched/a.py": """
                class Kernel:
                    def step(self):
                        return self.helper()

                    def helper(self):
                        return 1
            """,
        })
        edges = edges_from(graph, "repro/sched/a.py::Kernel.step")
        assert any(
            dst == "repro/sched/a.py::Kernel.helper" and conf == 1.0
            for dst, _, conf in edges
        )

    def test_attribute_typed_call(self):
        """A call through an annotated attribute resolves to the declared
        class's method at sub-certain confidence."""
        graph = graph_of({
            "repro/sched/a.py": """
                from repro.sched.b import Worker

                class Kernel:
                    def __init__(self):
                        self.worker: Worker = Worker()

                    def step(self):
                        return self.worker.run()
            """,
            "repro/sched/b.py": """
                class Worker:
                    def run(self):
                        return 1
            """,
        })
        edges = edges_from(graph, "repro/sched/a.py::Kernel.step")
        assert any(
            dst == "repro/sched/b.py::Worker.run" and conf >= 0.9
            for dst, _, conf in edges
        )

    def test_first_class_reference_low_confidence(self):
        graph = graph_of({
            "repro/sched/a.py": """
                def helper():
                    return 1

                def caller(apply):
                    return apply(helper)
            """,
        })
        edges = edges_from(graph, "repro/sched/a.py::caller")
        assert any(
            dst == "repro/sched/a.py::helper" and conf <= 0.5
            for dst, _, conf in edges
        )


class TestColdEdges:
    def test_trailing_cold_call_marks_edge(self):
        graph = graph_of({
            "repro/sched/a.py": """
                def helper():
                    return 1

                def caller():
                    return helper()  # repro: cold-call -- rare repair path
            """,
        })
        cold = [
            cold for s, dst, _, _, _, cold in graph.edges
            if s == "repro/sched/a.py::caller"
        ]
        assert cold == ["rare repair path"]

    def test_comment_above_cold_call_skips_blank_and_comment_lines(self):
        graph = graph_of({
            "repro/sched/a.py": """
                def helper():
                    return 1

                def caller():
                    # repro: cold-call -- reason that wraps onto a
                    # second comment line before the call
                    return helper()
            """,
        })
        cold = [
            cold for s, _, _, _, _, cold in graph.edges
            if s == "repro/sched/a.py::caller"
        ]
        assert len(cold) == 1 and cold[0] and "wraps" in cold[0]


class TestDependencies:
    FILES = {
        "repro/sched/hot.py": """
            from repro.sched.mid import middle

            class Kernel:
                def step(self):
                    return middle()
        """,
        "repro/sched/mid.py": """
            from repro.isa.leaf import leaf

            def middle():
                return leaf()
        """,
        "repro/isa/leaf.py": """
            def leaf():
                return 1
        """,
        "repro/utils/other.py": """
            def unrelated():
                return 2
        """,
    }

    def test_file_dependencies_follow_call_edges(self):
        graph = graph_of(self.FILES)
        deps = graph.file_dependencies()
        assert "repro/sched/mid.py" in deps["repro/sched/hot.py"]
        assert "repro/isa/leaf.py" in deps["repro/sched/mid.py"]

    def test_reverse_dependents_is_the_cone(self):
        graph = graph_of(self.FILES)
        cone = graph.reverse_dependents({"repro/isa/leaf.py"})
        assert cone == {
            "repro/isa/leaf.py", "repro/sched/mid.py", "repro/sched/hot.py",
        }

    def test_unrelated_file_outside_cone(self):
        graph = graph_of(self.FILES)
        cone = graph.reverse_dependents({"repro/utils/other.py"})
        assert cone == {"repro/utils/other.py"}


class TestDeterminism:
    def test_two_builds_byte_identical(self):
        files = dict(TestDependencies.FILES)
        first = canonical_graph_json(graph_of(files))
        # build again from freshly-parsed sources, in a different insertion
        # order — the artifact must not depend on iteration order
        reordered = dict(reversed(list(files.items())))
        second = canonical_graph_json(graph_of(reordered))
        assert first == second
