"""The repo gate: the checked-in tree is lint-clean against its baseline.

This is the same check CI's lint job runs, wired into the tier-1 suite so
a hot-path allocation, determinism leak, locking slip or layering
back-edge fails the build locally, before any workflow runs.
"""

from pathlib import Path

from repro.analysis.baseline import load_baseline, partition
from repro.analysis.config import load_config
from repro.analysis.engine import AnalysisEngine

REPO = Path(__file__).resolve().parents[2]


def run_repo_lint():
    config = load_config(REPO / "analysis" / "layers.toml")
    engine = AnalysisEngine(
        config, root=REPO / "src", repo_root=REPO, cache_path=None
    )
    findings = engine.run([REPO / "src" / "repro"])
    baseline = load_baseline(REPO / "analysis" / "baseline.json")
    return engine, findings, baseline


def test_tree_has_no_findings_outside_the_baseline():
    _, findings, baseline = run_repo_lint()
    new, _, _ = partition(findings, baseline)
    assert new == [], "new lint findings:\n" + "\n".join(
        f"  {f.path}:{f.line}:{f.col}: {f.rule} {f.message}" for f in new
    )


def test_baseline_carries_no_stale_entries():
    _, findings, baseline = run_repo_lint()
    _, _, stale = partition(findings, baseline)
    assert stale == [], (
        "stale baseline entries (ratchet down with "
        "'repro lint --update-baseline'):\n"
        + "\n".join(f"  {f.fingerprint()}" for f in stale)
    )


def test_the_whole_tree_was_analysed():
    engine, _, _ = run_repo_lint()
    # guards against the gate silently analysing an empty directory
    assert engine.files_checked > 80
