"""Whole-program passes: hot reachability, DET006/007, CON006/007, ENG002.

These are the regression tests for the interprocedural gap: a per-file
pass only sees declared hot zones, so obligations used to stop at the
file boundary and determinism taint at the expression.  The graph phase
closes both holes; the first two tests here pin that closure.
"""

import textwrap

import pytest

from repro.analysis.engine import AnalysisEngine
from tests.analysis.conftest import make_test_config, rule_ids

HOT_CALLER = """
    from repro.isa.util import fanout

    class Kernel:
        def step(self):
            return fanout(self.window)
"""

LISTCOMP_HELPER = """
    def fanout(window):
        return [x + 1 for x in window]
"""


def run_tree(tmp_path, files, config=None):
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    engine = AnalysisEngine(
        config or make_test_config(), root=tmp_path, repo_root=tmp_path
    )
    return engine.run([tmp_path / rel for rel in sorted(files)])


class TestHotReachability:
    def test_per_file_pass_alone_misses_undeclared_helper(self, tmp_path):
        """The gap: the helper lives outside every declared hot zone, so
        without the caller in the tree nothing is flagged."""
        findings = run_tree(tmp_path, {"repro/isa/util.py": LISTCOMP_HELPER})
        assert findings == []

    def test_graph_pass_catches_helper_reached_from_hot_zone(self, tmp_path):
        findings = run_tree(tmp_path, {
            "repro/sched/hot.py": HOT_CALLER,
            "repro/isa/util.py": LISTCOMP_HELPER,
        })
        hot = [f for f in findings if f.rule == "HOT001"]
        assert len(hot) == 1
        assert hot[0].path == "repro/isa/util.py"
        assert "reachable from hot zone" in hot[0].message
        assert "Kernel.step" in hot[0].message
        assert hot[0].chain  # --explain has a call path to print

    def test_cold_call_annotation_stops_propagation(self, tmp_path):
        findings = run_tree(tmp_path, {
            "repro/sched/hot.py": """
                from repro.isa.util import fanout

                class Kernel:
                    def step(self):
                        # repro: cold-call -- mispredict repair, event-bounded
                        return fanout(self.window)
            """,
            "repro/isa/util.py": LISTCOMP_HELPER,
        })
        assert "HOT001" not in rule_ids(findings)

    def test_cold_call_without_reason_is_eng002_and_still_hot(self, tmp_path):
        findings = run_tree(tmp_path, {
            "repro/sched/hot.py": """
                from repro.isa.util import fanout

                class Kernel:
                    def step(self):
                        return fanout(self.window)  # repro: cold-call
            """,
            "repro/isa/util.py": LISTCOMP_HELPER,
        })
        ids = rule_ids(findings)
        assert "ENG002" in ids  # malformed annotation is reported ...
        assert "HOT001" in ids  # ... and does NOT silence the hot pass

    def test_declared_hot_zone_not_double_reported(self, tmp_path):
        """Functions inside a declared zone belong to the per-file rules;
        the graph pass must not repeat their findings."""
        findings = run_tree(tmp_path, {
            "repro/sched/hot.py": """
                class Kernel:
                    def step(self):
                        return [x for x in self.window]
            """,
        })
        assert rule_ids(findings) == ["HOT001"]


class TestDeterminismTaint:
    def test_laundered_wall_clock_reaches_state_det006(self, tmp_path):
        """time.time() laundered through a helper's return value and stored
        into simulation state — invisible per-file, caught by taint."""
        findings = run_tree(tmp_path, {
            "repro/sched/sim.py": """
                from repro.sched.stamp import fresh_stamp

                class Sim:
                    def start(self):
                        self.t0 = fresh_stamp()
            """,
            "repro/sched/stamp.py": """
                import time

                def fresh_stamp():
                    return time.time()
            """,
        })
        det = [f for f in findings if f.rule == "DET006"]
        assert len(det) == 1
        assert det[0].path == "repro/sched/sim.py"
        assert "self.t0" in det[0].message
        assert "time.time" in det[0].message

    def test_tainted_value_reaching_canonical_sink_det007(self, tmp_path):
        findings = run_tree(tmp_path, {
            "repro/utils/canonical.py": """
                import json

                def canonical_dumps(obj):
                    return json.dumps(obj, sort_keys=True)
            """,
            "repro/sched/golden.py": """
                import time

                from repro.utils.canonical import canonical_dumps

                def snapshot(state):
                    stamp = time.time()
                    return canonical_dumps({"state": state, "at": stamp})
            """,
        })
        det = [f for f in findings if f.rule == "DET007"]
        assert len(det) == 1
        assert det[0].path == "repro/sched/golden.py"

    def test_seeded_rng_not_tainted(self, tmp_path):
        findings = run_tree(tmp_path, {
            "repro/sched/sim.py": """
                import random

                class Sim:
                    def __init__(self, seed):
                        self.rng = random.Random(seed)

                    def start(self):
                        self.jitter = self.rng.random()
            """,
        })
        assert "DET006" not in rule_ids(findings)


ROLES = {
    "supervisor": ("repro/serving/app.py::boot",),
    "api_worker": ("repro/serving/app.py::handle",),
}


def roles_config(**overrides):
    return make_test_config(process_roles=dict(ROLES), **overrides)


class TestProcessRoles:
    def test_cross_domain_module_state_con006(self, tmp_path):
        findings = run_tree(tmp_path, {
            "repro/serving/app.py": """
                _JOBS = {}

                def boot():
                    _JOBS["ready"] = True

                def handle(request):
                    return _JOBS.get("ready")
            """,
        }, config=roles_config())
        con = [f for f in findings if f.rule == "CON006"]
        assert len(con) == 1
        assert "_JOBS" in con[0].message

    def test_shared_process_group_exempts_thread_shared_state(self, tmp_path):
        findings = run_tree(tmp_path, {
            "repro/serving/app.py": """
                _JOBS = {}

                def boot():
                    _JOBS["ready"] = True

                def handle(request):
                    return _JOBS.get("ready")
            """,
        }, config=roles_config(shared_process=("supervisor/api_worker",)))
        assert "CON006" not in rule_ids(findings)

    def test_unattributed_mutation_con007(self, tmp_path):
        findings = run_tree(tmp_path, {
            "repro/serving/app.py": """
                _JOBS = {}

                def boot():
                    return None

                def handle(request):
                    return None

                def stray():
                    _JOBS["x"] = 1
            """,
        }, config=roles_config())
        con = [f for f in findings if f.rule == "CON007"]
        assert len(con) == 1
        assert "stray" in con[0].message

    def test_empty_roles_table_disables_pass(self, tmp_path):
        findings = run_tree(tmp_path, {
            "repro/serving/app.py": """
                _JOBS = {}

                def stray():
                    _JOBS["x"] = 1
            """,
        })
        assert not {"CON006", "CON007"} & set(rule_ids(findings))

    def test_queue_binding_exempt(self, tmp_path):
        findings = run_tree(tmp_path, {
            "repro/serving/app.py": """
                from queue import Queue

                _INBOX = Queue()

                def boot():
                    _INBOX.put("ready")

                def handle(request):
                    return _INBOX.get()
            """,
        }, config=roles_config())
        assert not {"CON006", "CON007"} & set(rule_ids(findings))


class TestRuleFilter:
    def test_graph_rules_respect_rules_filter(self, tmp_path):
        """--rules without any graph id skips the graph phase entirely."""
        from repro.analysis.rules import RULE_REGISTRY

        files = {
            "repro/sched/hot.py": HOT_CALLER,
            "repro/isa/util.py": LISTCOMP_HELPER,
        }
        for rel, source in files.items():
            target = tmp_path / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(textwrap.dedent(source))
        engine = AnalysisEngine(
            make_test_config(), root=tmp_path, repo_root=tmp_path,
            rules=[RULE_REGISTRY["LAY001"]],
        )
        findings = engine.run([tmp_path / rel for rel in sorted(files)])
        assert findings == []
