"""Incremental behaviour: dependency-aware cache cones, --changed, artifacts."""

import argparse
import subprocess
import textwrap

import pytest

from repro.analysis.cli import add_lint_arguments, run_lint
from repro.analysis.engine import AnalysisEngine
from tests.analysis.conftest import make_test_config

TREE = {
    "repro/sched/hot.py": """
        from repro.sched.mid import middle

        class Kernel:
            def step(self):
                return middle(self.window)
    """,
    "repro/sched/mid.py": """
        from repro.isa.leaf import leaf

        def middle(window):
            return leaf(window)
    """,
    "repro/isa/leaf.py": """
        def leaf(window):
            total = 0
            for x in window:
                total += x
            return total
    """,
    "repro/utils/other.py": """
        def unrelated():
            return 2
    """,
}


def write_tree(tmp_path, files=TREE):
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    return [tmp_path / rel for rel in sorted(files)]


def make_engine(tmp_path, cache):
    return AnalysisEngine(
        make_test_config(), root=tmp_path, repo_root=tmp_path, cache_path=cache
    )


def graph_hits_by_file(tmp_path, cache, paths):
    """module path -> whether its interprocedural findings came from cache."""
    engine = make_engine(tmp_path, cache)
    engine.build_analysis(paths)
    hits = {}
    for path in paths:
        before = engine.graph_cache_hits
        engine.graph_findings_for(path)
        hits[engine.module_path_of(path)] = engine.graph_cache_hits > before
    return hits


class TestDependencyCone:
    def test_warm_run_hits_every_file(self, tmp_path):
        paths = write_tree(tmp_path)
        cache = tmp_path / ".cache" / "findings.json"
        make_engine(tmp_path, cache).run(paths)
        engine = make_engine(tmp_path, cache)
        engine.run(paths)
        assert engine.cache_hits == len(paths)
        assert engine.graph_cache_hits == len(paths)

    def test_comment_edit_invalidates_only_the_file_itself(self, tmp_path):
        paths = write_tree(tmp_path)
        cache = tmp_path / ".cache" / "findings.json"
        make_engine(tmp_path, cache).run(paths)
        leaf = tmp_path / "repro/isa/leaf.py"
        leaf.write_text(leaf.read_text() + "# cosmetic\n")
        engine = make_engine(tmp_path, cache)
        engine.run(paths)
        # the comment changes leaf's content hash but not its interface,
        # so no dependent is re-derived
        assert engine.graph_cache_hits == len(paths) - 1

    def test_interface_edit_invalidates_exactly_the_reverse_cone(self, tmp_path):
        paths = write_tree(tmp_path)
        cache = tmp_path / ".cache" / "findings.json"
        make_engine(tmp_path, cache).run(paths)
        # a list comprehension in the (hot-reachable) leaf changes its
        # effect interface: leaf and its reverse dependents must re-derive
        (tmp_path / "repro/isa/leaf.py").write_text(textwrap.dedent("""
            def leaf(window):
                return sum([x for x in window])
        """))
        hits = graph_hits_by_file(tmp_path, cache, paths)
        assert hits["repro/isa/leaf.py"] is False
        assert hits["repro/sched/mid.py"] is False
        # hot.py depends on mid.py, whose *own* interface (effects, taint,
        # hot membership) did not move — so the frontier stops there ...
        assert hits["repro/sched/hot.py"] is True
        # ... and a file outside the cone is never touched
        assert hits["repro/utils/other.py"] is True


class TestGraphArtifact:
    def test_graph_json_deterministic_across_engines(self, tmp_path):
        paths = write_tree(tmp_path)
        first = make_engine(tmp_path, None)
        first.run(paths)
        second = make_engine(tmp_path, None)
        second.run(paths)
        assert first.graph_json() == second.graph_json()


def parse_args(*argv):
    parser = argparse.ArgumentParser()
    add_lint_arguments(parser)
    return parser.parse_args(list(argv))


@pytest.fixture()
def workspace(tmp_path, monkeypatch):
    """src tree + config + a real git checkout, cwd pinned inside it."""
    write_tree(tmp_path)
    (tmp_path / "analysis").mkdir()
    (tmp_path / "analysis/layers.toml").write_text(textwrap.dedent("""
        package = "repro"

        [layers]
        errors = []
        isa = ["errors"]
        sched = ["errors", "isa"]
        utils = []

        [hotzones]
        "repro/sched/hot.py" = ["Kernel.step"]

        [scopes]
        determinism = ["repro/sched"]
        concurrency = []
        config_modules = []
    """))
    monkeypatch.chdir(tmp_path)

    def run(*extra):
        return run_lint(parse_args(
            str(tmp_path / "repro"),
            "--config", str(tmp_path / "analysis/layers.toml"),
            "--root", str(tmp_path),
            "--baseline", "none",
            "--no-cache",
            *extra,
        ))

    return tmp_path, run


def git(cwd, *argv):
    return subprocess.run(
        ["git", *argv], cwd=cwd, capture_output=True, text=True, timeout=30
    )


def git_available(tmp_path):
    try:
        return git(tmp_path, "--version").returncode == 0
    except OSError:
        return False


class TestGraphOutAndExplain:
    def test_graph_out_written_and_stable(self, workspace):
        ws, run = workspace
        out_a = ws / "graph-a.json"
        out_b = ws / "graph-b.json"
        run("--graph-out", str(out_a))
        run("--graph-out", str(out_b))
        assert out_a.read_bytes() == out_b.read_bytes()
        assert b'"edges"' in out_a.read_bytes()

    def test_explain_prints_call_chain(self, workspace, capsys):
        ws, run = workspace
        (ws / "repro/isa/leaf.py").write_text(textwrap.dedent("""
            def leaf(window):
                return [x for x in window]
        """))
        assert run() == 1
        finding = capsys.readouterr().out
        assert "repro/isa/leaf.py" in finding
        code = run("--explain", "repro/isa/leaf.py:3:HOT001")
        out = capsys.readouterr().out
        assert code == 0
        assert "call chain:" in out
        assert "Kernel.step" in out
        assert "middle" in out

    def test_explain_unknown_target_exits_2(self, workspace, capsys):
        _, run = workspace
        assert run("--explain", "repro/isa/leaf.py:999:HOT001") == 2

    def test_explain_new_out_without_findings(self, workspace):
        ws, run = workspace
        run("--explain-new-out", str(ws / "chains.txt"))
        assert (ws / "chains.txt").read_text() == "no new findings\n"


class TestChanged:
    def test_changed_analyses_reverse_dependents(self, workspace, capsys):
        ws, run = workspace
        if not git_available(ws):
            pytest.skip("git unavailable")
        git(ws, "init", "-q", "-b", "main")
        git(ws, "-c", "user.email=t@t", "-c", "user.name=t", "add", ".")
        git(ws, "-c", "user.email=t@t", "-c", "user.name=t",
            "commit", "-q", "-m", "seed")
        # introduce a hot-reachable violation in the leaf only
        (ws / "repro/isa/leaf.py").write_text(textwrap.dedent("""
            def leaf(window):
                return [x for x in window]
        """))
        code = run("--changed", "--changed-base", "main")
        out = capsys.readouterr().out
        assert code == 1
        assert "repro/isa/leaf.py" in out
        # the closure pulled in the dependents, not the whole tree
        assert "3 file(s)" in out

    def test_changed_with_no_changes_exits_clean(self, workspace, capsys):
        ws, run = workspace
        if not git_available(ws):
            pytest.skip("git unavailable")
        git(ws, "init", "-q", "-b", "main")
        git(ws, "-c", "user.email=t@t", "-c", "user.name=t", "add", ".")
        git(ws, "-c", "user.email=t@t", "-c", "user.name=t",
            "commit", "-q", "-m", "seed")
        code = run("--changed", "--changed-base", "main")
        out = capsys.readouterr().out
        assert code == 0
        assert "no analysable files changed" in out or "0 finding(s)" in out

    def test_changed_without_git_falls_back_to_full_run(
        self, workspace, capsys
    ):
        ws, run = workspace
        if not git_available(ws):
            pytest.skip("git unavailable")
        # no `git init`: merge-base fails, the run must degrade gracefully
        code = run("--changed", "--changed-base", "main")
        err = capsys.readouterr().err
        assert code == 0
        assert "falling back" in err
