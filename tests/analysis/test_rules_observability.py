"""OBS rule family: the serving/telemetry event-log funnel (OBS001)."""

import textwrap


def src(body: str) -> str:
    return textwrap.dedent(body)


def ids(findings):
    return [f.rule for f in findings]


class TestPrintFlagged:
    def test_print_in_serving_flagged(self, lint_tree):
        findings = lint_tree({"repro/serving/app.py": src("""
            def access_log(record):
                print(record)
        """)})
        assert ids(findings) == ["OBS001"]

    def test_print_in_telemetry_flagged(self, lint_tree):
        findings = lint_tree({"repro/telemetry/probes.py": src("""
            def dump(snapshot):
                print(snapshot)
        """)})
        assert ids(findings) == ["OBS001"]

    def test_each_call_site_reported(self, lint_tree):
        findings = lint_tree({"repro/serving/supervisor.py": src("""
            def noisy():
                print("a")
                print("b")
        """)})
        assert ids(findings) == ["OBS001", "OBS001"]


class TestRawLoggingFlagged:
    def test_module_level_logging_calls_flagged(self, lint_tree):
        findings = lint_tree({"repro/serving/app.py": src("""
            import logging

            def handle():
                logging.info("handled")
        """)})
        assert ids(findings) == ["OBS001"]
        assert "logging.info()" in findings[0].message

    def test_getlogger_flagged(self, lint_tree):
        findings = lint_tree({"repro/serving/jobs.py": src("""
            import logging

            log = logging.getLogger(__name__)
        """)})
        assert ids(findings) == ["OBS001"]


class TestTheFunnelIsExempt:
    def test_event_log_module_may_use_logging(self, lint_tree):
        findings = lint_tree({"repro/telemetry/events.py": src("""
            import logging

            def build(name):
                logger = logging.Logger(name)
                print("also fine here")
                return logger
        """)})
        assert findings == []


class TestOutOfScope:
    def test_cli_prints_are_fine(self, lint_tree):
        findings = lint_tree({"repro/cli.py": src("""
            def main():
                print("tables are the CLI's job")
        """)})
        assert findings == []

    def test_sched_is_out_of_scope(self, lint_tree):
        findings = lint_tree({"repro/sched/cold.py": src("""
            import logging

            def debug():
                logging.warning("x")
        """)})
        assert findings == []

    def test_logger_instance_methods_are_not_flagged(self, lint_tree):
        # only the logging module itself is the smell; an EventLog's own
        # instance-owned logger is how the funnel is implemented
        findings = lint_tree({"repro/serving/app.py": src("""
            def emit(self, line):
                self._logger.info("%s", line)
        """)})
        assert findings == []
