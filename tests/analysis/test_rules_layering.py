"""LAY rule family: the import DAG in layers.toml is enforced."""

import textwrap


def src(body: str) -> str:
    return textwrap.dedent(body)


def ids(findings):
    return [f.rule for f in findings]


class TestImportEdges:
    def test_illegal_edge_flagged(self, lint_tree):
        # test config: sched may import errors and isa, not serving
        findings = lint_tree({"repro/sched/ruu.py": src("""
            from repro.serving.store import RunStore
        """)})
        assert ids(findings) == ["LAY001"]
        assert "serving" in findings[0].message

    def test_function_local_backedge_flagged(self, lint_tree):
        findings = lint_tree({"repro/isa/instruction.py": src("""
            def decode(word):
                from repro.sched.entry import RuuEntry
                return RuuEntry(word)
        """)})
        assert ids(findings) == ["LAY001"]

    def test_declared_edge_ok(self, lint_tree):
        findings = lint_tree({"repro/sched/ruu.py": src("""
            from repro.isa.instruction import Instruction
            from repro.errors import SchedulerError
        """)})
        assert findings == []

    def test_same_layer_relative_and_stdlib_imports_ok(self, lint_tree):
        findings = lint_tree({"repro/sched/ruu.py": src("""
            import json
            from collections import deque
            from repro.sched.wakeup import WakeupArray
            from .entry import RuuEntry
        """)})
        assert findings == []


class TestUndeclaredLayers:
    def test_module_in_unknown_layer_flagged(self, lint_tree):
        findings = lint_tree({"repro/plugins/extra.py": "X = 1\n"})
        assert ids(findings) == ["LAY002"]
        assert findings[0].line == 1

    def test_undeclared_layer_reported_once_not_per_import(self, lint_tree):
        findings = lint_tree({"repro/plugins/extra.py": src("""
            from repro.isa.futypes import FUType
            from repro.errors import ConfigurationError
        """)})
        assert ids(findings) == ["LAY002"]

    def test_importing_an_undeclared_layer_flagged(self, lint_tree):
        findings = lint_tree({"repro/sched/ruu.py": src("""
            from repro.plugins.extra import X
        """)})
        assert ids(findings) == ["LAY001"]
        assert "undeclared" in findings[0].message
