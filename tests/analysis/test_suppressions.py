"""Inline ``# repro: allow[...]`` suppression semantics."""

import textwrap


def src(body: str) -> str:
    return textwrap.dedent(body)


def ids(findings):
    return [f.rule for f in findings]


class TestInlineSuppression:
    def test_same_line_suppression(self, lint_source):
        findings = lint_source(src("""
            class Kernel:
                def step(self):
                    return [x for x in self.window]  # repro: allow[HOT001]
        """))
        assert findings == []

    def test_line_above_suppression(self, lint_source):
        findings = lint_source(src("""
            class Kernel:
                def step(self):
                    # repro: allow[HOT002] -- reused by callee, measured fine
                    counts = dict(self.live_counts())
                    return counts
        """))
        assert findings == []

    def test_wrong_rule_id_does_not_suppress(self, lint_source):
        findings = lint_source(src("""
            class Kernel:
                def step(self):
                    return [x for x in self.window]  # repro: allow[HOT002]
        """))
        assert ids(findings) == ["HOT001"]

    def test_multiple_ids_in_one_comment(self, lint_source):
        findings = lint_source(src("""
            class Kernel:
                def step(self):
                    # repro: allow[HOT001, HOT002]
                    return [x for x in dict(self.counts())]
        """))
        assert findings == []

    def test_no_blanket_form(self, lint_source):
        # an empty bracket suppresses nothing: every suppression names rules
        findings = lint_source(src("""
            class Kernel:
                def step(self):
                    return [x for x in self.window]  # repro: allow[]
        """))
        assert ids(findings) == ["HOT001"]

    def test_suppression_only_covers_its_line(self, lint_source):
        findings = lint_source(src("""
            class Kernel:
                def step(self):
                    a = [x for x in self.window]  # repro: allow[HOT001]
                    b = [y for y in self.window]
                    return a, b
        """))
        assert ids(findings) == ["HOT001"]


class TestScopedSuppression:
    def test_def_header_suppression_covers_body(self, lint_source):
        findings = lint_source(src("""
            class Kernel:
                def step(self):  # repro: allow[HOT001]
                    a = [x for x in self.window]
                    b = [y for y in self.window]
                    return a, b
        """))
        assert findings == []

    def test_comment_block_above_header_covers_body(self, lint_source):
        findings = lint_source(src("""
            class Kernel:
                # this function deliberately materialises its result:
                # callers keep the list across cycles.
                # repro: allow[HOT001]
                def step(self):
                    return [x for x in self.window]
        """))
        assert findings == []

    def test_scoped_suppression_does_not_leak_to_siblings(self, lint_source):
        findings = lint_source(src("""
            class Kernel:
                # repro: allow[HOT001]
                def step(self):
                    return [x for x in self.window]

                def tick(self):
                    return [y for y in self.window]
        """))
        assert ids(findings) == ["HOT001"]
        assert findings[0].line == 8

    def test_class_header_suppression_covers_methods(self, lint_source):
        findings = lint_source(src("""
            class Kernel:  # repro: allow[HOT003]
                def step(self):
                    return f"cycle {self.cycle}"

                def tick(self):
                    return f"tick {self.cycle}"
        """))
        assert findings == []

    def test_decorated_def_suppression(self, lint_tree):
        findings = lint_tree({"repro/sched/hot.py": src("""
            from dataclasses import dataclass

            # repro: allow[HOT005] -- mutated millions of times; dict is fine
            @dataclass
            class Record:
                seq: int
        """)})
        assert findings == []


class TestScopedEdgeCases:
    """Def-scoped suppressions on decorated functions, async defs and
    class bodies — each with a matching negative."""

    def test_decorated_def_decorator_line_covers_body(self, lint_source):
        findings = lint_source(src("""
            import functools

            class Kernel:
                @functools.cache  # repro: allow[HOT001]
                def step(self):
                    return [x for x in self.window]
        """))
        assert findings == []

    def test_decorated_def_wrong_rule_does_not_suppress(self, lint_source):
        findings = lint_source(src("""
            import functools

            class Kernel:
                @functools.cache  # repro: allow[HOT003]
                def step(self):
                    return [x for x in self.window]
        """))
        assert ids(findings) == ["HOT001"]

    def test_comment_block_above_decorator_covers_body(self, lint_source):
        findings = lint_source(src("""
            import functools

            class Kernel:
                # memoised: the comprehension runs once per distinct window
                # repro: allow[HOT001]
                @functools.cache
                def step(self):
                    return [x for x in self.window]
        """))
        assert findings == []

    def test_async_def_header_suppression_covers_body(self, lint_source):
        findings = lint_source(src("""
            async def helper(window):  # repro: allow[HOT001]
                return [x for x in window]
        """), path="repro/sched/allhot.py")
        assert findings == []

    def test_async_def_suppression_does_not_leak_to_sibling(self, lint_source):
        findings = lint_source(src("""
            # repro: allow[HOT001]
            async def helper(window):
                return [x for x in window]

            async def other(window):
                return [y for y in window]
        """), path="repro/sched/allhot.py")
        assert ids(findings) == ["HOT001"]
        assert findings[0].line == 7

    def test_class_body_comment_block_covers_all_methods(self, lint_source):
        findings = lint_source(src("""
            # presentation helpers: formatting is this class's entire job
            # repro: allow[HOT003]
            class Kernel:
                def step(self):
                    return f"cycle {self.cycle}"

                def tick(self):
                    return f"tick {self.cycle}"
        """))
        assert findings == []

    def test_class_scope_ends_at_class_end(self, lint_source):
        findings = lint_source(src("""
            # repro: allow[HOT003]
            class Kernel:
                def step(self):
                    return f"cycle {self.cycle}"

            def helper(cycle):
                return f"outside {cycle}"
        """), path="repro/sched/allhot.py")
        assert ids(findings) == ["HOT003"]
        assert findings[0].line == 8
