"""Baseline machinery and the ``repro lint`` CLI: exit codes + JSON."""

import argparse
import json
import textwrap

import pytest

from repro.analysis.baseline import load_baseline, partition, save_baseline
from repro.analysis.cli import add_lint_arguments, run_lint
from repro.analysis.findings import Finding

HOT = textwrap.dedent("""
    class Kernel:
        def step(self):
            return [x for x in self.window]
""")

HOT_SUPPRESSED = textwrap.dedent("""
    class Kernel:
        def step(self):
            return [x for x in self.window]  # repro: allow[HOT001] -- api
""")

CONFIG = textwrap.dedent("""
    package = "repro"

    [layers]
    errors = []
    sched = ["errors"]

    [hotzones]
    "repro/sched/hot.py" = ["Kernel.step"]

    [scopes]
    determinism = ["repro/sched"]
    concurrency = []
    config_modules = []
""")


def parse_args(*argv):
    parser = argparse.ArgumentParser()
    add_lint_arguments(parser)
    return parser.parse_args(list(argv))


@pytest.fixture()
def workspace(tmp_path):
    """A tiny repo: src tree + config; returns a run(...) helper."""
    (tmp_path / "src/repro/sched").mkdir(parents=True)
    (tmp_path / "analysis").mkdir()
    (tmp_path / "analysis/layers.toml").write_text(CONFIG)
    (tmp_path / "src/repro/sched/hot.py").write_text(HOT)

    def run(*extra, baseline="none", capsys=None):
        argv = [
            str(tmp_path / "src/repro"),
            "--config", str(tmp_path / "analysis/layers.toml"),
            "--root", str(tmp_path / "src"),
            "--no-cache",
            *extra,
        ]
        if baseline is not None:
            argv += ["--baseline", baseline]
        return run_lint(parse_args(*argv))

    return tmp_path, run


class TestExitCodes:
    def test_new_finding_exits_1(self, workspace):
        _, run = workspace
        assert run() == 1

    def test_clean_tree_exits_0(self, workspace):
        ws, run = workspace
        (ws / "src/repro/sched/hot.py").write_text("X = 1\n")
        assert run() == 0

    def test_suppressed_finding_exits_0(self, workspace):
        ws, run = workspace
        (ws / "src/repro/sched/hot.py").write_text(HOT_SUPPRESSED)
        assert run() == 0

    def test_baselined_finding_exits_0(self, workspace):
        ws, run = workspace
        baseline = ws / "analysis/baseline.json"
        assert run("--update-baseline", baseline=str(baseline)) == 0
        assert run(baseline=str(baseline)) == 0

    def test_missing_config_exits_2(self, workspace):
        ws, run = workspace
        (ws / "analysis/layers.toml").unlink()
        assert run() == 2

    def test_invalid_config_exits_2(self, workspace):
        ws, run = workspace
        (ws / "analysis/layers.toml").write_text(
            CONFIG.replace('sched = ["errors"]', 'sched = ["ghost"]')
        )
        assert run() == 2

    def test_unknown_rule_filter_exits_2(self, workspace):
        _, run = workspace
        assert run("--rules", "NOPE999") == 2

    def test_missing_path_exits_2(self, workspace):
        ws, run = workspace
        assert run_lint(parse_args(
            str(ws / "src/repro/ghost"),
            "--config", str(ws / "analysis/layers.toml"),
            "--root", str(ws / "src"),
            "--baseline", "none",
            "--no-cache",
        )) == 2

    def test_rule_filter_limits_findings(self, workspace):
        _, run = workspace
        # only the telemetry rule runs; the HOT001 listcomp is not checked
        assert run("--rules", "HOT006") == 0


class TestJsonReport:
    def test_json_document_shape(self, workspace, capsys):
        _, run = workspace
        assert run("--format", "json") == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == 2
        assert doc["ok"] is False
        assert doc["counts"]["new"] == 1
        assert doc["counts"]["baselined"] == 0
        assert doc["counts"]["by_rule"] == {"HOT001": 1}
        [finding] = doc["new"]
        assert finding["rule"] == "HOT001"
        assert finding["path"].endswith("hot.py")
        assert finding["line"] == 4

    def test_baselined_findings_reported_but_ok(self, workspace, capsys):
        ws, run = workspace
        baseline = ws / "analysis/baseline.json"
        run("--update-baseline", baseline=str(baseline))
        capsys.readouterr()

        assert run("--format", "json", baseline=str(baseline)) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["counts"]["new"] == 0
        assert doc["counts"]["baselined"] == 1
        assert doc["baselined"][0]["rule"] == "HOT001"

    def test_stale_baseline_entries_surface(self, workspace, capsys):
        ws, run = workspace
        baseline = ws / "analysis/baseline.json"
        run("--update-baseline", baseline=str(baseline))
        (ws / "src/repro/sched/hot.py").write_text("X = 1\n")
        capsys.readouterr()

        assert run("--format", "json", baseline=str(baseline)) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["counts"]["stale_baseline"] == 1
        assert doc["stale_baseline"][0]["rule"] == "HOT001"

    def test_output_file_written(self, workspace, tmp_path):
        _, run = workspace
        out = tmp_path / "findings.json"
        run("--format", "json", "--output", str(out))
        assert json.loads(out.read_text())["counts"]["new"] == 1


class TestBaselineMechanics:
    def finding(self, line=4, message="m"):
        return Finding(
            rule="HOT001", path="src/repro/sched/hot.py",
            line=line, col=8, message=message,
        )

    def test_partition_new_baselined_stale(self):
        current = [self.finding(4), self.finding(9)]
        baseline = [self.finding(9), self.finding(30)]
        new, baselined, stale = partition(current, baseline)
        assert [f.line for f in new] == [4]
        assert [f.line for f in baselined] == [9]
        assert [f.line for f in stale] == [30]

    def test_fingerprint_ignores_column(self):
        a = self.finding()
        b = Finding(rule=a.rule, path=a.path, line=a.line, col=0, message=a.message)
        assert a.fingerprint() == b.fingerprint()

    def test_save_load_roundtrip(self, tmp_path):
        path = tmp_path / "baseline.json"
        findings = [self.finding(9), self.finding(4)]
        save_baseline(path, findings)
        loaded = load_baseline(path)
        assert [f.line for f in loaded] == [4, 9]  # sorted on save

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == []
        assert load_baseline(None) == []

    def test_corrupt_baseline_raises_configuration_error(self, tmp_path):
        from repro.errors import ConfigurationError

        path = tmp_path / "baseline.json"
        path.write_text('{"version": 1, "findings": [{"rule": "X"}]}')
        with pytest.raises(ConfigurationError):
            load_baseline(path)


class TestUpdateBaselinePrune:
    def test_stale_entries_pruned_printed_and_removed(self, workspace, capsys):
        ws, run = workspace
        baseline = ws / "analysis" / "baseline.json"
        assert run("--update-baseline", baseline=str(baseline)) == 0
        entries = load_baseline(baseline)
        assert entries  # the workspace tree has one HOT001 finding
        stale = Finding(
            rule="HOT001", path="src/repro/sched/gone.py", line=9, col=0,
            message="finding whose file no longer exists",
        )
        save_baseline(baseline, entries + [stale])
        capsys.readouterr()
        assert run("--update-baseline", baseline=str(baseline)) == 0
        out = capsys.readouterr().out
        assert "pruned stale baseline entry" in out
        assert stale.fingerprint() in out
        assert "(1 pruned)" in out
        after = load_baseline(baseline)
        assert stale.fingerprint() not in {f.fingerprint() for f in after}
        assert {f.fingerprint() for f in after} == {
            f.fingerprint() for f in entries
        }

    def test_no_prune_message_when_nothing_stale(self, workspace, capsys):
        ws, run = workspace
        baseline = ws / "analysis" / "baseline.json"
        assert run("--update-baseline", baseline=str(baseline)) == 0
        capsys.readouterr()
        assert run("--update-baseline", baseline=str(baseline)) == 0
        out = capsys.readouterr().out
        assert "pruned stale baseline entry" not in out
        assert "(0 pruned)" in out
