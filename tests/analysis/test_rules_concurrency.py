"""CON rule family: the threaded serving layer's locking discipline."""

import textwrap


def src(body: str) -> str:
    return textwrap.dedent(body)


def ids(findings):
    return [f.rule for f in findings]


PATH = "repro/serving/store.py"


class TestSqliteLocking:
    def test_execute_outside_lock_flagged(self, lint_tree):
        findings = lint_tree({PATH: src("""
            class Store:
                def list_runs(self):
                    return self._conn.execute("SELECT 1").fetchall()
        """)})
        # fetchall's receiver is the execute() call, not a named connection,
        # so only the execute itself is flagged
        assert ids(findings) == ["CON001"]

    def test_commit_outside_lock_flagged(self, lint_tree):
        findings = lint_tree({PATH: src("""
            class Store:
                def save(self):
                    self._conn.commit()
        """)})
        assert ids(findings) == ["CON001"]

    def test_execute_under_lock_ok(self, lint_tree):
        findings = lint_tree({PATH: src("""
            class Store:
                def list_runs(self):
                    with self._lock:
                        return self._conn.execute("SELECT 1").fetchall()
        """)})
        assert findings == []

    def test_unrelated_execute_receiver_ok(self, lint_tree):
        findings = lint_tree({PATH: src("""
            class Runner:
                def go(self):
                    return self.pool.execute(job)
        """)})
        assert findings == []

    def test_out_of_scope_file_ok(self, lint_tree):
        findings = lint_tree({"repro/sched/cold.py": src("""
            class Store:
                def save(self):
                    self._conn.commit()
        """)})
        assert findings == []


class TestSharedModuleState:
    def test_module_dict_mutated_in_function_flagged(self, lint_tree):
        findings = lint_tree({PATH: src("""
            _CACHE = {}

            def remember(key, value):
                _CACHE[key] = value
        """)})
        assert ids(findings) == ["CON002"]

    def test_global_reassignment_flagged(self, lint_tree):
        findings = lint_tree({PATH: src("""
            _rev = None

            def current_rev():
                global _rev
                if _rev is None:
                    _rev = compute()
                return _rev
        """)})
        assert ids(findings) == ["CON002"]

    def test_mutation_under_lock_ok(self, lint_tree):
        findings = lint_tree({PATH: src("""
            import threading

            _CACHE = {}
            _CACHE_LOCK = threading.Lock()

            def remember(key, value):
                with _CACHE_LOCK:
                    _CACHE[key] = value
        """)})
        assert findings == []

    def test_module_level_initialisation_ok(self, lint_tree):
        findings = lint_tree({PATH: src("""
            _CACHE = {}
            _CACHE.update({"seed": 1})
        """)})
        assert findings == []


class TestPerRequestPrimitives:
    def test_lock_built_in_handler_flagged(self, lint_tree):
        findings = lint_tree({PATH: src("""
            import threading

            class Handler:
                def do_GET(self):
                    lock = threading.Lock()
                    with lock:
                        return self.render()
        """)})
        assert ids(findings) == ["CON003"]

    def test_event_built_in_function_flagged(self, lint_tree):
        findings = lint_tree({PATH: src("""
            import threading

            def wait_for_result():
                done = threading.Event()
                return done
        """)})
        assert ids(findings) == ["CON003"]

    def test_lock_in_init_ok(self, lint_tree):
        findings = lint_tree({PATH: src("""
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
        """)})
        assert findings == []

    def test_module_level_lock_ok(self, lint_tree):
        findings = lint_tree({PATH: src("""
            import threading

            _LOCK = threading.Lock()
        """)})
        assert findings == []


class TestStoreScopes:
    """CON001 v2: the WAL store's _read()/_write() scopes satisfy it."""

    def test_execute_under_read_scope_ok(self, lint_tree):
        findings = lint_tree({PATH: src("""
            class Store:
                def list_runs(self):
                    with self._read() as conn:
                        return conn.execute("SELECT 1").fetchall()
        """)})
        assert findings == []

    def test_execute_under_write_scope_ok(self, lint_tree):
        findings = lint_tree({PATH: src("""
            class Store:
                def record(self):
                    with self._write() as conn:
                        conn.execute("INSERT INTO runs VALUES (1)")
        """)})
        assert findings == []

    def test_scope_implementations_exempt(self, lint_tree):
        findings = lint_tree({PATH: src("""
            class Store:
                def _connect(self):
                    conn = self.make()
                    conn.execute("PRAGMA journal_mode = WAL")
                    return conn
        """)})
        assert findings == []

    def test_bare_execute_still_flagged(self, lint_tree):
        findings = lint_tree({PATH: src("""
            class Store:
                def sneaky(self):
                    return self._conn.execute("SELECT 1")
        """)})
        assert ids(findings) == ["CON001"]


class TestRawSqliteConnect:
    def test_connect_outside_store_flagged(self, lint_tree):
        findings = lint_tree({"repro/serving/jobs.py": src("""
            import sqlite3

            def open_db(path):
                return sqlite3.connect(path)
        """)})
        assert ids(findings) == ["CON004"]

    def test_connect_outside_serving_flagged_too(self, lint_tree):
        # repo-wide: a stray connection in any layer bypasses the store
        findings = lint_tree({"repro/evaluation/batch.py": src("""
            import sqlite3

            conn = sqlite3.connect("x.sqlite")
        """)})
        assert "CON004" in ids(findings)

    def test_connect_inside_store_ok(self, lint_tree):
        findings = lint_tree({PATH: src("""
            import sqlite3

            class Store:
                def _connect(self):
                    return sqlite3.connect(self.path)
        """)})
        assert findings == []


class TestModuleLevelSocket:
    def test_module_socket_flagged(self, lint_tree):
        findings = lint_tree({"repro/serving/supervisor.py": src("""
            import socket

            _SOCK = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        """)})
        assert ids(findings) == ["CON005"]

    def test_socket_in_function_ok(self, lint_tree):
        findings = lint_tree({"repro/serving/supervisor.py": src("""
            import socket

            def bind(host, port):
                sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                sock.bind((host, port))
                return sock
        """)})
        assert findings == []

    def test_socket_outside_serving_ok(self, lint_tree):
        findings = lint_tree({"repro/utils/net.py": src("""
            import socket

            _SOCK = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        """)})
        assert findings == []
