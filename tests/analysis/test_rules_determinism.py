"""DET rule family: the core model stays a pure function of its inputs."""

import textwrap


def src(body: str) -> str:
    return textwrap.dedent(body)


def ids(findings):
    return [f.rule for f in findings]


class TestWallClock:
    def test_time_module_call_flagged(self, lint_source):
        findings = lint_source(src("""
            import time

            def stamp():
                return time.time()
        """))
        assert ids(findings) == ["DET001"]

    def test_from_import_perf_counter_flagged(self, lint_source):
        findings = lint_source(src("""
            from time import perf_counter

            def stamp():
                return perf_counter()
        """))
        assert ids(findings) == ["DET001"]

    def test_datetime_now_flagged(self, lint_source):
        findings = lint_source(src("""
            import datetime

            def stamp():
                return datetime.datetime.now()
        """))
        assert ids(findings) == ["DET001"]

    def test_out_of_scope_file_not_flagged(self, lint_tree):
        findings = lint_tree({
            "repro/serving/clock.py": src("""
                import time

                def stamp():
                    return time.time()
            """)
        })
        assert findings == []

    def test_non_clock_time_attribute_ok(self, lint_source):
        findings = lint_source(src("""
            import time

            def zone():
                return time.tzname
        """))
        assert findings == []


class TestRandomness:
    def test_global_random_call_flagged(self, lint_source):
        findings = lint_source(src("""
            import random

            def draw():
                return random.random()
        """))
        assert ids(findings) == ["DET002"]

    def test_from_import_choice_flagged(self, lint_source):
        findings = lint_source(src("""
            from random import choice

            def draw(options):
                return choice(options)
        """))
        assert ids(findings) == ["DET002"]

    def test_seeded_instance_ok(self, lint_source):
        findings = lint_source(src("""
            import random

            def make_rng(seed):
                return random.Random(seed)
        """))
        assert findings == []

    def test_instance_method_calls_ok(self, lint_source):
        findings = lint_source(src("""
            import random

            class Policy:
                def __init__(self, seed=0):
                    self._rng = random.Random(seed)

                def draw(self):
                    return self._rng.choice((1, 2, 3))
        """))
        assert findings == []


class TestDictOrderHashing:
    def test_hash_over_keys_flagged(self, lint_source):
        findings = lint_source(src("""
            def digest(counts):
                return hash(tuple(counts.keys()))
        """))
        assert ids(findings) == ["DET003"]

    def test_hashlib_over_items_flagged(self, lint_source):
        findings = lint_source(src("""
            import hashlib

            def digest(counts):
                return hashlib.sha256(repr(tuple(counts.items())).encode())
        """))
        assert ids(findings) == ["DET003"]

    def test_sorted_view_ok(self, lint_source):
        findings = lint_source(src("""
            def digest(counts):
                return hash(tuple(sorted(counts.items())))
        """))
        assert findings == []

    def test_order_insensitive_consumer_ok(self, lint_source):
        findings = lint_source(src("""
            def digest(counts):
                return hash(frozenset(counts.items()))
        """))
        assert findings == []


class TestNonCanonicalJson:
    def test_dumps_in_scope_flagged(self, lint_tree):
        findings = lint_tree({
            "repro/sched/golden.py": src("""
                import json

                def save(record):
                    return json.dumps(record)
            """)
        })
        assert ids(findings) == ["DET005"]

    def test_dump_to_file_in_scope_flagged(self, lint_tree):
        findings = lint_tree({
            "repro/sched/golden.py": src("""
                import json

                def save(record, fh):
                    json.dump(record, fh)
            """)
        })
        assert ids(findings) == ["DET005"]

    def test_from_import_dumps_in_scope_flagged(self, lint_tree):
        findings = lint_tree({
            "repro/sched/golden.py": src("""
                from json import dumps

                def save(record):
                    return dumps(record)
            """)
        })
        assert ids(findings) == ["DET005"]

    def test_loads_in_scope_ok(self, lint_tree):
        findings = lint_tree({
            "repro/sched/golden.py": src("""
                import json

                def load(text):
                    return json.loads(text)
            """)
        })
        assert findings == []

    def test_canonical_dumps_in_scope_ok(self, lint_tree):
        findings = lint_tree({
            "repro/sched/golden.py": src("""
                from repro.isa.canonical import canonical_dumps

                def save(record):
                    return canonical_dumps(record)
            """)
        })
        assert findings == []

    def test_dumps_out_of_scope_ok(self, lint_tree):
        findings = lint_tree({
            "repro/serving/payload.py": src("""
                import json

                def body(payload):
                    return json.dumps(payload, indent=1)
            """)
        })
        assert findings == []

    def test_dumps_of_to_dict_flagged_anywhere(self, lint_tree):
        findings = lint_tree({
            "repro/serving/payload.py": src("""
                import json

                def body(result):
                    return json.dumps(result.to_dict())
            """)
        })
        assert ids(findings) == ["DET005"]

    def test_dumps_of_nested_to_dict_flagged(self, lint_tree):
        findings = lint_tree({
            "repro/serving/payload.py": src("""
                import json

                def body(result, extra):
                    return json.dumps({"result": result.to_dict(), "extra": extra})
            """)
        })
        assert ids(findings) == ["DET005"]


class TestEnvReads:
    def test_environ_read_flagged(self, lint_source):
        findings = lint_source(src("""
            import os

            FLAG = os.environ.get("REPRO_DEBUG", "")
        """))
        assert ids(findings) == ["DET004"]

    def test_getenv_flagged(self, lint_source):
        findings = lint_source(src("""
            import os

            def flag():
                return os.getenv("REPRO_DEBUG")
        """))
        assert ids(findings) == ["DET004"]

    def test_declared_config_module_exempt(self, lint_tree):
        findings = lint_tree({
            "repro/utils/env.py": src("""
                import os

                def env_flag(name):
                    return os.environ.get(name, "")
            """)
        })
        assert findings == []

    def test_other_utils_module_still_flagged(self, lint_tree):
        findings = lint_tree({
            "repro/utils/misc.py": src("""
                import os

                def flag():
                    return os.environ.get("REPRO_DEBUG", "")
            """)
        })
        assert ids(findings) == ["DET004"]
