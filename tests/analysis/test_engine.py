"""Engine behaviour: caching by content hash, parse errors, determinism."""

import json
import textwrap

from repro.analysis.engine import PARSE_RULE_ID, AnalysisEngine
from tests.analysis.conftest import make_test_config

HOT = textwrap.dedent("""
    class Kernel:
        def step(self):
            return [x for x in self.window]
""")

CLEAN = "X = 1\n"


def write_tree(tmp_path, files):
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return [tmp_path / rel for rel in sorted(files)]


def make_engine(tmp_path, cache_path=None, config=None):
    return AnalysisEngine(
        config or make_test_config(),
        root=tmp_path,
        repo_root=tmp_path,
        cache_path=cache_path,
    )


class TestCaching:
    def test_second_run_hits_cache_with_identical_findings(self, tmp_path):
        paths = write_tree(
            tmp_path, {"repro/sched/hot.py": HOT, "repro/isa/ok.py": CLEAN}
        )
        cache = tmp_path / ".cache" / "findings.json"

        first_engine = make_engine(tmp_path, cache)
        first = first_engine.run(paths)
        assert first_engine.cache_hits == 0

        second_engine = make_engine(tmp_path, cache)
        second = second_engine.run(paths)
        assert second_engine.cache_hits == 2
        assert [f.to_dict() for f in first] == [f.to_dict() for f in second]

    def test_changed_file_reanalysed_others_cached(self, tmp_path):
        paths = write_tree(
            tmp_path, {"repro/sched/hot.py": HOT, "repro/isa/ok.py": CLEAN}
        )
        cache = tmp_path / ".cache" / "findings.json"
        make_engine(tmp_path, cache).run(paths)

        (tmp_path / "repro/sched/hot.py").write_text(
            HOT.replace("step", "tick")
        )
        engine = make_engine(tmp_path, cache)
        findings = engine.run(paths)
        assert engine.cache_hits == 1
        assert [f.rule for f in findings] == ["HOT001"]

    def test_config_change_invalidates_whole_cache(self, tmp_path):
        paths = write_tree(tmp_path, {"repro/isa/ok.py": CLEAN})
        cache = tmp_path / ".cache" / "findings.json"
        make_engine(tmp_path, cache).run(paths)

        changed = make_test_config()
        changed.source_text = "<different>"
        engine = make_engine(tmp_path, cache, config=changed)
        engine.run(paths)
        assert engine.cache_hits == 0

    def test_corrupt_cache_file_ignored(self, tmp_path):
        paths = write_tree(tmp_path, {"repro/isa/ok.py": CLEAN})
        cache = tmp_path / ".cache" / "findings.json"
        cache.parent.mkdir(parents=True)
        cache.write_text("{not json")
        engine = make_engine(tmp_path, cache)
        assert engine.run(paths) == []

    def test_cache_document_shape(self, tmp_path):
        paths = write_tree(tmp_path, {"repro/isa/ok.py": CLEAN})
        cache = tmp_path / ".cache" / "findings.json"
        make_engine(tmp_path, cache).run(paths)
        doc = json.loads(cache.read_text())
        assert set(doc) == {"fingerprint", "files", "summaries", "graph_findings"}
        assert "repro/isa/ok.py" in doc["files"]
        assert set(doc["files"]["repro/isa/ok.py"]) == {"sha256", "findings"}


class TestParseErrors:
    def test_syntax_error_becomes_finding_not_crash(self, tmp_path):
        paths = write_tree(
            tmp_path,
            {
                "repro/isa/broken.py": "def f(:\n",
                "repro/sched/hot.py": HOT,
            },
        )
        findings = make_engine(tmp_path).run(paths)
        rules = [f.rule for f in findings]
        assert PARSE_RULE_ID in rules  # the broken file is reported...
        assert "HOT001" in rules  # ...and the rest is still analysed


class TestDeterminism:
    def test_findings_sorted_and_stable(self, tmp_path):
        paths = write_tree(
            tmp_path,
            {
                "repro/sched/hot.py": HOT,
                "repro/sched/zz.py": "import repro.serving\n",
            },
        )
        a = make_engine(tmp_path).run(paths)
        b = make_engine(tmp_path).run(list(reversed(paths)))
        assert [f.to_dict() for f in a] == [f.to_dict() for f in b]
        assert a == sorted(a, key=lambda f: f.sort_key())
