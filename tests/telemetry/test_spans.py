"""Unit tests for the Chrome trace-event span tracer."""

import json

from repro.telemetry import SpanTracer


class TestSpanTracer:
    def test_event_shapes(self):
        t = SpanTracer()
        t.complete("reconfig LSU@3", ts=100, dur=8, track="fabric", evicted=["IALU"])
        t.instant("flush", ts=50, track="pipeline", squashed=4)
        t.counter("stage_us", ts=32, values={"fetch": 1.5}, track="profile")
        doc = t.to_chrome_trace()
        events = doc["traceEvents"]
        # three thread_name metadata records + the three events
        phases = [e["ph"] for e in events]
        assert phases.count("M") == 3
        assert "X" in phases and "i" in phases and "C" in phases
        complete = next(e for e in events if e["ph"] == "X")
        assert complete["dur"] == 8.0 and complete["ts"] == 100.0
        assert complete["args"]["evicted"] == ["IALU"]

    def test_tracks_get_distinct_tids_with_names(self):
        t = SpanTracer()
        t.instant("a", 0, track="one")
        t.instant("b", 0, track="two")
        doc = t.to_chrome_trace()
        names = {
            e["args"]["name"]: e["tid"]
            for e in doc["traceEvents"]
            if e["ph"] == "M"
        }
        assert set(names) == {"one", "two"}
        assert len(set(names.values())) == 2

    def test_bounded_buffer_counts_drops(self):
        t = SpanTracer(max_events=10)
        for i in range(25):
            t.instant("e", i)
        assert len(t) == 10
        assert t.dropped == 15
        assert t.to_chrome_trace()["otherData"]["dropped_events"] == 15

    def test_dumps_and_write_are_valid_json(self, tmp_path):
        t = SpanTracer()
        t.complete("span", 0, 1)
        assert json.loads(t.dumps())["displayTimeUnit"] == "ms"
        path = tmp_path / "trace.json"
        t.write(path)
        doc = json.loads(path.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
