"""Trace context: id minting/validation and the merged Perfetto document."""

from repro.telemetry import is_trace_id, merge_job_trace, mint_trace_id

_TRACE = "cafe0123cafe0123"

_JOB = {
    "job_id": "job-1",
    "state": "done",
    "cached": False,
    "owner": "sim-0",
    "submitted": 100.0,
    "started": 100.25,
    "finished": 101.0,
    "trace_id": _TRACE,
}


def _spans(doc):
    return [e for e in doc["traceEvents"] if e["ph"] != "M"]


class TestTraceIds:
    def test_valid_ids(self):
        assert is_trace_id("cafe0123")
        assert is_trace_id("a" * 32)

    def test_invalid_ids(self):
        for bad in ("", "short", "CAFE0123", "g" * 16, "a" * 33, 42, None):
            assert not is_trace_id(bad)

    def test_mint_honours_a_wellformed_request(self):
        assert mint_trace_id("cafe0123cafe0123") == _TRACE
        # normalised: surrounding space and case are forgiven
        assert mint_trace_id("  CAFE0123cafe0123 ") == _TRACE

    def test_mint_replaces_garbage(self):
        for bad in (None, "", "not hex!", "x" * 16):
            assert is_trace_id(mint_trace_id(bad))

    def test_minted_ids_are_distinct(self):
        assert len({mint_trace_id() for _ in range(32)}) == 32


class TestMergedTrace:
    def test_serving_spans_from_the_job_row(self):
        doc = merge_job_trace(_TRACE, job=_JOB, run_id="r" * 16)
        spans = _spans(doc)
        assert [e["name"] for e in spans] == [
            "ingress", "queue-wait", "claim+run (sim-0)",
        ]
        assert all(e["pid"] == 1 for e in spans)
        # wall-clock microseconds relative to submission
        queue = next(e for e in spans if e["name"] == "queue-wait")
        assert queue["ts"] == 0.0
        assert queue["dur"] == 250_000.0
        execute = spans[-1]
        assert execute["ts"] == 250_000.0
        assert execute["dur"] == 750_000.0

    def test_every_event_carries_the_trace_id(self):
        doc = merge_job_trace(
            _TRACE,
            job=_JOB,
            sim_trace={"traceEvents": [
                {"name": "reconfig", "ph": "X", "ts": 10, "dur": 8,
                 "pid": 0, "tid": 1, "args": {}},
            ]},
            events=[{"event": "job_claimed", "ts": 100.3, "pid": 4711,
                     "proc": "sim-0", "trace": _TRACE}],
            run_id="r" * 16,
        )
        spans = _spans(doc)
        assert {e["pid"] for e in spans} == {1, 2, 3}
        assert all(e["args"]["trace_id"] == _TRACE for e in spans)
        assert doc["otherData"]["trace_id"] == _TRACE
        assert doc["otherData"]["run_id"] == "r" * 16

    def test_sim_trace_moves_to_pid_2_untouched_otherwise(self):
        sim = {"traceEvents": [
            {"name": "thread_name", "ph": "M", "pid": 0, "tid": 7,
             "args": {"name": "fabric"}},
            {"name": "reconfig", "ph": "X", "ts": 42, "dur": 8,
             "pid": 0, "tid": 7, "args": {"evicted": []}},
        ]}
        doc = merge_job_trace(_TRACE, sim_trace=sim)
        moved = next(e for e in _spans(doc) if e["name"] == "reconfig")
        assert moved["pid"] == 2
        assert moved["ts"] == 42 and moved["tid"] == 7
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert any(
            e["args"]["name"] == "fabric" and e["pid"] == 2 for e in meta
        )

    def test_event_log_gets_one_track_per_process(self):
        events = [
            {"event": "job_submitted", "ts": 100.1, "pid": 1, "proc": "api-0"},
            {"event": "job_claimed", "ts": 100.3, "pid": 2, "proc": "sim-0"},
            {"event": "job_done", "ts": 100.9, "pid": 2, "proc": "sim-0"},
        ]
        doc = merge_job_trace(_TRACE, job=_JOB, events=events)
        instants = [e for e in _spans(doc) if e["pid"] == 3]
        assert len(instants) == 3
        assert len({e["tid"] for e in instants}) == 2  # api-0 and sim-0

    def test_timestamps_monotonic_within_each_track(self):
        events = [
            {"event": "b", "ts": 100.9, "pid": 2, "proc": "sim-0"},
            {"event": "a", "ts": 100.3, "pid": 2, "proc": "sim-0"},
        ]
        doc = merge_job_trace(_TRACE, job=_JOB, events=events)
        last: dict = {}
        for e in _spans(doc):
            track = (e["pid"], e["tid"])
            assert e["ts"] >= last.get(track, float("-inf")), track
            last[track] = e["ts"]

    def test_partial_evidence_still_renders(self):
        # no job row: the earliest event anchors the wall clock
        doc = merge_job_trace(
            _TRACE,
            events=[{"event": "x", "ts": 50.0, "pid": 1, "proc": "serve"}],
        )
        instant = _spans(doc)[0]
        assert instant["ts"] == 0.0
        # nothing at all: a valid, empty document
        empty = merge_job_trace(_TRACE)
        assert _spans(empty) == []
        assert empty["otherData"]["trace_id"] == _TRACE
