"""Batch-engine telemetry: outcomes, wall times, spans — behaviour unchanged."""

from repro.core.params import ProcessorParams
from repro.evaluation.batch import ResultCache, SimJob, run_many
from repro.telemetry import BatchTelemetry, MetricsRegistry, SpanTracer
from repro.workloads.kernels import checksum

_PARAMS = ProcessorParams(reconfig_latency=8)


def _jobs(n=1):
    # distinct iteration counts -> distinct content keys (the label is
    # deliberately not part of job_key)
    return [
        SimJob("steering", checksum(iterations=20 + i).program, _PARAMS,
               max_cycles=50_000, label=f"job-{i}")
        for i in range(n)
    ]


class TestBatchTelemetry:
    def test_executed_and_cache_hit_outcomes(self):
        tel = BatchTelemetry(registry=MetricsRegistry())
        cache = ResultCache()
        jobs = _jobs(1)
        first = run_many(jobs, cache=cache, telemetry=tel)
        again = run_many(jobs, cache=cache, telemetry=tel)
        assert first[0].to_dict() == again[0].to_dict()
        outcomes = tel.jobs
        assert outcomes.labels("executed").value == 1
        assert outcomes.labels("cache_hit").value == 1
        assert tel.run_wall.count == 1
        assert tel.inflight.value == 0.0
        assert tel.heartbeat.value > 0

    def test_dedup_counted(self):
        tel = BatchTelemetry(registry=MetricsRegistry())
        jobs = _jobs(1) * 3  # identical content key three times
        results = run_many(jobs, cache=ResultCache(), telemetry=tel)
        assert len(results) == 3
        assert tel.jobs.labels("executed").value == 1
        assert tel.jobs.labels("deduped").value == 2

    def test_results_identical_with_and_without_telemetry(self):
        jobs = _jobs(2)
        plain = run_many(jobs)
        observed = run_many(
            jobs, telemetry=BatchTelemetry(registry=MetricsRegistry())
        )
        assert [r.to_dict() for r in plain] == [r.to_dict() for r in observed]

    def test_spans_on_batch_track(self):
        tracer = SpanTracer()
        tel = BatchTelemetry(registry=MetricsRegistry(), tracer=tracer)
        run_many(_jobs(1), telemetry=tel)
        doc = tracer.to_chrome_trace()
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 1
        assert spans[0]["name"] == "job-0"
        tracks = {
            e["args"]["name"] for e in doc["traceEvents"] if e["ph"] == "M"
        }
        assert tracks == {"batch"}

    def test_parallel_path_reports_queue_wait(self):
        tel = BatchTelemetry(registry=MetricsRegistry())
        results = run_many(_jobs(2), workers=2, telemetry=tel)
        assert all(r.halted for r in results)
        assert tel.jobs.labels("executed").value == 2
        assert tel.run_wall.count == 2
        assert tel.queue_wait.count == 2
        assert tel.inflight.value == 0.0
