"""Structured JSON event log: ring, file sink, canonical lines, reads."""

import json

from repro.telemetry import EventLog, events_path_for, read_events
from repro.utils.canonical import canonical_dumps


class TestRing:
    def test_emit_returns_the_canonical_record(self):
        log = EventLog("api-0")
        record = log.emit("job_claimed", job_id="j1", queue_wait_s=0.5)
        assert record["event"] == "job_claimed"
        assert record["proc"] == "api-0"
        assert record["job_id"] == "j1"
        assert isinstance(record["ts"], float)
        assert isinstance(record["pid"], int)
        # no trace given -> no trace key (absent, not null)
        assert "trace" not in record

    def test_trace_id_is_kept_when_given(self):
        log = EventLog()
        record = log.emit("http_request", trace="cafe0123cafe0123", path="/")
        assert record["trace"] == "cafe0123cafe0123"

    def test_ring_is_bounded_but_emitted_counts_all(self):
        log = EventLog(capacity=4)
        for i in range(10):
            log.emit("tick", n=i)
        assert len(log) == 4
        assert log.emitted == 10
        assert [r["n"] for r in log.tail()] == [6, 7, 8, 9]

    def test_tail_filters_and_keeps_newest(self):
        log = EventLog()
        log.emit("a", trace="aaaa1111aaaa1111", n=1)
        log.emit("b", trace="bbbb2222bbbb2222", n=2)
        log.emit("a", trace="aaaa1111aaaa1111", n=3)
        assert [r["n"] for r in log.tail(trace="aaaa1111aaaa1111")] == [1, 3]
        assert [r["n"] for r in log.tail(event="b")] == [2]
        assert [r["n"] for r in log.tail(1)] == [3]


class TestFileSink:
    def test_lines_are_canonical_json(self, tmp_path):
        sink = tmp_path / "events.jsonl"
        log = EventLog("serve", path=sink)
        record = log.emit("worker_started", worker="sim-0")
        log.close()
        lines = sink.read_text().splitlines()
        assert len(lines) == 1
        assert lines[0] == canonical_dumps(record)
        assert json.loads(lines[0])["worker"] == "sim-0"

    def test_sink_file_appears_on_first_emit_only(self, tmp_path):
        sink = tmp_path / "events.jsonl"
        log = EventLog(path=sink)
        assert not sink.exists()  # delay=True: no empty files left behind
        log.emit("boot")
        assert sink.exists()
        log.close()

    def test_two_logs_append_to_one_sink(self, tmp_path):
        """Supervisor workers share one sink file per store."""
        sink = tmp_path / "events.jsonl"
        a, b = EventLog("api-0", path=sink), EventLog("sim-0", path=sink)
        a.emit("x")
        b.emit("y")
        a.close(), b.close()
        procs = [json.loads(l)["proc"] for l in sink.read_text().splitlines()]
        assert procs == ["api-0", "sim-0"]


class TestReadEvents:
    def test_round_trip_with_filters_and_limit(self, tmp_path):
        sink = tmp_path / "events.jsonl"
        log = EventLog(path=sink)
        for i in range(5):
            log.emit("tick", trace="cafe0123cafe0123" if i % 2 else None, n=i)
        log.close()
        assert [r["n"] for r in read_events(sink)] == [0, 1, 2, 3, 4]
        assert [r["n"] for r in read_events(sink, limit=2)] == [3, 4]
        assert [
            r["n"] for r in read_events(sink, trace="cafe0123cafe0123")
        ] == [1, 3]

    def test_malformed_and_non_object_lines_are_skipped(self, tmp_path):
        sink = tmp_path / "events.jsonl"
        sink.write_text(
            '{"event": "ok", "n": 1}\n'
            "{torn write from a dying proc\n"
            "[1, 2, 3]\n"
            '{"event": "ok", "n": 2}\n'
        )
        assert [r["n"] for r in read_events(sink)] == [1, 2]

    def test_missing_file_is_empty_not_an_error(self, tmp_path):
        assert read_events(tmp_path / "nope.jsonl") == []


class TestEventsPathFor:
    def test_pairs_with_the_store_file(self):
        assert events_path_for("runs.sqlite") == "runs.sqlite.events.jsonl"

    def test_memory_stores_get_no_sink(self):
        assert events_path_for(None) is None
        assert events_path_for(":memory:") is None
