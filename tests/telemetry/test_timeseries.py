"""Unit tests for the bounded stride-downsampled series buffers."""

import pytest

from repro.telemetry import SeriesBank, StrideSeries


class TestStrideSeries:
    def test_keeps_everything_under_capacity(self):
        s = StrideSeries(capacity=16)
        for i in range(10):
            s.append(i, i * i)
        assert len(s) == 10
        assert s.stride == 1
        assert s.samples() == [(i, i * i) for i in range(10)]

    def test_capacity_is_never_exceeded(self):
        s = StrideSeries(capacity=32)
        for i in range(100_000):
            s.append(i, i)
        assert len(s) <= 32
        assert s.seen == 100_000

    def test_stride_doubles_and_points_stay_evenly_spaced(self):
        s = StrideSeries(capacity=8)
        for i in range(64):
            s.append(i, i)
        assert s.stride > 1
        xs = [x for x, _ in s.samples()]
        gaps = {b - a for a, b in zip(xs, xs[1:])}
        assert len(gaps) == 1  # uniform spacing after coarsening
        assert gaps == {s.stride}
        assert xs == sorted(xs)

    def test_coarsening_keeps_first_sample(self):
        s = StrideSeries(capacity=8)
        for i in range(1000):
            s.append(i, i)
        assert s.samples()[0] == (0, 0)

    def test_to_dict(self):
        s = StrideSeries(capacity=8)
        for i in range(5):
            s.append(i * 32, float(i))
        d = s.to_dict()
        assert d["x"] == [0, 32, 64, 96, 128]
        assert d["v"] == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert d["stride"] == 1
        assert d["seen"] == 5

    def test_minimum_capacity(self):
        with pytest.raises(ValueError):
            StrideSeries(capacity=3)


class TestSeriesBank:
    def test_lazily_creates_named_series(self):
        bank = SeriesBank(capacity=16)
        bank.append("ipc", 0, 1.0)
        bank.append("ipc", 32, 2.0)
        bank.append("occupancy", 0, 0.5)
        assert set(bank.names()) == {"ipc", "occupancy"}
        assert "ipc" in bank and "nope" not in bank
        assert len(bank) == 2
        assert bank.series("ipc").samples() == [(0, 1.0), (32, 2.0)]

    def test_to_dict_round_trips_through_json(self):
        import json

        bank = SeriesBank(capacity=16)
        bank.append("a", 1, 2)
        doc = json.loads(json.dumps(bank.to_dict()))
        assert doc["a"]["x"] == [1]
        assert doc["a"]["seen"] == 1
