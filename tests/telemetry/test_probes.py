"""Processor telemetry probes: the disabled contract, sampling, spans.

The load-bearing guarantee tested here: telemetry that is *disabled*
(or absent) leaves the simulation bit-identical to the seed fast path,
and telemetry that is *enabled* observes without perturbing results.
"""

import json

import pytest

from repro.core.baselines import steering_processor
from repro.core.params import ProcessorParams
from repro.core.processor import Processor
from repro.isa.futypes import FU_TYPES
from repro.telemetry import STAGES, ProcessorTelemetry, SpanTracer

_PARAMS = ProcessorParams(reconfig_latency=8)


def _program():
    from repro.workloads.kernels import checksum

    return checksum(iterations=30).program


class TestDisabledContract:
    def test_disabled_is_inactive(self):
        assert ProcessorTelemetry.disabled().active is False
        assert ProcessorTelemetry().active is True
        assert ProcessorTelemetry(tracer=SpanTracer()).active is True

    def test_disabled_normalises_to_none(self):
        proc = steering_processor(
            _program(), _PARAMS, telemetry=ProcessorTelemetry.disabled()
        )
        assert proc.telemetry is None

    def test_disabled_result_bit_identical_to_no_telemetry(self):
        plain = steering_processor(_program(), _PARAMS).run()
        disabled = steering_processor(
            _program(), _PARAMS, telemetry=ProcessorTelemetry.disabled()
        ).run()
        assert disabled.to_dict() == plain.to_dict()
        assert disabled.final_registers == plain.final_registers

    def test_attach_telemetry_returns_normalised_value(self):
        proc = steering_processor(_program(), _PARAMS)
        assert proc.attach_telemetry(ProcessorTelemetry.disabled()) is None
        tel = ProcessorTelemetry()
        assert proc.attach_telemetry(tel) is tel
        assert proc.telemetry is tel


class TestEnabledObservation:
    def test_enabled_does_not_change_the_simulation(self):
        plain = steering_processor(_program(), _PARAMS).run()
        tel = ProcessorTelemetry(tracer=SpanTracer())
        observed = steering_processor(
            _program(), _PARAMS, telemetry=tel
        ).run()
        assert observed.to_dict() == plain.to_dict()

    def test_counters_match_the_result(self):
        tel = ProcessorTelemetry()
        result = steering_processor(_program(), _PARAMS, telemetry=tel).run()
        r = tel.registry
        assert r.get("repro_sim_cycles_total").value == result.cycles
        assert r.get("repro_sim_retired_total").value == result.retired
        assert (
            r.get("repro_sim_reconfigurations_total").value
            == result.reconfigurations
        )

    def test_series_catalogue(self):
        tel = ProcessorTelemetry(sample_interval=16)
        steering_processor(_program(), _PARAMS, telemetry=tel).run()
        names = set(tel.series.names())
        expected = {
            "windowed_ipc", "slot_occupancy", "reconfiguring_slots",
            "ruu_depth", "ready_depth", "availability_bits", "cem_error",
        }
        for t in FU_TYPES:
            expected.add(f"demand_{t.short_name}")
            expected.add(f"avail_{t.short_name}")
        assert names == expected

    def test_sample_x_axis_follows_interval(self):
        tel = ProcessorTelemetry(sample_interval=16)
        steering_processor(_program(), _PARAMS, telemetry=tel).run()
        xs = [x for x, _ in tel.series.series("windowed_ipc").samples()]
        assert xs == sorted(xs)
        # first sample lands on the 16th cycle (cycle index 15)
        assert xs[0] == 15
        assert all((b - a) == 16 for a, b in zip(xs, xs[1:]))

    def test_tracer_records_steering_activity(self):
        tracer = SpanTracer()
        tel = ProcessorTelemetry(tracer=tracer)
        result = steering_processor(_program(), _PARAMS, telemetry=tel).run()
        doc = tracer.to_chrome_trace()
        reconfigs = [
            e for e in doc["traceEvents"]
            if e["ph"] == "X" and e["name"].startswith("reconfig ")
        ]
        assert len(reconfigs) == result.reconfigurations
        assert any(
            e["name"] == "steer" for e in doc["traceEvents"] if e["ph"] == "i"
        )

    def test_snapshot_is_json_serialisable(self):
        tel = ProcessorTelemetry(tracer=SpanTracer())
        steering_processor(_program(), _PARAMS, telemetry=tel).run()
        doc = json.loads(json.dumps(tel.snapshot()))
        assert doc["version"] == 1
        assert doc["sample_interval"] == 32
        assert doc["series"]["windowed_ipc"]["x"]
        assert doc["span_events"] == len(tel.tracer)

    def test_summary_lines(self):
        tel = ProcessorTelemetry(tracer=SpanTracer())
        steering_processor(_program(), _PARAMS, telemetry=tel).run()
        text = "\n".join(tel.summary_lines())
        assert "cycles=" in text and "series:" in text and "trace:" in text


class TestStageProfiling:
    def test_profiled_step_produces_identical_results(self):
        plain = steering_processor(_program(), _PARAMS).run()
        tel = ProcessorTelemetry(profile_stages=True)
        profiled = steering_processor(
            _program(), _PARAMS, telemetry=tel
        ).run()
        assert profiled.to_dict() == plain.to_dict()

    def test_stage_wall_clock_accumulates(self):
        tel = ProcessorTelemetry(profile_stages=True, tracer=SpanTracer())
        steering_processor(_program(), _PARAMS, telemetry=tel).run()
        snap = tel.snapshot()
        wall = snap["stage_wall_seconds"]
        assert set(wall) == set(STAGES)
        assert sum(wall.values()) > 0.0
        stage_counter = tel.registry.get("repro_sim_stage_seconds_total")
        lines: list[str] = []
        stage_counter.render_into(lines)
        assert len(lines) == len(STAGES)
        # profile counter track sampled into the trace
        assert any(
            e["ph"] == "C" and e["name"] == "stage_us"
            for e in tel.tracer.to_chrome_trace()["traceEvents"]
        )

    def test_constructor_attachment_equivalent_to_attach(self):
        tel = ProcessorTelemetry()
        proc = Processor(_program(), params=_PARAMS, telemetry=tel)
        assert proc.telemetry is tel
