"""Unit tests for the metrics registry + Prometheus rendering."""

import math
import re

import pytest

from repro.telemetry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)

_SAMPLE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? '
    r'(-?\d+(\.\d+)?([eE][+-]?\d+)?|\+Inf|NaN)$'
)


class TestCounter:
    def test_inc(self):
        c = Counter("c_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c_total").inc(-1)

    def test_labels_are_independent_children(self):
        c = Counter("jobs_total", labelnames=("outcome",))
        c.labels("hit").inc(3)
        c.labels("miss").inc()
        assert c.labels("hit").value == 3
        assert c.labels("miss").value == 1
        assert c.labels("hit") is c.labels("hit")

    def test_wrong_label_arity(self):
        c = Counter("jobs_total", labelnames=("a", "b"))
        with pytest.raises(ValueError):
            c.labels("only-one")


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value == 4.0


class TestHistogram:
    def test_observe_routes_to_buckets(self):
        h = Histogram("lat_seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(99)
        assert h.counts == [1, 1, 1]
        assert h.count == 3
        assert h.sum == pytest.approx(99.55)

    def test_render_is_cumulative_with_inf(self):
        r = MetricsRegistry()
        h = r.histogram("lat_seconds", "latency", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(99)
        text = r.render()
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3' in text
        assert "lat_seconds_count 3" in text

    def test_labelled_children_share_bucket_layout(self):
        h = Histogram("lat_seconds", labelnames=("k",), buckets=(0.5,))
        h.labels("a").observe(0.1)
        h.labels("a").observe(9)
        child = h.labels("a")
        assert child.buckets == (0.5,)
        assert child.counts == [1, 1]

    def test_labelled_children_with_default_buckets(self):
        h = Histogram("lat_seconds", labelnames=("route",))
        h.labels("/x").observe(0.2)
        assert h.labels("/x").count == 1


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        r = MetricsRegistry()
        assert r.counter("c_total") is r.counter("c_total")

    def test_kind_mismatch_raises(self):
        r = MetricsRegistry()
        r.counter("x_total")
        with pytest.raises(ValueError):
            r.gauge("x_total")

    def test_render_exposition_format(self):
        r = MetricsRegistry()
        r.counter("a_total", "help a").inc()
        r.gauge("b", "help b").set(1.5)
        r.histogram("c_seconds", "help c", buckets=(1.0,)).observe(0.5)
        labelled = r.counter("d_total", "help d", ("k",))
        labelled.labels('va"lue\n').inc()
        text = r.render()
        assert text.endswith("\n")
        lines = text.splitlines()
        for line in lines:
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                continue
            assert _SAMPLE.match(line), line
        assert "# TYPE a_total counter" in lines
        assert "# TYPE b gauge" in lines
        assert "# TYPE c_seconds histogram" in lines
        # label escaping: quote and newline survive as escapes
        assert 'd_total{k="va\\"lue\\n"} 1' in text

    def test_truthy(self):
        assert MetricsRegistry()
        assert bool(NULL_REGISTRY) is False


class TestNullRegistry:
    def test_everything_is_noop(self):
        r = NullRegistry()
        c = r.counter("x_total")
        c.inc()
        c.labels("a").inc(5)
        r.gauge("g").set(9)
        r.histogram("h").observe(1)
        assert c.value == 0.0
        assert r.render() == ""
        assert r.get("x_total") is None

    def test_inf_formatting(self):
        r = MetricsRegistry()
        r.gauge("g").set(math.inf)
        assert "g +Inf" in r.render()


class TestSnapshotAndMerge:
    def _registry(self):
        r = MetricsRegistry()
        r.counter("req_total", "requests", ("route",)).labels("/api").inc(3)
        r.gauge("up_seconds", "uptime").set(12.5)
        h = r.histogram("lat_seconds", "latency", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(5.0)
        return r

    def test_snapshot_is_json_safe_and_complete(self):
        import json

        snap = self._registry().snapshot()
        json.dumps(snap)  # must round-trip through the store's JSON column
        assert snap["req_total"]["kind"] == "counter"
        assert snap["req_total"]["labels"] == ["route"]
        assert snap["req_total"]["series"] == [
            {"labels": ["/api"], "value": 3.0}
        ]
        assert snap["up_seconds"]["series"] == [{"labels": [], "value": 12.5}]
        assert snap["lat_seconds"]["buckets"] == [0.1, 1.0]
        assert snap["lat_seconds"]["series"] == [
            {"labels": [], "counts": [1, 0, 1], "sum": 5.05}
        ]

    def test_merge_appends_worker_label(self):
        from repro.telemetry import render_merged

        merged = render_merged(
            {"api-0": self._registry().snapshot(),
             "api-1": self._registry().snapshot()}
        )
        lines = merged.splitlines()
        for line in lines:
            if not line.startswith("#"):
                assert _SAMPLE.match(line), line
        assert 'req_total{route="/api",worker="api-0"} 3' in lines
        assert 'req_total{route="/api",worker="api-1"} 3' in lines
        assert 'up_seconds{worker="api-0"} 12.5' in lines
        # histograms re-emit cumulative buckets per worker
        assert 'lat_seconds_bucket{worker="api-0",le="0.1"} 1' in lines
        assert 'lat_seconds_bucket{worker="api-0",le="+Inf"} 2' in lines
        assert 'lat_seconds_sum{worker="api-1"} 5.05' in lines
        assert 'lat_seconds_count{worker="api-1"} 2' in lines
        # HELP/TYPE emitted once per family, not per worker
        assert merged.count("# TYPE req_total counter") == 1

    def test_merge_skips_kind_mismatch(self):
        from repro.telemetry import render_merged

        good = {"m": {"kind": "counter", "help": "", "labels": [],
                      "series": [{"labels": [], "value": 1.0}]}}
        bad = {"m": {"kind": "gauge", "help": "", "labels": [],
                     "series": [{"labels": [], "value": 9.0}]}}
        merged = render_merged({"api-0": good, "api-1": bad})
        assert 'm{worker="api-0"} 1' in merged
        # the conflicting series is dropped, not mislabelled
        assert 'worker="api-1"' not in merged

    def test_merge_empty_is_valid(self):
        from repro.telemetry import render_merged

        assert render_merged({}) == "\n"
