"""The steering decision ledger: contents, bounds, and the no-perturb rule.

The load-bearing guarantee: attaching a ledger never changes simulation
results — ``SimulationResult.to_dict()`` stays bit-identical with the
ledger on and off (the fuzzer's ``metamorphic-ledger`` check rotates over
the same property on random programs).
"""

import json

import pytest

from repro.core.baselines import steering_processor
from repro.core.params import ProcessorParams
from repro.isa.futypes import FU_TYPES
from repro.telemetry import DecisionLedger, ProcessorTelemetry

_PARAMS = ProcessorParams(reconfig_latency=8)


def _program():
    from repro.workloads.kernels import checksum

    return checksum(iterations=30).program


def _run_with_ledger(capacity=64, window=32):
    ledger = DecisionLedger(capacity=capacity, window=window)
    tel = ProcessorTelemetry(ledger=ledger)
    result = steering_processor(_program(), _PARAMS, telemetry=tel).run()
    return ledger, result


class TestNoPerturbation:
    def test_ledger_on_off_bit_identical(self):
        plain = steering_processor(_program(), _PARAMS).run()
        _, observed = _run_with_ledger()
        assert observed.to_dict() == plain.to_dict()
        assert observed.final_registers == plain.final_registers

    def test_ledger_alone_keeps_telemetry_active(self):
        from repro.telemetry.registry import NULL_REGISTRY

        tel = ProcessorTelemetry(
            registry=NULL_REGISTRY, series=False,
            ledger=DecisionLedger(),
        )
        assert tel.active is True


class TestRecordedDecisions:
    def test_decisions_carry_the_documented_fields(self):
        ledger, _ = _run_with_ledger()
        decisions = ledger.decisions()
        assert decisions, "steering run produced no decisions"
        short_names = {t.short_name for t in FU_TYPES}
        for d in decisions:
            assert set(d["demand"]) == short_names
            assert set(d["idle"]) == short_names
            assert d["selection"] >= 0
            assert isinstance(d["availability_bits"], int)
            assert 0.0 <= d["predicted_ipc"] <= _PARAMS.retire_width
        # every decision except a still-open last one has been judged
        for d in decisions[:-1]:
            assert d["realized_ipc"] is not None
            assert d["prediction_error"] == pytest.approx(
                d["realized_ipc"] - d["predicted_ipc"]
            )
            assert 1 <= d["window"]

    def test_seen_counts_finalized_decisions(self):
        ledger, _ = _run_with_ledger()
        assert ledger.seen >= 1
        assert ledger.dropped == ledger.seen - len(ledger)

    def test_to_dict_is_json_serialisable(self):
        ledger, _ = _run_with_ledger()
        doc = json.loads(json.dumps(ledger.to_dict()))
        assert doc["version"] == 1
        assert doc["seen"] == ledger.seen
        assert len(doc["decisions"]) == len(ledger.decisions())

    def test_snapshot_reports_decision_count(self):
        ledger = DecisionLedger()
        tel = ProcessorTelemetry(ledger=ledger)
        steering_processor(_program(), _PARAMS, telemetry=tel).run()
        assert tel.snapshot()["decision_count"] == ledger.seen


# ----------------------------------------------- synthetic stride coarsening
class _FakeRUU:
    def __init__(self):
        self.retired = 0

    def ready_unscheduled(self):
        return []


class _FakeFabric:
    def idle_counts(self):
        return {t: 0 for t in FU_TYPES}

    def availability_bits(self):
        return 0


class _FakeProc:
    def __init__(self):
        self.ruu = _FakeRUU()
        self.fabric = _FakeFabric()
        self.params = _PARAMS


class _FakeManager:
    last_error = 0
    last_result = None

    def __init__(self):
        self.last_selection = None


def _drive(ledger, flips, step=100):
    """Flip the selection ``flips`` times; each flip finalizes the last."""
    proc, manager = _FakeProc(), _FakeManager()
    for i in range(flips):
        manager.last_selection = i % 2 + 1
        ledger.on_cycle(proc, i * step, manager)
    return ledger


class TestBoundedMemory:
    def test_capacity_floor(self):
        with pytest.raises(ValueError, match="at least 4"):
            DecisionLedger(capacity=2)

    def test_stride_doubles_instead_of_growing(self):
        ledger = _drive(DecisionLedger(capacity=8, window=50), flips=100)
        assert len(ledger) <= 8 + 1  # kept records + the open decision
        assert ledger.stride > 1
        assert ledger.seen == 99  # the last decision is still open
        assert ledger.dropped == ledger.seen - len(ledger)

    def test_kept_decisions_stay_spread_over_the_run(self):
        ledger = _drive(DecisionLedger(capacity=8, window=50), flips=200)
        kept = [d["cycle"] for d in ledger.decisions()[:-1]]
        assert kept == sorted(kept)
        assert kept[0] == 0  # the first decision is never thinned away
        assert kept[-1] >= 100 * 100  # coverage reaches the back half

    def test_small_runs_keep_everything(self):
        ledger = _drive(DecisionLedger(capacity=64, window=50), flips=10)
        assert ledger.stride == 1
        assert ledger.dropped == 0
        assert ledger.seen == 9
