"""Tests for the functional reference interpreter."""

import pytest

from repro.core.reference import run_reference
from repro.errors import SimulationError
from repro.isa.assembler import assemble
from repro.isa.futypes import FUType


class TestReference:
    def test_simple_arithmetic(self):
        ref = run_reference(assemble("li x1, 6\nli x2, 7\nmul x3, x1, x2\nhalt\n"))
        assert ref.registers.x(3) == 42
        assert ref.halted

    def test_loop(self):
        ref = run_reference(
            assemble("li x1, 5\nli x2, 0\nloop: add x2, x2, x1\naddi x1, x1, -1\n"
                      "bne x1, x0, loop\nhalt\n")
        )
        assert ref.registers.x(2) == 15

    def test_memory(self):
        ref = run_reference(
            assemble(".data\nv: .word 11\nr: .word 0\n.text\n"
                      "lw x1, v(x0)\naddi x1, x1, 1\nsw x1, r(x0)\nhalt\n")
        )
        assert ref.memory.peek_word(4) == 12

    def test_fp(self):
        ref = run_reference(
            assemble(".data\na: .float 1.5\n.text\n"
                      "flw f1, a(x0)\nfadd f2, f1, f1\nhalt\n")
        )
        assert ref.registers.f(2) == 3.0

    def test_call_ret(self):
        ref = run_reference(
            assemble("main: call fn\nsw x5, 0(x0)\nhalt\nfn: li x5, 77\nret\n")
        )
        assert ref.memory.peek_word(0) == 77

    def test_trace_records_fu_types(self):
        ref = run_reference(assemble("add x1, x2, x3\nlw x4, 0(x0)\nhalt\n"))
        assert ref.trace == [FUType.INT_ALU, FUType.LSU, FUType.INT_ALU]

    def test_runaway_detected(self):
        with pytest.raises(SimulationError, match="exceeded"):
            run_reference(assemble("loop: j loop\nhalt\n"), max_instructions=100)

    def test_falling_off_program_detected(self):
        with pytest.raises(SimulationError, match="fell off"):
            run_reference(assemble("add x1, x2, x3\n"))

    def test_entry_label_used(self):
        ref = run_reference(
            assemble("li x1, 1\nhalt\nmain: li x1, 2\nhalt\n")
        )
        assert ref.registers.x(1) == 2
