"""Tests for per-cycle event recording and the fabric timeline."""

import pytest

from repro.core.baselines import steering_processor
from repro.core.params import ProcessorParams
from repro.core.policies import PaperSteering
from repro.core.processor import Processor
from repro.core.tracing import CycleEvents, render_fabric_timeline, slot_glyphs
from repro.fabric.fabric import Fabric
from repro.isa.assembler import assemble
from repro.isa.futypes import FUType
from repro.workloads.kernels import checksum

_PARAMS = ProcessorParams(reconfig_latency=4)


class TestSlotGlyphs:
    def test_empty_fabric(self):
        assert slot_glyphs(Fabric()) == "." * 8

    def test_reconfiguring_slot(self):
        f = Fabric(reconfig_latency=10)
        f.rfus.begin_reconfigure(0, FUType.INT_ALU)
        assert slot_glyphs(f)[0] == "*"

    def test_loaded_and_busy_units(self):
        f = Fabric(reconfig_latency=1)
        f.rfus.begin_reconfigure(0, FUType.FP_ALU)
        while not f.rfus.bus_free:
            f.tick()
        assert slot_glyphs(f)[:3] == "FFF"  # idle: uppercase, spans shown
        f.rfus.units_of_type(FUType.FP_ALU)[0].occupy(5)
        assert slot_glyphs(f)[:3] == "fff"


class TestEventRecording:
    def test_last_events_always_kept(self):
        kernel = checksum(iterations=10)
        proc = steering_processor(kernel.program, _PARAMS)
        proc.run()
        assert proc.last_events is not None
        assert proc.events is None  # history off by default

    def test_history_recorded_when_enabled(self):
        kernel = checksum(iterations=10)
        proc = Processor(kernel.program, params=_PARAMS, record_events=True)
        result = proc.run()
        assert len(proc.events) == result.cycles
        assert proc.events[0].cycle == 0
        # something was fetched in cycle 0 and something retired eventually
        assert proc.events[0].fetched
        assert any(e.retired for e in proc.events)

    def test_retired_seqs_cover_all_instructions(self):
        kernel = checksum(iterations=5)
        proc = Processor(kernel.program, params=_PARAMS, record_events=True)
        result = proc.run()
        retired = [s for e in proc.events for s in e.retired]
        assert len(retired) == result.retired
        assert retired == sorted(retired)  # in-order retirement visible

    def test_flush_events_visible(self):
        # alternating branch: guaranteed mispredicts
        program = assemble(
            "li x1, 16\nloop: andi x2, x1, 1\nbeq x2, x0, skip\n"
            "addi x3, x3, 1\nskip: addi x1, x1, -1\nbne x1, x0, loop\nhalt\n"
        )
        proc = Processor(program, params=_PARAMS, record_events=True)
        proc.run()
        assert any(e.flushed for e in proc.events)

    def test_selection_recorded_with_traced_manager(self):
        kernel = checksum(iterations=20)
        proc = Processor(
            kernel.program,
            params=_PARAMS,
            policy=PaperSteering(record_trace=True),
            record_events=True,
        )
        proc.run()
        assert any(e.selection is not None for e in proc.events)


class TestTimelineRendering:
    def test_renders_rows(self):
        events = [
            CycleEvents(cycle=i, slots="A" * 8, issued=(i,), selection=0)
            for i in range(10)
        ]
        text = render_fabric_timeline(events)
        assert text.count("\n") == 11  # header + rule + 10 rows

    def test_stride_and_cap(self):
        events = [CycleEvents(cycle=i, slots="." * 8) for i in range(100)]
        text = render_fabric_timeline(events, stride=10)
        assert len(text.splitlines()) == 12
        capped = render_fabric_timeline(events, stride=1, max_rows=5)
        # 5 rows shown, so exactly 95 cycles (= rows at stride 1) remain
        assert "(95 more cycles)" in capped

    def test_truncation_counts_rows_not_events_with_stride(self):
        events = [CycleEvents(cycle=i, slots="." * 8) for i in range(100)]
        capped = render_fabric_timeline(events, stride=3, max_rows=10)
        # rows are cycles 0,3,...,27; truncation happens at i=30 with 70
        # events left, which is ceil(70/3) = 24 suppressed rows.
        assert "(24 more rows, 70 more cycles)" in capped
        assert len(capped.splitlines()) == 2 + 10 + 1  # header+rule+rows+note

    def test_flush_marker(self):
        text = render_fabric_timeline([CycleEvents(cycle=0, slots=".", flushed=2)])
        assert "FLUSH" in text
