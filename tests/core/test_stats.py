"""Unit tests for the SimulationResult record."""

import pytest

from repro.core.stats import SimulationResult
from repro.isa.futypes import FUType


def _result(**overrides):
    base = dict(policy="test", cycles=100, retired=150, halted=True)
    base.update(overrides)
    return SimulationResult(**base)


class TestIpc:
    def test_ipc(self):
        assert _result().ipc == 1.5

    def test_zero_cycles(self):
        assert _result(cycles=0, retired=0).ipc == 0.0


class TestBranchAccuracy:
    def test_no_branches_is_perfect(self):
        assert _result().branch_accuracy == 1.0

    def test_accuracy(self):
        r = _result(branch_resolutions=10, mispredictions=3)
        assert r.branch_accuracy == pytest.approx(0.7)


class TestUtilisation:
    def test_fraction(self):
        r = _result(
            busy_unit_cycles={FUType.INT_ALU: 30},
            configured_unit_cycles={FUType.INT_ALU: 100},
        )
        assert r.utilisation(FUType.INT_ALU) == pytest.approx(0.3)

    def test_unconfigured_type_is_zero(self):
        assert _result().utilisation(FUType.FP_MDU) == 0.0


class TestToDict:
    def test_covers_every_scalar_field(self):
        """to_dict must round-trip every numeric/bool dataclass field.

        Guards against the historical drift where fields added to the
        dataclass (fetch_packets, fetched, steering_mean_error) never
        made it into the serialised record.
        """
        from dataclasses import fields

        r = _result(
            mispredictions=1, branch_resolutions=9, flushes=2, squashed=3,
            memory_stalls=4, scheduling_replays=5, frontend_empty_cycles=6,
            resource_blocked_cycles=7, contention_cycles=8,
            reconfigurations=9, reconfig_bus_cycles=10, fetch_packets=11,
            fetched=12, trace_cache_hits=13, trace_cache_misses=14,
            steering_mean_error=0.25, steering_kept_fraction=0.5,
        )
        d = r.to_dict()
        for f in fields(SimulationResult):
            value = getattr(r, f.name)
            if isinstance(value, (bool, int, float)):
                assert f.name in d, f"to_dict missing field {f.name!r}"
                assert d[f.name] == value

    def test_json_serialisable(self):
        import json

        r = _result(retired_per_type={FUType.INT_ALU: 10})
        round_tripped = json.loads(json.dumps(r.to_dict()))
        assert round_tripped["retired_per_type"] == {"IALU": 10}
        assert round_tripped["fetch_packets"] == 0
        assert round_tripped["steering_mean_error"] == 0.0


class TestSummary:
    def test_contains_core_fields(self):
        text = _result().summary()
        for token in ("policy", "IPC", "dynamic mix", "unit utilisation", "stalls"):
            assert token in text

    def test_steering_fields_only_when_present(self):
        assert "steering picks" not in _result().summary()
        r = _result(steering_selections={0: 5, 1: 3}, steering_kept_fraction=0.6)
        text = r.summary()
        assert "steering picks" in text and "cfg0:5" in text

    def test_stall_fields_rendered(self):
        r = _result(
            frontend_empty_cycles=3,
            resource_blocked_cycles=7,
            contention_cycles=11,
        )
        text = r.summary()
        assert "frontend-empty 3" in text
        assert "resource-blocked 7" in text
        assert "contention 11" in text
