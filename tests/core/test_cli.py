"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestKernels:
    def test_lists_kernels(self, capsys):
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        assert "checksum" in out and "saxpy" in out


class TestRun:
    def test_run_kernel_by_name(self, capsys):
        rc = main(["run", "checksum", "--reconfig-latency", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "IPC" in out

    def test_run_assembly_file(self, tmp_path, capsys):
        src = tmp_path / "prog.s"
        src.write_text("li x1, 3\nloop: addi x1, x1, -1\nbne x1, x0, loop\nhalt\n")
        assert main(["run", str(src)]) == 0
        assert "halted            : True" in capsys.readouterr().out

    def test_unknown_policy(self, capsys):
        rc = main(["run", "checksum", "--policy", "bogus"])
        assert rc == 2
        assert "unknown policy" in capsys.readouterr().err

    def test_compare_mode(self, capsys):
        rc = main(["run", "checksum", "--compare", "--reconfig-latency", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        for policy in ("steering", "ffu-only", "oracle", "demand"):
            assert policy in out

    def test_non_halting_program_exit_code(self, tmp_path, capsys):
        src = tmp_path / "loop.s"
        src.write_text("loop: j loop\nhalt\n")
        assert main(["run", str(src), "--max-cycles", "200"]) == 1

    def test_synthetic_mix_target(self, capsys):
        rc = main(["run", "mix:int:10", "--reconfig-latency", "4"])
        assert rc == 0
        assert "halted            : True" in capsys.readouterr().out

    def test_phased_target(self, capsys):
        rc = main(["run", "phased:1", "--reconfig-latency", "4"])
        assert rc == 0

    def test_unknown_mix_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "mix:quantum"])

    def test_json_output(self, capsys):
        import json

        rc = main(["run", "checksum", "--json", "--reconfig-latency", "4"])
        assert rc == 0
        record = json.loads(capsys.readouterr().out)
        assert record["halted"] is True
        assert record["ipc"] > 0
        assert "IALU" in record["retired_per_type"]


class TestDisasm:
    def test_disassembles_kernel(self, capsys):
        assert main(["disasm", "memcpy"]) == 0
        out = capsys.readouterr().out
        assert "lw" in out and "0x" in out


class TestArtifacts:
    def test_single_artifact(self, capsys):
        assert main(["artifacts", "table2"]) == 0
        out = capsys.readouterr().out
        assert "SPAN" in out

    def test_unknown_artifact(self, capsys):
        assert main(["artifacts", "bogus"]) == 2

    def test_fig456(self, capsys):
        assert main(["artifacts", "fig456"]) == 0
        assert "FPMul" in capsys.readouterr().out


class TestTrace:
    def test_trace_output(self, capsys):
        rc = main(["trace", "checksum", "--reconfig-latency", "4", "--stride", "10"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "cycle" in out and "slots" in out
