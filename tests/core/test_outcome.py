"""Structured run outcome: completed / cutoff / deadlock classification."""

from repro.core.baselines import policy_catalogue, steering_processor
from repro.core.params import ProcessorParams
from repro.core.processor import DEADLOCK_WINDOW
from repro.core.stats import (
    OUTCOME_COMPLETED,
    OUTCOME_CUTOFF,
    OUTCOME_DEADLOCK,
)
from repro.isa.assembler import assemble
from repro.workloads.kernels import checksum

PARAMS = ProcessorParams(reconfig_latency=8)


def test_halted_run_is_completed():
    result = steering_processor(checksum(iterations=5).program, PARAMS).run(
        max_cycles=200_000
    )
    assert result.halted
    assert result.outcome == OUTCOME_COMPLETED


def test_budget_exhaustion_is_cutoff():
    result = steering_processor(checksum(iterations=20).program, PARAMS).run(
        max_cycles=50
    )
    assert not result.halted
    assert result.outcome == OUTCOME_CUTOFF


def test_forward_progress_spin_is_cutoff_not_deadlock():
    # an infinite loop keeps *retiring*, so however long it runs it is a
    # cutoff (slow/endless program), never a deadlock (stuck pipeline)
    spin = assemble(".text\nmain:\nli x1, 1\nspin:\nbne x1, x0, spin\nhalt")
    result = steering_processor(spin, PARAMS).run(
        max_cycles=DEADLOCK_WINDOW + 2000
    )
    assert result.outcome == OUTCOME_CUTOFF
    assert result.retired > 0


def test_stalled_pipeline_classified_as_deadlock():
    # white-box: age the last-retirement stamp past the window and confirm
    # result() reads the stall as a deadlock, not a cutoff
    proc = steering_processor(checksum(iterations=5).program, PARAMS)
    proc.run(max_cycles=30)
    proc._last_retire_cycle = proc.cycle_count - DEADLOCK_WINDOW
    assert proc.result().outcome == OUTCOME_DEADLOCK


def test_outcome_in_result_record():
    result = steering_processor(checksum(iterations=5).program, PARAMS).run(
        max_cycles=200_000
    )
    record = result.to_dict()
    assert record["outcome"] == OUTCOME_COMPLETED
    assert isinstance(record["final_state_digest"], str)
    assert len(record["final_state_digest"]) == 64


def test_final_state_digest_deterministic_and_discriminating():
    program = checksum(iterations=5).program
    a = steering_processor(program, PARAMS).run(max_cycles=200_000)
    b = steering_processor(program, PARAMS).run(max_cycles=200_000)
    assert a.final_state_digest == b.final_state_digest
    other = steering_processor(
        checksum(iterations=7).program, PARAMS
    ).run(max_cycles=200_000)
    assert a.final_state_digest != other.final_state_digest


def test_every_policy_reports_completed_on_a_halting_program():
    program = checksum(iterations=5).program
    for name, factory in policy_catalogue().items():
        result = factory(program, PARAMS).run(max_cycles=200_000)
        assert result.outcome == OUTCOME_COMPLETED, name
