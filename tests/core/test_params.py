"""Tests for processor parameters and their validation."""

import pytest

from repro.core.params import ProcessorParams
from repro.errors import SimulationError


class TestDefaults:
    def test_paper_defaults(self):
        p = ProcessorParams()
        assert p.window_size == 7   # the paper's 7-entry queue
        assert p.n_slots == 8       # eight RFU slots
        assert p.reconfig_latency == 16
        assert p.fetch_width == 4

    def test_frozen(self):
        p = ProcessorParams()
        with pytest.raises(AttributeError):
            p.window_size = 9  # type: ignore[misc]


class TestValidation:
    @pytest.mark.parametrize(
        "field",
        [
            "window_size",
            "fetch_width",
            "retire_width",
            "n_slots",
            "reconfig_latency",
            "dmem_size",
            "decode_capacity",
        ],
    )
    def test_positive_required(self, field):
        with pytest.raises(SimulationError):
            ProcessorParams(**{field: 0})

    def test_custom_values_accepted(self):
        p = ProcessorParams(window_size=16, reconfig_latency=1)
        assert p.window_size == 16
