"""Tests for the steering policies and baselines."""

import pytest

from repro.core.baselines import (
    fixed_superscalar,
    oracle_processor,
    policy_catalogue,
    random_processor,
    static_processor,
    steering_processor,
)
from repro.core.params import ProcessorParams
from repro.core.policies import (
    NoSteering,
    OracleSteering,
    PaperSteering,
    RandomSteering,
    StaticConfiguration,
)
from repro.fabric.configuration import (
    CONFIG_FLOATING,
    CONFIG_INTEGER,
    PREDEFINED_CONFIGS,
)
from repro.fabric.fabric import Fabric
from repro.isa.futypes import FUType
from repro.workloads.kernels import checksum, newton_sqrt, saxpy

_FAST = ProcessorParams(reconfig_latency=2)


class TestNoSteering:
    def test_never_reconfigures(self):
        kernel = checksum(iterations=40)
        result = fixed_superscalar(kernel.program, _FAST).run()
        assert result.reconfigurations == 0

    def test_name(self):
        assert NoSteering().name == "ffu-only"


class TestStaticConfiguration:
    def test_loads_config_then_stops(self):
        kernel = checksum(iterations=200)
        proc = static_processor(kernel.program, CONFIG_INTEGER, _FAST)
        result = proc.run()
        # exactly the 6 units of the integer config were loaded, once
        assert result.reconfigurations == 6
        counts = proc.fabric.rfus.counts()
        assert counts[FUType.INT_ALU] == 4 and counts[FUType.INT_MDU] == 2

    def test_name_includes_config(self):
        assert StaticConfiguration(CONFIG_FLOATING).name == "static-floating"

    def test_mismatched_static_config_never_adapts(self):
        kernel = newton_sqrt(iterations=20)  # FP workload
        proc = static_processor(kernel.program, CONFIG_INTEGER, _FAST)
        proc.run()
        assert proc.fabric.rfus.counts().get(FUType.FP_MDU, 0) == 0


class TestRandomSteering:
    def test_reconfigures_over_time(self):
        kernel = checksum(iterations=500)
        proc = random_processor(kernel.program, _FAST, period=40, seed=1)
        result = proc.run()
        assert result.reconfigurations > 0

    def test_seed_determinism(self):
        kernel = checksum(iterations=200)
        a = random_processor(kernel.program, _FAST, period=30, seed=5).run()
        b = random_processor(kernel.program, _FAST, period=30, seed=5).run()
        assert a.cycles == b.cycles
        assert a.reconfigurations == b.reconfigurations


class TestOracleSteering:
    def test_oracle_steers_toward_future_fp_phase(self):
        kernel = newton_sqrt(iterations=30)
        proc = oracle_processor(kernel.program, _FAST, lookahead=64)
        proc.run()
        # the oracle retargets near the program tail, so check the load
        # history: an FP unit must have been brought in during the run
        loaded = [plan.fu_type for plan in proc.policy.loader.history]
        assert FUType.FP_MDU in loaded or FUType.FP_ALU in loaded

    def test_oracle_requires_trace(self):
        policy = OracleSteering(trace=[], lookahead=8)
        policy.bind(Fabric(reconfig_latency=1))
        policy.cycle([], retired=0)  # empty trace: keeps current, no crash


class TestPaperSteeringPolicy:
    def test_describe_mentions_metric(self):
        assert "shift-approximate" in PaperSteering().describe()
        assert "exact" in PaperSteering(use_exact_metric=True).describe()

    def test_exact_metric_name(self):
        assert PaperSteering(use_exact_metric=True).name == "steering-exact"

    def test_steering_beats_ffu_only_on_matched_workload(self):
        """The headline direction: steering adds integer units for an
        integer workload and outperforms the FFU-only baseline."""
        kernel = checksum(iterations=400)
        steer = steering_processor(kernel.program, _FAST).run()
        ffu = fixed_superscalar(kernel.program, _FAST).run()
        assert steer.ipc > ffu.ipc


class TestCatalogue:
    def test_contains_all_policies(self):
        cat = policy_catalogue()
        assert set(cat) == {
            "ffu-only",
            "steering",
            "random",
            "oracle",
            "demand",
            "static-integer",
            "static-memory",
            "static-floating",
        }

    def test_factories_produce_working_processors(self):
        kernel = saxpy(n=6)
        for name, factory in policy_catalogue().items():
            proc = factory(kernel.program, _FAST)
            result = proc.run(max_cycles=100_000)
            assert result.halted, name
            kernel.verify(proc.dmem)
