"""Fast path vs traced path: bit-identical simulation results.

The per-cycle fast path (no event recording, no steering trace, cached
availability, memoised selection) must not change *any* architected or
statistical outcome — only the wall-clock cost of producing it.  These
tests run every seed kernel under both modes and compare the complete
:class:`SimulationResult` records field by field.
"""

import pytest

from repro.core.baselines import fixed_superscalar, steering_processor
from repro.core.params import ProcessorParams
from repro.core.policies import PaperSteering
from repro.core.processor import Processor
from repro.workloads.kernels import checksum, memcpy, saxpy

_KERNELS = [
    ("checksum", checksum(iterations=40).program),
    ("memcpy", memcpy(n=24).program),
    ("saxpy", saxpy(n=16).program),
]
_PARAMS = ProcessorParams(reconfig_latency=8)


def _traced_steering(program):
    policy = PaperSteering(
        queue_size=_PARAMS.window_size, record_trace=True
    )
    return Processor(
        program, params=_PARAMS, policy=policy, record_events=True
    )


@pytest.mark.parametrize("name,program", _KERNELS, ids=[n for n, _ in _KERNELS])
def test_steering_traced_matches_fast_path(name, program):
    fast = steering_processor(program, _PARAMS).run(max_cycles=100_000)
    traced_proc = _traced_steering(program)
    traced = traced_proc.run(max_cycles=100_000)

    assert fast.halted and traced.halted
    assert fast.to_dict() == traced.to_dict()
    # the traced run really did record per-cycle events + a steering trace
    assert len(traced_proc.events) == traced.cycles
    assert traced_proc.policy.manager.trace


@pytest.mark.parametrize("name,program", _KERNELS, ids=[n for n, _ in _KERNELS])
def test_ffu_only_traced_matches_fast_path(name, program):
    from repro.core.policies import NoSteering

    fast = fixed_superscalar(program, _PARAMS).run(max_cycles=100_000)
    traced = Processor(
        program, params=_PARAMS, policy=NoSteering(), record_events=True
    ).run(max_cycles=100_000)
    assert fast.halted and traced.halted
    assert fast.to_dict() == traced.to_dict()


@pytest.mark.parametrize("name,program", _KERNELS, ids=[n for n, _ in _KERNELS])
def test_architected_state_identical(name, program):
    """Registers and steering decisions, not just aggregate counters."""
    fast = steering_processor(program, _PARAMS).run(max_cycles=100_000)
    traced = _traced_steering(program).run(max_cycles=100_000)
    assert fast.final_registers == traced.final_registers
    assert fast.cycles == traced.cycles
    assert fast.retired == traced.retired
    assert fast.steering_selections == traced.steering_selections


def test_trace_ring_buffer_bounds_memory():
    """A trace_limit keeps only the newest entries on long runs."""
    program = checksum(iterations=40).program
    proc = steering_processor(
        program, _PARAMS, record_trace=True, trace_limit=64
    )
    result = proc.run(max_cycles=100_000)
    trace = proc.policy.manager.trace
    assert len(trace) == 64
    # newest entries are retained (manager cycles are 1-based)
    assert trace[-1].cycle == proc.policy.manager.stats.cycles
    assert trace[0].cycle == proc.policy.manager.stats.cycles - 63
    # the bounded trace does not perturb the simulation itself
    unbounded = steering_processor(program, _PARAMS).run(max_cycles=100_000)
    assert result.to_dict() == unbounded.to_dict()


def test_snapshot_events_available_without_recording():
    """The fast path still answers last_events, built on demand."""
    program = memcpy(n=8).program
    proc = steering_processor(program, _PARAMS)
    assert proc.last_events is None  # nothing simulated yet
    proc.run(max_cycles=100_000)
    events = proc.last_events
    assert events is not None
    assert events.cycle == proc.cycle_count - 1
    assert proc.events is None  # no per-cycle history was kept
