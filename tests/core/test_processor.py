"""Tests for the cycle-level processor, headed by the golden-model
equivalence property: for every kernel and every policy, the pipelined
out-of-order reconfigurable processor must commit exactly the architectural
state the functional reference computes."""

import pytest

from repro.core.baselines import (
    fixed_superscalar,
    oracle_processor,
    random_processor,
    static_processor,
    steering_processor,
)
from repro.core.params import ProcessorParams
from repro.core.processor import Processor
from repro.core.reference import run_reference
from repro.errors import SimulationError
from repro.fabric.configuration import CONFIG_FLOATING, CONFIG_INTEGER
from repro.isa.assembler import assemble
from repro.workloads.kernels import all_kernels, checksum, saxpy, sum_reduction

_FAST = ProcessorParams(reconfig_latency=4)


def _policies(program):
    return {
        "ffu-only": lambda: fixed_superscalar(program, _FAST),
        "steering": lambda: steering_processor(program, _FAST),
        "static-integer": lambda: static_processor(program, CONFIG_INTEGER, _FAST),
        "random": lambda: random_processor(program, _FAST, period=50),
        "oracle": lambda: oracle_processor(program, _FAST, lookahead=32),
    }


@pytest.mark.parametrize("kernel", all_kernels(), ids=lambda k: k.name)
def test_steering_processor_matches_golden_model(kernel):
    """The central correctness property (steering policy)."""
    proc = steering_processor(kernel.program, _FAST)
    result = proc.run(max_cycles=200_000)
    assert result.halted, f"{kernel.name} did not halt"
    kernel.verify(proc.dmem)
    ref = run_reference(kernel.program)
    assert result.retired == ref.executed


@pytest.mark.parametrize("policy_name", ["ffu-only", "static-integer", "random", "oracle"])
def test_every_policy_matches_golden_model(policy_name):
    """Architectural state is policy-independent (timing is not)."""
    kernel = saxpy(n=16)
    proc = _policies(kernel.program)[policy_name]()
    result = proc.run(max_cycles=200_000)
    assert result.halted
    kernel.verify(proc.dmem)


class TestBasicExecution:
    def test_empty_loop_program(self):
        program = assemble("li x1, 3\nloop: addi x1, x1, -1\nbne x1, x0, loop\nhalt\n")
        proc = fixed_superscalar(program)
        result = proc.run()
        assert result.halted
        assert proc.ruu.regfile.x(1) == 0

    def test_ipc_positive_and_bounded(self):
        kernel = checksum(iterations=50)
        result = steering_processor(kernel.program, _FAST).run()
        assert 0 < result.ipc <= 4.0  # retire width bounds IPC

    def test_max_cycles_cutoff(self):
        program = assemble("loop: j loop\nhalt\n")
        result = fixed_superscalar(program).run(max_cycles=100)
        assert not result.halted
        assert result.cycles == 100

    def test_invalid_max_cycles(self):
        program = assemble("halt\n")
        with pytest.raises(SimulationError):
            fixed_superscalar(program).run(max_cycles=0)

    def test_step_is_idempotent_after_halt(self):
        program = assemble("halt\n")
        proc = fixed_superscalar(program)
        proc.run()
        cycles = proc.cycle_count
        result = proc.run(max_cycles=10)
        assert result.cycles == cycles  # no further progress


class TestBranchHandling:
    def test_mispredict_recovery_correct(self):
        # alternating branch pattern defeats the 2-bit counter sometimes,
        # but architectural results must stay exact
        program = assemble(
            """
            li   x1, 20
            li   x2, 0
            li   x3, 0
        loop:
            andi x4, x1, 1
            beq  x4, x0, even
            addi x2, x2, 1
            j    next
        even:
            addi x3, x3, 1
        next:
            addi x1, x1, -1
            bne  x1, x0, loop
            halt
            """
        )
        proc = steering_processor(program, _FAST)
        result = proc.run()
        assert result.halted
        assert proc.ruu.regfile.x(2) == 10  # odd counts
        assert proc.ruu.regfile.x(3) == 10  # even counts
        assert result.mispredictions > 0
        assert result.flushes > 0

    def test_branch_stats_consistent(self):
        kernel = sum_reduction(n=32)
        result = steering_processor(kernel.program, _FAST).run()
        assert result.branch_resolutions >= 31
        assert 0 <= result.branch_accuracy <= 1.0

    def test_indirect_jump_via_btb(self):
        program = assemble(
            """
            main: li   x5, 0
                  li   x6, 3
            loop: call fn
                  addi x6, x6, -1
                  bne  x6, x0, loop
                  halt
            fn:   addi x5, x5, 1
                  ret
            """
        )
        proc = steering_processor(program, _FAST)
        result = proc.run()
        assert result.halted
        assert proc.ruu.regfile.x(5) == 3


class TestStats:
    def test_retired_mix_matches_reference_trace(self):
        kernel = saxpy(n=8)
        proc = steering_processor(kernel.program, _FAST)
        result = proc.run()
        ref = run_reference(kernel.program)
        mix = {}
        for t in ref.trace:
            mix[t] = mix.get(t, 0) + 1
        for t, n in mix.items():
            assert result.retired_per_type.get(t, 0) == n

    def test_summary_renders(self):
        kernel = checksum(iterations=10)
        result = steering_processor(kernel.program, _FAST).run()
        text = result.summary()
        assert "IPC" in text and "steering picks" in text

    def test_module_inventory_covers_fig1(self):
        proc = steering_processor(assemble("halt\n"), _FAST)
        inventory = proc.module_inventory()
        for module in (
            "instruction memory",
            "data memory",
            "fetch unit",
            "trace cache",
            "instruction decoder",
            "register update unit",
            "register files",
            "wake-up array",
            "fixed functional units",
            "reconfigurable slots",
            "configuration management",
        ):
            assert module in inventory

    def test_utilisation_bounded(self):
        kernel = checksum(iterations=30)
        result = steering_processor(kernel.program, _FAST).run()
        from repro.isa.futypes import FU_TYPES

        for t in FU_TYPES:
            assert 0.0 <= result.utilisation(t) <= 1.0


class TestTraceCacheOption:
    def test_disabled_trace_cache(self):
        kernel = checksum(iterations=30)
        params = ProcessorParams(reconfig_latency=4, use_trace_cache=False)
        proc = steering_processor(kernel.program, params)
        result = proc.run()
        assert result.halted
        assert result.trace_cache_hits == 0
        kernel.verify(proc.dmem)

    def test_trace_cache_improves_tight_loop_fetch(self):
        kernel = checksum(iterations=100)
        with_tc = steering_processor(
            kernel.program, ProcessorParams(reconfig_latency=4)
        ).run()
        without_tc = steering_processor(
            kernel.program,
            ProcessorParams(reconfig_latency=4, use_trace_cache=False),
        ).run()
        assert with_tc.ipc >= without_tc.ipc
