"""Golden-trace corpus: the committed records pin the whole catalogue.

``test_committed_corpus_is_clean`` IS the tier-1 golden gate: it replays
all 32 (policy x workload) cells and structurally compares every field
of every result record against ``tests/goldens/``.  Any drift fails the
suite — see docs/verification.md for the update discipline.
"""

import json
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.verify.goldens import (
    SPEC_NAME,
    check_corpus,
    diff_corpus,
    golden_cells,
    params_fingerprint,
    read_spec,
    update_corpus,
)

CORPUS = Path(__file__).resolve().parent.parent / "goldens"


def test_committed_corpus_is_clean():
    diffs = check_corpus(CORPUS)
    assert diffs == [], "\n".join(str(d) for d in diffs)


def test_spec_covers_every_cell():
    spec = read_spec(CORPUS)
    assert spec is not None
    listed = {(c["workload"], c["policy"]) for c in spec["cells"]}
    assert listed == set(golden_cells())
    assert spec["params_fingerprint"] == params_fingerprint()


def test_every_cell_file_committed_and_canonical():
    spec = read_spec(CORPUS)
    for cell in spec["cells"]:
        path = CORPUS / cell["file"]
        payload = json.loads(path.read_text())
        assert payload["workload"] == cell["workload"]
        assert payload["policy"] == cell["policy"]
        assert payload["spec_version"] == spec["spec_version"]
        result = payload["result"]
        assert result["outcome"] == "completed", cell["file"]
        assert result["halted"] is True, cell["file"]


def test_missing_corpus_reported_as_single_diff(tmp_path):
    diffs = diff_corpus(tmp_path / "nowhere")
    assert len(diffs) == 1
    assert diffs[0].cell == SPEC_NAME


def test_update_refuses_same_version(tmp_path):
    update_corpus(tmp_path, 1)
    with pytest.raises(ConfigurationError, match="explicit bump"):
        update_corpus(tmp_path, 1)


def test_update_refuses_lower_version(tmp_path):
    update_corpus(tmp_path, 3)
    with pytest.raises(ConfigurationError, match="explicit bump"):
        update_corpus(tmp_path, 2)


def test_update_accepts_bump_and_removes_stale_cells(tmp_path):
    written = update_corpus(tmp_path, 1)
    assert written == len(golden_cells())
    stale = tmp_path / "old-workload__old-policy.json"
    stale.write_text("{}")
    update_corpus(tmp_path, 2)
    assert not stale.exists()
    assert read_spec(tmp_path)["spec_version"] == 2


def test_fresh_corpus_is_immediately_clean(tmp_path):
    update_corpus(tmp_path, 1)
    assert check_corpus(tmp_path) == []


def test_tampered_cell_detected(tmp_path):
    update_corpus(tmp_path, 1)
    cell = sorted(tmp_path.glob("*__steering.json"))[0]
    payload = json.loads(cell.read_text())
    payload["result"]["cycles"] += 1
    cell.write_text(json.dumps(payload))
    diffs = check_corpus(tmp_path)
    assert any(d.path.endswith(".cycles") for d in diffs)


def test_tampered_spec_detected(tmp_path):
    update_corpus(tmp_path, 1)
    spec_path = tmp_path / SPEC_NAME
    spec = json.loads(spec_path.read_text())
    spec["params_fingerprint"] = "0" * 16
    spec_path.write_text(json.dumps(spec))
    diffs = check_corpus(tmp_path)
    assert any("params_fingerprint" in d.path for d in diffs)


def test_corrupt_spec_raises(tmp_path):
    (tmp_path / SPEC_NAME).write_text("not json")
    with pytest.raises(ConfigurationError, match="corrupt"):
        read_spec(tmp_path)
