"""Generator properties over 200 seeds: every program is valid by
construction — assembles, encodes/decodes losslessly, and terminates
under the functional reference."""

import pytest

from repro.core.reference import run_reference
from repro.errors import WorkloadError
from repro.isa.assembler import assemble
from repro.isa.disassembler import decode, format_instruction
from repro.verify.generator import (
    GeneratorConfig,
    generate_program,
    generate_source,
)

SEEDS = range(200)

#: one shared sweep — assembling 200 programs once keeps the suite fast.
_PROGRAMS = {seed: generate_program(seed) for seed in SEEDS}


def test_all_seeds_assemble_nonempty():
    for seed, program in _PROGRAMS.items():
        assert len(program.instructions) > 0, seed


def test_determinism_same_seed_same_source():
    for seed in (0, 7, 42, 199):
        assert generate_source(seed) == generate_source(seed)


def test_different_seeds_differ():
    sources = {generate_source(seed) for seed in SEEDS}
    assert len(sources) > 150  # near-universal uniqueness


def test_encode_decode_round_trip():
    for seed, program in _PROGRAMS.items():
        for word, instr in zip(program.to_binary(), program.instructions):
            decoded = decode(word)
            assert format_instruction(decoded) == format_instruction(instr), (
                seed,
                word,
            )


def test_source_reassembles_to_identical_binary():
    for seed in (0, 5, 99):
        source = generate_source(seed)
        assert generate_program(seed).to_binary() == assemble(source).to_binary()


def test_all_seeds_terminate_under_reference():
    for seed, program in _PROGRAMS.items():
        ref = run_reference(program, max_instructions=500_000)
        assert ref.halted, seed
        assert ref.executed > 0, seed


def test_flush_density_zero_emits_no_forward_branches():
    source = generate_source(11, GeneratorConfig(flush_density=0.0))
    assert "g_sk" not in source


def test_flush_density_one_emits_forward_branches():
    source = generate_source(11, GeneratorConfig(flush_density=1.0))
    assert "g_sk" in source


def test_blocks_knob_controls_loop_count():
    for blocks in (1, 4, 8):
        source = generate_source(2, GeneratorConfig(blocks=blocks))
        assert source.count("_loop:") == blocks


def test_invalid_configs_rejected():
    with pytest.raises(WorkloadError):
        GeneratorConfig(blocks=0)
    with pytest.raises(WorkloadError):
        GeneratorConfig(blocks=9)
    with pytest.raises(WorkloadError):
        GeneratorConfig(flush_density=1.5)
    with pytest.raises(WorkloadError):
        GeneratorConfig(body_len=0)


def test_dynamic_length_bounded():
    config = GeneratorConfig(blocks=2, body_len=8, max_iterations=4)
    for seed in (1, 2, 3):
        program = generate_program(seed, config)
        ref = run_reference(program, max_instructions=500_000)
        # static prologue + blocks * trips * (body + branch groups) is
        # comfortably under this construction-derived ceiling
        assert ref.executed < 2 * len(program.instructions) * 4 + 100
