"""Instruction-deletion shrinker: minimal, still-failing, always valid."""

from repro.core.reference import run_reference
from repro.errors import SimulationError
from repro.isa.assembler import assemble
from repro.isa.disassembler import format_instruction
from repro.verify.generator import GeneratorConfig, generate_source
from repro.verify.shrink import shrink_source


def _has_add(program) -> bool:
    return any(
        format_instruction(i).startswith("add ") for i in program.instructions
    )


def test_shrinks_around_the_implicated_instructions():
    # predicate: "fails" while the program still contains a plain add —
    # shrinking must strip most of everything else and stay assemblable
    source = generate_source(4, GeneratorConfig(blocks=2, body_len=12))
    original_count = len(assemble(source).instructions)
    outcome = shrink_source(source, _has_add)
    assert _has_add(assemble(outcome.source))
    assert outcome.removed > 0
    assert outcome.instructions < original_count


def test_shrunk_program_still_terminates():
    source = generate_source(9)

    def still_fails(program):
        return run_reference(program, max_instructions=500_000).executed > 10

    outcome = shrink_source(source, still_fails)
    ref = run_reference(assemble(outcome.source), max_instructions=500_000)
    assert ref.halted


def test_never_reproducing_predicate_returns_original():
    source = generate_source(1)
    outcome = shrink_source(source, lambda program: False)
    assert outcome.removed == 0


def test_predicate_exception_counts_as_not_reproducing():
    source = generate_source(2)
    calls = {"n": 0}

    def flaky(program):
        calls["n"] += 1
        raise SimulationError("budget exceeded")

    outcome = shrink_source(source, flaky)
    assert calls["n"] > 0
    assert outcome.removed == 0


def test_attempt_budget_respected():
    source = generate_source(3, GeneratorConfig(blocks=4, body_len=20))
    outcome = shrink_source(source, lambda program: True, max_attempts=10)
    assert outcome.attempts <= 10


def test_halt_and_labels_never_deleted():
    source = generate_source(6, GeneratorConfig(flush_density=0.5))
    outcome = shrink_source(source, lambda program: True)
    assert "halt" in outcome.source
    # the aggressive always-fails predicate strips every deletable line;
    # what remains must still assemble (labels/directives intact)
    assemble(outcome.source)
