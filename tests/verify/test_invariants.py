"""Cross-policy invariant checks against the functional reference."""

import dataclasses

from repro.core.baselines import policy_catalogue, steering_processor
from repro.core.params import ProcessorParams
from repro.core.reference import run_reference
from repro.core.stats import OUTCOME_CUTOFF
from repro.verify.invariants import check_cross_policy, check_result_pair
from repro.workloads.kernels import checksum

PARAMS = ProcessorParams(reconfig_latency=8)
PROGRAM = checksum(iterations=10).program


def _reference():
    return run_reference(PROGRAM)


def _result():
    return steering_processor(PROGRAM, PARAMS).run(max_cycles=200_000)


def test_clean_run_has_no_violations():
    assert check_result_pair("steering", _result(), _reference(), PARAMS) == []


def test_whole_catalogue_clean():
    reference = _reference()
    results = {
        name: factory(PROGRAM, PARAMS).run(max_cycles=200_000)
        for name, factory in policy_catalogue().items()
    }
    assert check_cross_policy(results, reference, PARAMS) == []


def test_non_completed_outcome_is_the_only_violation_reported():
    result = dataclasses.replace(_result(), outcome=OUTCOME_CUTOFF)
    violations = check_result_pair("steering", result, _reference(), PARAMS)
    assert [v.invariant for v in violations] == ["completed"]


def test_retired_count_mismatch_detected():
    result = dataclasses.replace(_result(), retired=_result().retired + 1)
    violations = check_result_pair("steering", result, _reference(), PARAMS)
    assert "retired-count" in [v.invariant for v in violations]


def test_final_state_mismatch_detected():
    good = _result()
    regs = {
        "int": list(good.final_registers["int"]),
        "fp": list(good.final_registers["fp"]),
    }
    regs["int"][5] ^= 1
    result = dataclasses.replace(good, final_registers=regs)
    violations = check_result_pair("steering", result, _reference(), PARAMS)
    kinds = [v.invariant for v in violations]
    assert "final-state" in kinds
    assert any("x5" in v.message for v in violations)


def test_nan_agreement_is_not_a_mismatch():
    good = _result()
    reference = _reference()
    regs = {
        "int": list(good.final_registers["int"]),
        "fp": list(good.final_registers["fp"]),
    }
    regs["fp"][3] = float("nan")
    snapshot = reference.registers.snapshot()
    snapshot["fp"] = list(snapshot["fp"])
    snapshot["fp"][3] = float("nan")

    class FakeRegs:
        def snapshot(self):
            return snapshot

    fake_ref = dataclasses.replace(reference, registers=FakeRegs())
    result = dataclasses.replace(good, final_registers=regs)
    assert check_result_pair("steering", result, fake_ref, PARAMS) == []


def test_ipc_bound_violation_detected():
    good = _result()
    ceiling = min(PARAMS.fetch_width, PARAMS.retire_width)
    result = dataclasses.replace(
        good,
        retired=good.cycles * (ceiling + 1),
    )
    violations = check_result_pair("steering", result, _reference(), PARAMS)
    assert "ipc-bound" in [v.invariant for v in violations]
