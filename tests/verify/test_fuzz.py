"""Differential fuzzer: clean sweeps, seeded-bug detection, artifacts.

``test_seeded_steering_bug_caught_and_shrunk`` is the subsystem's
self-test (mutation test): a deliberately broken steering build — every
second mispredict repair resumes one instruction past the true target —
must be caught by the invariants within the first few iterations and
minimized to a dozen instructions or fewer.
"""

import json

from repro.core.baselines import steering_processor
from repro.telemetry import MetricsRegistry
from repro.verify.fuzz import run_fuzz
from repro.verify.generator import GeneratorConfig

#: cycle budget ample for generated programs but quick to exhaust when
#: the seeded bug spins the pipeline forever.
FAST_CYCLES = 20_000


def _buggy_steering(program, params):
    """Steering build with an off-by-one in mispredict recovery."""
    proc = steering_processor(program, params)
    bound = len(program.instructions)
    state = {"repairs": 0}
    true_redirect = proc.fetch.redirect

    def skewed_redirect(pc):
        state["repairs"] += 1
        if state["repairs"] % 2 == 0 and pc + 1 < bound:
            pc += 1
        true_redirect(pc)

    proc.fetch.redirect = skewed_redirect
    return proc


def test_clean_sweep_over_catalogue():
    report = run_fuzz(seed=0, iterations=5, max_cycles=FAST_CYCLES)
    assert report.ok
    assert report.iterations_run == 5
    # every catalogue policy ran on every program
    assert report.simulations == 5 * 8
    assert report.stopped == "iterations"


def test_schedule_is_seed_deterministic():
    a = run_fuzz(seed=3, iterations=3, max_cycles=FAST_CYCLES)
    b = run_fuzz(seed=3, iterations=3, max_cycles=FAST_CYCLES)
    assert a.ok and b.ok
    assert a.simulations == b.simulations


def test_seeded_steering_bug_caught_and_shrunk(tmp_path):
    report = run_fuzz(
        seed=0,
        iterations=20,
        max_cycles=FAST_CYCLES,
        base_config=GeneratorConfig(flush_density=0.4),
        extra_policies={"steering-mutant": _buggy_steering},
        out_dir=tmp_path,
    )
    assert not report.ok
    failure = report.failures[0]
    assert any(v.policy == "steering-mutant" for v in failure.violations)
    # the acceptance bar: minimized reproducer at or under 12 instructions
    assert failure.minimized is not None
    assert failure.minimized.instructions <= 12

    # artifacts: source, minimized source, violation record, repro script
    names = {p.rsplit("/", 1)[-1].split(".", 1)[1] for p in failure.artifacts}
    assert names == {"s", "min.s", "json", "repro.py"}
    record_path = [p for p in failure.artifacts if p.endswith(".json")][0]
    record = json.loads(open(record_path).read())
    assert record["implicated_policies"] == ["steering-mutant"]
    assert record["minimized_instructions"] == failure.minimized.instructions


def test_keep_going_collects_multiple_failures():
    report = run_fuzz(
        seed=0,
        iterations=4,
        max_cycles=FAST_CYCLES,
        base_config=GeneratorConfig(flush_density=0.4),
        extra_policies={"steering-mutant": _buggy_steering},
        shrink=False,
        keep_going=True,
    )
    assert len(report.failures) >= 2
    assert report.iterations_run == 4


def test_time_budget_stops_early():
    report = run_fuzz(seed=0, iterations=10_000, time_budget=2.0,
                      max_cycles=FAST_CYCLES)
    assert report.stopped == "time-budget"
    assert report.iterations_run < 10_000


def test_telemetry_counters_populated():
    registry = MetricsRegistry()
    report = run_fuzz(
        seed=1, iterations=3, max_cycles=FAST_CYCLES, registry=registry
    )
    assert report.ok
    rendered = registry.render()
    assert "repro_fuzz_programs_total 3" in rendered
    assert "repro_fuzz_simulations_total 24" in rendered
