"""Tests for the trace cache."""

import pytest

from repro.errors import SimulationError
from repro.frontend.trace_cache import TraceCache


class TestTraceCache:
    def test_miss_then_hit(self):
        tc = TraceCache()
        assert tc.lookup(5) is None
        tc.insert(5, (5, 6, 7))
        assert tc.lookup(5) == (5, 6, 7)
        assert (tc.hits, tc.misses) == (1, 1)

    def test_truncated_to_max_trace(self):
        tc = TraceCache(max_trace=2)
        tc.insert(0, tuple(range(10)))
        assert tc.lookup(0) == (0, 1)

    def test_empty_trace_ignored(self):
        tc = TraceCache()
        tc.insert(0, ())
        assert len(tc) == 0

    def test_fifo_eviction(self):
        tc = TraceCache(capacity=2)
        tc.insert(1, (1,))
        tc.insert(2, (2,))
        tc.insert(3, (3,))
        assert tc.lookup(1) is None
        assert tc.lookup(3) == (3,)

    def test_reinsert_does_not_evict(self):
        tc = TraceCache(capacity=2)
        tc.insert(1, (1,))
        tc.insert(2, (2,))
        tc.insert(1, (1, 9))
        assert tc.lookup(2) == (2,)
        assert tc.lookup(1) == (1, 9)

    def test_invalidate(self):
        tc = TraceCache()
        tc.insert(1, (1,))
        tc.invalidate()
        assert len(tc) == 0

    def test_hit_rate(self):
        tc = TraceCache()
        assert tc.hit_rate == 0.0
        tc.insert(1, (1,))
        tc.lookup(1)
        tc.lookup(2)
        assert tc.hit_rate == 0.5

    def test_validation(self):
        with pytest.raises(SimulationError):
            TraceCache(capacity=0)
        with pytest.raises(SimulationError):
            TraceCache(max_trace=0)
