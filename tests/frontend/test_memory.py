"""Tests for instruction and data memories."""

import pytest

from repro.errors import SimulationError
from repro.frontend.memory import DataMemory, InstructionMemory
from repro.isa.assembler import assemble
from repro.isa.opcodes import Opcode


class TestInstructionMemory:
    def test_fetch_decodes_binary(self):
        imem = InstructionMemory(assemble("add x1, x2, x3\nhalt\n"))
        assert imem.fetch(0).opcode is Opcode.ADD
        assert imem.fetch(1).opcode is Opcode.HALT
        assert len(imem) == 2

    def test_word_access(self):
        p = assemble("add x1, x2, x3\n")
        imem = InstructionMemory(p)
        assert imem.word(0) == p.to_binary()[0]

    def test_out_of_range(self):
        imem = InstructionMemory(assemble("halt\n"))
        assert imem.in_range(0) and not imem.in_range(1)
        with pytest.raises(SimulationError):
            imem.fetch(1)
        with pytest.raises(SimulationError):
            imem.word(-1)


class TestDataMemory:
    def test_store_load_roundtrip(self):
        mem = DataMemory(size=64)
        mem.store(8, b"\x01\x02\x03\x04")
        assert mem.load(8, 4) == b"\x01\x02\x03\x04"

    def test_initial_image(self):
        mem = DataMemory(size=16, image=b"\xaa\xbb")
        assert mem.load(0, 1) == b"\xaa"
        assert mem.load(1, 1) == b"\xbb"

    def test_image_too_large(self):
        with pytest.raises(SimulationError):
            DataMemory(size=1, image=b"xy")

    def test_alignment_enforced(self):
        mem = DataMemory(size=64)
        with pytest.raises(SimulationError, match="misaligned"):
            mem.load(2, 4)
        with pytest.raises(SimulationError, match="misaligned"):
            mem.store(1, b"\x00\x00")
        mem.load(2, 2)  # naturally aligned half is fine

    def test_bounds_enforced(self):
        mem = DataMemory(size=8)
        with pytest.raises(SimulationError):
            mem.load(8, 4)
        with pytest.raises(SimulationError):
            mem.store(-4, b"\x00" * 4)

    def test_access_counters(self):
        mem = DataMemory(size=64)
        mem.store(0, b"\x00" * 4)
        mem.load(0, 4)
        mem.peek(0, 4)  # peeks don't count
        assert (mem.reads, mem.writes) == (1, 1)

    def test_peek_helpers(self):
        mem = DataMemory(size=64)
        mem.store(0, (1234).to_bytes(4, "little"))
        assert mem.peek_word(0) == 1234
        import struct

        mem.store(4, struct.pack("<f", 2.5))
        assert mem.peek_float(4) == 2.5
