"""Tests for the 2-bit predictor and the BTB."""

import pytest

from repro.errors import SimulationError
from repro.frontend.branch import BTB, BranchPredictor


class TestBranchPredictor:
    def test_initial_prediction_not_taken(self):
        assert BranchPredictor().predict(0) is False

    def test_one_taken_flips_weakly_not_taken(self):
        # counters initialise weakly not-taken (state 1): a single taken
        # outcome moves them to weakly taken
        p = BranchPredictor()
        p.update(0, taken=True)
        assert p.predict(0) is True

    def test_strongly_not_taken_needs_two_takens(self):
        p = BranchPredictor()
        p.update(0, taken=False)  # state 0: strongly not-taken
        p.update(0, taken=True)
        assert p.predict(0) is False
        p.update(0, taken=True)
        assert p.predict(0) is True

    def test_hysteresis(self):
        p = BranchPredictor()
        for _ in range(4):
            p.update(0, taken=True)
        p.update(0, taken=False)  # one not-taken shouldn't flip a strong taken
        assert p.predict(0) is True
        p.update(0, taken=False)
        assert p.predict(0) is False

    def test_counters_saturate(self):
        p = BranchPredictor()
        for _ in range(100):
            p.update(0, taken=False)
        p.update(0, taken=True)
        p.update(0, taken=True)
        assert p.predict(0) is True

    def test_entries_indexed_by_pc(self):
        p = BranchPredictor(entries=4)
        p.update(0, taken=True)
        p.update(0, taken=True)
        assert p.predict(0) is True
        assert p.predict(1) is False
        assert p.predict(4) is True  # aliases with pc 0

    def test_accuracy_tracking(self):
        p = BranchPredictor()
        p.update(0, taken=True, mispredicted=True)
        p.update(0, taken=True, mispredicted=False)
        assert p.accuracy == 0.5
        assert BranchPredictor().accuracy == 1.0

    def test_power_of_two_required(self):
        with pytest.raises(SimulationError):
            BranchPredictor(entries=5)


class TestBTB:
    def test_miss_then_hit(self):
        btb = BTB()
        assert btb.predict(10) is None
        btb.update(10, 42)
        assert btb.predict(10) == 42
        assert (btb.hits, btb.misses) == (1, 1)

    def test_update_replaces(self):
        btb = BTB()
        btb.update(10, 42)
        btb.update(10, 99)
        assert btb.predict(10) == 99

    def test_capacity_eviction(self):
        btb = BTB(entries=2)
        btb.update(1, 11)
        btb.update(2, 22)
        btb.update(3, 33)  # evicts pc=1
        assert btb.predict(1) is None
        assert btb.predict(3) == 33

    def test_positive_entries_required(self):
        with pytest.raises(SimulationError):
            BTB(entries=0)
