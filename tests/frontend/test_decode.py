"""Tests for the decode stage buffer."""

import pytest

from repro.errors import SimulationError
from repro.frontend.decode import DecodeStage
from repro.frontend.fetch import FetchedInstruction
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode


def _fi(pc):
    return FetchedInstruction(pc=pc, instruction=Instruction(Opcode.ADD), predicted_next=pc + 1)


class TestDecodeStage:
    def test_push_pop_fifo_order(self):
        d = DecodeStage(width=2)
        d.push([_fi(0), _fi(1), _fi(2)])
        assert [f.pc for f in d.pop()] == [0, 1]
        assert [f.pc for f in d.pop()] == [2]
        assert d.pop() == []

    def test_pop_respects_limit(self):
        d = DecodeStage(width=4)
        d.push([_fi(i) for i in range(4)])
        assert len(d.pop(limit=1)) == 1

    def test_capacity_enforced(self):
        d = DecodeStage(width=4, capacity=2)
        assert d.can_accept(2) and not d.can_accept(3)
        with pytest.raises(SimulationError, match="overflow"):
            d.push([_fi(i) for i in range(3)])

    def test_free_space(self):
        d = DecodeStage(width=4, capacity=8)
        d.push([_fi(0)])
        assert d.free_space == 7
        assert len(d) == 1

    def test_flush(self):
        d = DecodeStage()
        d.push([_fi(0), _fi(1)])
        assert d.flush() == 2
        assert len(d) == 0

    def test_decoded_counter(self):
        d = DecodeStage(width=4)
        d.push([_fi(0), _fi(1)])
        d.pop()
        assert d.decoded == 2

    def test_validation(self):
        with pytest.raises(SimulationError):
            DecodeStage(width=0)
        with pytest.raises(SimulationError):
            DecodeStage(capacity=0)
