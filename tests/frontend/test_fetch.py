"""Tests for the fetch unit."""

import pytest

from repro.frontend.branch import BTB, BranchPredictor
from repro.frontend.fetch import FetchUnit
from repro.frontend.memory import InstructionMemory
from repro.frontend.trace_cache import TraceCache
from repro.isa.assembler import assemble


def _unit(src, **kwargs):
    return FetchUnit(InstructionMemory(assemble(src)), **kwargs)


class TestSequentialFetch:
    def test_fetches_up_to_width(self):
        u = _unit("add x1, x2, x3\n" * 6, width=4)
        packet = u.fetch_packet()
        assert [f.pc for f in packet] == [0, 1, 2, 3]
        assert u.fetch_packet()[0].pc == 4

    def test_predicted_next_sequential(self):
        u = _unit("add x1, x2, x3\nadd x1, x2, x3\n")
        packet = u.fetch_packet()
        assert packet[0].predicted_next == 1
        assert not packet[0].predicted_taken

    def test_stalls_at_end_of_memory(self):
        u = _unit("add x1, x2, x3\n", width=4)
        u.fetch_packet()
        assert u.stalled
        assert u.fetch_packet() == []

    def test_counters(self):
        u = _unit("add x1, x2, x3\n" * 5, width=4)
        u.fetch_packet()
        assert (u.packets, u.fetched) == (1, 4)


class TestControlFlow:
    def test_halt_ends_packet_and_stalls(self):
        u = _unit("add x1, x2, x3\nhalt\nadd x4, x5, x6\n", width=4)
        packet = u.fetch_packet()
        assert len(packet) == 2
        assert packet[-1].instruction.is_halt
        assert u.stalled

    def test_jal_followed_within_prediction(self):
        u = _unit("j target\nadd x1, x2, x3\ntarget: halt\n", width=4)
        packet = u.fetch_packet()
        assert len(packet) == 1  # taken jump ends the packet (no trace cache)
        assert packet[0].predicted_taken
        assert packet[0].predicted_next == 2
        assert u.fetch_packet()[0].pc == 2

    def test_branch_predicted_not_taken_initially(self):
        u = _unit("beq x0, x0, 3\nadd x1, x2, x3\nhalt\n", width=4)
        packet = u.fetch_packet()
        # falls through past the branch
        assert [f.pc for f in packet] == [0, 1, 2]
        assert not packet[0].predicted_taken

    def test_branch_predicted_taken_after_training(self):
        u = _unit("loop: addi x1, x1, 1\nbne x1, x0, loop\nhalt\n", width=4)
        u.predictor.update(1, taken=True)
        u.predictor.update(1, taken=True)
        packet = u.fetch_packet()
        assert packet[-1].pc == 1
        assert packet[-1].predicted_taken
        assert packet[-1].predicted_next == 0

    def test_jalr_uses_btb(self):
        btb = BTB()
        u = _unit("jalr x0, x1, 0\nadd x1, x2, x3\nhalt\n", btb=btb, width=2)
        packet = u.fetch_packet()
        assert packet[0].predicted_next == 1  # BTB miss: fall-through
        u.redirect(0)
        btb.update(0, 2)
        packet = u.fetch_packet()
        assert packet[0].predicted_next == 2
        assert packet[0].predicted_taken

    def test_redirect(self):
        u = _unit("add x1, x2, x3\n" * 4 + "halt\n")
        u.fetch_packet()
        u.redirect(1)
        assert u.fetch_packet()[0].pc == 1


class TestTraceCacheIntegration:
    _LOOP = "loop: addi x1, x1, 1\nbne x1, x0, loop\nhalt\n"

    def test_first_taken_branch_ends_packet_and_seeds_cache(self):
        tc = TraceCache()
        u = _unit(self._LOOP, trace_cache=tc, width=4)
        u.predictor.update(1, taken=True)
        u.predictor.update(1, taken=True)
        packet = u.fetch_packet()
        assert len(packet) == 2  # addi + bne, ends at the taken branch
        assert tc.misses == 1

    def test_hot_path_fetches_across_taken_branch(self):
        tc = TraceCache()
        u = _unit(self._LOOP, trace_cache=tc, width=4)
        u.predictor.update(1, taken=True)
        u.predictor.update(1, taken=True)
        u.fetch_packet()  # seeds the trace cache
        packet = u.fetch_packet()
        # now the packet wraps around the loop: addi, bne, addi, bne
        assert [f.pc for f in packet] == [0, 1, 0, 1]

    def test_without_trace_cache_packets_stay_short(self):
        u = _unit(self._LOOP, width=4)
        u.predictor.update(1, taken=True)
        u.predictor.update(1, taken=True)
        u.fetch_packet()
        assert len(u.fetch_packet()) == 2
