"""Tests for the durable, store-backed job queue (StoreJobQueue)."""

import pytest

from repro.evaluation.batch import ResultCache
from repro.serving.jobs import JobQueueFull, StoreJobQueue
from repro.serving.store import RunStore
from repro.telemetry import MetricsRegistry

SPEC = {"target": "checksum", "max_cycles": 5_000}


@pytest.fixture()
def store():
    with RunStore() as s:
        yield s


def _queue(store, **kwargs):
    kwargs.setdefault("cache", ResultCache())
    return StoreJobQueue(store, **kwargs)


def test_submit_enqueues_durably(store):
    q = _queue(store)
    record = q.submit(SPEC)
    assert record.state == "queued"
    assert record.job_id.startswith("job-")
    # visible through the store itself, not just this queue object
    assert store.get_job(record.job_id)["spec"] == SPEC
    assert q.depth() == 1


def test_claim_and_run_one_executes_and_registers(store):
    q = _queue(store)
    record = q.submit(SPEC)
    assert q.claim_and_run_one() is True
    done = q.get(record.job_id)
    assert done.state == "done"
    assert done.run_id is not None
    assert store.get_run(done.run_id)["experiment"] == "job/steering"
    assert q.executed == 1
    # queue drained: nothing left to claim
    assert q.claim_and_run_one() is False


def test_cached_submission_settles_immediately(store):
    q = _queue(store)
    first = q.submit(SPEC)
    assert q.claim_and_run_one()
    again = q.submit(SPEC)
    assert again.state == "done"
    assert again.cached is True
    assert again.run_id is not None
    assert again.job_id != first.job_id
    # the settled row is durable too (cross-worker /api/jobs visibility)
    assert store.get_job(again.job_id)["cached"] is True
    assert q.depth() == 0


def test_capacity_rejection(store):
    q = _queue(store, capacity=2)
    q.submit(SPEC)
    q.submit({**SPEC, "max_cycles": 6_000})
    with pytest.raises(JobQueueFull, match="queue full"):
        q.submit({**SPEC, "max_cycles": 7_000})


def test_invalid_claimed_spec_fails_the_job(store):
    # a spec that validates nowhere: enqueued directly (as if by an API
    # worker running different code), the claimer must fail it cleanly
    store.enqueue_job("job-bad", "key-bad", {"target": "no-such-kernel"})
    q = _queue(store)
    assert q.claim_and_run_one() is True
    failed = q.get("job-bad")
    assert failed.state == "failed"
    assert failed.error


def test_two_queue_instances_share_the_backlog(store):
    api = _queue(store, owner="api-0")
    sim = _queue(store, owner="sim-0", cache=api.cache)
    record = api.submit(SPEC)
    # the *other* worker claims and executes it
    assert sim.claim_and_run_one() is True
    assert api.get(record.job_id).state == "done"
    assert store.get_job(record.job_id)["owner"] == "sim-0"
    assert sim.executed == 1 and api.executed == 0


def test_local_drain_thread(store):
    q = _queue(store)
    q.start()
    try:
        record = q.submit(SPEC)
        settled = q.wait(record.job_id, timeout=60)
        assert settled.state == "done"
    finally:
        q.stop()
    assert q.stopped()


def test_submission_metrics(store):
    registry = MetricsRegistry()
    q = _queue(store, capacity=1, registry=registry)
    q.submit(SPEC)
    with pytest.raises(JobQueueFull):
        q.submit({**SPEC, "max_cycles": 6_000})
    q.claim_and_run_one()
    q.submit(SPEC)  # cache hit now
    counter = registry.get("repro_jobs_submitted_total")
    outcomes = {
        labels[0]: child.value for labels, child in counter._children.items()
    }
    assert outcomes == {"accepted": 1.0, "rejected": 1.0, "cached": 1.0}
    assert registry.get("repro_job_run_seconds").count == 1
    assert registry.get("repro_job_queue_wait_seconds").count == 1


def test_list_and_depth(store):
    q = _queue(store)
    a = q.submit(SPEC)
    b = q.submit({**SPEC, "max_cycles": 6_000})
    assert {r.job_id for r in q.list()} == {a.job_id, b.job_id}
    assert q.depth() == 2
