"""Smoke test: the threaded HTTP server under concurrent clients."""

import json
import threading
import urllib.request

from repro.serving.app import ServingApp, make_server
from repro.serving.store import RunStore

CLIENTS = 32
REQUESTS_PER_CLIENT = 4


def test_threaded_server_under_concurrent_clients():
    store = RunStore()
    run_ids = [
        store.record_run(f"E-{i % 4}", format(i, "064x"), {"ipc": 1.0 + i})
        for i in range(8)
    ]
    app = ServingApp(store)
    server = make_server(app, port=0)
    port = server.server_address[1]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()

    paths = [
        "/api/health",
        "/api/runs",
        "/api/experiments",
        f"/api/runs/{run_ids[0]}",
        f"/api/diff?a={run_ids[0]}&b={run_ids[1]}",
    ]
    errors = []

    def client(worker: int) -> None:
        try:
            for i in range(REQUESTS_PER_CLIENT):
                path = paths[(worker + i) % len(paths)]
                with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}{path}", timeout=10
                ) as response:
                    assert response.status == 200
                    payload = json.loads(response.read())
                    assert payload  # well-formed, non-empty JSON
        except Exception as exc:  # collected, not raised across threads
            errors.append(f"client {worker}: {exc!r}")

    threads = [
        threading.Thread(target=client, args=(w,)) for w in range(CLIENTS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    server.shutdown()
    server.server_close()
    store.close()
    assert not errors, errors
