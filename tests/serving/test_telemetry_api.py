"""Serving-layer observability: /metrics, /timeseries, access logs.

All exercised through the pure handler (``ServingApp.handle``) — no
sockets, matching the rest of the API suite.
"""

import json
import re

import pytest

from repro.core.params import ProcessorParams
from repro.evaluation.batch import ResultCache, SimJob, run_many
from repro.serving.app import ServingApp
from repro.serving.jobs import JobQueue
from repro.serving.store import RunStore
from repro.telemetry import MetricsRegistry
from repro.workloads.kernels import checksum

_PARAMS = ProcessorParams(reconfig_latency=8)

_SAMPLE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? '
    r'(-?\d+(\.\d+)?([eE][+-]?\d+)?|\+Inf|NaN)$'
)


@pytest.fixture()
def warm():
    """Store + cache seeded with one plain and one telemetry-bearing run."""
    store = RunStore()
    cache = ResultCache(store=store)
    program = checksum(iterations=20).program
    jobs = [
        SimJob("steering", program, _PARAMS, max_cycles=50_000,
               label="plain"),
        SimJob("steering-telemetry", program, _PARAMS, max_cycles=50_000,
               label="instrumented"),
    ]
    run_many(jobs, cache=cache)
    registry = MetricsRegistry()
    app = ServingApp(
        store, cache=cache,
        jobs=JobQueue(cache=cache, store=store, registry=registry),
        registry=registry,
    )
    yield app, store, cache
    store.close()


def _run_id(store, experiment):
    runs = store.list_runs(experiment=experiment)
    assert runs, f"no run recorded under {experiment}"
    return runs[0]["run_id"]


class TestMetricsEndpoint:
    def test_exposition_format(self, warm):
        app, _, _ = warm
        app.handle("GET", "/api/health")
        status, headers, body = app.handle("GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"] == (
            "text/plain; version=0.0.4; charset=utf-8"
        )
        lines = body.decode().splitlines()
        assert lines
        for line in lines:
            if line.startswith("#") or not line:
                continue
            assert _SAMPLE.match(line), line

    def test_expected_families_present(self, warm):
        app, _, _ = warm
        app.handle("GET", "/api/health")
        app.handle("GET", "/api/runs")
        text = app.handle("GET", "/metrics")[2].decode()
        for family in (
            "repro_http_requests_total",
            "repro_http_request_seconds_bucket",
            "repro_store_runs",
            "repro_cache_memory_entries",
            "repro_jobs_pending",
            "repro_last_run_metric",
            "repro_uptime_seconds",
        ):
            assert family in text, f"missing {family}"
        assert "repro_store_runs 2" in text

    def test_request_counter_labels_use_route_templates(self, warm):
        app, store, _ = warm
        rid = _run_id(store, "sim/steering")
        app.handle("GET", f"/api/runs/{rid}")
        app.handle("GET", f"/api/runs/{rid}")
        app.handle("GET", "/definitely/not/a/route")
        text = app.handle("GET", "/metrics")[2].decode()
        assert (
            'repro_http_requests_total{method="GET",'
            'route="/api/runs/{id}",status="200"} 2' in text
        )
        # unknown paths collapse into one label value: bounded cardinality
        assert 'route="(other)",status="404"' in text
        assert f"/api/runs/{rid}" not in text

    def test_metrics_scrape_itself_is_counted(self, warm):
        app, _, _ = warm
        app.handle("GET", "/metrics")
        text = app.handle("GET", "/metrics")[2].decode()
        assert 'route="/metrics",status="200"' in text


class TestTimeseriesEndpoint:
    def test_served_for_instrumented_run(self, warm):
        app, store, _ = warm
        rid = _run_id(store, "sim/steering-telemetry")
        status, headers, body = app.handle(
            "GET", f"/api/runs/{rid}/timeseries"
        )
        assert status == 200
        doc = json.loads(body)
        assert doc["run_id"] == rid
        series = doc["timeseries"]["series"]
        assert "windowed_ipc" in series and "slot_occupancy" in series
        assert len(series["windowed_ipc"]["x"]) >= 2
        assert "immutable" in headers["Cache-Control"]

    def test_etag_revalidation(self, warm):
        app, store, _ = warm
        rid = _run_id(store, "sim/steering-telemetry")
        _, headers, _ = app.handle("GET", f"/api/runs/{rid}/timeseries")
        etag = headers["ETag"]
        status, _, body = app.handle(
            "GET", f"/api/runs/{rid}/timeseries",
            headers={"If-None-Match": etag},
        )
        assert status == 304 and body == b""

    def test_404_for_run_without_series(self, warm):
        app, store, _ = warm
        rid = _run_id(store, "sim/steering")
        status, _, _ = app.handle("GET", f"/api/runs/{rid}/timeseries")
        assert status == 404

    def test_404_for_unknown_run(self, warm):
        app, _, _ = warm
        status, _, _ = app.handle("GET", "/api/runs/deadbeefdeadbeef/timeseries")
        assert status == 404


class TestAccessLog:
    def test_callback_receives_structured_records(self):
        store = RunStore()
        records = []
        app = ServingApp(store, access_log=records.append)
        app.handle("GET", "/api/health")
        app.handle("GET", "/nope")
        store.close()
        assert [r["path"] for r in records] == ["/api/health", "/nope"]
        assert [r["status"] for r in records] == [200, 404]
        assert all(r["method"] == "GET" for r in records)
        assert all(r["latency_ms"] >= 0 for r in records)

    def test_no_callback_no_crash(self):
        store = RunStore()
        app = ServingApp(store)
        status, _, _ = app.handle("GET", "/api/health")
        store.close()
        assert status == 200


class TestMetricsWithoutRegistry:
    def test_metrics_endpoint_still_answers(self):
        """A ServingApp built without a shared registry creates its own."""
        store = RunStore()
        app = ServingApp(store)
        status, headers, body = app.handle("GET", "/metrics")
        store.close()
        assert status == 200
        assert b"repro_store_runs" in body
