"""Serving-layer observability: /metrics, /timeseries, access logs.

All exercised through the pure handler (``ServingApp.handle``) — no
sockets, matching the rest of the API suite.
"""

import json
import re

import pytest

from repro.core.params import ProcessorParams
from repro.evaluation.batch import ResultCache, SimJob, run_many
from repro.serving.app import ServingApp
from repro.serving.jobs import JobQueue
from repro.serving.store import RunStore
from repro.telemetry import MetricsRegistry
from repro.workloads.kernels import checksum

_PARAMS = ProcessorParams(reconfig_latency=8)

_SAMPLE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? '
    r'(-?\d+(\.\d+)?([eE][+-]?\d+)?|\+Inf|NaN)$'
)


@pytest.fixture()
def warm():
    """Store + cache seeded with one plain and one telemetry-bearing run."""
    store = RunStore()
    cache = ResultCache(store=store)
    program = checksum(iterations=20).program
    jobs = [
        SimJob("steering", program, _PARAMS, max_cycles=50_000,
               label="plain"),
        SimJob("steering-telemetry", program, _PARAMS, max_cycles=50_000,
               label="instrumented"),
    ]
    run_many(jobs, cache=cache)
    registry = MetricsRegistry()
    app = ServingApp(
        store, cache=cache,
        jobs=JobQueue(cache=cache, store=store, registry=registry),
        registry=registry,
    )
    yield app, store, cache
    store.close()


def _run_id(store, experiment):
    runs = store.list_runs(experiment=experiment)
    assert runs, f"no run recorded under {experiment}"
    return runs[0]["run_id"]


class TestMetricsEndpoint:
    def test_exposition_format(self, warm):
        app, _, _ = warm
        app.handle("GET", "/api/health")
        status, headers, body = app.handle("GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"] == (
            "text/plain; version=0.0.4; charset=utf-8"
        )
        lines = body.decode().splitlines()
        assert lines
        for line in lines:
            if line.startswith("#") or not line:
                continue
            assert _SAMPLE.match(line), line

    def test_expected_families_present(self, warm):
        app, _, _ = warm
        app.handle("GET", "/api/health")
        app.handle("GET", "/api/runs")
        text = app.handle("GET", "/metrics")[2].decode()
        for family in (
            "repro_http_requests_total",
            "repro_http_request_seconds_bucket",
            "repro_store_runs",
            "repro_cache_memory_entries",
            "repro_jobs_pending",
            "repro_last_run_metric",
            "repro_uptime_seconds",
        ):
            assert family in text, f"missing {family}"
        assert "repro_store_runs 2" in text

    def test_request_counter_labels_use_route_templates(self, warm):
        app, store, _ = warm
        rid = _run_id(store, "sim/steering")
        app.handle("GET", f"/api/runs/{rid}")
        app.handle("GET", f"/api/runs/{rid}")
        app.handle("GET", "/definitely/not/a/route")
        text = app.handle("GET", "/metrics")[2].decode()
        assert (
            'repro_http_requests_total{method="GET",'
            'route="/api/runs/{id}",status="200"} 2' in text
        )
        # unknown paths collapse into one label value: bounded cardinality
        assert 'route="(other)",status="404"' in text
        assert f"/api/runs/{rid}" not in text

    def test_metrics_scrape_itself_is_counted(self, warm):
        app, _, _ = warm
        app.handle("GET", "/metrics")
        text = app.handle("GET", "/metrics")[2].decode()
        assert 'route="/metrics",status="200"' in text


class TestTimeseriesEndpoint:
    def test_served_for_instrumented_run(self, warm):
        app, store, _ = warm
        rid = _run_id(store, "sim/steering-telemetry")
        status, headers, body = app.handle(
            "GET", f"/api/runs/{rid}/timeseries"
        )
        assert status == 200
        doc = json.loads(body)
        assert doc["run_id"] == rid
        series = doc["timeseries"]["series"]
        assert "windowed_ipc" in series and "slot_occupancy" in series
        assert len(series["windowed_ipc"]["x"]) >= 2
        assert "immutable" in headers["Cache-Control"]

    def test_etag_revalidation(self, warm):
        app, store, _ = warm
        rid = _run_id(store, "sim/steering-telemetry")
        _, headers, _ = app.handle("GET", f"/api/runs/{rid}/timeseries")
        etag = headers["ETag"]
        status, _, body = app.handle(
            "GET", f"/api/runs/{rid}/timeseries",
            headers={"If-None-Match": etag},
        )
        assert status == 304 and body == b""

    def test_404_for_run_without_series(self, warm):
        app, store, _ = warm
        rid = _run_id(store, "sim/steering")
        status, _, _ = app.handle("GET", f"/api/runs/{rid}/timeseries")
        assert status == 404

    def test_404_for_unknown_run(self, warm):
        app, _, _ = warm
        status, _, _ = app.handle("GET", "/api/runs/deadbeefdeadbeef/timeseries")
        assert status == 404


class TestDecisionsEndpoint:
    def test_served_for_ledger_enabled_run(self, warm):
        app, store, _ = warm
        rid = _run_id(store, "sim/steering-telemetry")
        status, headers, body = app.handle("GET", f"/api/runs/{rid}/decisions")
        assert status == 200
        doc = json.loads(body)
        assert doc["run_id"] == rid
        ledger = doc["decisions"]
        assert ledger["version"] == 1
        assert ledger["seen"] >= 1
        for d in ledger["decisions"]:
            assert {"cycle", "demand", "idle", "predicted_ipc"} <= set(d)
        assert "immutable" in headers["Cache-Control"]

    def test_etag_revalidation(self, warm):
        app, store, _ = warm
        rid = _run_id(store, "sim/steering-telemetry")
        _, headers, _ = app.handle("GET", f"/api/runs/{rid}/decisions")
        status, _, body = app.handle(
            "GET", f"/api/runs/{rid}/decisions",
            headers={"If-None-Match": headers["ETag"]},
        )
        assert status == 304 and body == b""

    def test_404_for_run_without_ledger(self, warm):
        app, store, _ = warm
        rid = _run_id(store, "sim/steering")
        status, _, body = app.handle("GET", f"/api/runs/{rid}/decisions")
        assert status == 404
        assert b"decision ledger" in body

    def test_404_for_unknown_run(self, warm):
        app, _, _ = warm
        status, _, _ = app.handle("GET", "/api/runs/deadbeefdeadbeef/decisions")
        assert status == 404


class TestLogsEndpoint:
    def test_ring_backed_tail_with_filters(self):
        from repro.telemetry import EventLog

        store = RunStore()
        events = EventLog("serve")
        app = ServingApp(store, events=events)
        events.emit("job_submitted", trace="cafe0123cafe0123", job_id="j1")
        events.emit("job_done", trace="cafe0123cafe0123", job_id="j1")
        events.emit("job_submitted", trace="beef4567beef4567", job_id="j2")
        status, headers, body = app.handle("GET", "/api/logs")
        doc = json.loads(body)
        assert status == 200 and doc["count"] == 3
        assert "no-cache" in headers["Cache-Control"]
        doc = json.loads(
            app.handle("GET", "/api/logs", {"trace": "cafe0123cafe0123"})[2]
        )
        assert [e["event"] for e in doc["events"]] == [
            "job_submitted", "job_done",
        ]
        doc = json.loads(
            app.handle("GET", "/api/logs", {"event": "job_submitted",
                                            "limit": "1"})[2]
        )
        assert doc["count"] == 1 and doc["events"][0]["job_id"] == "j2"
        store.close()

    def test_file_sink_merges_other_processes_records(self, tmp_path):
        """An API worker's /api/logs must show sim-pool events too — the
        shared JSONL sink, not the local ring, is the source of truth."""
        from repro.telemetry import EventLog

        sink = tmp_path / "events.jsonl"
        mine = EventLog("api-0", path=sink)
        other = EventLog("sim-0", path=sink)
        other.emit("job_claimed", job_id="j1")
        mine.emit("http_request", path="/api/jobs")
        store = RunStore()
        app = ServingApp(store, events=mine)
        doc = json.loads(app.handle("GET", "/api/logs")[2])
        assert [e["proc"] for e in doc["events"]] == ["sim-0", "api-0"]
        store.close()
        mine.close(), other.close()

    def test_no_event_log_yields_empty_not_error(self):
        store = RunStore()
        app = ServingApp(store)
        status, _, body = app.handle("GET", "/api/logs")
        store.close()
        assert status == 200
        assert json.loads(body) == {"events": [], "count": 0}

    def test_bad_limit_is_rejected(self):
        from repro.telemetry import EventLog

        store = RunStore()
        app = ServingApp(store, events=EventLog())
        status, _, _ = app.handle("GET", "/api/logs", {"limit": "lots"})
        store.close()
        assert status == 400


class TestTraceContextSubmission:
    def _app(self):
        from repro.serving.jobs import StoreJobQueue
        from repro.telemetry import EventLog

        store = RunStore()
        cache = ResultCache(store=store)
        events = EventLog("serve")
        jobs = StoreJobQueue(
            store, cache=cache, registry=MetricsRegistry(), events=events
        )
        return ServingApp(store, cache=cache, jobs=jobs, events=events), store

    def test_header_id_is_honoured_and_stamped_everywhere(self):
        app, store = self._app()
        spec = json.dumps({"target": "checksum", "max_cycles": 5_000}).encode()
        status, _, body = app.handle(
            "POST", "/api/jobs", body=spec,
            headers={"X-Repro-Trace-Id": "CAFE0123cafe0123"},
        )
        assert status in (200, 202)
        job_id = json.loads(body)["job_id"]
        # normalised id persisted on the durable job row
        assert store.get_job(job_id)["trace_id"] == "cafe0123cafe0123"
        # ... and stamped into the submission event
        doc = json.loads(
            app.handle("GET", "/api/logs", {"trace": "cafe0123cafe0123"})[2]
        )
        assert any(e["event"] == "job_submitted" for e in doc["events"])
        store.close()

    def test_garbage_header_gets_a_minted_id(self):
        from repro.telemetry import is_trace_id

        app, store = self._app()
        spec = json.dumps({"target": "checksum", "max_cycles": 5_000}).encode()
        _, _, body = app.handle(
            "POST", "/api/jobs", body=spec,
            headers={"X-Repro-Trace-Id": "not hex at all"},
        )
        job_id = json.loads(body)["job_id"]
        assert is_trace_id(store.get_job(job_id)["trace_id"])
        store.close()


class TestAccessLog:
    def test_callback_receives_structured_records(self):
        store = RunStore()
        records = []
        app = ServingApp(store, access_log=records.append)
        app.handle("GET", "/api/health")
        app.handle("GET", "/nope")
        store.close()
        assert [r["path"] for r in records] == ["/api/health", "/nope"]
        assert [r["status"] for r in records] == [200, 404]
        assert all(r["method"] == "GET" for r in records)
        assert all(r["latency_ms"] >= 0 for r in records)

    def test_no_callback_no_crash(self):
        store = RunStore()
        app = ServingApp(store)
        status, _, _ = app.handle("GET", "/api/health")
        store.close()
        assert status == 200


class TestMetricsWithoutRegistry:
    def test_metrics_endpoint_still_answers(self):
        """A ServingApp built without a shared registry creates its own."""
        store = RunStore()
        app = ServingApp(store)
        status, headers, body = app.handle("GET", "/metrics")
        store.close()
        assert status == 200
        assert b"repro_store_runs" in body
