"""Tests for the HTTP JSON API (exercised through the pure handler)."""

import json

import pytest

import repro.evaluation.batch as batch
from repro.core.params import ProcessorParams
from repro.evaluation.batch import ResultCache, SimJob, run_many
from repro.serving.app import ServingApp
from repro.serving.jobs import JobQueue, build_job
from repro.serving.store import RunStore
from repro.workloads.kernels import checksum

_PARAMS = ProcessorParams(reconfig_latency=8)


def _decode(response):
    status, headers, body = response
    return status, headers, json.loads(body)


@pytest.fixture()
def warm():
    """A store + cache seeded by actually running two small simulations."""
    store = RunStore()
    cache = ResultCache(store=store)
    jobs = [
        SimJob("steering", checksum(iterations=20).program, _PARAMS,
               max_cycles=50_000, label="checksum/steering"),
        SimJob("ffu-only", checksum(iterations=20).program, _PARAMS,
               max_cycles=50_000, label="checksum/ffu"),
    ]
    run_many(jobs, cache=cache)
    app = ServingApp(store, cache=cache)
    yield app, store, cache
    store.close()


def test_health(warm):
    app, store, _ = warm
    status, headers, payload = _decode(app.handle("GET", "/api/health"))
    assert status == 200
    assert payload["status"] == "ok"
    assert payload["runs"] == store.count() == 2
    assert payload["cache"]["memory_entries"] == 2


def test_dashboard_served_at_root(warm):
    app, _, _ = warm
    status, headers, body = app.handle("GET", "/")
    assert status == 200
    assert headers["Content-Type"].startswith("text/html")
    assert b"<!doctype html>" in body.lower()
    assert b"/api/runs" in body  # the page drives the JSON API


def test_list_runs_and_experiment_filter(warm):
    app, _, _ = warm
    status, _, payload = _decode(app.handle("GET", "/api/runs"))
    assert status == 200
    assert payload["count"] == 2
    status, _, payload = _decode(
        app.handle("GET", "/api/runs", {"experiment": "sim/steering"})
    )
    assert [r["experiment"] for r in payload["runs"]] == ["sim/steering"]
    status, _, payload = _decode(
        app.handle("GET", "/api/runs", {"limit": "not-a-number"})
    )
    assert status == 400


def test_get_run_with_etag_revalidation(warm):
    app, store, _ = warm
    run_id = store.list_runs()[0]["run_id"]
    status, headers, payload = _decode(app.handle("GET", f"/api/runs/{run_id}"))
    assert status == 200
    assert payload["artifact"] is True
    assert payload["metrics"]["ipc"] > 0
    etag = headers["ETag"]
    assert "max-age" in headers["Cache-Control"]
    status, headers, body = app.handle(
        "GET", f"/api/runs/{run_id}", headers={"If-None-Match": etag}
    )
    assert status == 304
    assert body == b""
    assert headers["ETag"] == etag
    # a different tag still gets the full body
    status, _, _ = app.handle(
        "GET", f"/api/runs/{run_id}", headers={"If-None-Match": '"stale"'}
    )
    assert status == 200


def test_get_run_text_format(warm):
    app, store, _ = warm
    run_id = store.list_runs()[0]["run_id"]
    status, headers, body = app.handle(
        "GET", f"/api/runs/{run_id}", {"format": "text"}
    )
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain")
    assert run_id.encode() in body
    assert b"ipc" in body


def test_missing_run_404(warm):
    app, _, _ = warm
    status, _, payload = _decode(app.handle("GET", "/api/runs/" + "0" * 16))
    assert status == 404
    status, _, _ = _decode(app.handle("GET", "/api/nosuch"))
    assert status == 404


def test_diff_endpoint(warm):
    app, store, _ = warm
    a, b = [r["run_id"] for r in store.list_runs()[:2]]
    status, headers, payload = _decode(
        app.handle("GET", "/api/diff", {"a": a, "b": b})
    )
    assert status == 200
    assert "ipc" in payload["metrics"]
    etag = headers["ETag"]
    status, _, _ = app.handle(
        "GET", "/api/diff", {"a": a, "b": b}, {"If-None-Match": etag}
    )
    assert status == 304
    status, _, _ = _decode(app.handle("GET", "/api/diff", {"a": a}))
    assert status == 400
    status, _, payload = _decode(
        app.handle("GET", "/api/diff", {"a": a, "b": "0" * 16})
    )
    assert status == 404


def test_artifact_endpoint_immutable(warm):
    app, store, _ = warm
    run_id = store.list_runs()[0]["run_id"]
    status, headers, payload = _decode(
        app.handle("GET", f"/api/runs/{run_id}/artifact")
    )
    assert status == 200
    assert "immutable" in headers["Cache-Control"]
    assert payload["artifact"]["ipc"] > 0
    status, _, _ = app.handle(
        "GET", f"/api/runs/{run_id}/artifact",
        headers={"If-None-Match": headers["ETag"]},
    )
    assert status == 304


def test_warm_cache_answers_without_simulating(warm, monkeypatch):
    """The acceptance check: list/get/diff never touch the simulator."""
    app, store, _ = warm

    def explode(*a, **kw):
        raise AssertionError("simulated on a read-only request")

    monkeypatch.setattr(batch, "execute_job", explode)
    monkeypatch.setattr(batch, "_execute_shipped", explode)

    runs = _decode(app.handle("GET", "/api/runs"))[2]["runs"]
    a, b = runs[0]["run_id"], runs[1]["run_id"]
    assert _decode(app.handle("GET", f"/api/runs/{a}"))[0] == 200
    assert _decode(app.handle("GET", f"/api/runs/{a}/artifact"))[0] == 200
    assert _decode(app.handle("GET", "/api/diff", {"a": a, "b": b}))[0] == 200
    assert _decode(app.handle("GET", "/api/health"))[0] == 200


# ------------------------------------------------------------ job submission
def test_submit_without_queue_is_503():
    store = RunStore()
    app = ServingApp(store)
    status, _, _ = _decode(app.handle("POST", "/api/jobs", body=b"{}"))
    assert status == 503
    store.close()


def test_submit_bad_json_and_bad_spec():
    store = RunStore()
    app = ServingApp(store, jobs=JobQueue(capacity=2))
    status, _, payload = _decode(
        app.handle("POST", "/api/jobs", body=b"{not json")
    )
    assert status == 400
    status, _, payload = _decode(
        app.handle("POST", "/api/jobs", body=b'{"target": "nosuch-kernel"}')
    )
    assert status == 400
    assert "nosuch-kernel" in payload["error"]
    store.close()


def test_submit_cached_job_returns_200_immediately():
    store = RunStore()
    cache = ResultCache()
    spec = {"factory": "steering", "target": "checksum",
            "params": {"reconfig_latency": 8}, "max_cycles": 50_000}
    run_many([build_job(spec)], cache=cache)
    queue = JobQueue(cache=cache, store=store)
    app = ServingApp(store, cache=cache, jobs=queue)
    status, _, payload = _decode(
        app.handle("POST", "/api/jobs", body=json.dumps(spec).encode())
    )
    assert status == 200
    assert payload["cached"] is True
    assert payload["state"] == "done"
    # the run became visible through the run list
    runs = _decode(app.handle("GET", "/api/runs"))[2]["runs"]
    assert any(r["run_id"] == payload["run_id"] for r in runs)
    queue.stop()
    store.close()


def test_submit_fresh_job_runs_and_appears_in_run_list():
    store = RunStore()
    cache = ResultCache()
    queue = JobQueue(cache=cache, store=store)
    app = ServingApp(store, cache=cache, jobs=queue)
    spec = {"factory": "ffu-only", "target": "checksum",
            "max_cycles": 50_000, "label": "api submission"}
    status, _, payload = _decode(
        app.handle("POST", "/api/jobs", body=json.dumps(spec).encode())
    )
    assert status == 202
    settled = queue.wait(payload["job_id"], timeout=60)
    assert settled.state == "done"
    status, _, job = _decode(app.handle("GET", f"/api/jobs/{payload['job_id']}"))
    assert job["state"] == "done"
    assert job["run_id"] is not None
    runs = _decode(
        app.handle("GET", "/api/runs", {"experiment": "job/ffu-only"})
    )[2]["runs"]
    assert [r["run_id"] for r in runs] == [job["run_id"]]
    assert runs[0]["label"] == "api submission"
    # resubmission of the same spec is now a cache hit
    status, _, payload = _decode(
        app.handle("POST", "/api/jobs", body=json.dumps(spec).encode())
    )
    assert status == 200 and payload["cached"] is True
    queue.stop()
    store.close()


def test_jobs_listing(warm):
    app, store, cache = warm
    queue = JobQueue(cache=cache, store=store)
    app.jobs = queue
    status, _, payload = _decode(app.handle("GET", "/api/jobs"))
    assert status == 200 and payload["jobs"] == []
    status, _, _ = _decode(app.handle("GET", "/api/jobs/job-9999"))
    assert status == 404
    queue.stop()


# -------------------------------------------------------------- backpressure
def _rejections(app):
    counter = app.registry.get("repro_jobs_rejected_total")
    return {
        labels[0]: child.value for labels, child in counter._children.items()
    }


def test_disabled_submission_503_carries_retry_after_and_counts():
    store = RunStore()
    app = ServingApp(store)
    status, headers, payload = app.handle("POST", "/api/jobs", body=b"{}")
    assert status == 503
    assert headers["Retry-After"] == "1"
    assert json.loads(payload)["status"] == 503
    assert _rejections(app) == {"disabled": 1.0}
    store.close()


def test_queue_full_503_carries_retry_after_and_counts():
    from repro.serving.jobs import StoreJobQueue

    store = RunStore()
    # durable queue, never drained: submissions pile up to capacity
    queue = StoreJobQueue(store, cache=ResultCache(), capacity=1)
    app = ServingApp(store, cache=queue.cache, jobs=queue)
    spec = {"target": "checksum", "max_cycles": 50_000}
    status, _, _ = app.handle(
        "POST", "/api/jobs", body=json.dumps(spec).encode()
    )
    assert status == 202
    rejected = 0
    for extra in (60_000, 70_000):
        status, headers, _ = app.handle(
            "POST", "/api/jobs",
            body=json.dumps({**spec, "max_cycles": extra}).encode(),
        )
        assert status == 503
        # every queue-full rejection tells the client when to come back
        assert headers["Retry-After"] == "1"
        rejected += 1
    assert _rejections(app) == {"queue_full": float(rejected)}
    # the rejections surface on /metrics too
    _, _, body = app.handle("GET", "/metrics")
    assert 'repro_jobs_rejected_total{reason="queue_full"} 2' in body.decode()
    store.close()


# ---------------------------------------------------------- worker metrics
def test_worker_scrape_publishes_and_merges():
    store = RunStore()
    a = ServingApp(store, worker_name="api-0")
    b = ServingApp(store, worker_name="api-1")
    a.handle("GET", "/api/health")
    b.handle("GET", "/api/health")
    b.handle("GET", "/metrics")  # api-1 publishes its snapshot
    # either worker's scrape answers for the whole fleet
    status, _, body = a.handle("GET", "/metrics")
    assert status == 200
    text = body.decode()
    assert (
        'repro_http_requests_total{method="GET",route="/api/health",'
        'status="200",worker="api-0"} 1' in text
    )
    assert 'worker="api-1"' in text
    # and the snapshots are visible store-wide
    assert set(store.worker_metrics()) == {"api-0", "api-1"}
    store.close()
