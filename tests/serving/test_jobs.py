"""Tests for job specs, the bounded job queue and its backpressure."""

import threading

import pytest

from repro.errors import ConfigurationError, WorkloadError
from repro.evaluation.batch import ResultCache, job_key, run_many
from repro.serving.jobs import (
    MAX_SUBMITTED_CYCLES,
    JobQueue,
    JobQueueFull,
    build_job,
    resolve_program,
)
from repro.serving.store import RunStore

_SPEC = {
    "factory": "steering",
    "target": "checksum",
    "params": {"reconfig_latency": 8},
    "max_cycles": 50_000,
}


# ------------------------------------------------------------------- targets
def test_resolve_kernel_and_synthetic_targets():
    assert len(resolve_program("checksum").instructions) > 0
    assert len(resolve_program("mix:int:10:3").instructions) > 0
    assert len(resolve_program("phased:2").instructions) > 0


def test_resolve_never_reads_files(tmp_path):
    path = tmp_path / "evil.s"
    path.write_text("halt\n")
    with pytest.raises(WorkloadError):
        resolve_program(str(path))
    with pytest.raises(WorkloadError):
        resolve_program("mix:nosuch")


# ------------------------------------------------------------------ build_job
def test_build_job_happy_path():
    job = build_job(_SPEC)
    assert job.factory == "steering"
    assert job.params.reconfig_latency == 8
    assert job.max_cycles == 50_000
    assert job.label == "checksum"


def test_build_job_rejects_malformed_specs():
    with pytest.raises(ConfigurationError):
        build_job("not a dict")
    with pytest.raises(ConfigurationError):
        build_job({})  # no target
    with pytest.raises(ConfigurationError):
        build_job({"target": "checksum", "params": {"nosuch_param": 1}})
    with pytest.raises(ConfigurationError):
        build_job({"target": "checksum", "max_cycles": 0})
    with pytest.raises(ConfigurationError):
        build_job({"target": "checksum",
                   "max_cycles": MAX_SUBMITTED_CYCLES + 1})
    with pytest.raises(ConfigurationError):
        build_job({"target": "checksum", "kwargs": {"x": [1, 2]}})
    with pytest.raises(ConfigurationError):
        build_job({"target": "checksum", "factory": "no-such-factory"})


# ------------------------------------------------------------------ JobQueue
def test_submit_runs_job_and_registers_run():
    store = RunStore()
    queue = JobQueue(store=store, capacity=4)
    try:
        record = queue.submit(dict(_SPEC))
        assert record.state in ("queued", "running")
        settled = queue.wait(record.job_id, timeout=60)
        assert settled.state == "done"
        assert not settled.cached
        assert queue.executed == 1
        run = store.get_run(settled.run_id)
        assert run["experiment"] == "job/steering"
        assert run["metrics"]["ipc"] > 0
    finally:
        queue.stop()
        store.close()


def test_cached_submission_answers_without_simulating():
    cache = ResultCache()
    seeded = run_many([build_job(_SPEC)], cache=cache)
    assert seeded[0].halted
    queue = JobQueue(cache=cache, store=RunStore(), capacity=4)
    record = queue.submit(dict(_SPEC))
    assert record.state == "done"
    assert record.cached
    assert record.run_id is not None
    assert queue.executed == 0


def test_backpressure_raises_jobqueuefull(monkeypatch):
    import repro.serving.jobs as jobs_mod

    release = threading.Event()
    started = threading.Event()

    def blocking_run_many(jobs, workers=0, cache=None, **kw):
        started.set()
        release.wait(30)
        return [object() for _ in jobs]

    monkeypatch.setattr(jobs_mod, "run_many", blocking_run_many)
    queue = JobQueue(capacity=1)
    try:
        specs = [dict(_SPEC, label=f"j{i}") for i in range(3)]
        first = queue.submit(specs[0])  # drained immediately, blocks
        assert started.wait(10)
        queue.submit(specs[1])  # occupies the single queue slot
        with pytest.raises(JobQueueFull):
            queue.submit(specs[2])
        release.set()
        assert queue.wait(first.job_id, timeout=10).state == "done"
    finally:
        release.set()
        queue.stop()


def test_failed_job_reports_error(monkeypatch):
    import repro.serving.jobs as jobs_mod

    def exploding_run_many(jobs, workers=0, cache=None, **kw):
        raise RuntimeError("simulator exploded")

    monkeypatch.setattr(jobs_mod, "run_many", exploding_run_many)
    queue = JobQueue(capacity=2)
    try:
        record = queue.submit(dict(_SPEC))
        settled = queue.wait(record.job_id, timeout=10)
        assert settled.state == "failed"
        assert "simulator exploded" in settled.error
    finally:
        queue.stop()


def test_label_excluded_from_content_key():
    a = build_job(dict(_SPEC, label="one"))
    b = build_job(dict(_SPEC, label="two"))
    assert job_key(a) == job_key(b)
