"""End-to-end trace-context propagation across process boundaries.

The acceptance test for the tracing layer: a job submitted to a
``--workers 2`` supervisor under a caller-minted ``X-Repro-Trace-Id``
must yield ONE merged Perfetto file whose spans cover HTTP ingress (an
API worker process), queue wait, claim + simulation (a sim-pool
process) and retirement — all stamped with the same trace id.
"""

import http.client
import json
import threading
import time

import pytest

from repro.evaluation.batch import ResultCache
from repro.serving.store import RunStore
from repro.serving.supervisor import Supervisor
from repro.telemetry import events_path_for, merge_job_trace, read_events

TRACE_ID = "feedc0de12345678"


def _request(port, method, path, body=None, headers=None, timeout=10):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def _wait_healthy(port, timeout=20.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            status, _ = _request(port, "GET", "/api/health", timeout=2)
            if status == 200:
                return
        except OSError:
            pass
        time.sleep(0.1)
    raise AssertionError(f"no healthy worker on :{port} within {timeout}s")


@pytest.fixture()
def cluster(tmp_path):
    """2 API workers + 1 sim worker over an on-disk store + event log."""
    store_path = str(tmp_path / "runs.sqlite")
    cache_dir = str(tmp_path / "cache")
    sup = Supervisor(
        store_path, cache_dir=cache_dir,
        host="127.0.0.1", port=0, workers=2, sim_pool=1,
        respawn_base=0.1,
    )
    sup.start()
    runner = threading.Thread(target=sup.run, daemon=True)
    runner.start()
    _wait_healthy(sup.port)
    try:
        yield sup, store_path, cache_dir
    finally:
        sup._stopping.set()
        runner.join(30)
        assert not runner.is_alive(), "supervisor failed to stop"


def test_one_trace_id_spans_every_process(cluster):
    sup, store_path, cache_dir = cluster
    spec = json.dumps({
        "target": "checksum", "max_cycles": 5_000,
        "factory": "steering-telemetry",
    }).encode()
    status, body = _request(
        sup.port, "POST", "/api/jobs", body=spec,
        headers={"Content-Type": "application/json",
                 "X-Repro-Trace-Id": TRACE_ID},
    )
    assert status == 202, body
    job_id = json.loads(body)["job_id"]

    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        _, body = _request(sup.port, "GET", f"/api/jobs/{job_id}")
        job = json.loads(body)
        if job["state"] in ("done", "failed"):
            break
        time.sleep(0.1)
    assert job["state"] == "done", job.get("error")
    assert job["trace_id"] == TRACE_ID
    run_id = job["run_id"]

    # the shared event log saw the trace in at least two distinct
    # processes: the API worker that accepted it and the sim worker
    # that claimed and ran it
    _, body = _request(sup.port, "GET", f"/api/logs?trace={TRACE_ID}")
    log = json.loads(body)
    names = {e["event"] for e in log["events"]}
    assert {"job_submitted", "job_claimed", "job_done"} <= names
    assert len({e["pid"] for e in log["events"]}) >= 2

    # assemble the merged Perfetto document exactly as `repro trace` does
    with RunStore(store_path) as store:
        row = store.job_for_run(run_id)
        run = store.get_run(run_id)
    assert row["trace_id"] == TRACE_ID
    payload = ResultCache(cache_dir).get(run["config_hash"])
    events = read_events(events_path_for(store_path), trace=TRACE_ID)
    merged = merge_job_trace(
        TRACE_ID,
        job=row,
        sim_trace=payload.get("trace"),
        events=events,
        run_id=run_id,
    )

    spans = [e for e in merged["traceEvents"] if e["ph"] != "M"]
    # one document, one trace id, on every event
    assert merged["otherData"]["trace_id"] == TRACE_ID
    assert all(e["args"]["trace_id"] == TRACE_ID for e in spans)
    # the three merge domains are all present: serving wall clock,
    # simulation cycle domain, structured event log
    assert {e["pid"] for e in spans} == {1, 2, 3}
    names = [e["name"] for e in spans if e["pid"] == 1]
    assert names[0] == "ingress"
    assert "queue-wait" in names
    assert any(n.startswith("claim+run (sim-") for n in names)
    # event-log instants carry records from >= 2 OS processes
    os_pids = {
        e["args"]["pid"] for e in spans if e["pid"] == 3
    }
    assert len(os_pids) >= 2
    # timestamps are monotonic within each (pid, tid) track
    last: dict = {}
    for e in spans:
        track = (e["pid"], e["tid"])
        assert e["ts"] >= last.get(track, float("-inf")), track
        last[track] = e["ts"]
