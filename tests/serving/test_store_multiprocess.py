"""Multi-process RunStore tests: WAL concurrency across real processes.

The tentpole claim of the WAL store is that several *processes* — API
workers and simulation pool workers under the supervisor — can write the
same database file concurrently without ``database is locked`` errors
and without losing writes.  These tests fork real writer processes and
verify exact row counts afterwards.
"""

import multiprocessing
import sqlite3

from repro.serving.store import RunStore

WRITERS = 4
UPSERTS = 100


def _writer_main(path, writer, errors):
    """One writer process: 100 distinct inserts, each upserted twice."""
    try:
        with RunStore(path) as store:
            for i in range(UPSERTS):
                config_hash = f"{writer:02d}{i:04d}".ljust(64, "f")
                # same (experiment, hash, rev) -> same run_id: the second
                # call must upsert, not grow the table
                store.record_run(
                    "E-MP", config_hash, {"i": i}, git_rev="r", label="first"
                )
                store.record_run(
                    "E-MP", config_hash, {"i": i, "again": 1},
                    git_rev="r", label="second",
                )
    except Exception as exc:  # propagated to the parent for the assert
        errors.put(f"writer {writer}: {type(exc).__name__}: {exc}")


def _job_worker_main(path, owner, claimed):
    """Claim jobs until the queue is empty; report what we got."""
    mine = []
    with RunStore(path) as store:
        while True:
            job = store.claim_job(owner)
            if job is None:
                break
            store.finish_job(job["job_id"], "done")
            mine.append(job["job_id"])
    claimed.put((owner, mine))


def test_concurrent_writers_do_not_lock_or_lose_rows(tmp_path):
    db = str(tmp_path / "mp.sqlite")
    with RunStore(db) as store:
        assert store.journal_mode == "wal"

    ctx = multiprocessing.get_context("fork")
    errors = ctx.Queue()
    procs = [
        ctx.Process(target=_writer_main, args=(db, w, errors))
        for w in range(WRITERS)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(120)
    assert all(p.exitcode == 0 for p in procs), [p.exitcode for p in procs]

    failures = []
    while not errors.empty():
        failures.append(errors.get())
    assert not failures, failures  # no 'database is locked', no other errors

    with RunStore(db) as store:
        # every writer's rows exist exactly once (the upsert coalesced)
        assert store.count() == WRITERS * UPSERTS
        runs = store.list_runs(limit=WRITERS * UPSERTS + 1)
        assert len(runs) == WRITERS * UPSERTS
        # the second (upserting) write won on every row
        assert all(r["label"] == "second" for r in runs)
        assert all(r["metrics"].get("again") == 1 for r in runs)


def test_cross_process_claims_partition_the_queue(tmp_path):
    """Two claimer processes drain a shared queue: no job runs twice."""
    db = str(tmp_path / "queue.sqlite")
    job_ids = [f"job-{i:03d}" for i in range(20)]
    with RunStore(db) as store:
        for i, job_id in enumerate(job_ids):
            store.enqueue_job(job_id, f"key-{i}", {"i": i},
                              submitted=float(i))

    ctx = multiprocessing.get_context("fork")
    claimed = ctx.Queue()
    procs = [
        ctx.Process(target=_job_worker_main, args=(db, f"sim-{w}", claimed))
        for w in range(2)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(60)
    assert all(p.exitcode == 0 for p in procs)

    by_owner = dict(claimed.get() for _ in range(2))
    all_claimed = [j for jobs in by_owner.values() for j in jobs]
    # exactly-once: the union covers every job with no duplicates
    assert sorted(all_claimed) == job_ids
    with RunStore(db) as store:
        assert store.queued_depth() == 0
        for job_id in job_ids:
            job = store.get_job(job_id)
            assert job["state"] == "done"
            assert job["owner"] in ("sim-0", "sim-1")


def test_reader_sees_writer_snapshot_not_locked(tmp_path):
    """A second connection reading during writes never blocks or errors."""
    db = str(tmp_path / "wal-read.sqlite")
    with RunStore(db) as store:
        for i in range(10):
            store.record_run("E", f"{i:064d}"[:64], {"i": i})
        # raw read-only connection while the store is open: WAL allows it
        conn = sqlite3.connect(f"file:{db}?mode=ro", uri=True, timeout=1)
        count = conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0]
        conn.close()
    assert count == 10
