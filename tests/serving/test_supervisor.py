"""Tests for the pre-fork supervisor (multi-process serving)."""

import http.client
import json
import os
import signal
import threading
import time

import pytest

from repro.serving.supervisor import Supervisor, _reuseport_available


def _request(port, method, path, body=None, timeout=10):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        headers = {"Content-Type": "application/json"} if body else {}
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def _wait_healthy(port, timeout=20.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            status, _ = _request(port, "GET", "/api/health", timeout=2)
            if status == 200:
                return
        except OSError:
            pass
        time.sleep(0.1)
    raise AssertionError(f"no healthy worker on :{port} within {timeout}s")


@pytest.fixture()
def supervisor(tmp_path):
    """A running 2-API + 1-sim supervisor on an ephemeral port."""
    sup = Supervisor(
        str(tmp_path / "runs.sqlite"), cache_dir=str(tmp_path / "cache"),
        host="127.0.0.1", port=0, workers=2, sim_pool=1,
        respawn_base=0.1,
    )
    sup.start()
    runner = threading.Thread(target=sup.run, daemon=True)
    runner.start()
    _wait_healthy(sup.port)
    try:
        yield sup
    finally:
        sup._stopping.set()
        runner.join(30)
        assert not runner.is_alive(), "supervisor failed to stop"


def test_resolves_ephemeral_port(supervisor):
    assert supervisor.port != 0


def test_submit_runs_on_the_sim_pool(supervisor):
    spec = json.dumps({"target": "checksum", "max_cycles": 5_000}).encode()
    status, body = _request(supervisor.port, "POST", "/api/jobs", body=spec)
    assert status == 202
    record = json.loads(body)
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        _, body = _request(
            supervisor.port, "GET", f"/api/jobs/{record['job_id']}"
        )
        job = json.loads(body)
        if job["state"] in ("done", "failed"):
            break
        time.sleep(0.1)
    assert job["state"] == "done", job.get("error")
    assert job["run_id"]
    # the job executed in a dedicated pool worker, not an API worker
    status, body = _request(supervisor.port, "GET", "/metrics")
    assert 'repro_job_run_seconds_count{worker="sim-0"} 1' in body.decode()


def test_metrics_are_merged_across_workers(supervisor):
    # each worker publishes its first snapshot during startup; wait for
    # all of them to have registered before asserting the merge
    deadline = time.monotonic() + 20
    workers: set[str] = set()
    while time.monotonic() < deadline:
        status, body = _request(supervisor.port, "GET", "/metrics")
        assert status == 200
        text = body.decode()
        workers = {part.split('"')[0] for part in text.split('worker="')[1:]}
        if {"api-0", "api-1", "sim-0"} <= workers:
            break
        time.sleep(0.2)
    assert {"api-0", "api-1", "sim-0"} <= workers
    # exposition stays well-formed: one TYPE line per family
    type_lines = [l for l in text.splitlines() if l.startswith("# TYPE ")]
    assert len(type_lines) == len({l.split()[2] for l in type_lines})


def test_crashed_worker_is_respawned(supervisor):
    victim = supervisor._children["api-0"]
    os.kill(victim.pid, signal.SIGKILL)
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        current = supervisor._children.get("api-0")
        if current is not None and current.pid != victim.pid and current.is_alive():
            break
        time.sleep(0.1)
    else:
        raise AssertionError("api-0 was not respawned")
    assert supervisor._crashes["api-0"] == 1
    _wait_healthy(supervisor.port)


def test_graceful_stop_reaps_all_children(tmp_path):
    sup = Supervisor(
        str(tmp_path / "runs.sqlite"), host="127.0.0.1", port=0,
        workers=1, sim_pool=1,
    )
    sup.start()
    pids = [p.pid for p in sup._children.values()]
    assert len(pids) == 2
    sup.stop()
    assert sup._children == {}
    for pid in pids:
        with pytest.raises(OSError):
            os.kill(pid, 0)  # ESRCH: the process is gone


def test_inherited_fd_fallback_serves(tmp_path):
    sup = Supervisor(
        str(tmp_path / "runs.sqlite"), host="127.0.0.1", port=0,
        workers=2, sim_pool=0,
    )
    sup.reuseport = False  # force the shared-accept-socket path
    sup.start()
    runner = threading.Thread(target=sup.run, daemon=True)
    runner.start()
    try:
        _wait_healthy(sup.port)
        status, _ = _request(sup.port, "GET", "/api/health")
        assert status == 200
    finally:
        sup._stopping.set()
        runner.join(30)
    assert not runner.is_alive()


def test_rejects_zero_workers(tmp_path):
    with pytest.raises(ValueError, match="at least one"):
        Supervisor(str(tmp_path / "r.sqlite"), workers=0)


def test_reuseport_detection_matches_platform():
    import socket

    assert _reuseport_available() == hasattr(socket, "SO_REUSEPORT")
