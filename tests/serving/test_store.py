"""Tests for the persistent run store (SQLite index)."""

import sqlite3

import pytest

from repro.errors import ConfigurationError
from repro.serving.store import SCHEMA_VERSION, RunStore, metrics_of


# ---------------------------------------------------------------- round-trip
def test_record_and_get_run():
    with RunStore() as store:
        run_id = store.record_run(
            "E-IPC", "a" * 64, {"mean_ipc": 1.5, "wins": 3},
            label="fast", git_rev="abc1234",
        )
        run = store.get_run(run_id)
    assert run["experiment"] == "E-IPC"
    assert run["config_hash"] == "a" * 64
    assert run["metrics"] == {"mean_ipc": 1.5, "wins": 3}
    assert run["label"] == "fast"
    assert run["git_rev"] == "abc1234"


def test_run_id_is_deterministic_and_upserts():
    with RunStore() as store:
        first = store.record_run("E", "c" * 64, {"x": 1}, git_rev="r1")
        again = store.record_run("E", "c" * 64, {"x": 2}, git_rev="r1")
        other = store.record_run("E", "c" * 64, {"x": 1}, git_rev="r2")
        assert first == again
        assert other != first
        assert store.count() == 2
        assert store.get_run(first)["metrics"] == {"x": 2}


def test_list_runs_most_recent_first_and_filters():
    with RunStore() as store:
        store.record_run("A", "1" * 64, {}, created=100.0)
        store.record_run("B", "2" * 64, {}, created=200.0)
        store.record_run("A", "3" * 64, {}, created=300.0)
        runs = store.list_runs()
        assert [r["created"] for r in runs] == [300.0, 200.0, 100.0]
        only_a = store.list_runs(experiment="A")
        assert {r["experiment"] for r in only_a} == {"A"}
        assert len(store.list_runs(limit=1)) == 1
        assert store.list_runs(limit=1, offset=1)[0]["created"] == 200.0


def test_experiments_summary():
    with RunStore() as store:
        store.record_run("A", "1" * 64, {}, created=10.0)
        store.record_run("A", "2" * 64, {}, created=20.0)
        store.record_run("B", "3" * 64, {}, created=30.0)
        summary = {e["experiment"]: e for e in store.experiments()}
    assert summary["A"]["runs"] == 2
    assert summary["A"]["last_created"] == 20.0
    assert summary["B"]["runs"] == 1


def test_persists_to_disk(tmp_path):
    db = tmp_path / "runs.sqlite"
    with RunStore(db) as store:
        run_id = store.record_run("E", "d" * 64, {"ipc": 2.0})
    with RunStore(db) as store:
        assert store.get_run(run_id)["metrics"] == {"ipc": 2.0}


# ------------------------------------------------------------------ diffing
def test_diff_metrics():
    with RunStore() as store:
        a = store.record_run("E", "a" * 64, {"ipc": 2.0, "only_a": 1.0})
        b = store.record_run("E", "b" * 64, {"ipc": 3.0, "only_b": 4.0})
        diff = store.diff(a, b)
    assert diff["a"]["run_id"] == a
    assert diff["metrics"]["ipc"] == {
        "a": 2.0, "b": 3.0, "delta": 1.0, "ratio": 1.5,
    }
    assert diff["metrics"]["only_a"] == {"a": 1.0, "b": None}
    assert diff["metrics"]["only_b"] == {"a": None, "b": 4.0}


def test_diff_missing_run_raises_keyerror():
    with RunStore() as store:
        a = store.record_run("E", "a" * 64, {})
        with pytest.raises(KeyError, match="ffff"):
            store.diff(a, "f" * 16)


# ---------------------------------------------------------------- migration
def _make_v1_db(path):
    """A database as the (hypothetical) v1 code would have left it."""
    conn = sqlite3.connect(path)
    conn.executescript(
        """
        CREATE TABLE runs (
            run_id      TEXT PRIMARY KEY,
            experiment  TEXT NOT NULL,
            config_hash TEXT NOT NULL,
            created     REAL NOT NULL,
            metrics     TEXT NOT NULL
        );
        """
    )
    conn.execute(
        "INSERT INTO runs VALUES (?, ?, ?, ?, ?)",
        ("0123456789abcdef", "E-OLD", "e" * 64, 123.0, '{"ipc": 1.25}'),
    )
    conn.execute("PRAGMA user_version = 1")
    conn.commit()
    conn.close()


def test_migrates_v1_schema(tmp_path):
    db = tmp_path / "v1.sqlite"
    _make_v1_db(db)
    with RunStore(db) as store:
        run = store.get_run("0123456789abcdef")
        assert run["metrics"] == {"ipc": 1.25}
        assert run["label"] == ""
        assert run["git_rev"] == ""
        # new writes use the new columns
        store.record_run("E-NEW", "f" * 64, {}, label="l", git_rev="r")
    version = sqlite3.connect(db).execute("PRAGMA user_version").fetchone()[0]
    assert version == SCHEMA_VERSION


def test_rejects_future_schema(tmp_path):
    db = tmp_path / "future.sqlite"
    conn = sqlite3.connect(db)
    conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 1}")
    conn.commit()
    conn.close()
    with pytest.raises(ConfigurationError, match="schema version"):
        RunStore(db)


# --------------------------------------------------------------- metrics_of
def test_metrics_of_plain_dict_keeps_numbers_only():
    assert metrics_of({"ipc": 1.5, "halted": True, "name": "x"}) == {
        "ipc": 1.5, "halted": 1,
    }


def test_metrics_of_to_dict_object():
    class FakeResult:
        def to_dict(self):
            return {"cycles": 100, "ipc": 2.0, "policy": "steering"}

    assert metrics_of(FakeResult()) == {"cycles": 100, "ipc": 2.0}


def test_metrics_of_traced_payload():
    class FakeResult:
        def to_dict(self):
            return {"ipc": 2.0}

    payload = {
        "result": FakeResult(),
        "kept_fraction": 0.75,
        "load_cycles": [1, 2, 3],
        "selections": ["cfg"],
    }
    assert metrics_of(payload) == {
        "ipc": 2.0, "kept_fraction": 0.75, "load_count": 3,
    }


def test_metrics_of_opaque_result_is_empty():
    assert metrics_of(["not", "a", "dict"]) == {}
