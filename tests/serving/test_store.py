"""Tests for the persistent run store (SQLite index)."""

import sqlite3

import pytest

from repro.errors import ConfigurationError
from repro.serving.store import SCHEMA_VERSION, RunStore, metrics_of


# ---------------------------------------------------------------- round-trip
def test_record_and_get_run():
    with RunStore() as store:
        run_id = store.record_run(
            "E-IPC", "a" * 64, {"mean_ipc": 1.5, "wins": 3},
            label="fast", git_rev="abc1234",
        )
        run = store.get_run(run_id)
    assert run["experiment"] == "E-IPC"
    assert run["config_hash"] == "a" * 64
    assert run["metrics"] == {"mean_ipc": 1.5, "wins": 3}
    assert run["label"] == "fast"
    assert run["git_rev"] == "abc1234"


def test_run_id_is_deterministic_and_upserts():
    with RunStore() as store:
        first = store.record_run("E", "c" * 64, {"x": 1}, git_rev="r1")
        again = store.record_run("E", "c" * 64, {"x": 2}, git_rev="r1")
        other = store.record_run("E", "c" * 64, {"x": 1}, git_rev="r2")
        assert first == again
        assert other != first
        assert store.count() == 2
        assert store.get_run(first)["metrics"] == {"x": 2}


def test_list_runs_most_recent_first_and_filters():
    with RunStore() as store:
        store.record_run("A", "1" * 64, {}, created=100.0)
        store.record_run("B", "2" * 64, {}, created=200.0)
        store.record_run("A", "3" * 64, {}, created=300.0)
        runs = store.list_runs()
        assert [r["created"] for r in runs] == [300.0, 200.0, 100.0]
        only_a = store.list_runs(experiment="A")
        assert {r["experiment"] for r in only_a} == {"A"}
        assert len(store.list_runs(limit=1)) == 1
        assert store.list_runs(limit=1, offset=1)[0]["created"] == 200.0


def test_experiments_summary():
    with RunStore() as store:
        store.record_run("A", "1" * 64, {}, created=10.0)
        store.record_run("A", "2" * 64, {}, created=20.0)
        store.record_run("B", "3" * 64, {}, created=30.0)
        summary = {e["experiment"]: e for e in store.experiments()}
    assert summary["A"]["runs"] == 2
    assert summary["A"]["last_created"] == 20.0
    assert summary["B"]["runs"] == 1


def test_persists_to_disk(tmp_path):
    db = tmp_path / "runs.sqlite"
    with RunStore(db) as store:
        run_id = store.record_run("E", "d" * 64, {"ipc": 2.0})
    with RunStore(db) as store:
        assert store.get_run(run_id)["metrics"] == {"ipc": 2.0}


# ------------------------------------------------------------------ diffing
def test_diff_metrics():
    with RunStore() as store:
        a = store.record_run("E", "a" * 64, {"ipc": 2.0, "only_a": 1.0})
        b = store.record_run("E", "b" * 64, {"ipc": 3.0, "only_b": 4.0})
        diff = store.diff(a, b)
    assert diff["a"]["run_id"] == a
    assert diff["metrics"]["ipc"] == {
        "a": 2.0, "b": 3.0, "delta": 1.0, "ratio": 1.5,
    }
    assert diff["metrics"]["only_a"] == {"a": 1.0, "b": None}
    assert diff["metrics"]["only_b"] == {"a": None, "b": 4.0}


def test_diff_missing_run_raises_keyerror():
    with RunStore() as store:
        a = store.record_run("E", "a" * 64, {})
        with pytest.raises(KeyError, match="ffff"):
            store.diff(a, "f" * 16)


# ---------------------------------------------------------------- migration
def _make_v1_db(path):
    """A database as the (hypothetical) v1 code would have left it."""
    conn = sqlite3.connect(path)
    conn.executescript(
        """
        CREATE TABLE runs (
            run_id      TEXT PRIMARY KEY,
            experiment  TEXT NOT NULL,
            config_hash TEXT NOT NULL,
            created     REAL NOT NULL,
            metrics     TEXT NOT NULL
        );
        """
    )
    conn.execute(
        "INSERT INTO runs VALUES (?, ?, ?, ?, ?)",
        ("0123456789abcdef", "E-OLD", "e" * 64, 123.0, '{"ipc": 1.25}'),
    )
    conn.execute("PRAGMA user_version = 1")
    conn.commit()
    conn.close()


def test_migrates_v1_schema(tmp_path):
    db = tmp_path / "v1.sqlite"
    _make_v1_db(db)
    with RunStore(db) as store:
        run = store.get_run("0123456789abcdef")
        assert run["metrics"] == {"ipc": 1.25}
        assert run["label"] == ""
        assert run["git_rev"] == ""
        # new writes use the new columns
        store.record_run("E-NEW", "f" * 64, {}, label="l", git_rev="r")
    version = sqlite3.connect(db).execute("PRAGMA user_version").fetchone()[0]
    assert version == SCHEMA_VERSION


def test_rejects_future_schema(tmp_path):
    db = tmp_path / "future.sqlite"
    conn = sqlite3.connect(db)
    conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 1}")
    conn.commit()
    conn.close()
    with pytest.raises(ConfigurationError, match="schema version"):
        RunStore(db)


def _make_v2_db(path):
    """A database exactly as the v2 (pre-WAL, pre-jobs) code left it."""
    conn = sqlite3.connect(path)
    conn.executescript(
        """
        CREATE TABLE runs (
            run_id      TEXT PRIMARY KEY,
            experiment  TEXT NOT NULL,
            config_hash TEXT NOT NULL,
            created     REAL NOT NULL,
            metrics     TEXT NOT NULL,
            label       TEXT NOT NULL DEFAULT '',
            git_rev     TEXT NOT NULL DEFAULT ''
        );
        CREATE INDEX runs_experiment ON runs (experiment, created);
        """
    )
    conn.execute(
        "INSERT INTO runs VALUES (?, ?, ?, ?, ?, ?, ?)",
        ("fedcba9876543210", "E-V2", "a" * 64, 456.0, '{"ipc": 2.5}',
         "lbl", "rev2"),
    )
    conn.execute("PRAGMA user_version = 2")
    conn.commit()
    conn.close()


def test_migrates_v2_schema_to_v3(tmp_path):
    db = tmp_path / "v2.sqlite"
    _make_v2_db(db)
    with RunStore(db) as store:
        # v2 rows survive untouched
        run = store.get_run("fedcba9876543210")
        assert run["metrics"] == {"ipc": 2.5}
        assert run["label"] == "lbl"
        assert run["git_rev"] == "rev2"
        # v3 tables exist and work immediately after migration
        assert store.enqueue_job("job-1", "k" * 64, {"target": "checksum"})
        assert store.queued_depth() == 1
        store.publish_worker_metrics("api-0", {"m": {"kind": "counter"}})
        assert "api-0" in store.worker_metrics()
    conn = sqlite3.connect(db)
    assert conn.execute("PRAGMA user_version").fetchone()[0] == SCHEMA_VERSION
    tables = {
        r[0] for r in conn.execute(
            "SELECT name FROM sqlite_master WHERE type = 'table'"
        )
    }
    conn.close()
    assert {"runs", "jobs", "worker_metrics"} <= tables


def _make_v3_db(path):
    """A database exactly as the v3 (pre-trace-context) code left it."""
    conn = sqlite3.connect(path)
    conn.executescript(
        """
        CREATE TABLE runs (
            run_id      TEXT PRIMARY KEY,
            experiment  TEXT NOT NULL,
            config_hash TEXT NOT NULL,
            created     REAL NOT NULL,
            metrics     TEXT NOT NULL,
            label       TEXT NOT NULL DEFAULT '',
            git_rev     TEXT NOT NULL DEFAULT ''
        );
        CREATE INDEX runs_experiment ON runs (experiment, created);
        CREATE TABLE jobs (
            job_id    TEXT PRIMARY KEY,
            key       TEXT NOT NULL,
            spec      TEXT NOT NULL,
            state     TEXT NOT NULL DEFAULT 'queued',
            cached    INTEGER NOT NULL DEFAULT 0,
            submitted REAL NOT NULL,
            started   REAL,
            finished  REAL,
            error     TEXT,
            run_id    TEXT,
            owner     TEXT NOT NULL DEFAULT ''
        );
        CREATE INDEX jobs_state ON jobs (state, submitted);
        CREATE TABLE worker_metrics (
            worker  TEXT PRIMARY KEY,
            updated REAL NOT NULL,
            payload TEXT NOT NULL
        );
        """
    )
    conn.execute(
        "INSERT INTO jobs (job_id, key, spec, submitted) VALUES (?, ?, ?, ?)",
        ("job-v3", "k" * 64, '{"target": "checksum"}', 100.0),
    )
    conn.execute("PRAGMA user_version = 3")
    conn.commit()
    conn.close()


def test_migrates_v3_schema_to_v4(tmp_path):
    db = tmp_path / "v3.sqlite"
    _make_v3_db(db)
    with RunStore(db) as store:
        # pre-migration job rows read back with an empty trace id
        assert store.get_job("job-v3")["trace_id"] == ""
        # new writes persist the trace context immediately
        store.enqueue_job(
            "job-v4", "n" * 64, {"target": "checksum"},
            trace_id="cafe0123cafe0123",
        )
        assert store.get_job("job-v4")["trace_id"] == "cafe0123cafe0123"
    conn = sqlite3.connect(db)
    assert conn.execute("PRAGMA user_version").fetchone()[0] == SCHEMA_VERSION
    conn.close()


def test_trace_id_survives_claim_and_job_for_run():
    with RunStore() as store:
        store.enqueue_job(
            "j1", "k" * 64, {"target": "checksum"},
            trace_id="cafe0123cafe0123",
        )
        claimed = store.claim_job("sim-0")
        assert claimed["trace_id"] == "cafe0123cafe0123"
        store.finish_job("j1", "done", run_id="r" * 16)
        row = store.job_for_run("r" * 16)
        assert row["job_id"] == "j1"
        assert row["trace_id"] == "cafe0123cafe0123"


def test_job_for_run_picks_the_newest_job():
    with RunStore() as store:
        store.enqueue_job("old", "k1", {}, submitted=100.0, run_id="r" * 16,
                          state="done", trace_id="aaaa1111aaaa1111")
        store.enqueue_job("new", "k2", {}, submitted=200.0, run_id="r" * 16,
                          state="done", trace_id="bbbb2222bbbb2222")
        assert store.job_for_run("r" * 16)["job_id"] == "new"
        assert store.job_for_run("missing-run") is None


def test_file_store_runs_in_wal_mode(tmp_path):
    with RunStore(tmp_path / "wal.sqlite") as store:
        store.record_run("E", "a" * 64, {})
        assert store.journal_mode == "wal"


def test_memory_store_is_serialized():
    with RunStore() as store:
        assert store.journal_mode == "memory"
        store.record_run("E", "a" * 64, {})
        assert store.count() == 1


def test_closed_store_raises():
    store = RunStore()
    store.close()
    with pytest.raises(ConfigurationError, match="closed"):
        store.count()


# ---------------------------------------------------------------- retention
def test_prune_by_age_drops_old_runs_and_settled_jobs():
    with RunStore() as store:
        store.record_run("E", "a" * 64, {}, created=100.0)
        store.record_run("E", "b" * 64, {}, created=1000.0)
        store.enqueue_job("old-done", "k1", {}, state="done",
                         submitted=100.0, finished=100.0)
        store.enqueue_job("old-queued", "k2", {}, submitted=100.0)
        removed = store.prune(max_age_days=1.0, now=500.0 + 86_400)
        assert removed == {
            "removed_runs": 1, "removed_jobs": 1, "kept_runs": 1,
        }
        # queued jobs are never pruned, however old
        assert store.get_job("old-queued")["state"] == "queued"
        assert store.get_job("old-done") is None


def test_prune_by_max_runs_keeps_most_recent():
    with RunStore() as store:
        ids = [
            store.record_run("E", hex(i)[2:] * 32, {}, created=float(i))
            for i in range(5)
        ]
        removed = store.prune(max_runs=2)
        assert removed["removed_runs"] == 3
        assert removed["kept_runs"] == 2
        kept = {r["run_id"] for r in store.list_runs()}
        assert kept == {ids[3], ids[4]}


def test_prune_without_limits_is_a_noop():
    with RunStore() as store:
        store.record_run("E", "a" * 64, {})
        assert store.prune() == {
            "removed_runs": 0, "removed_jobs": 0, "kept_runs": 1,
        }


# ------------------------------------------------------- durable job queue
def test_enqueue_claim_finish_roundtrip():
    with RunStore() as store:
        assert store.enqueue_job("j1", "k" * 64, {"target": "checksum"})
        job = store.get_job("j1")
        assert job["state"] == "queued"
        assert job["spec"] == {"target": "checksum"}
        assert job["cached"] is False

        claimed = store.claim_job("sim-0")
        assert claimed["job_id"] == "j1"
        assert claimed["state"] == "running"
        assert claimed["owner"] == "sim-0"
        assert claimed["started"] is not None

        store.finish_job("j1", "done", run_id="r" * 16)
        finished = store.get_job("j1")
        assert finished["state"] == "done"
        assert finished["run_id"] == "r" * 16
        assert finished["finished"] is not None


def test_claim_is_exclusive_and_oldest_first():
    with RunStore() as store:
        store.enqueue_job("late", "k1", {}, submitted=200.0)
        store.enqueue_job("early", "k2", {}, submitted=100.0)
        first = store.claim_job("a")
        second = store.claim_job("b")
        assert first["job_id"] == "early"
        assert second["job_id"] == "late"
        # nothing left to claim: both are running
        assert store.claim_job("c") is None


def test_enqueue_respects_capacity():
    with RunStore() as store:
        assert store.enqueue_job("j1", "k1", {}, capacity=2)
        assert store.enqueue_job("j2", "k2", {}, capacity=2)
        assert not store.enqueue_job("j3", "k3", {}, capacity=2)
        assert store.queued_depth() == 2
        # claiming one frees a slot
        store.claim_job("w")
        assert store.enqueue_job("j3", "k3", {}, capacity=2)


def test_failed_job_records_error():
    with RunStore() as store:
        store.enqueue_job("j1", "k1", {})
        store.claim_job("w")
        store.finish_job("j1", "failed", error="ValueError: boom")
        assert store.get_job("j1")["error"] == "ValueError: boom"


def test_list_jobs_newest_first():
    with RunStore() as store:
        store.enqueue_job("a", "k1", {}, submitted=100.0)
        store.enqueue_job("b", "k2", {}, submitted=200.0)
        assert [j["job_id"] for j in store.list_jobs()] == ["b", "a"]


# ------------------------------------------------------- worker metrics
def test_worker_metrics_roundtrip_and_freshness():
    with RunStore() as store:
        store.publish_worker_metrics("api-0", {"m": {"kind": "counter"}})
        store.publish_worker_metrics("api-1", {"m": {"kind": "counter"}})
        snaps = store.worker_metrics()
        assert set(snaps) == {"api-0", "api-1"}
        assert snaps["api-0"] == {"m": {"kind": "counter"}}
        # stale snapshots (older than max_age) are excluded
        assert store.worker_metrics(max_age=0.0) == {}


def test_ghost_workers_expire_by_heartbeat_age():
    """Regression: a SIGKILLed worker's last snapshot must drop out of the
    merged /metrics view once its heartbeat goes stale, instead of being
    served forever."""
    with RunStore() as store:
        store.publish_worker_metrics("api-0", {"m": 1}, now=1000.0)
        store.publish_worker_metrics("api-1", {"m": 2}, now=1010.0)
        # both fresh shortly after api-1's heartbeat
        assert set(store.worker_metrics(max_age=15.0, now=1012.0)) == {
            "api-0", "api-1",
        }
        # api-0 died: its snapshot ages past the cutoff, api-1 keeps
        # heartbeating and stays
        store.publish_worker_metrics("api-1", {"m": 2}, now=1020.0)
        assert set(store.worker_metrics(max_age=15.0, now=1022.0)) == {"api-1"}
        # a respawned api-0 reappears on its first publish
        store.publish_worker_metrics("api-0", {"m": 3}, now=1025.0)
        snaps = store.worker_metrics(max_age=15.0, now=1026.0)
        assert snaps["api-0"] == {"m": 3}


def test_clear_worker_metrics():
    with RunStore() as store:
        store.publish_worker_metrics("api-0", {})
        store.publish_worker_metrics("sim-0", {})
        store.clear_worker_metrics("api-0")
        assert set(store.worker_metrics()) == {"sim-0"}
        store.clear_worker_metrics()
        assert store.worker_metrics() == {}


# --------------------------------------------------------------- metrics_of
def test_metrics_of_plain_dict_keeps_numbers_only():
    assert metrics_of({"ipc": 1.5, "halted": True, "name": "x"}) == {
        "ipc": 1.5, "halted": 1,
    }


def test_metrics_of_to_dict_object():
    class FakeResult:
        def to_dict(self):
            return {"cycles": 100, "ipc": 2.0, "policy": "steering"}

    assert metrics_of(FakeResult()) == {"cycles": 100, "ipc": 2.0}


def test_metrics_of_traced_payload():
    class FakeResult:
        def to_dict(self):
            return {"ipc": 2.0}

    payload = {
        "result": FakeResult(),
        "kept_fraction": 0.75,
        "load_cycles": [1, 2, 3],
        "selections": ["cfg"],
    }
    assert metrics_of(payload) == {
        "ipc": 2.0, "kept_fraction": 0.75, "load_count": 3,
    }


def test_metrics_of_opaque_result_is_empty():
    assert metrics_of(["not", "a", "dict"]) == {}
