"""Tests for the stdlib load generator in benchmarks/bench_serving_load.py."""

import importlib.util
import pathlib
import sys
import threading

from repro.serving.app import ServingApp, make_server
from repro.serving.store import RunStore

_MODULE_PATH = (
    pathlib.Path(__file__).resolve().parents[2]
    / "benchmarks"
    / "bench_serving_load.py"
)


def _load():
    spec = importlib.util.spec_from_file_location(
        "bench_serving_load", _MODULE_PATH
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestPercentile:
    def test_empty_is_zero(self):
        assert _load().percentile([], 99) == 0.0

    def test_single_value(self):
        mod = _load()
        assert mod.percentile([7.5], 0) == 7.5
        assert mod.percentile([7.5], 100) == 7.5

    def test_nearest_rank_endpoints_and_median(self):
        mod = _load()
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert mod.percentile(values, 0) == 1.0
        assert mod.percentile(values, 50) == 3.0
        assert mod.percentile(values, 100) == 5.0

    def test_out_of_range_quantiles_clamp(self):
        mod = _load()
        values = [1.0, 2.0, 3.0]
        assert mod.percentile(values, -10) == 1.0
        assert mod.percentile(values, 400) == 3.0


def test_run_load_against_live_server():
    """A short real run: reads succeed, the record is shaped for the gate."""
    mod = _load()
    store = RunStore()
    app = ServingApp(store)  # no job queue: submits get 503-rejected
    server = make_server(app, "127.0.0.1", 0)
    port = server.server_address[1]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        record = mod.run_load(
            f"http://127.0.0.1:{port}", clients=2, duration=0.5,
            submit_ratio=0.25,
        )
    finally:
        server.shutdown()
        server.server_close()
        thread.join(10)
        store.close()
    assert record["requests"] > 0
    assert record["errors"] == 0
    assert record["ok"] + record["rejected"] == record["requests"]
    # submissions against a queue-less server count as rejections, not errors
    if record["submits"]:
        assert record["rejected"] == record["submits"]
    assert record["requests_per_second"] > 0
    assert record["p50_ms"] <= record["p90_ms"] <= record["p99_ms"]
    assert record["p99_ms"] <= record["max_ms"]
