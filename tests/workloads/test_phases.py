"""Tests for phase-changing workloads."""

import pytest

from repro.core.reference import run_reference
from repro.errors import WorkloadError
from repro.isa.futypes import FUType
from repro.workloads.phases import phased_program
from repro.workloads.synthetic import FP_MIX, INT_MIX, MEM_MIX


class TestPhasedProgram:
    def test_phases_execute_in_order(self):
        program = phased_program([(INT_MIX, 4), (FP_MIX, 4)], body_len=16, seed=0)
        ref = run_reference(program)
        assert ref.halted
        # the FP ops must all come after the last pure-int stretch begins:
        fp_positions = [
            i for i, t in enumerate(ref.trace)
            if t in (FUType.FP_ALU, FUType.FP_MDU)
        ]
        assert fp_positions
        assert min(fp_positions) > len(ref.trace) * 0.3

    def test_phase_lengths_scale_with_iterations(self):
        short = run_reference(phased_program([(INT_MIX, 2)], seed=0)).executed
        long = run_reference(phased_program([(INT_MIX, 8)], seed=0)).executed
        assert long > short

    def test_three_phase_program_runs(self):
        program = phased_program(
            [(INT_MIX, 3), (MEM_MIX, 3), (FP_MIX, 3)], body_len=20, seed=5
        )
        ref = run_reference(program)
        assert ref.halted
        seen = set(ref.trace)
        assert FUType.INT_MDU in seen
        assert FUType.LSU in seen
        assert FUType.FP_MDU in seen

    def test_validation(self):
        with pytest.raises(WorkloadError):
            phased_program([])
        with pytest.raises(WorkloadError):
            phased_program([(INT_MIX, 0)])

    def test_deterministic(self):
        a = phased_program([(INT_MIX, 2), (FP_MIX, 2)], seed=9)
        b = phased_program([(INT_MIX, 2), (FP_MIX, 2)], seed=9)
        assert a.to_binary() == b.to_binary()
