"""Tests for the kernel library: assembly correctness and golden results."""

import pytest

from repro.core.reference import run_reference
from repro.errors import WorkloadError
from repro.isa.futypes import FUType
from repro.workloads.kernels import (
    all_kernels,
    checksum,
    dot_product,
    fir_filter,
    kernel_by_name,
    matmul,
    memcpy,
    newton_sqrt,
    saxpy,
    sum_reduction,
)


@pytest.mark.parametrize("kernel", all_kernels(), ids=lambda k: k.name)
class TestEveryKernel:
    def test_reference_run_matches_golden(self, kernel):
        ref = run_reference(kernel.program)
        assert ref.halted
        kernel.verify(ref.memory)

    def test_has_description_and_dominant_types(self, kernel):
        assert kernel.description
        assert kernel.dominant

    def test_dominant_types_appear_in_dynamic_mix(self, kernel):
        ref = run_reference(kernel.program)
        counts = {}
        for t in ref.trace:
            counts[t] = counts.get(t, 0) + 1
        for t in kernel.dominant:
            assert counts.get(t, 0) > 0, f"{kernel.name} never used {t}"


class TestSpecificResults:
    def test_sum_reduction_value(self):
        k = sum_reduction(n=8)
        data = [(i * 7 + 3) % 101 for i in range(8)]
        assert k.expected_words["result"] == sum(data)
        run_reference(k.program)  # assembles and halts

    def test_dot_product_scales_with_n(self):
        small = run_reference(dot_product(n=8).program).executed
        large = run_reference(dot_product(n=32).program).executed
        assert large > small

    def test_memcpy_copies_everything(self):
        k = memcpy(n=16)
        ref = run_reference(k.program)
        dst = k.program.data_labels["dst"]
        src = k.program.data_labels["src"]
        for i in range(16):
            assert ref.memory.peek_word(dst + 4 * i) == ref.memory.peek_word(src + 4 * i)

    def test_matmul_full_matrix(self):
        k = matmul(n=4)
        ref = run_reference(k.program)
        base = k.program.data_labels["mc"]
        expected = k._expected_matrix
        n = 4
        for i in range(n):
            for j in range(n):
                got = ref.memory.peek_word(base + 4 * (i * n + j))
                assert got == expected[i][j], (i, j)

    def test_fir_full_output(self):
        k = fir_filter(n=8)
        ref = run_reference(k.program)
        base = k.program.data_labels["out"]
        for i, expected in enumerate(k._expected_out):
            assert ref.memory.peek_float(base + 4 * i) == pytest.approx(expected, rel=1e-6)

    def test_saxpy_last_element(self):
        k = saxpy(n=8)
        ref = run_reference(k.program)
        base = k.program.data_labels["vy"]
        assert ref.memory.peek_float(base + 4 * 7) == pytest.approx(
            k._expected_last, rel=1e-6
        )

    def test_checksum_is_xorshift(self):
        k = checksum(iterations=3, seed=42)
        x = 42
        for _ in range(3):
            x ^= (x << 13) & 0xFFFFFFFF
            x ^= x >> 17
            x ^= (x << 5) & 0xFFFFFFFF
        assert k.expected_words["result"] == x

    def test_newton_sqrt_converges(self):
        import math

        k = newton_sqrt(value=9.0, iterations=16)
        assert k.expected_floats["result"] == pytest.approx(3.0, rel=1e-5)
        ref = run_reference(k.program)
        k.verify(ref.memory)

    def test_fir_rejects_wrong_tap_count(self):
        with pytest.raises(WorkloadError):
            fir_filter(taps=[1.0, 2.0])


class TestLookup:
    def test_kernel_by_name(self):
        assert kernel_by_name("checksum", iterations=5).name == "checksum"

    def test_unknown_name(self):
        with pytest.raises(WorkloadError):
            kernel_by_name("bogus")

    def test_all_kernels_unique_names(self):
        names = [k.name for k in all_kernels()]
        assert len(set(names)) == len(names) == 8
