"""Tests for the numeric kernel batch."""

import math

import pytest

from repro.core.baselines import steering_processor
from repro.core.params import ProcessorParams
from repro.core.reference import run_reference
from repro.workloads.kernels_numeric import (
    binary_search,
    gcd,
    horner,
    numeric_kernels,
    popcount_soft,
    transpose,
)

_PARAMS = ProcessorParams(reconfig_latency=4)


@pytest.mark.parametrize("kernel", numeric_kernels(), ids=lambda k: k.name)
class TestEveryNumericKernel:
    def test_reference_matches_golden(self, kernel):
        ref = run_reference(kernel.program)
        assert ref.halted
        kernel.verify(ref.memory)

    def test_pipeline_matches_golden(self, kernel):
        proc = steering_processor(kernel.program, _PARAMS)
        result = proc.run(max_cycles=300_000)
        assert result.halted
        kernel.verify(proc.dmem)


class TestGcd:
    @pytest.mark.parametrize("a,b", [(1071, 462), (17, 5), (100, 100), (7, 0)])
    def test_values(self, a, b):
        k = gcd(a, b)
        assert k.expected_words["result"] == math.gcd(a, b)
        ref = run_reference(k.program)
        k.verify(ref.memory)


class TestPopcount:
    def test_matches_python_bitcount(self):
        k = popcount_soft(n=8)
        ref = run_reference(k.program)
        k.verify(ref.memory)


class TestBinarySearch:
    def test_finds_every_needle(self):
        for idx in (0, 7, 31, 63):
            k = binary_search(n=64, needle_index=idx)
            ref = run_reference(k.program)
            k.verify(ref.memory)

    def test_branchy(self):
        k = binary_search()
        result = steering_processor(k.program, _PARAMS).run()
        assert result.branch_resolutions > 3


class TestTranspose:
    def test_full_matrix(self):
        k = transpose(n=5)
        ref = run_reference(k.program)
        base = k.program.data_labels["mt"]
        for i in range(5):
            for j in range(5):
                got = ref.memory.peek_word(base + 4 * (i * 5 + j))
                assert got == k._expected_t[i][j]


class TestHorner:
    def test_constant_polynomial(self):
        k = horner(coeffs=[3.5], x=100.0)
        assert k.expected_floats["result"] == 3.5
        # a degree-0 polynomial never enters the loop
        ref = run_reference(k.program)
        k.verify(ref.memory)

    def test_linear(self):
        k = horner(coeffs=[2.0, 1.0], x=3.0)
        assert k.expected_floats["result"] == 7.0
        ref = run_reference(k.program)
        k.verify(ref.memory)
