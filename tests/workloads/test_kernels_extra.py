"""Tests for the extended kernel library."""

import pytest

from repro.core.baselines import steering_processor
from repro.core.params import ProcessorParams
from repro.core.reference import run_reference
from repro.workloads.kernels_extra import (
    bubble_sort,
    extended_kernels,
    fibonacci,
    histogram,
    mandelbrot_point,
    string_length,
    vector_max,
)

_PARAMS = ProcessorParams(reconfig_latency=4)


@pytest.mark.parametrize("kernel", extended_kernels(), ids=lambda k: k.name)
class TestEveryExtendedKernel:
    def test_reference_matches_golden(self, kernel):
        ref = run_reference(kernel.program)
        assert ref.halted
        kernel.verify(ref.memory)

    def test_pipeline_matches_golden(self, kernel):
        proc = steering_processor(kernel.program, _PARAMS)
        result = proc.run(max_cycles=300_000)
        assert result.halted
        kernel.verify(proc.dmem)


class TestBubbleSort:
    def test_fully_sorted(self):
        k = bubble_sort(n=12)
        ref = run_reference(k.program)
        base = k.program.data_labels["arr"]
        got = [ref.memory.peek_word(base + 4 * i) for i in range(12)]
        assert got == k._expected_sorted

    def test_branchy_workload_mispredicts(self):
        k = bubble_sort(n=12)
        result = steering_processor(k.program, _PARAMS).run()
        assert result.branch_resolutions > 50


class TestHistogram:
    def test_all_buckets(self):
        k = histogram(n=32, buckets=8)
        ref = run_reference(k.program)
        base = k.program.data_labels["hist"]
        got = [ref.memory.peek_word(base + 4 * i) for i in range(8)]
        assert got == k._expected_counts
        assert sum(got) == 32


class TestStringLength:
    def test_counts_bytes(self):
        k = string_length("hello")
        ref = run_reference(k.program)
        assert ref.memory.peek_word(k.program.data_labels["result"]) == 5

    def test_empty_string(self):
        k = string_length("")
        ref = run_reference(k.program)
        k.verify(ref.memory)


class TestFibonacci:
    @pytest.mark.parametrize("n,expected", [(1, 1), (2, 1), (10, 55), (30, 832040)])
    def test_values(self, n, expected):
        k = fibonacci(n=n)
        assert k.expected_words["result"] == expected
        ref = run_reference(k.program)
        k.verify(ref.memory)


class TestMandelbrot:
    def test_inside_point_runs_to_max(self):
        k = mandelbrot_point(cr_fx=0, ci_fx=0, max_iter=25)
        assert k.expected_words["result"] == 25
        ref = run_reference(k.program)
        k.verify(ref.memory)

    def test_outside_point_escapes_early(self):
        k = mandelbrot_point(cr_fx=2 << 6, ci_fx=2 << 6, max_iter=25)
        assert k.expected_words["result"] < 3
        ref = run_reference(k.program)
        k.verify(ref.memory)


class TestVectorMax:
    def test_matches_python_max(self):
        k = vector_max(n=16)
        ref = run_reference(k.program)
        k.verify(ref.memory)
