"""Tests for the synthetic workload generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reference import run_reference
from repro.errors import WorkloadError
from repro.isa.futypes import FU_TYPES, FUType
from repro.workloads.synthetic import (
    BALANCED_MIX,
    FP_MIX,
    INT_MIX,
    MEM_MIX,
    MixSpec,
    synthetic_program,
)


class TestMixSpec:
    def test_normalised_sums_to_one(self):
        for mix in (INT_MIX, MEM_MIX, FP_MIX, BALANCED_MIX):
            assert sum(mix.normalised().values()) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            MixSpec("bad", {})
        with pytest.raises(WorkloadError):
            MixSpec("bad", {FUType.INT_ALU: -1.0})
        with pytest.raises(WorkloadError):
            MixSpec("bad", {FUType.INT_ALU: 0.0})
        with pytest.raises(WorkloadError):
            MixSpec("bad", {FUType.INT_ALU: 1.0}, dep_density=2.0)


class TestGeneration:
    def test_deterministic_by_seed(self):
        a = synthetic_program(INT_MIX, seed=7, iterations=3)
        b = synthetic_program(INT_MIX, seed=7, iterations=3)
        c = synthetic_program(INT_MIX, seed=8, iterations=3)
        assert a.to_binary() == b.to_binary()
        assert a.to_binary() != c.to_binary()

    def test_programs_terminate(self):
        for mix in (INT_MIX, MEM_MIX, FP_MIX, BALANCED_MIX):
            ref = run_reference(synthetic_program(mix, iterations=5, seed=0))
            assert ref.halted

    def test_mix_is_respected_in_body(self):
        """The dynamic mix should be dominated by the requested types."""
        program = synthetic_program(FP_MIX, body_len=64, iterations=2, seed=3)
        ref = run_reference(program)
        fp_ops = sum(
            1 for t in ref.trace if t in (FUType.FP_ALU, FUType.FP_MDU)
        )
        # prologue + loop control dilute, but FP should still dominate
        assert fp_ops / len(ref.trace) > 0.4

    def test_int_mix_has_no_fp(self):
        program = synthetic_program(INT_MIX, body_len=32, iterations=2, seed=1)
        ref = run_reference(program)
        body_fp = sum(1 for t in ref.trace if t in (FUType.FP_ALU, FUType.FP_MDU))
        # only the prologue flw warm-up touches FP paths (via LSU, not FP units)
        assert body_fp == 0

    def test_validation_of_parameters(self):
        with pytest.raises(WorkloadError):
            synthetic_program(INT_MIX, iterations=0)
        with pytest.raises(WorkloadError):
            synthetic_program(INT_MIX, body_len=0)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000), st.integers(4, 40))
    def test_any_seed_produces_runnable_program(self, seed, body_len):
        program = synthetic_program(BALANCED_MIX, body_len=body_len,
                                    iterations=2, seed=seed)
        ref = run_reference(program, max_instructions=100_000)
        assert ref.halted
