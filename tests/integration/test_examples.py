"""Smoke tests for the shipped examples.

Every example must at least import cleanly (its module-level programs
assemble); the fast ones are executed end-to-end with their assertions.
"""

import importlib.util
import pathlib
import sys

import pytest

_EXAMPLES = sorted(
    (pathlib.Path(__file__).parents[2] / "examples").glob("*.py")
)


def _load(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("path", _EXAMPLES, ids=lambda p: p.stem)
def test_example_imports(path):
    module = _load(path)
    assert hasattr(module, "main")


@pytest.mark.parametrize("stem", ["quickstart", "legacy_binary", "pipeline_trace"])
def test_fast_examples_run(stem, capsys):
    path = next(p for p in _EXAMPLES if p.stem == stem)
    module = _load(path)
    module.main()  # each example asserts its own architectural results
    out = capsys.readouterr().out
    assert out.strip()
