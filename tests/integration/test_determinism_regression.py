"""Determinism regression: two identical steering runs are bit-identical.

The DET lint family bans the leaks (wall clock, global RNG, dict-order
hashing, environment reads) that would break this; these tests pin the
observable guarantee itself — the complete ``SimulationResult.to_dict()``
record, not a sample of fields, across independently constructed runs.
"""

import pytest

from repro.core.baselines import policy_catalogue, steering_processor
from repro.core.params import ProcessorParams
from repro.workloads.kernels import checksum, saxpy

_PARAMS = ProcessorParams(reconfig_latency=8)


def test_steering_rerun_is_bit_identical():
    kernel = saxpy(n=24)
    first = steering_processor(kernel.program, _PARAMS).run(max_cycles=200_000)
    second = steering_processor(kernel.program, _PARAMS).run(max_cycles=200_000)
    assert first.halted and second.halted
    assert first.to_dict() == second.to_dict()


@pytest.mark.parametrize("name", sorted(policy_catalogue()))
def test_every_policy_rerun_is_bit_identical(name):
    factory = policy_catalogue()[name]
    kernel = checksum(iterations=30)
    first = factory(kernel.program, _PARAMS).run(max_cycles=200_000)
    second = factory(kernel.program, _PARAMS).run(max_cycles=200_000)
    assert first.halted and second.halted, name
    assert first.to_dict() == second.to_dict()
