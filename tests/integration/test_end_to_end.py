"""End-to-end integration: every kernel on every policy, determinism, and
behavioural cross-checks between subsystems."""

import pytest

from repro.core.baselines import policy_catalogue, steering_processor
from repro.core.params import ProcessorParams
from repro.core.reference import run_reference
from repro.isa.futypes import FUType
from repro.workloads.kernels import all_kernels, checksum, saxpy

_PARAMS = ProcessorParams(reconfig_latency=4)


class TestKernelPolicyMatrix:
    """Every kernel x every policy halts and verifies (the full matrix is
    8 x 7 runs; keep sizes small)."""

    @pytest.mark.parametrize("kernel", all_kernels(), ids=lambda k: k.name)
    def test_kernel_under_all_policies(self, kernel):
        for name, factory in policy_catalogue().items():
            proc = factory(kernel.program, _PARAMS)
            result = proc.run(max_cycles=300_000)
            assert result.halted, f"{kernel.name} under {name}"
            kernel.verify(proc.dmem)


class TestDeterminism:
    def test_identical_runs_identical_stats(self):
        kernel = saxpy(n=24)
        a = steering_processor(kernel.program, _PARAMS).run()
        b = steering_processor(kernel.program, _PARAMS).run()
        assert a.cycles == b.cycles
        assert a.retired == b.retired
        assert a.reconfigurations == b.reconfigurations
        assert a.steering_selections == b.steering_selections


class TestCrossChecks:
    def test_retired_count_equals_reference_dynamic_count(self):
        kernel = checksum(iterations=60)
        result = steering_processor(kernel.program, _PARAMS).run()
        ref = run_reference(kernel.program)
        assert result.retired == ref.executed

    def test_busy_cycles_account_for_latency(self):
        """Busy unit-cycles per type >= retired ops x latency lower bound."""
        kernel = checksum(iterations=60)
        result = steering_processor(kernel.program, _PARAMS).run()
        # every retired IALU op held a unit for exactly 1 cycle
        assert result.busy_unit_cycles[FUType.INT_ALU] >= result.retired_per_type[
            FUType.INT_ALU
        ]

    def test_reconfig_bus_cycles_consistent(self):
        kernel = saxpy(n=48)
        proc = steering_processor(kernel.program, _PARAMS)
        result = proc.run()
        # every load occupies the bus for latency * slot_cost cycles
        expected = sum(p.latency for p in proc.policy.manager.loader.history)
        assert result.reconfig_bus_cycles <= expected
        assert result.reconfigurations == len(proc.policy.manager.loader.history)

    def test_steering_selection_counts_sum_to_cycles(self):
        kernel = checksum(iterations=60)
        result = steering_processor(kernel.program, _PARAMS).run()
        assert sum(result.steering_selections.values()) == result.cycles

    def test_fabric_slots_never_leak(self):
        """After a full run the allocation vector is still structurally
        valid (spans consistent) whatever happened during steering."""
        kernel = saxpy(n=48)
        proc = steering_processor(kernel.program, _PARAMS)
        proc.run()
        vec = proc.fabric.rfus.allocation_vector()  # validates on build
        assert len(vec) == 8
