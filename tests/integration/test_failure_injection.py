"""Failure injection: the §3.2 forward-progress argument.

"Because the FFUs implement units for all instructions, every instruction
is guaranteed to execute."  These tests demonstrate both directions: with
the fixed bank every workload completes under every policy, and without it
(the pathological fabric the paper warns about) instructions whose unit
type is never configured starve forever.
"""

import pytest

from repro.core.params import ProcessorParams
from repro.core.policies import NoSteering, PaperSteering, StaticConfiguration
from repro.core.processor import Processor
from repro.fabric.configuration import CONFIG_FLOATING, CONFIG_INTEGER, Configuration
from repro.isa.futypes import FUType
from repro.workloads.kernels import newton_sqrt, saxpy

_FP_KERNEL = newton_sqrt(iterations=6)


class TestWithFixedUnits:
    def test_every_type_always_executable(self):
        """With FFUs, even a policy that never loads anything completes an
        FP workload (slowly, on the fixed units)."""
        proc = Processor(
            _FP_KERNEL.program,
            params=ProcessorParams(reconfig_latency=4),
            policy=NoSteering(),
        )
        result = proc.run(max_cycles=100_000)
        assert result.halted
        _FP_KERNEL.verify(proc.dmem)

    def test_mismatched_static_config_still_progresses(self):
        proc = Processor(
            _FP_KERNEL.program,
            params=ProcessorParams(reconfig_latency=4),
            policy=StaticConfiguration(CONFIG_INTEGER),
        )
        assert proc.run(max_cycles=100_000).halted


class TestWithoutFixedUnits:
    _NO_FFUS = ProcessorParams(reconfig_latency=4, ffu_counts={})

    def test_fp_workload_starves_without_fp_units(self):
        """FFU-less fabric + a policy that never provides FP units: the
        first FP instruction waits forever (resource-available line never
        asserts) — the §3.2 pathological case."""
        proc = Processor(
            _FP_KERNEL.program, params=self._NO_FFUS, policy=NoSteering()
        )
        result = proc.run(max_cycles=3_000)
        assert not result.halted
        # the machine is wedged: nothing retires once the FP op is at head
        assert result.retired < len(_FP_KERNEL.program)

    def test_basis_missing_a_type_starves_that_type(self):
        """Even steering deadlocks if no basis member provides a needed
        type (here: a basis with no FP-MDU facing an fdiv)."""
        basis = (
            CONFIG_INTEGER,
            Configuration("lsu-only", {FUType.LSU: 8}).validate(),
            Configuration(
                "fp-alu-only", {FUType.FP_ALU: 2, FUType.LSU: 2}
            ).validate(),
        )
        proc = Processor(
            _FP_KERNEL.program,
            params=self._NO_FFUS,
            policy=PaperSteering(configs=basis),
        )
        result = proc.run(max_cycles=5_000)
        assert not result.halted  # fdiv needs an FP-MDU nobody can supply

    def test_steering_with_complete_basis_recovers(self):
        """With a basis covering every needed type, steering alone (no
        FFUs) still completes the workload — reconfiguration substitutes
        for fixed hardware, at the cost of start-up latency."""
        proc = Processor(
            _FP_KERNEL.program,
            params=self._NO_FFUS,
            policy=StaticConfiguration(CONFIG_FLOATING),
        )
        result = proc.run(max_cycles=100_000)
        assert result.halted
        _FP_KERNEL.verify(proc.dmem)

    def test_mixed_kernel_needs_full_coverage(self):
        """saxpy touches IALU, LSU, FP-ALU and FP-MDU: the floating config
        covers all four, so an FFU-less static-floating machine completes."""
        kernel = saxpy(n=8)
        proc = Processor(
            kernel.program,
            params=self._NO_FFUS,
            policy=StaticConfiguration(CONFIG_FLOATING),
        )
        result = proc.run(max_cycles=100_000)
        assert result.halted
        kernel.verify(proc.dmem)
