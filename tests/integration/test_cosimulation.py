"""Random co-simulation: the strongest correctness property in the repo.

Hypothesis generates synthetic programs (arbitrary mixes, dependency
densities and seeds) and pipeline configurations; the cycle-level
out-of-order reconfigurable processor must commit *exactly* the
architectural state of the in-order functional reference — registers and
memory — under every steering policy.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.baselines import (
    fixed_superscalar,
    random_processor,
    static_processor,
    steering_processor,
)
from repro.core.params import ProcessorParams
from repro.core.reference import run_reference
from repro.fabric.configuration import PREDEFINED_CONFIGS
from repro.workloads.synthetic import (
    BALANCED_MIX,
    FP_MIX,
    INT_MIX,
    MEM_MIX,
    synthetic_program,
)

_MIXES = [INT_MIX, MEM_MIX, FP_MIX, BALANCED_MIX]


def _assert_architectural_match(proc, program):
    ref = run_reference(program, max_instructions=2_000_000)
    got = proc.ruu.regfile.snapshot()
    want = ref.registers.snapshot()
    assert got["int"] == want["int"]
    for g, w in zip(got["fp"], want["fp"]):
        assert g == w or (g != g and w != w)  # NaN-safe equality
    # compare the synthetic buffer region of data memory
    base = program.data_labels["buf"]
    assert proc.dmem.peek(base, 256) == ref.memory.peek(base, 256)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    mix=st.sampled_from(_MIXES),
    seed=st.integers(0, 10_000),
    body_len=st.integers(8, 32),
)
def test_steering_pipeline_equals_reference(mix, seed, body_len):
    program = synthetic_program(mix, body_len=body_len, iterations=4, seed=seed)
    proc = steering_processor(program, ProcessorParams(reconfig_latency=4))
    result = proc.run(max_cycles=300_000)
    assert result.halted
    _assert_architectural_match(proc, program)


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 10_000),
    window=st.integers(3, 12),
    fetch_width=st.integers(1, 6),
    latency=st.sampled_from([1, 8, 64]),
)
def test_pipeline_parameters_never_change_semantics(seed, window, fetch_width, latency):
    program = synthetic_program(BALANCED_MIX, body_len=16, iterations=3, seed=seed)
    params = ProcessorParams(
        window_size=window,
        fetch_width=fetch_width,
        retire_width=fetch_width,
        reconfig_latency=latency,
    )
    proc = steering_processor(program, params)
    result = proc.run(max_cycles=300_000)
    assert result.halted
    _assert_architectural_match(proc, program)


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000))
def test_all_policies_agree_architecturally(seed):
    program = synthetic_program(BALANCED_MIX, body_len=20, iterations=3, seed=seed)
    params = ProcessorParams(reconfig_latency=4)
    processors = [
        fixed_superscalar(program, params),
        steering_processor(program, params),
        static_processor(program, PREDEFINED_CONFIGS[seed % 3], params),
        random_processor(program, params, period=30, seed=seed),
    ]
    for proc in processors:
        result = proc.run(max_cycles=300_000)
        assert result.halted
        _assert_architectural_match(proc, program)
