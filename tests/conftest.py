"""Repo-wide test configuration: a deterministic hypothesis profile.

Simulation-backed properties can be slow relative to hypothesis' default
deadline; the ``repro`` profile removes per-example deadlines (wall-clock
flakiness) while keeping example counts meaningful.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
