"""Tests for demand-driven configuration synthesis (§5 extension)."""

import pytest

from repro.errors import ConfigurationError
from repro.fabric.configuration import NUM_RFU_SLOTS
from repro.isa.futypes import FU_TYPES, FUType
from repro.steering.demand import DemandSynthesizer


def _required(**kwargs):
    by_name = {t.short_name: t for t in FU_TYPES}
    out = [0] * len(FU_TYPES)
    for name, v in kwargs.items():
        out[by_name[name.upper()].bit_index] = v
    return tuple(out)


class TestObserve:
    def test_ema_converges_toward_constant_demand(self):
        synth = DemandSynthesizer(smoothing=0.5)
        for _ in range(20):
            synth.observe(_required(ialu=4, imdu=2))
        demand = synth.demand
        assert demand[FUType.INT_ALU.bit_index] == pytest.approx(4, abs=0.01)
        assert demand[FUType.INT_MDU.bit_index] == pytest.approx(2, abs=0.01)

    def test_wrong_arity_rejected(self):
        with pytest.raises(ConfigurationError):
            DemandSynthesizer().observe((1, 2, 3))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DemandSynthesizer(smoothing=0.0)
        with pytest.raises(ConfigurationError):
            DemandSynthesizer(smoothing=1.5)
        with pytest.raises(ConfigurationError):
            DemandSynthesizer(improvement_margin=-0.1)


class TestSynthesize:
    def test_integer_demand_yields_integer_units(self):
        synth = DemandSynthesizer(smoothing=0.5)
        for _ in range(20):
            synth.observe(_required(ialu=5, imdu=2))
        cfg = synth.synthesize()
        assert cfg.count(FUType.INT_ALU) >= 2
        assert cfg.count(FUType.FP_ALU) == 0
        assert cfg.slot_usage <= NUM_RFU_SLOTS

    def test_fp_demand_yields_fp_units(self):
        synth = DemandSynthesizer(smoothing=0.5)
        for _ in range(20):
            synth.observe(_required(fpmdu=4, fpalu=2, lsu=1))
        cfg = synth.synthesize()
        assert cfg.count(FUType.FP_MDU) >= 1

    def test_no_demand_yields_empty_config(self):
        cfg = DemandSynthesizer().synthesize()
        assert cfg.slot_usage == 0

    def test_budget_never_exceeded(self):
        synth = DemandSynthesizer(smoothing=1.0)
        synth.observe(_required(ialu=7, imdu=7, lsu=7, fpalu=7, fpmdu=7))
        assert synth.synthesize().slot_usage <= NUM_RFU_SLOTS

    def test_synthesized_names_unique(self):
        synth = DemandSynthesizer(smoothing=0.5)
        synth.observe(_required(ialu=4))
        a, b = synth.synthesize(), synth.synthesize()
        assert a.name != b.name


class TestHysteresis:
    def test_no_retarget_when_current_matches(self):
        synth = DemandSynthesizer(smoothing=0.5)
        for _ in range(20):
            synth.observe(_required(ialu=4))
        target = synth.synthesize()
        # current fabric already has lots of IALUs: no improvement
        current = (5, 1, 1, 1, 1)
        assert not synth.should_retarget(target, current)

    def test_retarget_on_clear_improvement(self):
        synth = DemandSynthesizer(smoothing=0.5)
        for _ in range(20):
            synth.observe(_required(fpmdu=5))
        target = synth.synthesize()
        current = (5, 3, 1, 1, 1)  # integer fabric, FP demand
        assert synth.should_retarget(target, current)

    def test_zero_demand_never_retargets(self):
        synth = DemandSynthesizer()
        target = synth.synthesize()
        assert not synth.should_retarget(target, (1, 1, 1, 1, 1))


class TestDemandPolicyEndToEnd:
    def test_matches_golden_model_and_adapts(self):
        from repro.core.baselines import demand_processor
        from repro.core.params import ProcessorParams
        from repro.workloads.kernels import fir_filter

        kernel = fir_filter(n=48)
        proc = demand_processor(kernel.program, ProcessorParams(reconfig_latency=4))
        result = proc.run(max_cycles=200_000)
        assert result.halted
        kernel.verify(proc.dmem)
        loaded = {p.fu_type for p in proc.policy.loader.history}
        assert FUType.FP_MDU in loaded or FUType.FP_ALU in loaded

    def test_does_not_thrash(self):
        """Hysteresis keeps the reconfiguration count modest."""
        from repro.core.baselines import demand_processor
        from repro.core.params import ProcessorParams
        from repro.workloads.kernels import saxpy

        kernel = saxpy(n=64)
        proc = demand_processor(kernel.program, ProcessorParams(reconfig_latency=8))
        result = proc.run()
        assert result.reconfigurations < 20

    def test_describe(self):
        from repro.core.policies import DemandSteering

        assert "predefined-config-free" in DemandSteering().describe()
