"""Property tests: the configuration loader under random target churn.

Whatever sequence of targets, busy markings and clock ticks the loader
sees, it must (1) never violate fabric invariants, (2) converge to any
stable target once units fall idle, and (3) never perform a load that
evicts a unit the target still wants.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric.configuration import PREDEFINED_CONFIGS
from repro.fabric.fabric import Fabric
from repro.isa.futypes import FU_TYPES
from repro.steering.loader import ConfigurationLoader

_TARGETS = st.lists(
    st.tuples(
        st.sampled_from([None, 0, 1, 2]),  # config index or keep-current
        st.integers(1, 12),                # cycles to run with this target
        st.booleans(),                     # pin a random unit busy?
    ),
    min_size=1,
    max_size=12,
)


def _fu_counts_ok(fabric: Fabric) -> None:
    covered = set()
    for head, unit in fabric.rfus.units():
        span = range(head, head + unit.fu_type.slot_cost)
        assert not covered.intersection(span)
        covered.update(span)


@settings(max_examples=80, deadline=None)
@given(script=_TARGETS)
def test_loader_never_corrupts_fabric(script):
    fabric = Fabric(reconfig_latency=2)
    loader = ConfigurationLoader(fabric)
    pinned = []
    for target_idx, cycles, pin in script:
        loader.set_target(
            None if target_idx is None else PREDEFINED_CONFIGS[target_idx]
        )
        for _ in range(cycles):
            loader.step()
            fabric.tick()
            _fu_counts_ok(fabric)
        if pin and fabric.rfus.units():
            head, unit = fabric.rfus.units()[0]
            if unit.available:
                unit.occupy(5)
                pinned.append(unit)


@settings(max_examples=40, deadline=None)
@given(
    final=st.integers(0, 2),
    churn=st.lists(st.integers(0, 2), max_size=6),
)
def test_loader_converges_once_target_stabilises(final, churn):
    """After arbitrary churn, holding one target with an idle fabric loads
    it completely within a bounded number of cycles."""
    fabric = Fabric(reconfig_latency=1)
    loader = ConfigurationLoader(fabric)
    for idx in churn:
        loader.set_target(PREDEFINED_CONFIGS[idx])
        for _ in range(5):
            loader.step()
            fabric.tick()
    target = PREDEFINED_CONFIGS[final]
    loader.set_target(target)
    for _ in range(200):
        loader.step()
        fabric.tick()
    assert loader.satisfied
    counts = fabric.rfus.counts()
    for t in FU_TYPES:
        assert counts.get(t, 0) >= target.count(t)


@settings(max_examples=40, deadline=None)
@given(pair=st.tuples(st.integers(0, 2), st.integers(0, 2)))
def test_loader_never_evicts_wanted_units(pair):
    """Switching between two configs: no load may evict a unit type the
    new target still needs more of than it would have afterwards."""
    first, second = (PREDEFINED_CONFIGS[i] for i in pair)
    fabric = Fabric(reconfig_latency=1)
    loader = ConfigurationLoader(fabric)
    loader.set_target(first)
    for _ in range(100):
        loader.step()
        fabric.tick()
    loader.set_target(second)
    for _ in range(100):
        plan = loader.step()
        if plan is not None:
            # count units of each evicted type before/after constraints:
            # the loader's surplus rule means the evicted type had more
            # loaded+pending units than the target wants
            for evicted in set(plan.evicted):
                assert second.count(evicted) <= sum(
                    1
                    for _, u in fabric.rfus.units()
                    if u.fu_type is evicted
                ) + fabric.rfus.pending_counts().get(evicted, 0) + 1
        fabric.tick()
    assert loader.satisfied
