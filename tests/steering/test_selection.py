"""Tests for the four-stage configuration-selection unit (Fig. 2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fabric.configuration import FFU_COUNTS, PREDEFINED_CONFIGS
from repro.isa.assembler import assemble
from repro.isa.futypes import FU_TYPES
from repro.steering.selection import ConfigurationSelectionUnit

#: configured counts when the integer config is fully loaded (incl. FFUs).
_INTEGER_LOADED = (5, 3, 1, 1, 1)
#: configured counts with only the FFUs (nothing loaded).
_FFUS_ONLY = tuple(FFU_COUNTS[t] for t in FU_TYPES)


def _queue(src: str):
    return assemble(src).instructions


@pytest.fixture
def unit():
    return ConfigurationSelectionUnit()


class TestOutputEncoding:
    def test_two_bit_output(self, unit):
        result = unit.select([], _FFUS_ONLY)
        assert 0 <= result.index <= 3

    def test_four_candidate_errors(self, unit):
        result = unit.select([], _FFUS_ONLY)
        assert len(result.errors) == 4

    def test_empty_queue_keeps_current(self, unit):
        """No requirements -> all errors 0 -> the tie favours current."""
        result = unit.select([], _FFUS_ONLY)
        assert result.keeps_current
        assert result.config is None

    def test_counts_arity_checked(self, unit):
        with pytest.raises(ValueError):
            unit.select([], (1, 2, 3))


class TestSteeringDecisions:
    def test_integer_queue_selects_integer_config(self, unit):
        queue = _queue(
            "add x1, x2, x3\nsub x4, x5, x6\nxor x7, x8, x9\n"
            "and x1, x2, x3\nmul x4, x5, x6\nmul x7, x8, x9\nadd x1, x1, x1\n"
        )
        result = unit.select(queue, _FFUS_ONLY)
        assert result.index == 1
        assert result.config.name == "integer"

    def test_memory_queue_selects_memory_config(self, unit):
        queue = _queue(
            "lw x1, 0(x9)\nlw x2, 4(x9)\nsw x1, 8(x9)\nlw x3, 12(x9)\n"
            "sw x2, 16(x9)\nadd x4, x1, x2\nlw x5, 20(x9)\n"
        )
        result = unit.select(queue, _FFUS_ONLY)
        assert result.config is not None and result.config.name == "memory"

    def test_fp_queue_selects_floating_config(self, unit):
        queue = _queue(
            "fadd f1, f2, f3\nfmul f4, f5, f6\nfsub f7, f8, f9\n"
            "fdiv f1, f2, f3\nflw f4, 0(x1)\nfadd f5, f6, f7\nfmul f8, f9, f1\n"
        )
        result = unit.select(queue, _FFUS_ONLY)
        assert result.config is not None and result.config.name == "floating"

    def test_settled_configuration_is_kept(self, unit):
        """Once the matching config is loaded, current wins (stability)."""
        queue = _queue(
            "add x1, x2, x3\nsub x4, x5, x6\nxor x7, x8, x9\n"
            "and x1, x2, x3\nmul x4, x5, x6\nmul x7, x8, x9\nadd x1, x1, x1\n"
        )
        result = unit.select(queue, _INTEGER_LOADED)
        assert result.keeps_current

    def test_queue_window_limited_to_seven(self, unit):
        queue = _queue("\n".join(["add x1, x2, x3"] * 12))
        result = unit.select(queue, _FFUS_ONLY)
        assert sum(result.required) == 7


class TestTieBreaking:
    def test_current_wins_exact_tie(self, unit):
        # integer config fully loaded, 4 IALU ops: current scores 4>>2 = 1,
        # the integer candidate also 1 -> the tie keeps current
        queue = _queue("\n".join(["add x1, x2, x3"] * 4))
        result = unit.select(queue, _INTEGER_LOADED)
        assert result.errors[0] == result.errors[1] == min(result.errors)
        assert result.keeps_current

    def test_sparse_queue_may_prefer_larger_config(self, unit):
        """A single op can floor a big config's error to 0 (< current's 1):
        the shifter divide makes roomier configs look free.  The tie among
        predefined candidates then resolves by least reconfiguration."""
        queue = _queue("add x1, x2, x3\n")
        result = unit.select(queue, _FFUS_ONLY)
        assert min(result.errors[1:]) <= result.errors[0]

    def test_tied_predefined_resolved_by_least_reconfiguration(self):
        """Among tied predefined configs, the closest to the current state
        (smallest L1 count distance) is chosen."""
        unit = ConfigurationSelectionUnit()
        # a queue needing FP only; make the current state FFUs + nothing.
        # floating config is the only one with extra FP units, so no tie -
        # instead craft a tie between integer and memory with an
        # LSU+IALU-free queue of IMDUs: integer avail 3 (shift 1), memory
        # avail 2 (shift 1) -> equal errors; current counts near memory.
        queue = _queue("mul x1, x2, x3\nmul x4, x5, x6\n")
        near_memory = (3, 2, 4, 1, 1)  # memory config nearly loaded
        result = unit.select(queue, near_memory)
        if not result.keeps_current:
            assert result.config.name == "memory"

    def test_required_counts_exposed(self, unit):
        queue = _queue("lw x1, 0(x2)\nfadd f1, f2, f3\n")
        result = unit.select(queue, _FFUS_ONLY)
        assert result.required == (0, 0, 1, 1, 0)


class TestMemoLRU:
    """The select() memo evicts least-recently-used entries, one at a time."""

    def _select_counts(self, unit, n0):
        # distinct memo keys: vary the IALU count of the current-counts
        # vector (arity stays 5, values stay plausible small ints)
        return unit.select([], (n0, 1, 1, 1, 1))

    def test_memo_is_bounded(self):
        import repro.steering.selection as mod

        unit = ConfigurationSelectionUnit()
        original = mod._MEMO_CAPACITY
        mod._MEMO_CAPACITY = 8
        try:
            for i in range(20):
                self._select_counts(unit, i)
            assert len(unit._memo) == 8
        finally:
            mod._MEMO_CAPACITY = original

    def test_hot_entries_survive_eviction(self):
        import repro.steering.selection as mod

        unit = ConfigurationSelectionUnit()
        original = mod._MEMO_CAPACITY
        mod._MEMO_CAPACITY = 4
        try:
            for i in range(4):  # fill: keys 0..3, oldest first
                self._select_counts(unit, i)
            self._select_counts(unit, 0)  # touch key 0 -> most recent
            self._select_counts(unit, 4)  # evicts key 1, NOT key 0
            keys = {k[1][0] for k in unit._memo}
            assert 0 in keys and 1 not in keys
        finally:
            mod._MEMO_CAPACITY = original

    def test_memo_hit_returns_identical_result(self):
        unit = ConfigurationSelectionUnit()
        first = unit.select([], _FFUS_ONLY)
        assert unit.select([], _FFUS_ONLY) is first


class TestExactMetricMode:
    def test_exact_mode_selects_same_on_clear_cut_queues(self):
        approx = ConfigurationSelectionUnit(use_exact_metric=False)
        exact = ConfigurationSelectionUnit(use_exact_metric=True)
        queue = _queue("\n".join(["fmul f1, f2, f3"] * 7))
        assert (
            approx.select(queue, _FFUS_ONLY).config.name
            == exact.select(queue, _FFUS_ONLY).config.name
            == "floating"
        )

    @given(st.lists(st.sampled_from(["add x1, x2, x3", "mul x1, x2, x3",
                                     "lw x1, 0(x2)", "fadd f1, f2, f3",
                                     "fmul f1, f2, f3"]), max_size=7))
    def test_selection_total_function(self, lines):
        """Property: the unit always yields a valid 2-bit selection."""
        unit = ConfigurationSelectionUnit()
        queue = _queue("\n".join(lines) + "\n") if lines else []
        result = unit.select(queue, _FFUS_ONLY)
        assert 0 <= result.index <= 3
        assert result.errors[result.index] == min(result.errors)
