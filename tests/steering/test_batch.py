"""The vectorised batch selection unit vs the scalar bit-faithful models."""

import pytest

# tier-1 runs without numpy (the CI tests job is deliberately stdlib-only);
# the batch evaluator is numpy-specific, so this module skips wholesale.
np = pytest.importorskip("numpy", reason="batch selection unit needs numpy")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402
from hypothesis.extra.numpy import arrays  # noqa: E402

from repro.errors import ConfigurationError  # noqa: E402
from repro.steering.batch import BatchSelectionUnit, shift_for_counts  # noqa: E402
from repro.steering.error_metric import ErrorMetricGenerator
from repro.steering.selection import ConfigurationSelectionUnit
from repro.fabric.configuration import PREDEFINED_CONFIGS

_REQUIRED = arrays(np.int64, (16, 5), elements=st.integers(0, 7))
_COUNTS = arrays(np.int64, (5,), elements=st.integers(0, 7))


class TestShiftForCounts:
    def test_matches_scalar_rule(self):
        from repro.circuits.shifters import cem_shift_control

        counts = np.arange(8)
        got = shift_for_counts(counts)
        assert got.tolist() == [cem_shift_control(int(c)) for c in counts]

    def test_clamps_above_seven(self):
        assert shift_for_counts(np.array([9, 15])).tolist() == [2, 2]


class TestBatchErrors:
    @settings(max_examples=40, deadline=None)
    @given(required=_REQUIRED, current=_COUNTS)
    def test_matches_scalar_generators(self, required, current):
        unit = BatchSelectionUnit()
        got = unit.errors(required, current)
        current_gen = ErrorMetricGenerator(None)
        cfg_gens = [ErrorMetricGenerator(c) for c in PREDEFINED_CONFIGS]
        for i, row in enumerate(required):
            row_t = tuple(int(v) for v in row)
            cur = tuple(int(v) for v in current)
            assert got[i, 0] == current_gen.error(row_t, cur)
            for k, gen in enumerate(cfg_gens, start=1):
                assert got[i, k] == gen.error(row_t)

    def test_shape_validation(self):
        unit = BatchSelectionUnit()
        with pytest.raises(ConfigurationError):
            unit.errors(np.zeros((4, 3), dtype=np.int64), np.zeros(5))
        with pytest.raises(ConfigurationError):
            unit.errors(np.full((2, 5), 9), np.zeros(5))


class TestBatchSelect:
    @settings(max_examples=40, deadline=None)
    @given(required=_REQUIRED, current=_COUNTS)
    def test_matches_scalar_selection_unit(self, required, current):
        """Row-for-row agreement with the bit-faithful scalar unit over
        the 3-bit hardware domain."""
        batch = BatchSelectionUnit()
        scalar = ConfigurationSelectionUnit()
        picks = batch.select(required, current)
        from repro.circuits.comparators import minimum_index

        for i, row in enumerate(required):
            row_t = tuple(int(v) for v in row)
            cur = tuple(int(v) for v in current)
            errors = scalar.candidate_errors(row_t, cur)
            distances = scalar._distances(cur)
            keys = [(e << 6) | d for e, d in zip(errors, distances)]
            assert picks[i] == minimum_index(keys, 12)

    def test_tie_prefers_current(self):
        unit = BatchSelectionUnit()
        # zero requirements: every candidate scores 0, current must win
        picks = unit.select(np.zeros((3, 5), dtype=np.int64), np.ones(5, dtype=np.int64))
        assert picks.tolist() == [0, 0, 0]


class TestAgreement:
    def test_agreement_in_unit_interval_and_high(self):
        rng = np.random.default_rng(0)
        required = rng.integers(0, 8, size=(5000, 5))
        unit = BatchSelectionUnit()
        agreement = unit.agreement_with_exact(required, np.ones(5, dtype=np.int64))
        assert 0.7 <= agreement <= 1.0
