"""Tests for the resource-requirement encoders (Fig. 2 stage 2)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.isa.futypes import FU_TYPES, FUType
from repro.steering.decoders import UnitDecoder
from repro.steering.requirements import RequirementsEncoder


def _onehot(t: FUType) -> int:
    return 1 << t.bit_index


class TestEncode:
    def test_empty_queue(self):
        assert RequirementsEncoder().encode([]) == (0, 0, 0, 0, 0)

    def test_mixed_queue(self):
        queue = [
            _onehot(FUType.INT_ALU),
            _onehot(FUType.INT_ALU),
            _onehot(FUType.LSU),
            _onehot(FUType.FP_MDU),
        ]
        assert RequirementsEncoder().encode(queue) == (2, 0, 1, 0, 1)

    def test_full_queue_of_one_type(self):
        queue = [_onehot(FUType.INT_ALU)] * 7
        assert RequirementsEncoder().encode(queue) == (7, 0, 0, 0, 0)

    def test_saturates_beyond_seven(self):
        """Defensive clamp for queues wider than the paper's seven."""
        queue = [_onehot(FUType.LSU)] * 9
        assert RequirementsEncoder().encode(queue)[FUType.LSU.bit_index] == 7

    @given(st.lists(st.sampled_from(list(FU_TYPES)), max_size=7))
    def test_matches_counting(self, types):
        counts = RequirementsEncoder().encode([_onehot(t) for t in types])
        for t in FU_TYPES:
            assert counts[t.bit_index] == types.count(t)

    @given(st.lists(st.sampled_from(list(FU_TYPES)), max_size=7))
    def test_total_equals_queue_occupancy(self, types):
        counts = RequirementsEncoder().encode([_onehot(t) for t in types])
        assert sum(counts) == len(types)


class TestEndToEndWithDecoder:
    def test_decoder_feeds_encoder(self):
        from repro.isa.assembler import assemble

        program = assemble(
            """
            add x1, x2, x3
            mul x4, x5, x6
            lw x7, 0(x8)
            lw x9, 4(x8)
            fadd f1, f2, f3
            fdiv f4, f5, f6
            halt
            """
        )
        dec = UnitDecoder()
        counts = RequirementsEncoder().encode([dec(i) for i in program.instructions])
        # add + halt on INT_ALU; mul on MDU; 2 loads; 1 fp-alu; 1 fp-mdu
        assert counts == (2, 1, 2, 1, 1)
