"""Tests for the configuration-error-metric generators (Fig. 3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.fabric.configuration import (
    CONFIG_FLOATING,
    CONFIG_INTEGER,
    CONFIG_MEMORY,
    Configuration,
)
from repro.isa.futypes import FU_TYPES, FUType
from repro.steering.error_metric import (
    ErrorMetricGenerator,
    cem_error,
    exact_error,
    hardwired_shifts,
)

_COUNTS = st.tuples(*[st.integers(0, 7)] * 5)


class TestHardwiredShifts:
    def test_integer_config(self):
        # avail incl. FFUs: IALU 5, IMDU 3, LSU 1, FPALU 1, FPMDU 1
        assert hardwired_shifts(CONFIG_INTEGER) == (2, 1, 0, 0, 0)

    def test_memory_config(self):
        # avail: IALU 3, IMDU 2, LSU 5, FPALU 1, FPMDU 1
        assert hardwired_shifts(CONFIG_MEMORY) == (1, 1, 2, 0, 0)

    def test_floating_config(self):
        # avail: IALU 2, IMDU 1, LSU 2, FPALU 2, FPMDU 2
        assert hardwired_shifts(CONFIG_FLOATING) == (1, 0, 1, 1, 1)

    def test_no_ffus(self):
        empty = Configuration("none", {})
        assert hardwired_shifts(empty, ffu_counts={}) == (0, 0, 0, 0, 0)


class TestCemError:
    def test_zero_required_zero_error(self):
        assert cem_error((0, 0, 0, 0, 0), (2, 2, 2, 2, 2)) == 0

    def test_matches_shift_sum(self):
        required = (6, 2, 1, 0, 0)
        shifts = (2, 1, 0, 0, 0)
        assert cem_error(required, shifts) == (6 >> 2) + (2 >> 1) + 1

    @given(_COUNTS, st.tuples(*[st.integers(0, 2)] * 5))
    def test_equals_sum_of_shifted_terms(self, required, shifts):
        assert cem_error(required, shifts) == sum(
            r >> s for r, s in zip(required, shifts)
        )

    def test_wrong_arity_rejected(self):
        with pytest.raises(ConfigurationError):
            cem_error((1, 2, 3), (0, 0, 0))


class TestExactError:
    def test_true_division(self):
        assert exact_error((6, 0, 0, 0, 0), (3, 1, 1, 1, 1)) == pytest.approx(2.0)

    def test_zero_available_penalised(self):
        assert exact_error((2, 0, 0, 0, 0), (0, 1, 1, 1, 1)) == pytest.approx(16.0)

    @given(_COUNTS)
    def test_cem_approximates_exact_from_above_half(self, required):
        """The shifter divides by a power of two <= avail, so the CEM is an
        *over*-estimate of exact division, by at most a factor of 2 per term
        (ignoring floor)."""
        avail = (5, 3, 1, 1, 1)  # integer config totals
        shifts = hardwired_shifts(CONFIG_INTEGER)
        approx = cem_error(required, shifts)
        exact = exact_error(required, avail)
        assert approx >= int(exact) - 5  # floor slack: one unit per term


class TestGenerator:
    def test_predefined_generator_uses_hardwired_shifts(self):
        gen = ErrorMetricGenerator(CONFIG_INTEGER)
        assert gen.shifts_for() == hardwired_shifts(CONFIG_INTEGER)
        assert not gen.is_current

    def test_current_generator_needs_live_counts(self):
        gen = ErrorMetricGenerator(None)
        with pytest.raises(ConfigurationError):
            gen.error((0,) * 5)
        assert gen.is_current

    def test_current_generator_tracks_counts(self):
        gen = ErrorMetricGenerator(None)
        # counts (5,1,1,1,1): IALU divides by 4, everything else by 1
        assert gen.shifts_for((5, 1, 1, 1, 1)) == (2, 0, 0, 0, 0)
        assert gen.error((4, 0, 0, 0, 0), (5, 1, 1, 1, 1)) == 1

    def test_available_counts(self):
        gen = ErrorMetricGenerator(CONFIG_MEMORY)
        assert gen.available_counts() == (3, 2, 5, 1, 1)
        cur = ErrorMetricGenerator(None)
        assert cur.available_counts((1, 2, 3, 4, 5)) == (1, 2, 3, 4, 5)

    def test_best_match_wins_for_each_specialised_queue(self):
        """Sanity: each steering config scores best on its own workload."""
        gens = {
            "integer": ErrorMetricGenerator(CONFIG_INTEGER),
            "memory": ErrorMetricGenerator(CONFIG_MEMORY),
            "floating": ErrorMetricGenerator(CONFIG_FLOATING),
        }
        queues = {
            "integer": (5, 2, 0, 0, 0),
            "memory": (2, 0, 5, 0, 0),
            "floating": (1, 0, 1, 3, 2),
        }
        for name, required in queues.items():
            errors = {n: g.error(required) for n, g in gens.items()}
            assert min(errors, key=errors.get) == name, errors
