"""Tests for the unit decoders (Fig. 2 stage 1)."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.encoding import encode
from repro.isa.futypes import FU_TYPES, FUType
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.steering.decoders import UnitDecoder


@pytest.fixture
def decoder():
    return UnitDecoder()


class TestDecodeInstruction:
    def test_output_is_one_hot(self, decoder):
        for op in Opcode:
            v = decoder.decode_instruction(Instruction(op))
            assert bin(v).count("1") == 1

    @pytest.mark.parametrize(
        "mnemonic,expected_bit",
        [("add", 0), ("mul", 1), ("lw", 2), ("fadd", 3), ("fmul", 4)],
    )
    def test_bit_positions_match_fig2(self, decoder, mnemonic, expected_bit):
        instr = assemble({
            "add": "add x1, x2, x3",
            "mul": "mul x1, x2, x3",
            "lw": "lw x1, 0(x2)",
            "fadd": "fadd f1, f2, f3",
            "fmul": "fmul f1, f2, f3",
        }[mnemonic] + "\n")[0]
        assert decoder(instr) == 1 << expected_bit

    def test_branches_decode_to_int_alu(self, decoder):
        assert decoder(Instruction(Opcode.BEQ)) == 1 << FUType.INT_ALU.bit_index


class TestDecodeWord:
    def test_legacy_binary_path(self, decoder):
        """The decoder works on raw machine words, as the hardware would."""
        instr = Instruction(Opcode.FDIV, rd=1, rs1=2, rs2=3)
        assert decoder.decode_word(encode(instr)) == 1 << FUType.FP_MDU.bit_index

    def test_call_dispatches_on_type(self, decoder):
        instr = Instruction(Opcode.LW, rd=1, rs1=2)
        assert decoder(instr) == decoder(encode(instr))


class TestInversion:
    def test_fu_type_of_round_trips(self, decoder):
        for t in FU_TYPES:
            assert UnitDecoder.fu_type_of(1 << t.bit_index) is t

    def test_fu_type_of_rejects_non_onehot(self):
        with pytest.raises(ValueError):
            UnitDecoder.fu_type_of(0b11)
        with pytest.raises(ValueError):
            UnitDecoder.fu_type_of(0)
