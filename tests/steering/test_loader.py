"""Tests for the configuration loader (§3.2)."""

import pytest

from repro.fabric.configuration import (
    CONFIG_FLOATING,
    CONFIG_INTEGER,
    CONFIG_MEMORY,
)
from repro.fabric.fabric import Fabric
from repro.isa.futypes import FUType
from repro.steering.loader import ConfigurationLoader


def _drive(loader, fabric, cycles):
    """Clock loader + fabric for a number of cycles."""
    plans = []
    for _ in range(cycles):
        plan = loader.step()
        if plan:
            plans.append(plan)
        fabric.tick()
    return plans


@pytest.fixture
def fabric():
    return Fabric(reconfig_latency=1)


@pytest.fixture
def loader(fabric):
    return ConfigurationLoader(fabric)


class TestTargeting:
    def test_no_target_no_loads(self, loader, fabric):
        assert _drive(loader, fabric, 10) == []
        assert fabric.reconfigurations == 0

    def test_loads_target_configuration(self, loader, fabric):
        loader.set_target(CONFIG_INTEGER)
        _drive(loader, fabric, 60)
        assert fabric.rfus.counts() == {FUType.INT_ALU: 4, FUType.INT_MDU: 2}
        assert loader.satisfied

    def test_current_counts_include_ffus(self, loader, fabric):
        loader.set_target(CONFIG_INTEGER)
        _drive(loader, fabric, 60)
        assert loader.current_counts() == (5, 3, 1, 1, 1)

    def test_largest_units_placed_first(self, loader, fabric):
        loader.set_target(CONFIG_FLOATING)
        plan = loader.step()
        assert plan.fu_type in (FUType.FP_ALU, FUType.FP_MDU)

    def test_one_load_per_bus_transfer(self, loader, fabric):
        fabric.rfus.reconfig_latency = 10
        loader.set_target(CONFIG_INTEGER)
        assert loader.step() is not None
        assert loader.step() is None  # bus is busy


class TestHybridOverlap:
    def test_matching_units_kept(self, fabric, loader):
        """An RFU already implementing the right type is never reloaded."""
        loader.set_target(CONFIG_INTEGER)
        _drive(loader, fabric, 60)
        loaded = fabric.reconfigurations
        # switch to memory: the 2 IALUs and 1 IMDU it wants are already there
        loader.set_target(CONFIG_MEMORY)
        _drive(loader, fabric, 60)
        assert fabric.rfus.counts() == {
            FUType.INT_ALU: 2,
            FUType.INT_MDU: 1,
            FUType.LSU: 4,
        }
        # only the 4 LSUs needed loading
        assert fabric.reconfigurations == loaded + 4

    def test_busy_unit_not_reconfigured(self, fabric, loader):
        loader.set_target(CONFIG_INTEGER)
        _drive(loader, fabric, 60)
        # occupy every loaded RFU with a long-latency op
        for _, unit in fabric.rfus.units():
            unit.occupy(100)
        loader.set_target(CONFIG_FLOATING)
        _drive(loader, fabric, 20)
        # nothing could change: all slots busy
        assert fabric.rfus.counts() == {FUType.INT_ALU: 4, FUType.INT_MDU: 2}
        assert not loader.satisfied

    def test_partial_steering_around_busy_slot(self, fabric, loader):
        """Idle slots steer toward the target while a busy one holds out:
        the active configuration becomes a hybrid of two steering configs."""
        loader.set_target(CONFIG_INTEGER)
        _drive(loader, fabric, 60)
        # keep one IALU busy, leave the rest idle
        busy_unit = fabric.rfus.units_of_type(FUType.INT_ALU)[0]
        busy_unit.occupy(1000)
        loader.set_target(CONFIG_FLOATING)
        _drive(loader, fabric, 60)
        counts = fabric.rfus.counts()
        # the busy IALU survived; FP units landed in the freed slots
        assert counts[FUType.INT_ALU] >= 1
        assert counts.get(FUType.FP_ALU, 0) >= 1 or counts.get(FUType.FP_MDU, 0) >= 1

    def test_pending_loads_count_toward_target(self, fabric, loader):
        fabric.rfus.reconfig_latency = 50
        loader.set_target(CONFIG_FLOATING)
        loader.step()  # starts the first FP unit
        missing = loader.missing_units()
        # the in-flight FP unit must not be requested again
        assert missing.count(FUType.FP_ALU) + missing.count(FUType.FP_MDU) == 1


class TestMissingAndSurplus:
    def test_missing_units_ordering(self, loader):
        loader.set_target(CONFIG_FLOATING)
        missing = loader.missing_units()
        costs = [t.slot_cost for t in missing]
        assert costs == sorted(costs, reverse=True)

    def test_no_target_nothing_missing(self, loader):
        assert loader.missing_units() == []
        assert loader.satisfied

    def test_history_records_plans(self, fabric, loader):
        loader.set_target(CONFIG_MEMORY)
        plans = _drive(loader, fabric, 60)
        assert loader.history == plans
        assert all(p.latency >= 1 for p in plans)

    def test_defragmentation_relocates_wanted_units(self, fabric, loader):
        """Regression: churn can fragment the fabric (e.g. AALDDDMM) so no
        contiguous run fits a 3-slot unit without touching a wanted unit.
        The fallback relocates a smaller wanted unit and still converges
        (found by the loader property test)."""
        loader.set_target(CONFIG_FLOATING)
        for _ in range(5):
            loader.step()
            fabric.tick()
        loader.set_target(CONFIG_MEMORY)
        for _ in range(5):
            loader.step()
            fabric.tick()
        loader.set_target(CONFIG_FLOATING)
        for _ in range(80):
            loader.step()
            fabric.tick()
        assert loader.satisfied
        counts = fabric.rfus.counts()
        assert counts.get(FUType.FP_ALU, 0) == 1
        assert counts.get(FUType.FP_MDU, 0) == 1

    def test_eviction_recorded_in_plan(self, fabric, loader):
        loader.set_target(CONFIG_INTEGER)
        _drive(loader, fabric, 60)
        loader.set_target(CONFIG_FLOATING)
        plans = _drive(loader, fabric, 60)
        evicted = [t for p in plans for t in p.evicted]
        assert FUType.INT_ALU in evicted or FUType.INT_MDU in evicted
