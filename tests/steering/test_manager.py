"""Tests for the configuration manager (selection + loader, clocked)."""

import pytest

from repro.fabric.fabric import Fabric
from repro.isa.assembler import assemble
from repro.isa.futypes import FUType
from repro.steering.manager import ConfigurationManager


def _queue(src):
    return assemble(src).instructions


_INT_QUEUE = _queue("\n".join(["add x1, x2, x3"] * 4 + ["mul x4, x5, x6"] * 3))
_FP_QUEUE = _queue("\n".join(["fmul f1, f2, f3"] * 4 + ["fadd f4, f5, f6"] * 3))
_MEM_QUEUE = _queue("\n".join(["lw x1, 0(x2)"] * 5 + ["add x3, x4, x5"] * 2))


def _run(manager, queue, cycles):
    for _ in range(cycles):
        manager.cycle(queue)
        manager.fabric.tick()


@pytest.fixture
def fabric():
    return Fabric(reconfig_latency=2)


class TestSteering:
    def test_steers_to_integer_config(self, fabric):
        """Steering loads integer units until the current hybrid matches as
        well as the full integer configuration (the tie then favours
        current, so loading may stop one unit short — §3.1)."""
        mgr = ConfigurationManager(fabric)
        _run(mgr, _INT_QUEUE, 60)
        counts = fabric.rfus.counts()
        assert counts.get(FUType.INT_ALU, 0) >= 3
        assert counts.get(FUType.INT_MDU, 0) == 2
        assert counts.get(FUType.FP_ALU, 0) == 0

    def test_steers_to_floating_config(self, fabric):
        mgr = ConfigurationManager(fabric)
        _run(mgr, _FP_QUEUE, 80)
        counts = fabric.rfus.counts()
        assert counts.get(FUType.FP_ALU, 0) == 1
        assert counts.get(FUType.FP_MDU, 0) == 1

    def test_settles_then_keeps_current(self, fabric):
        """After steering completes the selection switches to 'current'."""
        mgr = ConfigurationManager(fabric)
        _run(mgr, _INT_QUEUE, 60)
        result = mgr.cycle(_INT_QUEUE)
        assert result.keeps_current

    def test_phase_change_resteers(self, fabric):
        """A workload phase change redirects steering toward memory units
        (settling once the hybrid error ties the memory config's)."""
        mgr = ConfigurationManager(fabric)
        _run(mgr, _INT_QUEUE, 60)
        assert fabric.rfus.counts().get(FUType.LSU, 0) == 0
        _run(mgr, _MEM_QUEUE, 80)
        assert fabric.rfus.counts().get(FUType.LSU, 0) >= 1
        assert mgr.cycle(_MEM_QUEUE).keeps_current

    def test_empty_queue_is_stable(self, fabric):
        mgr = ConfigurationManager(fabric)
        _run(mgr, [], 20)
        assert fabric.reconfigurations == 0
        assert mgr.stats.current_kept_fraction == 1.0


class TestStats:
    def test_stats_accumulate(self, fabric):
        mgr = ConfigurationManager(fabric)
        _run(mgr, _INT_QUEUE, 30)
        assert mgr.stats.cycles == 30
        assert sum(mgr.stats.selections.values()) == 30
        assert mgr.stats.loads == fabric.reconfigurations

    def test_mean_selected_error_defined(self, fabric):
        mgr = ConfigurationManager(fabric)
        assert mgr.stats.mean_selected_error == 0.0
        _run(mgr, _INT_QUEUE, 10)
        assert mgr.stats.mean_selected_error >= 0.0

    def test_trace_recording(self, fabric):
        mgr = ConfigurationManager(fabric, record_trace=True)
        _run(mgr, _FP_QUEUE, 15)
        assert len(mgr.trace) == 15
        assert mgr.trace[0].cycle == 1
        assert any(t.load is not None for t in mgr.trace)

    def test_no_trace_by_default(self, fabric):
        assert ConfigurationManager(fabric).trace is None


class TestExactMetricOption:
    def test_exact_metric_manager_still_steers(self, fabric):
        mgr = ConfigurationManager(fabric, use_exact_metric=True)
        _run(mgr, _FP_QUEUE, 80)
        counts = fabric.rfus.counts()
        assert counts.get(FUType.FP_ALU, 0) == 1
