"""Tests for the module-based vs difference-based reconfiguration flows [8]."""

import pytest

from repro.errors import FabricError
from repro.fabric.slots import RfuSlotArray
from repro.isa.futypes import FUType


def _drain(arr):
    while not arr.bus_free:
        arr.tick()


class TestModeValidation:
    def test_default_is_module(self):
        assert RfuSlotArray().reconfig_mode == "module"

    def test_unknown_mode_rejected(self):
        with pytest.raises(FabricError, match="mode"):
            RfuSlotArray(reconfig_mode="quantum")


class TestModuleFlow:
    def test_cost_is_always_full(self):
        arr = RfuSlotArray(reconfig_latency=10, reconfig_mode="module")
        assert arr.begin_reconfigure(0, FUType.INT_ALU) == 10
        _drain(arr)
        # replacing with the same type still pays full price
        assert arr.begin_reconfigure(0, FUType.INT_ALU) == 10


class TestDifferenceFlow:
    def _arr(self):
        return RfuSlotArray(reconfig_latency=10, reconfig_mode="difference")

    def test_empty_region_pays_full_price(self):
        arr = self._arr()
        assert arr.begin_reconfigure(0, FUType.FP_ALU) == 30

    def test_same_type_reload_is_nearly_free(self):
        arr = self._arr()
        arr.begin_reconfigure(0, FUType.LSU)
        _drain(arr)
        assert arr.begin_reconfigure(0, FUType.LSU) == 1

    def test_same_family_half_price(self):
        arr = self._arr()
        arr.begin_reconfigure(0, FUType.INT_ALU)
        _drain(arr)
        assert arr.begin_reconfigure(0, FUType.LSU) == 5  # int family

    def test_cross_family_full_price(self):
        arr = self._arr()
        arr.begin_reconfigure(0, FUType.FP_ALU)
        _drain(arr)
        # FP -> integer MDU: unrelated logic, full region rewrite
        assert arr.begin_reconfigure(0, FUType.INT_MDU) == 20

    def test_multi_slot_same_family(self):
        arr = self._arr()
        arr.begin_reconfigure(0, FUType.FP_ALU)
        _drain(arr)
        assert arr.begin_reconfigure(0, FUType.FP_MDU) == 15  # fp family, /2

    def test_difference_flow_end_to_end_cheaper(self):
        """Steering a processor with the difference flow spends fewer bus
        cycles on the same phased workload."""
        from repro.core.baselines import steering_processor
        from repro.core.params import ProcessorParams
        from repro.workloads.phases import phased_program
        from repro.workloads.synthetic import FP_MIX, INT_MIX

        program = phased_program([(INT_MIX, 30), (FP_MIX, 30)], seed=4)
        module = steering_processor(
            program, ProcessorParams(reconfig_latency=16)
        ).run()
        difference = steering_processor(
            program, ProcessorParams(reconfig_latency=16, reconfig_mode="difference")
        ).run()
        assert difference.reconfig_bus_cycles <= module.reconfig_bus_cycles
        assert difference.ipc >= module.ipc * 0.98
