"""The incremental availability cache must track the Eq. 1 rescan exactly.

:class:`AvailabilityCache` point-updates its idle counts and the 5-bit
availability bus from unit idle/busy events instead of rescanning the
fabric every query.  These tests drive a fabric through randomized
occupy / tick / reconfigure sequences and pin the incremental answers to
the bit-faithful :func:`availability_report` over the Fig. 7 input
vectors, and to a direct per-unit rescan — after every single operation.
"""

import random

import pytest

from repro.errors import FabricError
from repro.fabric.availability import availability_report
from repro.fabric.fabric import Fabric
from repro.isa.futypes import FU_TYPES

_LATENCY = 4


def _reference_bits(fabric):
    """Eq. 1 bus re-derived through the Fig. 7 reference circuit."""
    report = availability_report(*fabric.full_allocation())
    bits = 0
    for t, avail in report.items():
        if avail:
            bits |= 1 << t.bit_index
    return bits


def _reference_idle_counts(fabric):
    """Idle units per type from a direct scan of every configured unit."""
    out = {t: 0 for t in FU_TYPES}
    for u in fabric.ffus.units:
        if u.available:
            out[u.fu_type] += 1
    for _, u in fabric.rfus.units():
        if u.available:
            out[u.fu_type] += 1
    return out


def _assert_consistent(fabric):
    assert fabric.availability_bits() == _reference_bits(fabric)
    assert fabric.idle_counts() == _reference_idle_counts(fabric)
    counts = fabric.counts_tuple()
    for i, t in enumerate(FU_TYPES):
        assert fabric.idle_counts()[t] <= counts[i]


def _random_step(rng, fabric):
    """Apply one random mutation; returns a label for debugging."""
    choices = ["tick"]
    idle = fabric.idle_counts()
    occupiable = [t for t in FU_TYPES if idle[t] > 0]
    if occupiable:
        choices.append("occupy")
    if fabric.rfus.bus_free:
        choices.append("reconfigure")
    op = rng.choice(choices)
    if op == "occupy":
        t = rng.choice(occupiable)
        fabric.issue(t, cycles=rng.randint(1, 5))
    elif op == "reconfigure":
        t = rng.choice(FU_TYPES)
        head = rng.randrange(fabric.rfus.n_slots)
        if fabric.rfus.range_reconfigurable(head, t):
            fabric.rfus.begin_reconfigure(head, t)
        else:
            op = "tick"
            fabric.tick()
    else:
        fabric.tick()
    return op


@pytest.mark.parametrize("seed", range(10))
def test_random_sequences_match_rescan(seed):
    rng = random.Random(seed)
    fabric = Fabric(n_slots=8, reconfig_latency=_LATENCY)
    _assert_consistent(fabric)
    for _ in range(400):
        _random_step(rng, fabric)
        _assert_consistent(fabric)


def test_load_completion_and_eviction_tracked():
    fabric = Fabric(n_slots=8, reconfig_latency=_LATENCY)
    t = FU_TYPES[0]
    before = fabric.counts_tuple()[0]
    fabric.rfus.begin_reconfigure(0, t)
    _assert_consistent(fabric)  # pending unit counts nowhere yet
    for _ in range(_LATENCY * t.slot_cost):
        fabric.tick()
        _assert_consistent(fabric)
    assert fabric.counts_tuple()[0] == before + 1
    # evict it by loading a different type over the same region
    other = FU_TYPES[1]
    assert fabric.rfus.range_reconfigurable(0, other)
    fabric.rfus.begin_reconfigure(0, other)
    _assert_consistent(fabric)
    assert fabric.counts_tuple()[0] == before


def test_busy_unit_events_update_bus_and_counts():
    fabric = Fabric(n_slots=8, reconfig_latency=_LATENCY)
    t = FU_TYPES[0]
    n_idle = fabric.idle_counts()[t]
    assert n_idle >= 1
    units = [fabric.issue(t, cycles=2) for _ in range(n_idle)]
    assert fabric.idle_counts()[t] == 0
    assert not fabric.availability_bits() & (1 << t.bit_index)
    _assert_consistent(fabric)
    for _ in range(2):
        fabric.tick()
        _assert_consistent(fabric)
    assert fabric.idle_counts()[t] == n_idle
    assert fabric.availability_bits() & (1 << t.bit_index)
    assert all(u.available for u in units)


def test_crosscheck_mode_smoke():
    """With the debug cross-check armed, every query re-derives from a
    rescan and raises on divergence — a clean random run must not raise."""
    fabric = Fabric(n_slots=8, reconfig_latency=_LATENCY)
    fabric._avail.crosscheck = True
    rng = random.Random(99)
    for _ in range(200):
        _random_step(rng, fabric)
        fabric.availability_bits()
        fabric.idle_counts()


def test_crosscheck_detects_seeded_divergence():
    """Corrupting the incremental state must trip the cross-check."""
    fabric = Fabric(n_slots=8, reconfig_latency=_LATENCY)
    fabric.availability_bits()  # prime the cache
    fabric._avail.crosscheck = True
    fabric._avail._idle_counts[FU_TYPES[0]] += 1  # simulate a missed event
    with pytest.raises(FabricError):
        fabric.idle_counts()
