"""Tests for the combined Fabric (FFUs + RFU slots)."""

import pytest

from repro.errors import FabricError
from repro.fabric.fabric import Fabric
from repro.isa.futypes import FU_TYPES, FUType


def _fabric(latency=1):
    return Fabric(reconfig_latency=latency)


def _load(fabric, head, fu_type):
    fabric.rfus.begin_reconfigure(head, fu_type)
    while not fabric.rfus.bus_free:
        fabric.tick()


class TestCounts:
    def test_initial_counts_are_ffus_only(self):
        f = _fabric()
        assert f.counts() == {t: 1 for t in FU_TYPES}
        assert f.counts(include_ffus=False) == {t: 0 for t in FU_TYPES}

    def test_counts_after_loading(self):
        f = _fabric()
        _load(f, 0, FUType.INT_ALU)
        _load(f, 1, FUType.INT_ALU)
        assert f.counts()[FUType.INT_ALU] == 3

    def test_pending_units_not_counted(self):
        f = Fabric(reconfig_latency=50)
        f.rfus.begin_reconfigure(0, FUType.LSU)
        assert f.counts()[FUType.LSU] == 1  # only the FFU


class TestAvailability:
    def test_ffu_available_initially(self):
        f = _fabric()
        for t in FU_TYPES:
            assert f.available(t)

    def test_unavailable_when_all_busy(self):
        f = _fabric()
        f.issue(FUType.LSU, cycles=5)
        assert not f.available(FUType.LSU)
        assert f.available(FUType.INT_ALU)

    def test_rfu_copy_restores_availability(self):
        f = _fabric()
        _load(f, 0, FUType.LSU)
        f.issue(FUType.LSU, cycles=5)
        assert f.available(FUType.LSU)  # the RFU copy is still idle
        f.issue(FUType.LSU, cycles=5)
        assert not f.available(FUType.LSU)


class TestIssue:
    def test_issue_prefers_ffu(self):
        f = _fabric()
        _load(f, 0, FUType.INT_ALU)
        unit = f.issue(FUType.INT_ALU, cycles=3, occupant=1)
        assert unit.fixed

    def test_issue_uses_rfu_when_ffu_busy(self):
        f = _fabric()
        _load(f, 0, FUType.INT_ALU)
        f.issue(FUType.INT_ALU, cycles=3)
        unit = f.issue(FUType.INT_ALU, cycles=3)
        assert not unit.fixed

    def test_issue_without_idle_unit_raises(self):
        f = _fabric()
        f.issue(FUType.FP_MDU, cycles=2)
        with pytest.raises(FabricError):
            f.issue(FUType.FP_MDU, cycles=2)

    def test_tick_frees_units(self):
        f = _fabric()
        f.issue(FUType.INT_MDU, cycles=2)
        f.tick()
        f.tick()
        assert f.available(FUType.INT_MDU)


class TestFullAllocation:
    def test_vector_lengths(self):
        f = _fabric()
        allocation, availability = f.full_allocation()
        assert len(allocation) == len(availability) == 8 + 5

    def test_span_slots_reported(self):
        f = _fabric()
        _load(f, 0, FUType.FP_ALU)
        allocation, availability = f.full_allocation()
        assert allocation[0] == FUType.FP_ALU.encoding
        assert allocation[1] == 0b111
        # span slots mirror the head unit's availability
        assert availability[0] == availability[1] == availability[2]

    def test_utilisation(self):
        f = _fabric()
        f.issue(FUType.INT_ALU, cycles=4)
        busy, total = f.utilisation()[FUType.INT_ALU]
        assert (busy, total) == (1, 1)

    def test_reconfigurations_property(self):
        f = _fabric()
        _load(f, 0, FUType.LSU)
        assert f.reconfigurations == 1


class TestFastPathEquivalence:
    def test_available_equals_eq1_circuit(self):
        """The hot-path unit scan must always agree with evaluating the
        Fig. 7 circuit over the full allocation/availability vectors."""
        import random

        from repro.fabric.availability import available as eq1

        rng = random.Random(0)
        f = _fabric()
        for step in range(300):
            op = rng.random()
            if op < 0.3 and f.rfus.bus_free:
                head = rng.randrange(8)
                t = rng.choice(list(FU_TYPES))
                if f.rfus.range_reconfigurable(head, t):
                    f.rfus.begin_reconfigure(head, t)
            elif op < 0.6:
                t = rng.choice(list(FU_TYPES))
                unit = f.idle_unit(t)
                if unit is not None:
                    unit.occupy(rng.randint(1, 5))
            f.tick()
            allocation, availability = f.full_allocation()
            for t in FU_TYPES:
                assert f.available(t) == eq1(t, allocation, availability), (
                    step,
                    t,
                )
