"""Tests for the Eq. 1 availability function / Fig. 7 circuit."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import FabricError
from repro.fabric.allocation import EMPTY_ENCODING, SPAN_ENCODING
from repro.fabric.availability import availability_report, available
from repro.isa.futypes import FU_TYPES, FUType


class TestAvailable:
    def test_idle_matching_unit(self):
        allocation = [FUType.LSU.encoding]
        assert available(FUType.LSU, allocation, [True]) is True
        assert available(FUType.LSU, allocation, [False]) is False

    def test_wrong_type_never_matches(self):
        allocation = [FUType.LSU.encoding]
        assert available(FUType.INT_ALU, allocation, [True]) is False

    def test_empty_and_span_never_match(self):
        allocation = [EMPTY_ENCODING, SPAN_ENCODING]
        for t in FU_TYPES:
            assert available(t, allocation, [True, True]) is False

    def test_multi_slot_unit_counted_once_via_head(self):
        """The SPAN encoding ensures a 3-slot FP unit contributes once."""
        allocation = [FUType.FP_ALU.encoding, SPAN_ENCODING, SPAN_ENCODING]
        assert available(FUType.FP_ALU, allocation, [True, False, False]) is True
        assert available(FUType.FP_ALU, allocation, [False, True, True]) is False

    def test_or_across_copies(self):
        allocation = [FUType.INT_ALU.encoding] * 3
        assert available(FUType.INT_ALU, allocation, [False, False, True]) is True
        assert available(FUType.INT_ALU, allocation, [False, False, False]) is False

    def test_length_mismatch_rejected(self):
        with pytest.raises(FabricError):
            available(FUType.LSU, [1, 2], [True])


class TestReport:
    def test_report_covers_all_types(self):
        report = availability_report([], [])
        assert set(report) == set(FU_TYPES)
        assert not any(report.values())

    def test_mixed_fabric(self):
        allocation = [
            FUType.INT_ALU.encoding,
            FUType.FP_MDU.encoding, SPAN_ENCODING, SPAN_ENCODING,
            FUType.LSU.encoding,
        ]
        availability = [False, True, True, True, True]
        report = availability_report(allocation, availability)
        assert report[FUType.INT_ALU] is False
        assert report[FUType.FP_MDU] is True
        assert report[FUType.LSU] is True
        assert report[FUType.INT_MDU] is False


@given(
    st.lists(
        st.tuples(st.sampled_from(list(FU_TYPES)), st.booleans()),
        max_size=10,
    )
)
def test_matches_specification(entries):
    """Property: Eq. 1 equals 'exists an idle configured unit of type t'."""
    allocation = [t.encoding for t, _ in entries]
    availability = [a for _, a in entries]
    for t in FU_TYPES:
        spec = any(ty is t and av for ty, av in entries)
        assert available(t, allocation, availability) == spec
