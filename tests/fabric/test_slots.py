"""Tests for the reconfigurable slot array and partial reconfiguration."""

import pytest

from repro.errors import FabricError
from repro.fabric.slots import RfuSlotArray
from repro.isa.futypes import FUType


def _loaded_array(**kwargs):
    """Array with an INT_ALU at slot 0 and an FP_ALU at slots 1-3."""
    arr = RfuSlotArray(**kwargs)
    arr.begin_reconfigure(0, FUType.INT_ALU)
    _drain(arr)
    arr.begin_reconfigure(1, FUType.FP_ALU)
    _drain(arr)
    return arr


def _drain(arr, limit=1000):
    for _ in range(limit):
        if arr.bus_free:
            return
        arr.tick()
    raise AssertionError("bus never freed")


class TestLoading:
    def test_load_single_slot_unit(self):
        arr = RfuSlotArray(reconfig_latency=4)
        latency = arr.begin_reconfigure(0, FUType.INT_ALU)
        assert latency == 4
        assert arr.counts() == {}  # not usable yet
        assert arr.pending_counts() == {FUType.INT_ALU: 1}
        for _ in range(4):
            arr.tick()
        assert arr.counts() == {FUType.INT_ALU: 1}
        assert arr.pending_counts() == {}

    def test_multi_slot_latency_scales_with_cost(self):
        arr = RfuSlotArray(reconfig_latency=4)
        assert arr.begin_reconfigure(0, FUType.FP_ALU) == 12

    def test_span_slots_installed(self):
        arr = RfuSlotArray(reconfig_latency=1)
        arr.begin_reconfigure(2, FUType.FP_MDU)
        _drain(arr)
        assert arr.head_of(2) == 2
        assert arr.head_of(3) == 2
        assert arr.head_of(4) == 2
        vec = arr.allocation_vector()
        assert vec[2] == FUType.FP_MDU.encoding
        assert vec[3] == vec[4] == 0b111

    def test_bus_exclusivity(self):
        """Only one unit loads at a time (single configuration port)."""
        arr = RfuSlotArray(reconfig_latency=4)
        arr.begin_reconfigure(0, FUType.INT_ALU)
        assert not arr.bus_free
        with pytest.raises(FabricError):
            arr.begin_reconfigure(4, FUType.LSU)

    def test_out_of_bounds_rejected(self):
        arr = RfuSlotArray()
        with pytest.raises(FabricError):
            arr.begin_reconfigure(6, FUType.FP_ALU)
        with pytest.raises(FabricError):
            arr.begin_reconfigure(-1, FUType.INT_ALU)

    def test_reconfigurations_counted(self):
        arr = _loaded_array(reconfig_latency=1)
        assert arr.reconfigurations == 2


class TestEviction:
    def test_idle_unit_evicted_by_overlap(self):
        arr = _loaded_array(reconfig_latency=1)
        # overwrite the FP_ALU at slots 1-3 with an LSU at slot 2
        arr.begin_reconfigure(2, FUType.LSU)
        assert arr.counts() == {FUType.INT_ALU: 1}  # FP_ALU gone immediately
        _drain(arr)
        assert arr.counts() == {FUType.INT_ALU: 1, FUType.LSU: 1}

    def test_eviction_clears_all_span_slots(self):
        arr = _loaded_array(reconfig_latency=1)
        arr.begin_reconfigure(2, FUType.LSU)
        _drain(arr)
        # slots 1 and 3 (former FP_ALU parts) must now be empty
        assert arr.slots[1].is_empty
        assert arr.slots[3].is_empty

    def test_busy_unit_protected(self):
        """§3.2: an RFU executing a multi-cycle op cannot be reconfigured."""
        arr = _loaded_array(reconfig_latency=1)
        fp = arr.units_of_type(FUType.FP_ALU)[0]
        fp.occupy(10)
        with pytest.raises(FabricError):
            arr.begin_reconfigure(1, FUType.LSU)
        assert not arr.range_reconfigurable(3, FUType.LSU)  # span slot busy too

    def test_busy_unit_reconfigurable_after_retirement(self):
        arr = _loaded_array(reconfig_latency=1)
        fp = arr.units_of_type(FUType.FP_ALU)[0]
        fp.occupy(2)
        arr.tick()
        arr.tick()
        assert arr.range_reconfigurable(1, FUType.LSU)

    def test_reconfiguring_slot_not_retargetable(self):
        arr = RfuSlotArray(reconfig_latency=10)
        arr.begin_reconfigure(0, FUType.INT_ALU)
        assert not arr.range_reconfigurable(0, FUType.LSU)


class TestQueries:
    def test_counts_and_units(self):
        arr = _loaded_array(reconfig_latency=1)
        assert arr.counts() == {FUType.INT_ALU: 1, FUType.FP_ALU: 1}
        assert len(arr.units()) == 2

    def test_slot_busy(self):
        arr = _loaded_array(reconfig_latency=1)
        arr.units_of_type(FUType.FP_ALU)[0].occupy(5)
        assert arr.slot_busy(1) and arr.slot_busy(2) and arr.slot_busy(3)
        assert not arr.slot_busy(0)
        assert not arr.slot_busy(7)

    def test_bus_busy_cycles_accumulate(self):
        arr = RfuSlotArray(reconfig_latency=3)
        arr.begin_reconfigure(0, FUType.INT_ALU)
        _drain(arr)
        assert arr.bus_busy_cycles == 3

    def test_invalid_construction(self):
        with pytest.raises(FabricError):
            RfuSlotArray(n_slots=0)
        with pytest.raises(FabricError):
            RfuSlotArray(reconfig_latency=0)
