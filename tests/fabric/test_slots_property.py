"""Property tests: random operation sequences on the RFU slot array.

Invariants that must hold after any legal sequence of loads, ticks,
occupations and releases:

* the allocation vector is always structurally valid (the constructor
  validates spans);
* unit counts equal the number of head slots;
* units never overlap (every slot belongs to at most one unit);
* the configuration bus is exclusive;
* a busy unit is never evicted.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FabricError
from repro.fabric.slots import RfuSlotArray
from repro.isa.futypes import FU_TYPES, FUType

_OPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("load"),
            st.integers(0, 7),
            st.sampled_from(list(FU_TYPES)),
        ),
        st.tuples(st.just("tick"), st.integers(1, 8)),
        st.tuples(st.just("occupy"), st.integers(0, 7), st.integers(1, 6)),
        st.tuples(st.just("release"), st.integers(0, 7)),
    ),
    max_size=40,
)


def _apply(arr: RfuSlotArray, op) -> None:
    kind = op[0]
    if kind == "load":
        _, head, fu_type = op
        if arr.range_reconfigurable(head, fu_type):
            arr.begin_reconfigure(head, fu_type)
    elif kind == "tick":
        for _ in range(op[1]):
            arr.tick()
    elif kind == "occupy":
        head = arr.head_of(op[1])
        if head is not None:
            unit = arr.slots[head].unit
            if unit.available:
                unit.occupy(op[2])
    elif kind == "release":
        head = arr.head_of(op[1])
        if head is not None:
            arr.slots[head].unit.release()


def _check_invariants(arr: RfuSlotArray) -> None:
    # allocation vector validity (constructor checks spans)
    vec = arr.allocation_vector()
    # counts equal head slots
    assert sum(arr.counts().values()) == len(arr.units())
    # no slot belongs to two units
    covered = {}
    for head, unit in arr.units():
        for i in range(head, head + unit.fu_type.slot_cost):
            assert i not in covered, f"slot {i} doubly owned"
            covered[i] = head
    # span bookkeeping agrees with the vector
    assert dict(vec.heads()) == {h: u.fu_type for h, u in arr.units()}
    # bus exclusivity: at most one pending head
    pending_heads = [s.index for s in arr.slots if s.pending_type is not None]
    assert len(pending_heads) <= 1
    if pending_heads:
        assert not arr.bus_free


@settings(max_examples=120, deadline=None)
@given(ops=_OPS)
def test_random_operation_sequences_preserve_invariants(ops):
    arr = RfuSlotArray(reconfig_latency=2)
    for op in ops:
        _apply(arr, op)
        _check_invariants(arr)


@settings(max_examples=60, deadline=None)
@given(ops=_OPS)
def test_busy_units_survive_everything(ops):
    """A unit pinned busy forever is never evicted by any legal sequence."""
    arr = RfuSlotArray(reconfig_latency=1)
    arr.begin_reconfigure(3, FUType.INT_MDU)
    while not arr.bus_free:
        arr.tick()
    pinned = arr.slots[3].unit
    pinned.occupy(10_000)
    for op in ops:
        if op[0] == "release" and arr.head_of(op[1]) == 3:
            continue  # the premise is that this unit stays busy
        _apply(arr, op)
    assert arr.slots[3].unit is pinned
    assert arr.head_of(4) == 3  # the span slot still belongs to it


@settings(max_examples=60, deadline=None)
@given(ops=_OPS, drain=st.integers(0, 64))
def test_bus_always_drains(ops, drain):
    """After enough idle ticks the bus frees and pending units install."""
    arr = RfuSlotArray(reconfig_latency=2)
    for op in ops:
        _apply(arr, op)
    for _ in range(16):  # max pending latency is 2 * 3 slots = 6
        arr.tick()
    assert arr.bus_free
    assert not any(s.is_reconfiguring for s in arr.slots)
