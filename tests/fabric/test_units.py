"""Tests for functional units and the fixed-unit bank."""

import pytest

from repro.errors import FabricError
from repro.fabric.units import FfuBank, FunctionalUnit
from repro.isa.futypes import FU_TYPES, FUType


class TestFunctionalUnit:
    def test_starts_available(self):
        u = FunctionalUnit(FUType.INT_ALU)
        assert u.available

    def test_occupy_then_tick_to_free(self):
        u = FunctionalUnit(FUType.INT_MDU)
        u.occupy(3, occupant=42)
        assert not u.available
        assert u.occupant == 42
        u.tick()
        u.tick()
        assert not u.available
        u.tick()
        assert u.available
        assert u.occupant is None

    def test_single_cycle_occupancy(self):
        u = FunctionalUnit(FUType.INT_ALU)
        u.occupy(1)
        assert not u.available
        u.tick()
        assert u.available

    def test_double_occupy_rejected(self):
        u = FunctionalUnit(FUType.LSU)
        u.occupy(2)
        with pytest.raises(FabricError, match="busy"):
            u.occupy(1)

    def test_non_positive_occupancy_rejected(self):
        u = FunctionalUnit(FUType.LSU)
        with pytest.raises(FabricError):
            u.occupy(0)

    def test_release(self):
        u = FunctionalUnit(FUType.FP_MDU)
        u.occupy(10, occupant=7)
        u.release()
        assert u.available and u.occupant is None

    def test_unique_ids(self):
        a, b = FunctionalUnit(FUType.INT_ALU), FunctionalUnit(FUType.INT_ALU)
        assert a.uid != b.uid


class TestFfuBank:
    def test_default_one_per_type(self):
        bank = FfuBank()
        assert bank.counts() == {t: 1 for t in FU_TYPES}
        assert all(u.fixed for u in bank.units)

    def test_units_of_type(self):
        bank = FfuBank()
        assert len(bank.units_of_type(FUType.FP_ALU)) == 1

    def test_custom_counts(self):
        bank = FfuBank({FUType.INT_ALU: 2})
        assert bank.counts() == {FUType.INT_ALU: 2}

    def test_tick_propagates(self):
        bank = FfuBank()
        unit = bank.units_of_type(FUType.INT_ALU)[0]
        unit.occupy(1)
        bank.tick()
        assert unit.available
