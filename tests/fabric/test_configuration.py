"""Tests for Configuration and the Table 1 steering basis."""

import pytest

from repro.errors import ConfigurationError
from repro.fabric.configuration import (
    CONFIG_FLOATING,
    CONFIG_INTEGER,
    CONFIG_MEMORY,
    FFU_COUNTS,
    NUM_RFU_SLOTS,
    PREDEFINED_CONFIGS,
    Configuration,
    steering_table,
)
from repro.isa.futypes import FU_TYPES, FUType


class TestTable1:
    def test_three_predefined_configs(self):
        assert len(PREDEFINED_CONFIGS) == 3

    def test_every_config_fills_eight_slots_exactly(self):
        """The reconstruction invariant: each steering config uses all 8 slots."""
        for cfg in PREDEFINED_CONFIGS:
            assert cfg.slot_usage == NUM_RFU_SLOTS

    def test_ffus_one_of_each_type(self):
        assert FFU_COUNTS == {t: 1 for t in FU_TYPES}

    def test_integer_config(self):
        assert CONFIG_INTEGER.count(FUType.INT_ALU) == 4
        assert CONFIG_INTEGER.count(FUType.INT_MDU) == 2
        assert CONFIG_INTEGER.count(FUType.FP_ALU) == 0

    def test_memory_config(self):
        assert CONFIG_MEMORY.count(FUType.LSU) == 4
        assert CONFIG_MEMORY.count(FUType.INT_ALU) == 2

    def test_floating_config(self):
        assert CONFIG_FLOATING.count(FUType.FP_ALU) == 1
        assert CONFIG_FLOATING.count(FUType.FP_MDU) == 1
        assert CONFIG_FLOATING.count(FUType.INT_ALU) == 1
        assert CONFIG_FLOATING.count(FUType.LSU) == 1

    def test_configs_are_roughly_orthogonal(self):
        """§5: the basis should cover different unit types."""
        for a in PREDEFINED_CONFIGS:
            for b in PREDEFINED_CONFIGS:
                if a is b:
                    continue
                # no config's vector dominates another's
                va, vb = a.as_vector(), b.as_vector()
                assert any(x > y for x, y in zip(va, vb))


class TestConfiguration:
    def test_slot_usage(self):
        cfg = Configuration("x", {FUType.FP_ALU: 2, FUType.LSU: 1})
        assert cfg.slot_usage == 7

    def test_validate_rejects_overflow(self):
        with pytest.raises(ConfigurationError, match="slots"):
            Configuration("big", {FUType.FP_ALU: 3}).validate()

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            Configuration("neg", {FUType.LSU: -1})

    def test_unit_list_in_canonical_order(self):
        cfg = Configuration("x", {FUType.FP_MDU: 1, FUType.INT_ALU: 2})
        assert cfg.unit_list() == [FUType.INT_ALU, FUType.INT_ALU, FUType.FP_MDU]

    def test_total_with_ffus(self):
        assert CONFIG_INTEGER.total_with_ffus(FUType.INT_ALU) == 5
        assert CONFIG_INTEGER.total_with_ffus(FUType.FP_MDU) == 1

    def test_as_vector(self):
        assert CONFIG_MEMORY.as_vector() == (2, 1, 4, 0, 0)

    def test_str(self):
        assert "IALUx4" in str(CONFIG_INTEGER)


class TestSteeringTable:
    def test_renders_all_rows(self):
        text = steering_table()
        assert "FFUs" in text
        assert "Config 1 (integer)" in text
        assert "Config 2 (memory)" in text
        assert "Config 3 (floating)" in text

    def test_has_column_per_type(self):
        header = steering_table().splitlines()[0]
        for t in FU_TYPES:
            assert t.short_name in header
