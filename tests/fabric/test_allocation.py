"""Tests for the resource-allocation vector (Table 2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import FabricError
from repro.fabric.allocation import (
    EMPTY_ENCODING,
    SPAN_ENCODING,
    AllocationVector,
    encoding_name,
)
from repro.isa.futypes import FU_TYPES, FUType


class TestEncodings:
    def test_special_encodings(self):
        assert EMPTY_ENCODING == 0b000
        assert SPAN_ENCODING == 0b111

    def test_names(self):
        assert encoding_name(EMPTY_ENCODING) == "EMPTY"
        assert encoding_name(SPAN_ENCODING) == "SPAN"
        assert encoding_name(FUType.INT_ALU.encoding) == "IALU"


class TestFromUnits:
    def test_single_slot_unit(self):
        v = AllocationVector.from_units(8, {0: FUType.INT_ALU})
        assert v[0] == FUType.INT_ALU.encoding
        assert all(v[i] == EMPTY_ENCODING for i in range(1, 8))

    def test_multi_slot_unit_has_span_entries(self):
        """Table 2: head entry holds the type, followers hold SPAN (111)."""
        v = AllocationVector.from_units(8, {2: FUType.FP_ALU})
        assert v[2] == FUType.FP_ALU.encoding
        assert v[3] == SPAN_ENCODING
        assert v[4] == SPAN_ENCODING
        assert v[5] == EMPTY_ENCODING

    def test_full_integer_config_layout(self):
        v = AllocationVector.from_units(
            8,
            {0: FUType.INT_ALU, 1: FUType.INT_ALU, 2: FUType.INT_ALU,
             3: FUType.INT_ALU, 4: FUType.INT_MDU, 6: FUType.INT_MDU},
        )
        assert v.counts() == {FUType.INT_ALU: 4, FUType.INT_MDU: 2}

    def test_overrun_rejected(self):
        with pytest.raises(FabricError, match="overruns"):
            AllocationVector.from_units(8, {6: FUType.FP_ALU})

    def test_overlap_rejected(self):
        with pytest.raises(FabricError, match="overlap"):
            AllocationVector.from_units(8, {0: FUType.FP_ALU, 2: FUType.LSU})


class TestValidation:
    def test_span_without_head_rejected(self):
        with pytest.raises(FabricError, match="SPAN"):
            AllocationVector((SPAN_ENCODING, EMPTY_ENCODING))

    def test_truncated_unit_rejected(self):
        # FP unit needs 3 slots: head + only one span is invalid
        with pytest.raises(FabricError):
            AllocationVector((FUType.FP_ALU.encoding, SPAN_ENCODING, EMPTY_ENCODING))

    def test_unit_ending_mid_span_at_boundary(self):
        with pytest.raises(FabricError, match="mid-span"):
            AllocationVector((FUType.INT_MDU.encoding,))

    def test_invalid_encoding_rejected(self):
        with pytest.raises(FabricError, match="invalid encoding"):
            AllocationVector((0b110,))


class TestQueries:
    def test_heads(self):
        v = AllocationVector.from_units(8, {0: FUType.LSU, 1: FUType.FP_MDU})
        assert v.heads() == [(0, FUType.LSU), (1, FUType.FP_MDU)]

    def test_counts_counts_units_not_slots(self):
        v = AllocationVector.from_units(8, {0: FUType.FP_ALU, 3: FUType.FP_MDU})
        assert v.counts() == {FUType.FP_ALU: 1, FUType.FP_MDU: 1}

    def test_diff_slots_is_xor(self):
        a = AllocationVector.from_units(4, {0: FUType.INT_ALU, 1: FUType.INT_ALU})
        b = AllocationVector.from_units(4, {0: FUType.INT_ALU, 1: FUType.LSU})
        assert a.diff_slots(b) == [1]
        assert a.diff_slots(a) == []

    def test_diff_length_mismatch(self):
        a = AllocationVector.from_units(4, {})
        b = AllocationVector.from_units(8, {})
        with pytest.raises(FabricError):
            a.diff_slots(b)

    def test_render(self):
        v = AllocationVector.from_units(2, {0: FUType.INT_MDU})
        text = v.render()
        assert "slot 0: 010 IMDU" in text
        assert "slot 1: 111 SPAN" in text


@given(st.lists(st.sampled_from(list(FU_TYPES)), max_size=5))
def test_first_fit_placements_always_valid(types):
    """Property: packing units first-fit never produces an invalid vector."""
    placements = {}
    cursor = 0
    for t in types:
        if cursor + t.slot_cost > 16:
            break
        placements[cursor] = t
        cursor += t.slot_cost
    v = AllocationVector.from_units(16, placements)
    assert sorted(v.heads()) == sorted(placements.items())
