"""run_many's vector routing: content-hash grouping and lane dispatch.

``run_many`` groups deduplicated jobs by program *content hash* before
dispatch — the same identity the ResultCache keys encode — and routes any
group with two or more vector-eligible jobs through the lock-step lane
engine.  Everything else (ineligible factories, singleton lanes, or the
``REPRO_VECTOR_DISABLE`` kill switch) takes the per-job scalar path.
Either way the caller sees identical results in submission order.
"""

import copy

from repro.core.params import ProcessorParams
from repro.evaluation.batch import (
    SimJob,
    _group_by_program,
    _vector_partition,
    run_many,
)
from repro.telemetry.batch import BatchTelemetry
from repro.workloads.kernels import checksum, dot_product

_PARAMS = ProcessorParams(window_size=10, reconfig_latency=6)


def _sweep_jobs(program, lanes=4):
    return [
        SimJob(
            "steering", program,
            ProcessorParams(window_size=10, reconfig_latency=4 + i),
        )
        for i in range(lanes)
    ]


def _unique(jobs):
    return [(f"k{i}", job) for i, job in enumerate(jobs)]


# --------------------------------------------------- content-hash grouping
def test_equal_content_programs_share_one_group():
    """Distinct Program objects with identical content collapse into one
    group, rebound to one canonical instance."""
    program = dot_product(n=16).program
    clone = copy.deepcopy(program)
    jobs = _sweep_jobs(program, lanes=2) + _sweep_jobs(clone, lanes=2)
    programs, groups = _group_by_program(_unique(jobs))
    assert len(groups) == 1
    (pkey, pairs), = groups.items()
    canonical = programs[pkey]
    assert all(job.program is canonical for _, job in pairs)


def test_distinct_programs_stay_separate():
    a, b = dot_product(n=16).program, checksum(iterations=5).program
    _, groups = _group_by_program(_unique(_sweep_jobs(a) + _sweep_jobs(b)))
    assert len(groups) == 2


# ------------------------------------------------------- vector partition
def test_partition_batches_eligible_pairs():
    program = dot_product(n=16).program
    jobs = _sweep_jobs(program, lanes=3) + [
        SimJob("reference", program, kwargs={"max_instructions": 1000})
    ]
    _, groups = _group_by_program(_unique(jobs))
    batches, singles = _vector_partition(groups)
    assert [len(b) for b in batches] == [3]
    assert [job.factory for _, job in singles] == ["reference"]


def test_partition_keeps_singleton_lanes_scalar():
    """One eligible job per program is not worth a lane batch."""
    jobs = [
        SimJob("steering", dot_product(n=16).program, _PARAMS),
        SimJob("steering", checksum(iterations=5).program, _PARAMS),
    ]
    _, groups = _group_by_program(_unique(jobs))
    batches, singles = _vector_partition(groups)
    assert batches == []
    assert len(singles) == 2


def test_disable_flag_forces_scalar(monkeypatch):
    monkeypatch.setenv("REPRO_VECTOR_DISABLE", "1")
    _, groups = _group_by_program(
        _unique(_sweep_jobs(dot_product(n=16).program))
    )
    batches, singles = _vector_partition(groups)
    assert batches == []
    assert len(singles) == 4


# ----------------------------------------------------- end-to-end routing
def test_run_many_vector_matches_scalar_path(monkeypatch):
    program = checksum(iterations=10).program
    jobs = _sweep_jobs(program, lanes=4)
    vectored = run_many(jobs)
    monkeypatch.setenv("REPRO_VECTOR_DISABLE", "1")
    scalar = run_many(jobs)
    assert [v.to_dict() for v in vectored] == [s.to_dict() for s in scalar]


def test_run_many_parallel_ships_vector_batches():
    program = checksum(iterations=10).program
    jobs = _sweep_jobs(program, lanes=4) + [
        SimJob("reference", program, kwargs={"max_instructions": 10_000})
    ]
    sequential = run_many(jobs)
    parallel = run_many(jobs, workers=2)
    for s, p in zip(sequential[:4], parallel[:4]):
        assert s.to_dict() == p.to_dict()
    assert parallel[4].executed == sequential[4].executed


def test_lane_dispatch_telemetry():
    program = checksum(iterations=10).program
    jobs = _sweep_jobs(program, lanes=3) + [
        SimJob("reference", program, kwargs={"max_instructions": 10_000})
    ]
    telemetry = BatchTelemetry()
    run_many(jobs, telemetry=telemetry)
    assert telemetry.lane_dispatch.labels("vector").value == 3
    assert telemetry.lane_dispatch.labels("scalar").value == 1
    assert telemetry.lanes_per_batch.count == 1
    assert telemetry.lanes_per_batch.sum == 3
    assert telemetry.lane_retire.count == 3
