"""Tests for the table/figure regeneration artifacts."""

import pytest

from repro.evaluation.artifacts import (
    figure1_inventory,
    figure2_selection_demo,
    figure3_cem_study,
    figure456_wakeup_example,
    figure7_availability_check,
    table1,
    table2,
)


class TestTable1:
    def test_contains_all_configurations(self):
        text = table1()
        for name in ("FFUs", "integer", "memory", "floating"):
            assert name in text

    def test_slot_budget_shown(self):
        # every steering config fills exactly 8 slots
        for line in table1().splitlines()[2:]:
            assert line.rstrip().endswith("8")


class TestTable2:
    def test_all_encodings_listed(self):
        text = table2()
        for encoding in ("000", "001", "010", "011", "100", "101", "111"):
            assert encoding in text
        assert "EMPTY" in text and "SPAN" in text


class TestFigure1:
    def test_inventory_lists_modules(self):
        text = figure1_inventory()
        for module in ("trace cache", "wake-up array", "reconfigurable slots"):
            assert module in text


class TestFigure2:
    def test_each_queue_selects_its_config(self):
        text = figure2_selection_demo()
        lines = [l for l in text.splitlines() if l and not l.startswith(("Figure", "queue", "-"))]
        assert len(lines) == 3
        assert "integer" in lines[0]
        assert "memory" in lines[1]
        assert "floating" in lines[2]


class TestFigure3:
    @pytest.fixture(scope="class")
    def study(self):
        return figure3_cem_study(samples=400, seed=1)

    def test_term_error_bounded_by_one(self, study):
        """The shifter divides by a power of two <= available, so the
        per-term error never exceeds 1 instruction-per-unit."""
        assert study.max_term_error <= 1.0

    def test_mean_error_small(self, study):
        assert study.mean_term_error < 0.5

    def test_selection_agreement_high(self, study):
        """The cheap circuit picks the exact-division winner most of the
        time — the justification for the approximation."""
        assert study.selection_agreement > 0.75

    def test_tables_render(self, study):
        assert "Figure 3(c)" in study.shift_table
        assert "approx (exact)" in study.table


class TestFigures456:
    @pytest.fixture(scope="class")
    def text(self):
        return figure456_wakeup_example()

    def test_dependency_graph_matches_paper(self, text):
        assert "Entry 3 (Add) <- Shift, Sub" in text
        assert "Entry 4 (Mul) <- Sub" in text
        assert "Entry 6 (FPMul) <- Load" in text
        assert "Entry 7 (FPAdd) <- FPMul" in text

    def test_load_entry_independent(self, text):
        # Entry 5 (Load) has no dependence arrow
        for line in text.splitlines():
            if "(Load)" in line and "Entry 5" in line:
                assert "<-" not in line

    def test_first_wave_is_independent_entries(self, text):
        assert "request=['Shift', 'Sub', 'Load']" in text

    def test_example_drains_completely(self, text):
        assert "'FPAdd'" in text.split("retire=")[-1] or "FPAdd" in text

    def test_array_rendered(self, text):
        assert "Figure 5: wake-up array contents" in text
        assert "(FPMul) E6" in text


class TestFigure7:
    def test_random_check_passes_and_reports(self):
        text = figure7_availability_check(samples=100, seed=2)
        assert "all agree" in text
        assert "available(t) per type" in text

    def test_live_fabric_demo_shows_span(self):
        text = figure7_availability_check(samples=10)
        assert "SPAN" in text
        assert "FFU" in text
