"""Scalar/vector engine equivalence: the ISSUE 6 acceptance gate.

The lock-step lane engine must be a pure performance transformation: for
every vector-eligible job, :func:`run_vector_batch` returns the *same*
``SimulationResult`` — compared bit-for-bit through ``to_dict()`` — that
the scalar engine's factory produces.  These tests pin that across the
full ``policy_catalogue()`` x a small workload grid, heterogeneous
batches, and the lane-masking edge cases (single lane, ragged finish
times, a lane cut off mid-flight, a batch where no lane ever halts).
"""

import pytest

from repro.core.baselines import policy_catalogue
from repro.core.params import ProcessorParams
from repro.errors import SimulationError
from repro.evaluation.batch import SimJob, execute_job
from repro.evaluation.vector import (
    VECTOR_FACTORIES,
    run_vector_batch,
    vector_eligible,
)
from repro.fabric.configuration import PREDEFINED_CONFIGS
from repro.isa.assembler import assemble
from repro.workloads.kernels import checksum, dot_product

_PARAMS = ProcessorParams(window_size=12, reconfig_latency=6)

#: a program that never reaches ``halt`` — every lane runs to its budget.
_SPIN = """
main:   addi x1, x1, 1
        j    main
"""


def _catalogue_jobs(program, params=_PARAMS, max_cycles=200_000):
    """One SimJob per ``policy_catalogue()`` entry (+ exact-metric steering)."""
    jobs = []
    for name in sorted(policy_catalogue()):
        if name.startswith("static-"):
            cfg = next(
                c for c in PREDEFINED_CONFIGS if c.name == name[len("static-"):]
            )
            jobs.append(
                SimJob(
                    "static", program, params, max_cycles,
                    kwargs={"config": cfg}, label=name,
                )
            )
        else:
            jobs.append(SimJob(name, program, params, max_cycles, label=name))
    jobs.append(
        SimJob(
            "steering", program, params, max_cycles,
            kwargs={"use_exact_metric": True}, label="steering-exact",
        )
    )
    return jobs


def _assert_batch_matches_scalar(jobs, **vector_kwargs):
    vector = run_vector_batch(jobs, **vector_kwargs)
    scalar = [execute_job(job) for job in jobs]
    for job, v, s in zip(jobs, vector, scalar):
        assert v.to_dict() == s.to_dict(), job.label or job.factory


# ------------------------------------------------ catalogue x workload grid
@pytest.mark.parametrize(
    "workload",
    [checksum(iterations=20), dot_product(n=24)],
    ids=["checksum", "dot_product"],
)
def test_catalogue_bit_identical(workload):
    """Every catalogue policy, one heterogeneous batch per workload."""
    jobs = _catalogue_jobs(workload.program)
    assert all(vector_eligible(j.factory, j.params) for j in jobs)
    _assert_batch_matches_scalar(jobs)


def test_crosscheck_mode_agrees():
    """The per-cycle shadow crosscheck passes and changes no results."""
    jobs = _catalogue_jobs(checksum(iterations=5).program)
    _assert_batch_matches_scalar(jobs, crosscheck=True)


def test_mixed_window_sizes_in_one_batch():
    """Lanes with different window geometries share one (padded) bank."""
    program = checksum(iterations=15).program
    jobs = [
        SimJob(
            "steering", program,
            ProcessorParams(window_size=w, reconfig_latency=4 + w),
        )
        for w in (5, 9, 16, 24)
    ]
    _assert_batch_matches_scalar(jobs)


# ------------------------------------------------------- lane-masking edges
def test_single_lane_batch():
    """N=1: the degenerate batch is still exactly the scalar result."""
    jobs = [SimJob("steering", dot_product(n=16).program, _PARAMS)]
    _assert_batch_matches_scalar(jobs)


def test_ragged_finish_times():
    """Lanes retiring at very different cycles never disturb survivors."""
    program = checksum(iterations=20).program
    budgets = [150, 400, 200_000, 1_000, 200_000]
    jobs = [
        SimJob("steering", program, _PARAMS, max_cycles=budget)
        for budget in budgets
    ]
    _assert_batch_matches_scalar(jobs)


def test_lane_cut_off_mid_flight():
    """A budget expiring with instructions in flight masks the lane out
    cleanly; the surviving lanes run to completion untouched."""
    program = checksum(iterations=20).program
    jobs = [
        SimJob("steering", program, _PARAMS, max_cycles=73),
        SimJob("steering", program, _PARAMS),
        SimJob("ffu-only", program, _PARAMS),
    ]
    vector = run_vector_batch(jobs)
    assert not vector[0].halted and vector[0].cycles == 73
    assert vector[1].halted and vector[2].halted
    scalar = [execute_job(job) for job in jobs]
    for v, s in zip(vector, scalar):
        assert v.to_dict() == s.to_dict()


def test_deadlocked_batch_runs_to_budget():
    """A program that never halts: every lane is cut at its own budget."""
    program = assemble(_SPIN)
    jobs = [
        SimJob("steering", program, _PARAMS, max_cycles=300),
        SimJob("steering", program, _PARAMS, max_cycles=900),
        SimJob("ffu-only", program, _PARAMS, max_cycles=450),
    ]
    vector = run_vector_batch(jobs)
    assert [r.halted for r in vector] == [False, False, False]
    assert [r.cycles for r in vector] == [300, 900, 450]
    scalar = [execute_job(job) for job in jobs]
    for v, s in zip(vector, scalar):
        assert v.to_dict() == s.to_dict()


# ------------------------------------------------------------- guard rails
def test_rejects_ineligible_factory():
    program = dot_product(n=16).program
    assert "reference" not in VECTOR_FACTORIES
    jobs = [SimJob("reference", program)]
    with pytest.raises(SimulationError, match="not vector-eligible"):
        run_vector_batch(jobs)


def test_rejects_pipelined_scheduling_params():
    program = dot_product(n=16).program
    params = ProcessorParams(pipelined_scheduling=True)
    assert not vector_eligible("steering", params)
    with pytest.raises(SimulationError, match="not vector-eligible"):
        run_vector_batch([SimJob("steering", program, params)])


def test_rejects_nonpositive_budget():
    job = SimJob("steering", dot_product(n=16).program, _PARAMS)
    job.max_cycles = 0
    with pytest.raises(SimulationError, match="max_cycles"):
        run_vector_batch([job])


def test_empty_batch_is_empty():
    assert run_vector_batch([]) == []
