"""The parallel batch path must ship each program image once per worker.

PR 1 submitted whole :class:`SimJob` objects to the pool, so a 1000-job
sweep over one workload pickled the program image a thousand times.  The
shipping rework replaces the per-job payload with a content-hash reference
and installs the distinct programs through the pool initializer — these
tests pin both the size of what crosses the process boundary and the
end-to-end equivalence of the parallel path.
"""

import pickle

import pytest

from repro.core.params import ProcessorParams
from repro.errors import ConfigurationError
from repro.evaluation.batch import (
    SimJob,
    _execute_shipped,
    _init_worker,
    _prepare_shipment,
    _WORKER_PROGRAMS,
    execute_job,
    job_key,
    program_key,
    run_many,
)
from repro.workloads.kernels import checksum
from repro.workloads.kernels_extra import bubble_sort

_PARAMS = ProcessorParams(reconfig_latency=8)


def _dedup_distinct_jobs(n):
    """``n`` jobs with distinct content keys over ONE shared program."""
    program = checksum(iterations=20).program
    return [
        SimJob(
            "steering",
            program,
            _PARAMS,
            max_cycles=50_000 + i,  # distinct fingerprint per job
            label=f"sweep/{i}",
        )
        for i in range(n)
    ]


# ------------------------------------------------------------- program keys
def test_program_key_is_content_addressed():
    a = checksum(iterations=20).program
    b = checksum(iterations=20).program
    assert a is not b
    assert program_key(a) == program_key(b)
    assert program_key(a) != program_key(checksum(iterations=21).program)


# --------------------------------------------------------------- payload size
def test_thousand_job_sweep_ships_program_once(monkeypatch):
    jobs = _dedup_distinct_jobs(1000)
    unique = [(job_key(j), j) for j in jobs]
    assert len({k for k, _ in unique}) == 1000  # genuinely dedup-distinct

    programs, shipped = _prepare_shipment(unique)

    # one distinct program for the whole sweep, however many jobs
    assert len(programs) == 1
    assert len(shipped) == 1000

    # call-count assertion: serialising all thousand payloads pickles the
    # Program zero times; the initializer dict pickles it exactly once
    Program = type(jobs[0].program)
    calls = {"n": 0}
    original = Program.__reduce_ex__

    def counting(self, protocol):
        calls["n"] += 1
        return original(self, protocol)

    monkeypatch.setattr(Program, "__reduce_ex__", counting)
    pickle.dumps([payload for _, payload in shipped])
    assert calls["n"] == 0
    pickle.dumps(programs)
    assert calls["n"] == 1

    # and dropping the program makes every payload strictly lighter than a
    # naive full-SimJob submission
    monkeypatch.undo()
    naive_job_bytes = len(pickle.dumps(jobs[0]))
    payload_bytes = max(len(pickle.dumps(p)) for _, p in shipped)
    assert payload_bytes < naive_job_bytes


def test_payload_size_independent_of_program_size():
    small = SimJob("ffu-only", checksum(iterations=5).program, _PARAMS,
                   max_cycles=50_000)
    big = SimJob("ffu-only", bubble_sort(n=64).program, _PARAMS,
                 max_cycles=50_000)
    _, shipped = _prepare_shipment(
        [(job_key(small), small), (job_key(big), big)]
    )
    sizes = [len(pickle.dumps(p)) for _, p in shipped]
    assert abs(sizes[0] - sizes[1]) < 128  # only the 64-char hash differs


# ------------------------------------------------------------- worker round-trip
def test_shipped_execution_matches_execute_job():
    job = SimJob("steering", checksum(iterations=10).program, _PARAMS,
                 max_cycles=50_000)
    programs, shipped = _prepare_shipment([(job_key(job), job)])
    saved = dict(_WORKER_PROGRAMS)
    _WORKER_PROGRAMS.clear()
    try:
        _init_worker(programs)
        _, payload = shipped[0]
        assert _execute_shipped(payload).to_dict() == execute_job(job).to_dict()
    finally:
        _WORKER_PROGRAMS.clear()
        _WORKER_PROGRAMS.update(saved)


def test_unshipped_program_is_an_error():
    job = SimJob("steering", checksum(iterations=10).program, _PARAMS,
                 max_cycles=50_000)
    _, shipped = _prepare_shipment([(job_key(job), job)])
    saved = dict(_WORKER_PROGRAMS)
    _WORKER_PROGRAMS.clear()
    try:
        with pytest.raises(ConfigurationError):
            _execute_shipped(shipped[0][1])
    finally:
        _WORKER_PROGRAMS.update(saved)


# ----------------------------------------------------------------- end to end
def test_parallel_shipping_end_to_end():
    program = checksum(iterations=10).program
    jobs = [
        SimJob("steering", program, _PARAMS, max_cycles=50_000),
        SimJob("ffu-only", program, _PARAMS, max_cycles=50_000),
        SimJob("ffu-only", bubble_sort(n=8).program, _PARAMS,
               max_cycles=50_000),
    ]
    seq = run_many(jobs, workers=0)
    par = run_many(jobs, workers=2)
    for s, p in zip(seq, par):
        assert s.to_dict() == p.to_dict()
