"""Tests for the fixed-width table renderer."""

from repro.evaluation.report import format_value, render_table


class TestFormatValue:
    def test_floats_three_decimals(self):
        assert format_value(1.23456) == "1.235"

    def test_bools_readable(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_ints_and_strings_verbatim(self):
        assert format_value(42) == "42"
        assert format_value("abc") == "abc"


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["a", "bbbb"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        # all rows the same width structure
        assert lines[1].startswith("---")

    def test_title(self):
        assert render_table(["x"], [[1]], title="T").splitlines()[0] == "T"

    def test_empty_rows(self):
        text = render_table(["col"], [])
        assert "col" in text

    def test_wide_cell_stretches_column(self):
        text = render_table(["h"], [["wider-than-header"]])
        header = text.splitlines()[0]
        assert len(header) >= len("wider-than-header")
