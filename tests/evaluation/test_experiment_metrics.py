"""Tests for the experiment summary-metric extractors (run-store feed)."""

from repro.evaluation.experiments import (
    cem_metrics,
    latency_sweep_metrics,
    queue_depth_metrics,
)


def test_latency_sweep_metrics():
    rows = [(1, 2.0, 1.5, 3), (16, 1.8, 1.5, 2)]
    metrics = latency_sweep_metrics(rows)
    assert metrics["steering_ipc_lat1"] == 2.0
    assert metrics["steering_ipc_lat16"] == 1.8
    assert metrics["reconfigs_lat16"] == 2
    assert metrics["ffu_ipc"] == 1.5


def test_queue_depth_metrics():
    assert queue_depth_metrics([(3, 1.1), (7, 1.4)]) == {
        "ipc_depth3": 1.1, "ipc_depth7": 1.4,
    }


def test_cem_metrics():
    rows = [("checksum", 1.0, 1.2), ("saxpy", 2.0, 1.9)]
    metrics = cem_metrics(rows)
    assert metrics["mean_approx_ipc"] == 1.5
    assert abs(metrics["mean_exact_ipc"] - 1.55) < 1e-12
    assert abs(metrics["max_abs_ipc_gap"] - 0.2) < 1e-12
