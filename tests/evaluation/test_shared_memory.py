"""Tests for the shared-memory program registry (spawn-start shipping)."""

import pickle

import pytest

from repro.core.params import ProcessorParams
from repro.evaluation import batch
from repro.evaluation.batch import (
    SimJob,
    _init_worker_shm,
    _shm_pack,
    program_key,
    run_many,
)
from repro.workloads.kernels import checksum

_PARAMS = ProcessorParams(reconfig_latency=8)


def test_shm_pack_and_attach_round_trip():
    program = checksum(iterations=10).program
    registry = {program_key(program): program}
    packed = _shm_pack(registry)
    if packed is None:
        pytest.skip("platform without multiprocessing.shared_memory")
    block, size = packed
    try:
        assert size == len(pickle.dumps(registry))
        saved = dict(batch._WORKER_PROGRAMS)
        batch._WORKER_PROGRAMS.clear()
        try:
            # what every spawned worker does on startup
            _init_worker_shm(block.name, size)
            restored = batch._WORKER_PROGRAMS[program_key(program)]
            assert restored.to_binary() == program.to_binary()
        finally:
            batch._WORKER_PROGRAMS.clear()
            batch._WORKER_PROGRAMS.update(saved)
    finally:
        block.close()
        try:
            block.unlink()
        except FileNotFoundError:
            pass


def test_shm_block_outlives_worker_attach():
    """Attaching + closing in a 'worker' must not unlink the parent's block."""
    from multiprocessing import shared_memory

    registry = {"k": checksum(iterations=5).program}
    block, size = _shm_pack(registry)
    try:
        saved = dict(batch._WORKER_PROGRAMS)
        _init_worker_shm(block.name, size)
        batch._WORKER_PROGRAMS.clear()
        batch._WORKER_PROGRAMS.update(saved)
        # the parent can still attach: the segment was not unlinked
        again = shared_memory.SharedMemory(name=block.name)
        batch._shm_unregister(again)
        again.close()
    finally:
        block.close()
        block.unlink()


def test_run_many_spawn_matches_sequential():
    """The spawn path (shared-memory registry) gives identical results."""
    program = checksum(iterations=15).program
    jobs = [
        SimJob("steering", program, _PARAMS, max_cycles=50_000),
        SimJob("ffu-only", program, _PARAMS, max_cycles=50_000),
    ]
    sequential = run_many(jobs)
    spawned = run_many(jobs, workers=2, mp_context="spawn")
    assert [r.to_dict() for r in spawned] == [r.to_dict() for r in sequential]
