"""Tests for the one-shot report generator."""

import pytest

from repro.evaluation.harness import generate_report


@pytest.fixture(scope="module")
def report():
    notes = []
    text = generate_report(fast=True, progress=notes.append)
    return text, notes


class TestGenerateReport:
    def test_contains_every_artifact_section(self, report):
        text, _ = report
        for section in (
            "Table 1",
            "Table 2",
            "Figure 1",
            "Figure 2",
            "Figure 3",
            "Figures 4-6",
            "Figure 7",
        ):
            assert section in text

    def test_contains_every_experiment_section(self, report):
        text, _ = report
        for section in ("E-IPC", "E-RL", "E-PH", "E-Q", "E-CEM", "E-COST"):
            assert section in text

    def test_progress_callbacks_fire(self, report):
        _, notes = report
        assert any("E-IPC" in n for n in notes)

    def test_report_is_markdown(self, report):
        text, _ = report
        assert text.startswith("# ")
        assert "```" in text
