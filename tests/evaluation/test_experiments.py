"""Tests for the quantitative experiments (shape checks at small scale)."""

import pytest

from repro.core.params import ProcessorParams
from repro.evaluation.experiments import (
    run_cem_ablation,
    run_circuit_cost_report,
    run_ipc_comparison,
    run_orthogonality_study,
    run_phase_adaptation,
    run_queue_depth_sweep,
    run_reconfig_latency_sweep,
)
from repro.workloads.kernels import checksum, memcpy, newton_sqrt
from repro.workloads.phases import phased_program
from repro.workloads.synthetic import FP_MIX, INT_MIX

_SMALL = [
    ("checksum", checksum(iterations=150).program),
    ("memcpy", memcpy(n=60).program),
]


class TestIpcComparison:
    @pytest.fixture(scope="class")
    def comparison(self):
        return run_ipc_comparison(workloads=_SMALL, include_oracle=True)

    def test_all_cells_populated(self, comparison):
        for w in comparison.workloads:
            for p in comparison.policies:
                assert comparison.ipc[w][p] > 0

    def test_steering_beats_ffu_only(self, comparison):
        """The headline shape: steering wins on every matched workload."""
        for w in comparison.workloads:
            assert comparison.ipc[w]["steering"] > comparison.ipc[w]["ffu-only"]

    def test_mismatched_static_config_near_ffu_floor(self, comparison):
        # static-integer provides nothing memcpy needs beyond FFUs
        row = comparison.ipc["memcpy"]
        assert row["static-integer"] == pytest.approx(row["ffu-only"], rel=0.05)

    def test_oracle_at_least_matches_steering_on_average(self, comparison):
        assert comparison.mean_ipc("oracle") >= comparison.mean_ipc("steering") - 0.05

    def test_render(self, comparison):
        text = comparison.render()
        assert "E-IPC" in text and "MEAN" in text

    def test_winner_helper(self, comparison):
        assert comparison.winner("memcpy") in comparison.policies


class TestReconfigLatency:
    def test_ipc_degrades_with_latency(self):
        program = phased_program([(INT_MIX, 20), (FP_MIX, 20)], seed=1)
        rows = run_reconfig_latency_sweep([1, 64, 512], program=program)
        ipcs = [r[1] for r in rows]
        assert ipcs[0] >= ipcs[-1]  # monotone-ish degradation

    def test_ffu_floor_constant(self):
        program = phased_program([(INT_MIX, 15)], seed=1)
        rows = run_reconfig_latency_sweep([1, 128], program=program)
        assert rows[0][2] == pytest.approx(rows[1][2], rel=0.01)


class TestPhaseAdaptation:
    @pytest.fixture(scope="class")
    def adaptation(self):
        return run_phase_adaptation(
            phases=[(INT_MIX, 30), (FP_MIX, 30)],
            params=ProcessorParams(reconfig_latency=4),
        )

    def test_loads_happen(self, adaptation):
        assert adaptation.load_cycles

    def test_steering_settles(self, adaptation):
        assert adaptation.settle_points(window=30)

    def test_selection_trace_covers_run(self, adaptation):
        assert len(adaptation.selections) == adaptation.result.cycles

    def test_kept_fraction_bounded(self, adaptation):
        assert 0.0 <= adaptation.kept_fraction <= 1.0


class TestQueueDepth:
    def test_deeper_queue_never_catastrophic(self):
        program = phased_program([(INT_MIX, 15), (FP_MIX, 15)], seed=2)
        rows = run_queue_depth_sweep([3, 7, 12], program=program)
        ipcs = {d: i for d, i in rows}
        assert ipcs[7] > 0.3
        # a deeper window should not *hurt* much relative to the paper's 7
        assert ipcs[12] >= ipcs[3] * 0.8


class TestCemAblation:
    def test_approx_within_tolerance_of_exact(self):
        rows = run_cem_ablation(workloads=_SMALL)
        for name, approx_ipc, exact_ipc in rows:
            assert approx_ipc == pytest.approx(exact_ipc, rel=0.25), name


class TestOrthogonality:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_orthogonality_study(n_bases=2, max_cycles=60_000)

    def test_study_returns_anchors_plus_random(self, rows):
        names = [r[0] for r in rows]
        assert names[0] == "paper"
        assert names[1] == "degenerate"
        assert len(rows) == 4

    def test_similarity_in_unit_interval(self, rows):
        for _, sim, ipc in rows:
            assert 0.0 <= sim <= 1.0
            assert ipc > 0

    def test_degenerate_basis_is_fully_similar(self, rows):
        by_name = {name: sim for name, sim, _ in rows}
        assert by_name["degenerate"] > 0.999


class TestCircuitCost:
    def test_report_renders(self):
        text = run_circuit_cost_report([7])
        assert "E-COST" in text
        assert "unit_decoders" in text

    def test_multiple_queue_sizes(self):
        text = run_circuit_cost_report([4, 7, 16])
        assert text.count("E-COST") == 3
