"""Tests for result-cache GC (LRU prune) and atomic blob writes."""

import os
import time

import pytest

from repro.evaluation.batch import ResultCache, _atomic_write_bytes


def _fill(cache, n, size=100, t0=1000.0):
    """Seed ``n`` blobs with strictly increasing touch times."""
    for i in range(n):
        cache.put(f"{i:064x}", b"x" * size)
        cache._touch[f"{i:064x}"] = t0 + i
    cache._save_index()


# ------------------------------------------------------------------ pruning
def test_prune_respects_max_bytes_evicting_lru_first(tmp_path):
    cache = ResultCache(tmp_path)
    _fill(cache, 5)
    blob = os.path.getsize(tmp_path / ("0" * 63 + "0.pkl"))
    stats = cache.prune(max_bytes=2 * blob, now=2000.0)
    assert stats["removed"] == 3
    assert stats["kept"] == 2
    assert stats["bytes_kept"] <= 2 * blob
    # the two most recently touched keys survive
    assert cache.has(f"{3:064x}")
    assert cache.has(f"{4:064x}")
    assert not cache.has(f"{0:064x}")


def test_prune_respects_max_age(tmp_path):
    cache = ResultCache(tmp_path)
    _fill(cache, 4, t0=1000.0)  # touches 1000..1003
    stats = cache.prune(max_age=50.0, now=1052.0)
    assert stats["removed"] == 2  # 1000 and 1001 are > 50s old
    assert cache.has(f"{2:064x}") and cache.has(f"{3:064x}")


def test_prune_survives_restart_through_index_file(tmp_path):
    first = ResultCache(tmp_path)
    _fill(first, 3)
    # a new cache object reloads the touch-time index from disk
    second = ResultCache(tmp_path)
    stats = second.prune(max_age=1.5, now=1002.0)
    assert stats["removed"] == 1  # only the oldest touch (1000.0) is too old
    assert not second.has(f"{0:064x}")


def test_get_refreshes_lru_position(tmp_path):
    cache = ResultCache(tmp_path)
    _fill(cache, 3)
    cache._touch[f"{0:064x}"] = 5000.0  # as if key 0 was just read
    blob = os.path.getsize(tmp_path / ("0" * 63 + "0.pkl"))
    cache.prune(max_bytes=blob, now=5001.0)
    assert cache.has(f"{0:064x}")
    assert not cache.has(f"{1:064x}")


def test_prune_removes_stale_tmp_files(tmp_path):
    cache = ResultCache(tmp_path)
    stale = tmp_path / "dead.pkl.123.456.tmp"
    stale.write_bytes(b"partial")
    old = time.time() - 7200
    os.utime(stale, (old, old))
    fresh = tmp_path / "live.pkl.789.012.tmp"
    fresh.write_bytes(b"in flight")
    cache.prune()
    assert not stale.exists()
    assert fresh.exists()  # a concurrent writer's file is left alone


def test_prune_memory_only_cache_is_noop():
    cache = ResultCache()
    cache.put("a" * 64, {"x": 1})
    stats = cache.prune(max_bytes=0)
    assert stats == {"removed": 0, "kept": 1, "bytes_freed": 0, "bytes_kept": 0}
    assert cache.get("a" * 64) == {"x": 1}


def test_stats_counters(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("b" * 64, b"payload")
    cache.get("b" * 64)
    cache.get("c" * 64)
    stats = cache.stats()
    assert stats["memory_entries"] == 1
    assert stats["disk_blobs"] == 1
    assert stats["disk_bytes"] > 0
    assert stats["hits"] == 1 and stats["misses"] == 1


# ------------------------------------------------------------- atomic writes
def test_atomic_write_leaves_no_tmp_on_success(tmp_path):
    target = tmp_path / "blob.pkl"
    _atomic_write_bytes(target, b"hello")
    assert target.read_bytes() == b"hello"
    assert list(tmp_path.glob("*.tmp")) == []


def test_atomic_write_cleans_up_on_failure(tmp_path, monkeypatch):
    target = tmp_path / "blob.pkl"
    target.write_bytes(b"original")

    def failing_replace(src, dst):
        raise OSError("disk detached")

    monkeypatch.setattr(os, "replace", failing_replace)
    with pytest.raises(OSError):
        _atomic_write_bytes(target, b"new payload")
    # the original is untouched and no tmp litter remains
    assert target.read_bytes() == b"original"
    assert list(tmp_path.glob("*.tmp")) == []


def test_put_is_atomic_on_disk(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("d" * 64, {"ipc": 1.0})
    # only the blob and the touch index exist — no tmp files
    names = sorted(p.name for p in tmp_path.iterdir())
    assert names == [ResultCache.INDEX_NAME, "d" * 64 + ".pkl"]
