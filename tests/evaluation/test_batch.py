"""Tests for the parallel batch simulation engine."""

import pytest

from repro.core.params import ProcessorParams
from repro.errors import ConfigurationError
from repro.evaluation.batch import (
    FACTORY_NAMES,
    ResultCache,
    SimJob,
    execute_job,
    job_key,
    run_many,
)
from repro.fabric.configuration import PREDEFINED_CONFIGS
from repro.workloads.kernels import checksum, memcpy, saxpy

_PARAMS = ProcessorParams(reconfig_latency=8)


def _jobs():
    return [
        SimJob("steering", checksum(iterations=20).program, _PARAMS,
               max_cycles=50_000, label="checksum/steering"),
        SimJob("ffu-only", memcpy(n=16).program, _PARAMS,
               max_cycles=50_000, label="memcpy/ffu"),
        SimJob("static", saxpy(n=8).program, _PARAMS, max_cycles=50_000,
               kwargs={"config": PREDEFINED_CONFIGS[0]}, label="saxpy/static"),
    ]


# ------------------------------------------------------------------- job spec
def test_unknown_factory_rejected():
    with pytest.raises(ConfigurationError):
        SimJob("no-such-policy", checksum(iterations=5).program)


def test_factory_registry_names():
    for name in ("steering", "ffu-only", "static", "oracle", "reference"):
        assert name in FACTORY_NAMES


# ---------------------------------------------------------------- content key
def test_job_key_is_content_addressed():
    a, b = checksum(iterations=20).program, checksum(iterations=20).program
    assert a is not b
    j1 = SimJob("steering", a, _PARAMS, max_cycles=50_000, label="one")
    j2 = SimJob("steering", b, _PARAMS, max_cycles=50_000, label="two")
    assert job_key(j1) == job_key(j2)  # labels don't change the key


def test_job_key_discriminates():
    prog = checksum(iterations=20).program
    base = SimJob("steering", prog, _PARAMS, max_cycles=50_000)
    assert job_key(base) != job_key(
        SimJob("ffu-only", prog, _PARAMS, max_cycles=50_000)
    )
    assert job_key(base) != job_key(
        SimJob("steering", prog, _PARAMS, max_cycles=60_000)
    )
    assert job_key(base) != job_key(
        SimJob("steering", prog, ProcessorParams(reconfig_latency=16),
               max_cycles=50_000)
    )
    assert job_key(base) != job_key(
        SimJob("steering", checksum(iterations=21).program, _PARAMS,
               max_cycles=50_000)
    )


# -------------------------------------------------------------------- running
def test_parallel_matches_sequential():
    seq = run_many(_jobs(), workers=0)
    par = run_many(_jobs(), workers=2)
    assert len(seq) == len(par) == 3
    for s, p in zip(seq, par):
        assert s.to_dict() == p.to_dict()


def test_results_keep_submission_order():
    results = run_many(_jobs(), workers=0)
    assert results[0].policy == "steering"
    assert results[1].policy == "ffu-only"
    assert results[2].policy.startswith("static-")


def test_within_batch_dedup():
    job = _jobs()[0]
    twice = [job, _jobs()[0]]
    results = run_many(twice, workers=0)
    assert results[0] is results[1]  # one simulation, shared result


def test_cache_hits_on_resubmission():
    cache = ResultCache()
    first = run_many(_jobs(), workers=0, cache=cache)
    assert cache.hits == 0 and cache.misses == 3
    second = run_many(_jobs(), workers=0, cache=cache)
    assert cache.hits == 3
    for a, b in zip(first, second):
        assert a.to_dict() == b.to_dict()


def test_disk_cache_survives_instances(tmp_path):
    jobs = _jobs()[:1]
    cache = ResultCache(tmp_path)
    run_many(jobs, workers=0, cache=cache)
    fresh = ResultCache(tmp_path)  # new instance, same directory
    again = run_many(_jobs()[:1], workers=0, cache=fresh)
    assert fresh.hits == 1 and fresh.misses == 0
    assert again[0].halted


def test_progress_callback():
    seen = []
    run_many(
        _jobs(),
        workers=0,
        progress=lambda done, total, job: seen.append((done, total, job.label)),
    )
    assert [s[0] for s in seen] == [1, 2, 3]
    assert all(s[1] == 3 for s in seen)
    assert {s[2] for s in seen} == {
        "checksum/steering", "memcpy/ffu", "saxpy/static"
    }


def test_execute_job_reference_factory():
    job = SimJob(
        "reference",
        checksum(iterations=5).program,
        kwargs={"max_instructions": 10_000},
    )
    reference = execute_job(job)
    assert reference.trace  # dynamic unit-type trace is non-empty
