"""Tests for the throughput regression gate in benchmarks/record_throughput.py."""

import importlib.util
import json
import pathlib
import sys

_MODULE_PATH = (
    pathlib.Path(__file__).resolve().parents[2]
    / "benchmarks"
    / "record_throughput.py"
)


def _load():
    spec = importlib.util.spec_from_file_location(
        "record_throughput", _MODULE_PATH
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def _record(steering, ffu):
    return {
        "steering": {"cycles_per_second": steering},
        "ffu_only": {"cycles_per_second": ffu},
    }


def test_no_failure_within_tolerance():
    mod = _load()
    baseline = _record(10_000.0, 15_000.0)
    current = _record(9_000.0, 14_000.0)  # 10% / 6.7% down
    assert mod.compare_to_baseline(current, baseline, 0.20) == []


def test_regression_beyond_tolerance_reported():
    mod = _load()
    baseline = _record(10_000.0, 15_000.0)
    current = _record(7_000.0, 15_000.0)  # steering down 30%
    failures = mod.compare_to_baseline(current, baseline, 0.20)
    assert len(failures) == 1
    assert failures[0].startswith("steering")


def test_improvement_never_fails():
    mod = _load()
    baseline = _record(10_000.0, 15_000.0)
    current = _record(20_000.0, 30_000.0)
    assert mod.compare_to_baseline(current, baseline, 0.20) == []


def test_missing_metrics_tolerated():
    mod = _load()
    assert mod.compare_to_baseline(_record(1.0, 1.0), {}, 0.20) == []
    assert mod.compare_to_baseline({}, _record(1.0, 1.0), 0.20) == []


def _serving(rps):
    return {"serving": {"requests_per_second": rps}}


def test_serving_throughput_gated_like_policies():
    mod = _load()
    baseline = _serving(200.0)
    # 10% down: fine
    assert mod.compare_to_baseline(_serving(180.0), baseline, 0.20) == []
    # 30% down: gated
    failures = mod.compare_to_baseline(_serving(140.0), baseline, 0.20)
    assert len(failures) == 1
    assert failures[0].startswith("serving")
    assert "requests/sec" in failures[0]


def test_serving_metric_missing_tolerated():
    mod = _load()
    # older baselines without a serving column never fail the gate
    assert mod.compare_to_baseline(_serving(100.0), {}, 0.20) == []
    assert mod.compare_to_baseline({}, _serving(100.0), 0.20) == []


def test_missing_baseline_file_exits_zero(tmp_path, monkeypatch, capsys):
    mod = _load()
    monkeypatch.chdir(tmp_path)
    code = mod.main(
        ["-o", "out.json", "--baseline", "does-not-exist.json"]
    )
    assert code == 0
    assert "skipping comparison" in capsys.readouterr().out
    assert json.loads((tmp_path / "out.json").read_text())["steering"]
