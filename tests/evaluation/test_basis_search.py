"""Tests for the §5 steering-basis design search."""

import pytest

from repro.errors import ConfigurationError
from repro.evaluation.basis_search import demand_profile, design_basis, profile_cost
from repro.fabric.configuration import NUM_RFU_SLOTS, PREDEFINED_CONFIGS
from repro.isa.futypes import FU_TYPES, FUType
from repro.workloads.kernels import checksum, memcpy, newton_sqrt

_PROGRAMS = [
    checksum(iterations=40).program,
    memcpy(n=32).program,
    newton_sqrt(iterations=10).program,
]


@pytest.fixture(scope="module")
def profile():
    return demand_profile(_PROGRAMS, window=7, stride=4)


class TestDemandProfile:
    def test_vectors_have_five_entries_summing_to_window(self, profile):
        for v in profile:
            assert len(v) == len(FU_TYPES)
            assert 0 < sum(v) <= 7

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            demand_profile(_PROGRAMS, window=0)
        with pytest.raises(ConfigurationError):
            demand_profile([], window=7)


class TestProfileCost:
    def test_bigger_basis_never_costs_more(self, profile):
        small = [PREDEFINED_CONFIGS[0]]
        full = list(PREDEFINED_CONFIGS)
        assert profile_cost(profile, full) <= profile_cost(profile, small)

    def test_cost_positive(self, profile):
        assert profile_cost(profile, PREDEFINED_CONFIGS) > 0


class TestDesignBasis:
    def test_never_worse_than_paper_basis(self, profile):
        """The paper basis seeds one start, so the search result dominates."""
        basis, cost = design_basis(profile, seed=0)
        assert cost <= profile_cost(profile, PREDEFINED_CONFIGS) + 1e-9

    def test_respects_slot_budget(self, profile):
        basis, _ = design_basis(profile, seed=1)
        for cfg in basis:
            assert cfg.slot_usage <= NUM_RFU_SLOTS

    def test_requested_basis_size(self, profile):
        basis, _ = design_basis(profile, n_configs=2, seed=2)
        assert len(basis) == 2

    def test_deterministic_by_seed(self, profile):
        a, ca = design_basis(profile, seed=3)
        b, cb = design_basis(profile, seed=3)
        assert ca == cb
        assert [x.counts for x in a] == [y.counts for y in b]

    def test_fp_heavy_profile_gets_fp_units(self):
        profile = demand_profile([newton_sqrt(iterations=20).program])
        basis, _ = design_basis(profile, n_configs=2, seed=0)
        assert any(
            cfg.count(FUType.FP_MDU) > 0 or cfg.count(FUType.FP_ALU) > 0
            for cfg in basis
        )

    def test_validation(self, profile):
        with pytest.raises(ConfigurationError):
            design_basis(profile, n_configs=0)


class TestDesignedBasisEndToEnd:
    def test_designed_basis_runs_in_the_processor(self, profile):
        from repro.core.params import ProcessorParams
        from repro.core.policies import PaperSteering
        from repro.core.processor import Processor

        basis, _ = design_basis(profile, seed=0)
        kernel = memcpy(n=32)
        policy = PaperSteering(configs=tuple(basis))
        proc = Processor(
            kernel.program, params=ProcessorParams(reconfig_latency=4), policy=policy
        )
        result = proc.run()
        assert result.halted
        kernel.verify(proc.dmem)
