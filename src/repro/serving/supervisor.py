"""Pre-fork supervisor: N API worker processes + a simulation pool.

``repro serve --workers N`` runs this instead of the single-process
server.  The parent process owns the listening port and the process
tree; it serves no requests itself:

- **API workers** (``api-0`` … ``api-N-1``) each run the full threaded
  HTTP server from :mod:`repro.serving.app` against their own
  :class:`~repro.serving.store.RunStore` connection (WAL mode makes the
  concurrent writers safe).  Job submissions go into the durable
  ``jobs`` table via :class:`~repro.serving.jobs.StoreJobQueue`.
- **Simulation pool workers** (``sim-0`` …) claim queued jobs from that
  table (atomic ``queued -> running`` update, so a job runs exactly
  once no matter which API worker accepted it) and execute them through
  the cached batch engine.

Socket strategy — two tiers:

``SO_REUSEPORT`` (Linux, modern BSDs)
    The parent binds the address once (never listens) purely to resolve
    ``port 0`` and keep the port reserved across worker respawns; every
    API worker then binds its *own* listening socket with
    ``SO_REUSEPORT`` and the kernel load-balances incoming connections
    across the per-worker accept queues.
inherited FD (fallback)
    The parent binds **and listens** a single socket; forked workers
    ``accept()`` on the shared inherited FD.  Works everywhere fork
    does, at the cost of a shared accept queue.

Lifecycle: ``SIGTERM``/``SIGINT`` to the parent triggers graceful
shutdown — workers get ``SIGTERM``, finish in-flight requests/jobs
(``server.shutdown()`` waits for the request loop; the sim loop checks
its stop flag between jobs), then the parent reaps everything.  A
worker that *crashes* is respawned with exponential backoff
(``respawn_base * 2**(crashes-1)``, capped), and its published metrics
snapshot is dropped so ``/metrics`` never reports a dead worker.

Workers are forked (``multiprocessing`` fork context): cheap, and the
listening socket plus configuration travel by inheritance — nothing is
pickled.  Forked children never reuse the parent's SQLite connections;
the store re-opens per-process (see ``RunStore._connection``).
"""

from __future__ import annotations

import signal
import socket
import threading
import time

from repro.evaluation.batch import ResultCache
from repro.serving.app import ServingApp, make_server
from repro.serving.jobs import StoreJobQueue
from repro.serving.store import RunStore
from repro.telemetry import EventLog, MetricsRegistry, events_path_for

__all__ = ["Supervisor", "serve_forked"]

#: a worker alive this long is "healthy" — its crash backoff resets.
HEALTHY_SECONDS = 5.0

#: every worker republishes its metrics snapshot at least this often,
#: even when idle, so ``RunStore.worker_metrics`` can age out snapshots
#: whose worker died (the /metrics ghost-entry fix).
HEARTBEAT_SECONDS = 2.0


def _reuseport_available() -> bool:
    return hasattr(socket, "SO_REUSEPORT")


def _bound_socket(host: str, port: int, reuseport: bool, listen: bool):
    """One bound TCP socket; optionally in the REUSEPORT group/listening."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if reuseport:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
        if listen:
            sock.listen(128)
    except BaseException:
        sock.close()
        raise
    return sock


# --------------------------------------------------------- worker mains
def _api_worker_main(
    name: str,
    host: str,
    port: int,
    shared_sock,
    reuseport: bool,
    store_path: str,
    cache_dir: str | None,
    queue_capacity: int,
    local_drain: bool,
    verbose: bool,
) -> None:
    """Entry point of one forked API worker process."""
    # the parent decides when we stop; a terminal Ctrl-C signals it, not us
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    store = RunStore(store_path)
    cache = ResultCache(cache_dir) if cache_dir is not None else ResultCache()
    registry = MetricsRegistry()
    events = EventLog(name, path=events_path_for(store_path), echo=verbose)
    jobs = StoreJobQueue(
        store, cache=cache, capacity=queue_capacity,
        registry=registry, owner=name, events=events,
    )
    if local_drain:  # no sim pool: this worker also executes what it accepts
        jobs.start()

    def access_log(record: dict) -> None:
        events.emit("http_request", worker=name, **record)

    app = ServingApp(
        store, cache=cache, jobs=jobs, registry=registry,
        access_log=access_log, worker_name=name, events=events,
    )
    if reuseport:
        sock = _bound_socket(host, port, reuseport=True, listen=True)
    else:
        sock = shared_sock
    server = make_server(app, host, port, sock=sock)

    def _graceful(signum, frame):
        # shutdown() blocks until the serve loop exits; never call it
        # from the loop's own thread (the signal arrives there)
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _graceful)
    # publish an initial snapshot so /metrics sees this worker immediately,
    # then heartbeat it: a snapshot that stops refreshing marks this worker
    # dead and the store's freshness cutoff drops it from /metrics.
    store.publish_worker_metrics(name, registry.snapshot())
    # repro: allow[CON003] -- one Event per forked worker-process lifetime
    hb_stop = threading.Event()

    def _heartbeat() -> None:
        while not hb_stop.wait(HEARTBEAT_SECONDS):
            store.publish_worker_metrics(name, registry.snapshot())

    hb = threading.Thread(target=_heartbeat, daemon=True, name=f"{name}-hb")
    hb.start()
    events.emit("worker_started", worker=name, kind="api")
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        hb_stop.set()
        hb.join(1.0)
        if reuseport:
            server.server_close()
        jobs.stop()
        store.clear_worker_metrics(name)
        events.emit("worker_stopped", worker=name, kind="api")
        events.close()
        store.close()


def _sim_worker_main(
    name: str,
    store_path: str,
    cache_dir: str | None,
    queue_capacity: int,
) -> None:
    """Entry point of one forked simulation pool worker process."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    store = RunStore(store_path)
    cache = ResultCache(cache_dir) if cache_dir is not None else ResultCache()
    registry = MetricsRegistry()
    events = EventLog(name, path=events_path_for(store_path))
    jobs = StoreJobQueue(
        store, cache=cache, capacity=queue_capacity,
        registry=registry, owner=name, events=events,
    )

    def _graceful(signum, frame):
        jobs.stop(timeout=0)

    signal.signal(signal.SIGTERM, _graceful)
    store.publish_worker_metrics(name, registry.snapshot())
    events.emit("worker_started", worker=name, kind="sim")
    last_pub = time.monotonic()
    try:
        while not jobs.stopped():
            if jobs.claim_and_run_one():
                # republish after each executed job so scrapes through any
                # API worker reflect this worker's queue-wait/run histograms
                store.publish_worker_metrics(name, registry.snapshot())
                last_pub = time.monotonic()
            else:
                # idle heartbeat: keep the snapshot fresh so the store's
                # age cutoff doesn't mistake an idle worker for a dead one
                if time.monotonic() - last_pub >= HEARTBEAT_SECONDS:
                    store.publish_worker_metrics(name, registry.snapshot())
                    last_pub = time.monotonic()
                time.sleep(jobs.poll_interval)
    finally:
        store.clear_worker_metrics(name)
        events.emit("worker_stopped", worker=name, kind="sim")
        events.close()
        store.close()


class Supervisor:
    """Owns the listening port and the worker process tree."""

    def __init__(
        self,
        store_path: str,
        cache_dir: str | None = None,
        host: str = "127.0.0.1",
        port: int = 8734,
        workers: int = 2,
        sim_pool: int = 1,
        queue_capacity: int = 8,
        cache_max_bytes: int | None = None,
        cache_max_age: float | None = None,
        retention_max_runs: int | None = None,
        retention_max_age_days: float | None = None,
        verbose: bool = False,
        log=None,
        respawn_base: float = 0.5,
        respawn_cap: float = 30.0,
    ) -> None:
        if workers < 1:
            raise ValueError("need at least one API worker")
        self.store_path = store_path
        self.cache_dir = cache_dir
        self.host = host
        self.port = port
        self.workers = workers
        self.sim_pool = max(0, sim_pool)
        self.queue_capacity = queue_capacity
        self.cache_max_bytes = cache_max_bytes
        self.cache_max_age = cache_max_age
        self.retention_max_runs = retention_max_runs
        self.retention_max_age_days = retention_max_age_days
        self.verbose = verbose
        self.log = log
        self.respawn_base = respawn_base
        self.respawn_cap = respawn_cap
        self.reuseport = _reuseport_available()
        self._sock = None
        self._store: RunStore | None = None
        self._children: dict[str, object] = {}
        self._spawned_at: dict[str, float] = {}
        self._crashes: dict[str, int] = {}
        self._stopping = threading.Event()

    def _note(self, msg: str) -> None:
        if self.log is not None:
            self.log(msg)

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Bind the port, prep the store/cache, spawn every worker."""
        # parent-side store: retention, stale-metrics GC, crash cleanup.
        self._store = RunStore(self.store_path)
        if (
            self.retention_max_runs is not None
            or self.retention_max_age_days is not None
        ):
            trimmed = self._store.prune(
                max_runs=self.retention_max_runs,
                max_age_days=self.retention_max_age_days,
            )
            self._note(
                f"store retention: removed {trimmed['removed_runs']} runs, "
                f"{trimmed['removed_jobs']} settled jobs, "
                f"kept {trimmed['kept_runs']} runs"
            )
        self._store.clear_worker_metrics()  # drop any previous incarnation
        cache = (
            ResultCache(self.cache_dir)
            if self.cache_dir is not None
            else ResultCache()
        )
        if cache.directory is not None:
            pruned = cache.prune(
                max_bytes=self.cache_max_bytes, max_age=self.cache_max_age
            )
            self._note(
                f"cache GC: removed {pruned['removed']} blobs "
                f"({pruned['bytes_freed']} bytes), kept {pruned['kept']}"
            )
        # REUSEPORT: reserve the port without listening (workers listen);
        # fallback: this IS the shared accept socket the workers inherit.
        self._sock = _bound_socket(
            self.host, self.port, reuseport=self.reuseport,
            listen=not self.reuseport,
        )
        self.port = self._sock.getsockname()[1]
        mode = "SO_REUSEPORT" if self.reuseport else "inherited FD"
        self._note(
            f"supervisor: {self.workers} api + {self.sim_pool} sim workers "
            f"on http://{self.host}:{self.port}/ ({mode})"
        )
        for i in range(self.workers):
            self._spawn(f"api-{i}")
        for i in range(self.sim_pool):
            self._spawn(f"sim-{i}")

    def _spawn(self, name: str) -> None:
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        if name.startswith("api-"):
            proc = ctx.Process(
                target=_api_worker_main,
                name=name,
                args=(
                    name, self.host, self.port, self._sock, self.reuseport,
                    self.store_path, self.cache_dir, self.queue_capacity,
                    self.sim_pool == 0, self.verbose,
                ),
            )
        else:
            proc = ctx.Process(
                target=_sim_worker_main,
                name=name,
                args=(
                    name, self.store_path, self.cache_dir,
                    self.queue_capacity,
                ),
            )
        proc.start()
        self._children[name] = proc
        self._spawned_at[name] = time.monotonic()

    def run(self) -> int:
        """Supervise until signalled: reap crashes, respawn with backoff."""
        if not self._children:
            self.start()

        def _request_stop(signum, frame):
            self._stopping.set()

        # installable only from the main thread; tests drive run() from a
        # helper thread and stop via the event directly
        if threading.current_thread() is threading.main_thread():
            signal.signal(signal.SIGTERM, _request_stop)
            signal.signal(signal.SIGINT, _request_stop)
        try:
            while not self._stopping.is_set():
                self._stopping.wait(0.2)
                if self._stopping.is_set():
                    break
                for name, proc in list(self._children.items()):
                    if proc.is_alive():
                        if (
                            self._crashes.get(name)
                            and time.monotonic() - self._spawned_at[name]
                            > HEALTHY_SECONDS
                        ):
                            self._crashes[name] = 0  # lived long enough
                        continue
                    proc.join()
                    crashes = self._crashes.get(name, 0) + 1
                    self._crashes[name] = crashes
                    delay = min(
                        self.respawn_base * (2 ** (crashes - 1)),
                        self.respawn_cap,
                    )
                    self._note(
                        f"worker {name} exited (code {proc.exitcode}); "
                        f"respawn #{crashes} in {delay:.1f}s"
                    )
                    # a crashed worker never cleaned up its snapshot
                    self._store.clear_worker_metrics(name)
                    if self._stopping.wait(delay):
                        break
                    self._spawn(name)
        finally:
            self.stop()
        return 0

    def stop(self, timeout: float = 10.0) -> None:
        """SIGTERM every worker, reap, SIGKILL stragglers, release port."""
        self._stopping.set()
        for proc in self._children.values():
            if proc.is_alive():
                proc.terminate()  # SIGTERM -> graceful path in the worker
        deadline = time.monotonic() + timeout
        for name, proc in self._children.items():
            proc.join(max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                self._note(f"worker {name} ignored SIGTERM; killing")
                proc.kill()
                proc.join(1.0)
        self._children.clear()
        if self._sock is not None:
            self._sock.close()
            self._sock = None
        if self._store is not None:
            self._store.clear_worker_metrics()
            self._store.close()
            self._store = None


def serve_forked(
    store_path: str,
    cache_dir: str | None = None,
    host: str = "127.0.0.1",
    port: int = 8734,
    workers: int = 2,
    sim_pool: int = 1,
    queue_capacity: int = 8,
    cache_max_bytes: int | None = None,
    cache_max_age: float | None = None,
    retention_max_runs: int | None = None,
    retention_max_age_days: float | None = None,
    verbose: bool = False,
    log=None,
) -> int:
    """CLI entry: build a :class:`Supervisor`, run until signalled."""
    sup = Supervisor(
        store_path,
        cache_dir=cache_dir,
        host=host,
        port=port,
        workers=workers,
        sim_pool=sim_pool,
        queue_capacity=queue_capacity,
        cache_max_bytes=cache_max_bytes,
        cache_max_age=cache_max_age,
        retention_max_runs=retention_max_runs,
        retention_max_age_days=retention_max_age_days,
        verbose=verbose,
        log=log,
    )
    sup.start()
    return sup.run()
