"""Persistent run store: a SQLite index over experiment results.

The serving subsystem splits result storage in two.  Heavyweight
artifacts (pickled :class:`~repro.core.stats.SimulationResult` payloads)
stay in the content-addressed ``.report-cache`` blobs managed by
:class:`~repro.evaluation.batch.ResultCache`; this module keeps the
*index* — one row per run with its experiment name, content hash, git
revision, timestamp and a flat JSON metrics document — in a single
SQLite file the HTTP API can query cheaply and CI can upload whole as an
artifact.

Runs are identified by a deterministic 16-hex id derived from
``(experiment, config_hash, git_rev)``: re-registering the same question
at the same revision upserts the row instead of growing the table, while
a new revision (or a changed question) starts a new trend point.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import subprocess
import threading
import time
from pathlib import Path
from typing import Any

from repro.errors import ConfigurationError

__all__ = [
    "RunStore",
    "SCHEMA_VERSION",
    "metrics_of",
    "current_git_rev",
]

#: current on-disk schema version (``PRAGMA user_version``).
SCHEMA_VERSION = 2

#: full version-2 schema, applied to fresh databases.
_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id      TEXT PRIMARY KEY,
    experiment  TEXT NOT NULL,
    config_hash TEXT NOT NULL,
    created     REAL NOT NULL,
    metrics     TEXT NOT NULL,
    label       TEXT NOT NULL DEFAULT '',
    git_rev     TEXT NOT NULL DEFAULT ''
);
CREATE INDEX IF NOT EXISTS runs_experiment ON runs (experiment, created);
"""

_git_rev_cache: str | None = None
_git_rev_lock = threading.Lock()


def current_git_rev() -> str:
    """Short git revision of the working tree ('' outside a checkout)."""
    global _git_rev_cache
    with _git_rev_lock:
        if _git_rev_cache is None:
            try:
                _git_rev_cache = subprocess.run(
                    ["git", "rev-parse", "--short", "HEAD"],
                    capture_output=True,
                    text=True,
                    timeout=5,
                    check=True,
                ).stdout.strip()
            except (OSError, subprocess.SubprocessError):
                _git_rev_cache = ""
        return _git_rev_cache


def metrics_of(result: Any) -> dict[str, float]:
    """Flatten any batch-engine result into numeric scalar metrics.

    Handles :class:`SimulationResult` (via ``to_dict``), the
    ``steering-traced`` factory's dict payload, and plain dicts; anything
    else (e.g. a functional reference trace) yields no metrics — the run
    row still records that the simulation happened.
    """
    if isinstance(result, dict) and "result" in result:
        metrics = metrics_of(result["result"])
        if "kept_fraction" in result:
            metrics["kept_fraction"] = float(result["kept_fraction"])
        if "load_cycles" in result:
            metrics["load_count"] = len(result["load_cycles"])
        return metrics
    to_dict = getattr(result, "to_dict", None)
    raw = to_dict() if callable(to_dict) else result
    if not isinstance(raw, dict):
        return {}
    out: dict[str, float] = {}
    for name, value in raw.items():
        if isinstance(value, bool):
            out[name] = int(value)
        elif isinstance(value, (int, float)):
            out[name] = value
    return out


class RunStore:
    """SQLite-backed index of experiment runs.

    Thread-safe (one connection guarded by a lock — the serving API is a
    threaded server).  ``path`` may be ``":memory:"`` for tests.
    """

    def __init__(self, path: str | Path = ":memory:") -> None:
        self.path = str(path)
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        self._lock = threading.Lock()
        with self._lock:
            self._migrate()

    # ------------------------------------------------------------- schema
    # repro: allow[CON001] -- only called from __init__, which holds _lock
    def _migrate(self) -> None:
        version = self._conn.execute("PRAGMA user_version").fetchone()[0]
        if version > SCHEMA_VERSION:
            raise ConfigurationError(
                f"run store {self.path} has schema version {version}; "
                f"this build understands up to {SCHEMA_VERSION}"
            )
        if version == 0:
            self._conn.executescript(_SCHEMA)
        elif version == 1:
            # v1 predates the label / git_rev columns and the experiment
            # index; rows keep their data, new columns default to ''.
            self._conn.execute(
                "ALTER TABLE runs ADD COLUMN label TEXT NOT NULL DEFAULT ''"
            )
            self._conn.execute(
                "ALTER TABLE runs ADD COLUMN git_rev TEXT NOT NULL DEFAULT ''"
            )
            self._conn.execute(
                "CREATE INDEX IF NOT EXISTS runs_experiment "
                "ON runs (experiment, created)"
            )
        self._conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")
        self._conn.commit()

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> RunStore:
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------ writing
    def record_run(
        self,
        experiment: str,
        config_hash: str,
        metrics: dict[str, float],
        label: str = "",
        git_rev: str | None = None,
        run_id: str | None = None,
        created: float | None = None,
    ) -> str:
        """Insert or upsert one run; returns its id."""
        git_rev = current_git_rev() if git_rev is None else git_rev
        created = time.time() if created is None else created
        if run_id is None:
            run_id = hashlib.sha256(
                f"{experiment}|{config_hash}|{git_rev}".encode()
            ).hexdigest()[:16]
        with self._lock:
            self._conn.execute(
                "INSERT INTO runs "
                "(run_id, experiment, config_hash, created, metrics, label, git_rev) "
                "VALUES (?, ?, ?, ?, ?, ?, ?) "
                "ON CONFLICT(run_id) DO UPDATE SET "
                "created = excluded.created, metrics = excluded.metrics, "
                "label = excluded.label",
                (
                    run_id,
                    experiment,
                    config_hash,
                    created,
                    json.dumps(metrics, sort_keys=True),
                    label,
                    git_rev,
                ),
            )
            self._conn.commit()
        return run_id

    def record_result(
        self,
        key: str,
        result: Any,
        job: Any | None = None,
        experiment: str | None = None,
    ) -> str:
        """Register one batch-engine result (the ``ResultCache.put`` hook).

        ``key`` is the job's content key (:func:`~repro.evaluation.batch.job_key`);
        the experiment name defaults to ``sim/<factory>`` so individual
        simulations are distinguishable from experiment-level summaries.
        """
        if experiment is None:
            factory = getattr(job, "factory", None)
            experiment = f"sim/{factory}" if factory else "sim"
        label = getattr(job, "label", "") or ""
        return self.record_run(
            experiment, key, metrics_of(result), label=label
        )

    # ------------------------------------------------------------ reading
    @staticmethod
    def _row_to_dict(row: sqlite3.Row) -> dict[str, Any]:
        out = dict(row)
        out["metrics"] = json.loads(out["metrics"])
        return out

    def get_run(self, run_id: str) -> dict[str, Any] | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM runs WHERE run_id = ?", (run_id,)
            ).fetchone()
        return self._row_to_dict(row) if row is not None else None

    def list_runs(
        self,
        experiment: str | None = None,
        limit: int = 100,
        offset: int = 0,
    ) -> list[dict[str, Any]]:
        """Most recent runs first, optionally restricted to one experiment."""
        sql = "SELECT * FROM runs"
        args: list[Any] = []
        if experiment is not None:
            sql += " WHERE experiment = ?"
            args.append(experiment)
        sql += " ORDER BY created DESC, run_id LIMIT ? OFFSET ?"
        args += [max(0, int(limit)), max(0, int(offset))]
        with self._lock:
            rows = self._conn.execute(sql, args).fetchall()
        return [self._row_to_dict(r) for r in rows]

    def experiments(self) -> list[dict[str, Any]]:
        """Distinct experiment names with run counts and recency."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT experiment, COUNT(*) AS runs, MAX(created) AS last_created "
                "FROM runs GROUP BY experiment ORDER BY experiment"
            ).fetchall()
        return [dict(r) for r in rows]

    def count(self) -> int:
        with self._lock:
            return self._conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0]

    # ------------------------------------------------------------- diffing
    def diff(self, run_a: str, run_b: str) -> dict[str, Any]:
        """Metric-by-metric comparison of two runs.

        Raises :class:`KeyError` naming the missing id when either run is
        absent (the API layer maps that to a 404).
        """
        a, b = self.get_run(run_a), self.get_run(run_b)
        if a is None:
            raise KeyError(run_a)
        if b is None:
            raise KeyError(run_b)
        metrics: dict[str, dict[str, Any]] = {}
        for name in sorted(set(a["metrics"]) | set(b["metrics"])):
            va, vb = a["metrics"].get(name), b["metrics"].get(name)
            entry: dict[str, Any] = {"a": va, "b": vb}
            if isinstance(va, (int, float)) and isinstance(vb, (int, float)):
                entry["delta"] = vb - va
                if va:
                    entry["ratio"] = vb / va
            metrics[name] = entry
        strip = ("metrics",)
        return {
            "a": {k: v for k, v in a.items() if k not in strip},
            "b": {k: v for k, v in b.items() if k not in strip},
            "metrics": metrics,
        }
