"""Persistent run store: a SQLite index over experiment results.

The serving subsystem splits result storage in two.  Heavyweight
artifacts (pickled :class:`~repro.core.stats.SimulationResult` payloads)
stay in the content-addressed ``.report-cache`` blobs managed by
:class:`~repro.evaluation.batch.ResultCache`; this module keeps the
*index* — one row per run with its experiment name, content hash, git
revision, timestamp and a flat JSON metrics document — in a single
SQLite file the HTTP API can query cheaply and CI can upload whole as an
artifact.

Runs are identified by a deterministic 16-hex id derived from
``(experiment, config_hash, git_rev)``: re-registering the same question
at the same revision upserts the row instead of growing the table, while
a new revision (or a changed question) starts a new trend point.

Concurrency discipline (schema v3)
----------------------------------
File-backed stores run in **WAL** journal mode with a ``busy_timeout``,
so readers never block the writer and a writer in one process waits
(rather than erroring) on a writer in another.  Every thread gets its
own connection (:meth:`RunStore._connection` is keyed on thread *and*
pid, so connections are never reused across ``fork``), reads run in
autocommit on the calling thread's connection, and writes are short
``BEGIN IMMEDIATE`` transactions serialised in-process by one lock and
across processes by SQLite itself.  All database access goes through
the ``_read()`` / ``_write()`` scopes — the CON001 lint rule enforces
exactly that.

Besides the ``runs`` index, v3 adds two coordination tables for the
multi-process server (see :mod:`repro.serving.supervisor`):

``jobs``
    The durable submitted-job queue.  Any API worker enqueues with
    :meth:`RunStore.enqueue_job`; any simulation pool worker drains with
    :meth:`RunStore.claim_job` — an atomic claim-by-update, so a job is
    executed exactly once no matter how many workers poll.
``worker_metrics``
    Per-worker metrics snapshots (JSON), merged by whichever worker
    answers a ``/metrics`` scrape.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import subprocess
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any

from repro.errors import ConfigurationError
from repro.utils.canonical import canonical_dumps

__all__ = [
    "RunStore",
    "SCHEMA_VERSION",
    "metrics_of",
    "current_git_rev",
]

#: numeric encoding of ``SimulationResult.outcome`` for the flat metric
#: documents (strings are dropped by :func:`metrics_of`; the dashboard
#: and API filters need the outcome as a queryable scalar).
OUTCOME_CODES = {"completed": 0, "cutoff": 1, "deadlock": 2}

#: current on-disk schema version (``PRAGMA user_version``).
SCHEMA_VERSION = 4

#: seconds a worker-metrics snapshot stays credible without a heartbeat.
#: Workers republish every ~2s (``supervisor.HEARTBEAT_SECONDS``), so a
#: snapshot older than this belongs to a dead worker and must not be
#: merged into ``/metrics`` (the ghost-worker bug fixed in PR 9).
WORKER_METRICS_MAX_AGE = 15.0

#: milliseconds a connection waits on a cross-process write lock before
#: surfacing ``database is locked`` (WAL keeps these waits rare + short).
BUSY_TIMEOUT_MS = 5_000

#: version-2 core: the runs index.
_RUNS_DDL = (
    """
    CREATE TABLE IF NOT EXISTS runs (
        run_id      TEXT PRIMARY KEY,
        experiment  TEXT NOT NULL,
        config_hash TEXT NOT NULL,
        created     REAL NOT NULL,
        metrics     TEXT NOT NULL,
        label       TEXT NOT NULL DEFAULT '',
        git_rev     TEXT NOT NULL DEFAULT ''
    )
    """,
    "CREATE INDEX IF NOT EXISTS runs_experiment ON runs (experiment, created)",
)

#: version-3 additions: the cross-process job queue + metrics snapshots.
_V3_DDL = (
    """
    CREATE TABLE IF NOT EXISTS jobs (
        job_id    TEXT PRIMARY KEY,
        key       TEXT NOT NULL,
        spec      TEXT NOT NULL,
        state     TEXT NOT NULL DEFAULT 'queued',
        cached    INTEGER NOT NULL DEFAULT 0,
        submitted REAL NOT NULL,
        started   REAL,
        finished  REAL,
        error     TEXT,
        run_id    TEXT,
        owner     TEXT NOT NULL DEFAULT ''
    )
    """,
    "CREATE INDEX IF NOT EXISTS jobs_state ON jobs (state, submitted)",
    """
    CREATE TABLE IF NOT EXISTS worker_metrics (
        worker  TEXT PRIMARY KEY,
        updated REAL NOT NULL,
        payload TEXT NOT NULL
    )
    """,
)

#: version-4 addition: the trace-context correlation id minted at HTTP
#: ingress rides on the job row so any process (and ``repro trace``)
#: can tie queue-wait, claim and simulation back to one request.
_V4_DDL = (
    "ALTER TABLE jobs ADD COLUMN trace_id TEXT NOT NULL DEFAULT ''",
)

_git_rev_cache: str | None = None
_git_rev_lock = threading.Lock()


def current_git_rev() -> str:
    """Short git revision of the working tree ('' outside a checkout)."""
    global _git_rev_cache
    with _git_rev_lock:
        if _git_rev_cache is None:
            try:
                _git_rev_cache = subprocess.run(
                    ["git", "rev-parse", "--short", "HEAD"],
                    capture_output=True,
                    text=True,
                    timeout=5,
                    check=True,
                ).stdout.strip()
            except (OSError, subprocess.SubprocessError):
                _git_rev_cache = ""
        return _git_rev_cache


def metrics_of(result: Any) -> dict[str, float]:
    """Flatten any batch-engine result into numeric scalar metrics.

    Handles :class:`SimulationResult` (via ``to_dict``), the
    ``steering-traced`` factory's dict payload, and plain dicts; anything
    else (e.g. a functional reference trace) yields no metrics — the run
    row still records that the simulation happened.
    """
    if isinstance(result, dict) and "result" in result:
        metrics = metrics_of(result["result"])
        if "kept_fraction" in result:
            metrics["kept_fraction"] = float(result["kept_fraction"])
        if "load_cycles" in result:
            metrics["load_count"] = len(result["load_cycles"])
        return metrics
    to_dict = getattr(result, "to_dict", None)
    raw = to_dict() if callable(to_dict) else result
    if not isinstance(raw, dict):
        return {}
    out: dict[str, float] = {}
    for name, value in raw.items():
        if isinstance(value, bool):
            out[name] = int(value)
        elif isinstance(value, (int, float)):
            out[name] = value
        elif name == "outcome" and value in OUTCOME_CODES:
            out["outcome_code"] = OUTCOME_CODES[value]
    return out


class RunStore:
    """SQLite-backed index of experiment runs (+ the durable job queue).

    Safe for concurrent use from many threads *and* many processes:
    file-backed stores run in WAL mode with one connection per thread,
    lock-free autocommit reads and short serialised write transactions.
    ``path`` may be ``":memory:"`` for tests — memory stores keep a
    single connection and serialise everything on one lock (they cannot
    be shared across processes anyway).
    """

    def __init__(
        self, path: str | Path = ":memory:", busy_timeout_ms: int = BUSY_TIMEOUT_MS
    ) -> None:
        self.path = str(path)
        self.busy_timeout_ms = int(busy_timeout_ms)
        #: memory stores share one connection; file stores get one per thread.
        self._serialized = self.path == ":memory:"
        self._local = threading.local()
        self._lock = threading.Lock()
        self._conns: list[sqlite3.Connection] = []
        self._conns_lock = threading.Lock()
        self._closed = False
        #: journal mode the first connection actually got ("wal" on local
        #: filesystems; "delete" e.g. on NFS, where WAL is unsupported).
        self.journal_mode = "memory" if self._serialized else ""
        self._connection()  # create + migrate eagerly, so errors surface here
        with self._write() as conn:
            self._migrate(conn)

    # -------------------------------------------------- connection scopes
    def _connection(self) -> sqlite3.Connection:
        """This thread's connection, created on first use.

        Keyed on pid as well as thread: a connection carried across
        ``fork`` into a child process would corrupt the database, so the
        child transparently gets a fresh one.
        """
        if self._closed:
            raise ConfigurationError(f"run store {self.path} is closed")
        if self._serialized:
            conn = getattr(self, "_shared_conn", None)
            if conn is None:
                conn = self._connect()
                self._shared_conn = conn
            return conn
        conn = getattr(self._local, "conn", None)
        if conn is None or self._local.pid != os.getpid():
            conn = self._connect()
            self._local.conn = conn
            self._local.pid = os.getpid()
        return conn

    def _connect(self) -> sqlite3.Connection:
        # isolation_level=None -> autocommit; _write() opens explicit
        # short BEGIN IMMEDIATE transactions, reads never hold one.
        conn = sqlite3.connect(
            self.path, check_same_thread=False, isolation_level=None
        )
        conn.row_factory = sqlite3.Row
        if not self._serialized:
            conn.execute(f"PRAGMA busy_timeout = {self.busy_timeout_ms}")
            mode = conn.execute("PRAGMA journal_mode = WAL").fetchone()[0]
            conn.execute("PRAGMA synchronous = NORMAL")
            if not self.journal_mode:
                self.journal_mode = str(mode).lower()
        with self._conns_lock:
            self._conns.append(conn)
        return conn

    @contextmanager
    def _read(self):
        """Autocommit read scope: the calling thread's own connection.

        File stores read lock-free (WAL snapshots isolate them from the
        writer); memory stores fall back to the store lock because all
        threads share one connection.
        """
        conn = self._connection()
        if self._serialized:
            with self._lock:
                yield conn
        else:
            yield conn

    @contextmanager
    def _write(self):
        """Short-transaction write scope.

        One ``BEGIN IMMEDIATE`` … ``COMMIT`` per entry: the in-process
        lock serialises writers sharing this store object, and IMMEDIATE
        acquires the cross-process write lock up front so the whole
        scope either runs or waits — no mid-transaction upgrades, no
        deadlocks between processes.
        """
        conn = self._connection()
        with self._lock:
            conn.execute("BEGIN IMMEDIATE")
            try:
                yield conn
            except BaseException:
                conn.execute("ROLLBACK")
                raise
            conn.execute("COMMIT")

    # ------------------------------------------------------------- schema
    # repro: allow[CON001] -- runs inside the _write() scope passed in by
    # __init__; the conn parameter is that scope's connection
    def _migrate(self, conn: sqlite3.Connection) -> None:
        version = conn.execute("PRAGMA user_version").fetchone()[0]
        if version > SCHEMA_VERSION:
            raise ConfigurationError(
                f"run store {self.path} has schema version {version}; "
                f"this build understands up to {SCHEMA_VERSION}"
            )
        if version == 0:
            for ddl in _RUNS_DDL + _V3_DDL + _V4_DDL:
                conn.execute(ddl)
        else:
            if version == 1:
                # v1 predates the label / git_rev columns and the
                # experiment index; rows keep their data, new columns
                # default to ''.
                conn.execute(
                    "ALTER TABLE runs ADD COLUMN label TEXT NOT NULL DEFAULT ''"
                )
                conn.execute(
                    "ALTER TABLE runs ADD COLUMN git_rev TEXT NOT NULL DEFAULT ''"
                )
                conn.execute(
                    "CREATE INDEX IF NOT EXISTS runs_experiment "
                    "ON runs (experiment, created)"
                )
            if version <= 2:
                # v2 -> v3: the cross-process job queue and per-worker
                # metrics snapshots; the runs table is untouched.
                for ddl in _V3_DDL:
                    conn.execute(ddl)
            if version <= 3:
                # v3 -> v4: trace-context id on the jobs queue; existing
                # rows keep their data with an empty trace id.
                for ddl in _V4_DDL:
                    conn.execute(ddl)
        conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")

    def close(self) -> None:
        with self._conns_lock:
            conns, self._conns = self._conns, []
            self._closed = True
        for conn in conns:
            try:
                conn.close()
            except sqlite3.Error:
                pass

    def __enter__(self) -> RunStore:
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------ writing
    def record_run(
        self,
        experiment: str,
        config_hash: str,
        metrics: dict[str, float],
        label: str = "",
        git_rev: str | None = None,
        run_id: str | None = None,
        created: float | None = None,
    ) -> str:
        """Insert or upsert one run; returns its id."""
        git_rev = current_git_rev() if git_rev is None else git_rev
        created = time.time() if created is None else created
        if run_id is None:
            run_id = hashlib.sha256(
                f"{experiment}|{config_hash}|{git_rev}".encode()
            ).hexdigest()[:16]
        with self._write() as conn:
            conn.execute(
                "INSERT INTO runs "
                "(run_id, experiment, config_hash, created, metrics, label, git_rev) "
                "VALUES (?, ?, ?, ?, ?, ?, ?) "
                "ON CONFLICT(run_id) DO UPDATE SET "
                "created = excluded.created, metrics = excluded.metrics, "
                "label = excluded.label",
                (
                    run_id,
                    experiment,
                    config_hash,
                    created,
                    canonical_dumps(metrics),
                    label,
                    git_rev,
                ),
            )
        return run_id

    def record_result(
        self,
        key: str,
        result: Any,
        job: Any | None = None,
        experiment: str | None = None,
    ) -> str:
        """Register one batch-engine result (the ``ResultCache.put`` hook).

        ``key`` is the job's content key (:func:`~repro.evaluation.batch.job_key`);
        the experiment name defaults to ``sim/<factory>`` so individual
        simulations are distinguishable from experiment-level summaries.
        """
        if experiment is None:
            factory = getattr(job, "factory", None)
            experiment = f"sim/{factory}" if factory else "sim"
        label = getattr(job, "label", "") or ""
        return self.record_run(
            experiment, key, metrics_of(result), label=label
        )

    # ---------------------------------------------------------- retention
    def prune(
        self,
        max_runs: int | None = None,
        max_age_days: float | None = None,
        now: float | None = None,
    ) -> dict[str, int]:
        """Run-retention GC, mirroring the blob cache's ``prune``.

        ``max_age_days`` drops runs recorded longer ago than that (and
        settled jobs that finished before the same cutoff); ``max_runs``
        then keeps only the most recent N runs.  Queued and running jobs
        are never pruned.  Returns removal/keep counts.
        """
        removed_runs = removed_jobs = 0
        with self._write() as conn:
            if max_age_days is not None:
                cutoff = (time.time() if now is None else now) - max_age_days * 86_400
                cur = conn.execute(
                    "DELETE FROM runs WHERE created < ?", (cutoff,)
                )
                removed_runs += cur.rowcount
                cur = conn.execute(
                    "DELETE FROM jobs WHERE state IN ('done', 'failed') "
                    "AND finished IS NOT NULL AND finished < ?",
                    (cutoff,),
                )
                removed_jobs += cur.rowcount
            if max_runs is not None:
                cur = conn.execute(
                    "DELETE FROM runs WHERE run_id NOT IN ("
                    "SELECT run_id FROM runs "
                    "ORDER BY created DESC, run_id LIMIT ?)",
                    (max(0, int(max_runs)),),
                )
                removed_runs += cur.rowcount
            kept = conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0]
        return {
            "removed_runs": removed_runs,
            "removed_jobs": removed_jobs,
            "kept_runs": kept,
        }

    # ------------------------------------------------------------ reading
    @staticmethod
    def _row_to_dict(row: sqlite3.Row) -> dict[str, Any]:
        out = dict(row)
        out["metrics"] = json.loads(out["metrics"])
        return out

    def get_run(self, run_id: str) -> dict[str, Any] | None:
        with self._read() as conn:
            row = conn.execute(
                "SELECT * FROM runs WHERE run_id = ?", (run_id,)
            ).fetchone()
        return self._row_to_dict(row) if row is not None else None

    def list_runs(
        self,
        experiment: str | None = None,
        limit: int = 100,
        offset: int = 0,
    ) -> list[dict[str, Any]]:
        """Most recent runs first, optionally restricted to one experiment."""
        sql = "SELECT * FROM runs"
        args: list[Any] = []
        if experiment is not None:
            sql += " WHERE experiment = ?"
            args.append(experiment)
        sql += " ORDER BY created DESC, run_id LIMIT ? OFFSET ?"
        args += [max(0, int(limit)), max(0, int(offset))]
        with self._read() as conn:
            rows = conn.execute(sql, args).fetchall()
        return [self._row_to_dict(r) for r in rows]

    def experiments(self) -> list[dict[str, Any]]:
        """Distinct experiment names with run counts and recency."""
        with self._read() as conn:
            rows = conn.execute(
                "SELECT experiment, COUNT(*) AS runs, MAX(created) AS last_created "
                "FROM runs GROUP BY experiment ORDER BY experiment"
            ).fetchall()
        return [dict(r) for r in rows]

    def count(self) -> int:
        with self._read() as conn:
            return conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0]

    # ------------------------------------------------------------- diffing
    def diff(self, run_a: str, run_b: str) -> dict[str, Any]:
        """Metric-by-metric comparison of two runs.

        Raises :class:`KeyError` naming the missing id when either run is
        absent (the API layer maps that to a 404).
        """
        a, b = self.get_run(run_a), self.get_run(run_b)
        if a is None:
            raise KeyError(run_a)
        if b is None:
            raise KeyError(run_b)
        metrics: dict[str, dict[str, Any]] = {}
        for name in sorted(set(a["metrics"]) | set(b["metrics"])):
            va, vb = a["metrics"].get(name), b["metrics"].get(name)
            entry: dict[str, Any] = {"a": va, "b": vb}
            if isinstance(va, (int, float)) and isinstance(vb, (int, float)):
                entry["delta"] = vb - va
                if va:
                    entry["ratio"] = vb / va
            metrics[name] = entry
        strip = ("metrics",)
        return {
            "a": {k: v for k, v in a.items() if k not in strip},
            "b": {k: v for k, v in b.items() if k not in strip},
            "metrics": metrics,
        }

    # ------------------------------------------------------- the job queue
    @staticmethod
    def _job_row(row: sqlite3.Row) -> dict[str, Any]:
        out = dict(row)
        out["cached"] = bool(out["cached"])
        out["spec"] = json.loads(out["spec"])
        return out

    def enqueue_job(
        self,
        job_id: str,
        key: str,
        spec: dict[str, Any],
        capacity: int | None = None,
        state: str = "queued",
        cached: bool = False,
        run_id: str | None = None,
        submitted: float | None = None,
        finished: float | None = None,
        trace_id: str = "",
    ) -> bool:
        """Insert one submitted-job row; ``False`` when the queue is full.

        The capacity check and the insert run in one write transaction,
        so the queued backlog stays bounded even with many API workers
        enqueueing concurrently.  Cache-answered submissions are inserted
        already settled (``state='done'``) for cross-worker visibility.
        """
        submitted = time.time() if submitted is None else submitted
        with self._write() as conn:
            if capacity is not None and state == "queued":
                depth = conn.execute(
                    "SELECT COUNT(*) FROM jobs WHERE state = 'queued'"
                ).fetchone()[0]
                if depth >= capacity:
                    return False
            conn.execute(
                "INSERT INTO jobs "
                "(job_id, key, spec, state, cached, submitted, finished, "
                "run_id, trace_id) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    job_id,
                    key,
                    canonical_dumps(spec),
                    state,
                    int(cached),
                    submitted,
                    finished,
                    run_id,
                    trace_id,
                ),
            )
        return True

    def claim_job(self, owner: str) -> dict[str, Any] | None:
        """Atomically claim the oldest queued job for ``owner``.

        Claim-by-update: the row flips ``queued -> running`` inside one
        immediate transaction, so concurrent claimers (threads or whole
        processes) each get a distinct job.  ``None`` when the queue is
        empty.
        """
        now = time.time()
        with self._write() as conn:
            row = conn.execute(
                "SELECT job_id FROM jobs WHERE state = 'queued' "
                "ORDER BY submitted, job_id LIMIT 1"
            ).fetchone()
            if row is None:
                return None
            cur = conn.execute(
                "UPDATE jobs SET state = 'running', owner = ?, started = ? "
                "WHERE job_id = ? AND state = 'queued'",
                (owner, now, row[0]),
            )
            if cur.rowcount == 0:  # pragma: no cover - cross-process race
                return None
            claimed = conn.execute(
                "SELECT * FROM jobs WHERE job_id = ?", (row[0],)
            ).fetchone()
        return self._job_row(claimed)

    def finish_job(
        self,
        job_id: str,
        state: str,
        error: str | None = None,
        run_id: str | None = None,
    ) -> None:
        """Settle a claimed job as ``done`` or ``failed``."""
        with self._write() as conn:
            conn.execute(
                "UPDATE jobs SET state = ?, error = ?, run_id = ?, finished = ? "
                "WHERE job_id = ?",
                (state, error, run_id, time.time(), job_id),
            )

    def get_job(self, job_id: str) -> dict[str, Any] | None:
        with self._read() as conn:
            row = conn.execute(
                "SELECT * FROM jobs WHERE job_id = ?", (job_id,)
            ).fetchone()
        return self._job_row(row) if row is not None else None

    def list_jobs(self, limit: int = 200) -> list[dict[str, Any]]:
        """Most recently submitted first (all workers' submissions)."""
        with self._read() as conn:
            rows = conn.execute(
                "SELECT * FROM jobs ORDER BY submitted DESC, job_id LIMIT ?",
                (max(0, int(limit)),),
            ).fetchall()
        return [self._job_row(r) for r in rows]

    def queued_depth(self) -> int:
        """Jobs enqueued but not yet claimed by any worker."""
        with self._read() as conn:
            return conn.execute(
                "SELECT COUNT(*) FROM jobs WHERE state = 'queued'"
            ).fetchone()[0]

    def job_for_run(self, run_id: str) -> dict[str, Any] | None:
        """The newest job row that produced ``run_id`` (trace assembly)."""
        with self._read() as conn:
            row = conn.execute(
                "SELECT * FROM jobs WHERE run_id = ? "
                "ORDER BY submitted DESC, job_id LIMIT 1",
                (run_id,),
            ).fetchone()
        return self._job_row(row) if row is not None else None

    # ------------------------------------------------- worker metric sync
    def publish_worker_metrics(
        self,
        worker: str,
        payload: dict[str, Any],
        now: float | None = None,
    ) -> None:
        """Upsert one worker's metrics snapshot (JSON document).

        ``now`` overrides the heartbeat timestamp (tests only).
        """
        with self._write() as conn:
            conn.execute(
                "INSERT INTO worker_metrics (worker, updated, payload) "
                "VALUES (?, ?, ?) "
                "ON CONFLICT(worker) DO UPDATE SET "
                "updated = excluded.updated, payload = excluded.payload",
                (worker, time.time() if now is None else now,
                 canonical_dumps(payload)),
            )

    def worker_metrics(
        self,
        max_age: float = WORKER_METRICS_MAX_AGE,
        now: float | None = None,
    ) -> dict[str, dict[str, Any]]:
        """Fresh snapshots by worker name (stale rows are dead workers).

        Workers heartbeat their snapshot every couple of seconds even
        when idle, so anything older than ``max_age`` is a ghost — a
        crashed or killed worker whose row was never cleared — and is
        excluded from the merged ``/metrics`` view.
        """
        cutoff = (time.time() if now is None else now) - max_age
        with self._read() as conn:
            rows = conn.execute(
                "SELECT worker, payload FROM worker_metrics "
                "WHERE updated >= ? ORDER BY worker",
                (cutoff,),
            ).fetchall()
        out: dict[str, dict[str, Any]] = {}
        for row in rows:
            try:
                out[row["worker"]] = json.loads(row["payload"])
            except ValueError:  # pragma: no cover - corrupt row
                continue
        return out

    def clear_worker_metrics(self, worker: str | None = None) -> None:
        """Drop one worker's snapshot row, or all of them."""
        with self._write() as conn:
            if worker is None:
                conn.execute("DELETE FROM worker_metrics")
            else:
                conn.execute(
                    "DELETE FROM worker_metrics WHERE worker = ?", (worker,)
                )
