"""Bounded job queue: HTTP-submitted simulations through the batch engine.

The API accepts a *job spec* — plain JSON naming a factory, a workload
target and parameter overrides — which :func:`build_job` turns into a
:class:`~repro.evaluation.batch.SimJob`.  Submissions whose content key
is already answerable from the result cache complete immediately without
simulating; everything else goes through a bounded queue drained by one
background thread that executes via :func:`run_many` (so submitted jobs
share the dedup/cache/shipping machinery with the report pipeline).
A full queue rejects the submission — backpressure surfaces as HTTP 503
rather than unbounded memory growth.

Job specs (all fields except ``target`` optional)::

    {
      "factory": "steering",          # any FACTORY_NAMES entry
      "target": "checksum",           # kernel name, "mix:int:40:7", "phased:3"
      "params": {"reconfig_latency": 8, "window_size": 7},
      "max_cycles": 400000,
      "kwargs": {"use_exact_metric": true},
      "label": "my sweep point"
    }

Targets resolve only to built-in kernels and seeded synthetic programs —
never to filesystem paths (the server must not read arbitrary files).
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field, fields
from typing import Any

from repro.core.params import ProcessorParams
from repro.errors import ConfigurationError, WorkloadError
from repro.evaluation.batch import ResultCache, SimJob, job_key, run_many
from repro.isa.program import Program
from repro.telemetry import NULL_REGISTRY, BatchTelemetry

__all__ = [
    "JobQueue",
    "JobQueueFull",
    "JobRecord",
    "build_job",
    "resolve_program",
]

#: upper bound on a submitted job's cycle budget (DoS guard).
MAX_SUBMITTED_CYCLES = 2_000_000

_PARAM_FIELDS = {f.name for f in fields(ProcessorParams)}


class JobQueueFull(ConfigurationError):
    """The bounded submission queue is at capacity (HTTP 503)."""


def resolve_program(target: str) -> Program:
    """Resolve a job-spec target to a program.

    Supports kernel names (``checksum``), synthetic mixes
    (``mix:<int|mem|fp|balanced>[:iterations[:seed]]``) and phased
    workloads (``phased[:seed]``).  Unlike the CLI loader this never
    touches the filesystem.
    """
    if target.startswith("mix:"):
        from repro.workloads.synthetic import (
            BALANCED_MIX, FP_MIX, INT_MIX, MEM_MIX, synthetic_program,
        )

        parts = target.split(":")
        mixes = {"int": INT_MIX, "mem": MEM_MIX, "fp": FP_MIX,
                 "balanced": BALANCED_MIX}
        mix = mixes.get(parts[1] if len(parts) > 1 else "")
        if mix is None:
            raise WorkloadError(
                f"unknown mix in {target!r}; choose from {sorted(mixes)}"
            )
        try:
            iterations = int(parts[2]) if len(parts) > 2 else 50
            seed = int(parts[3]) if len(parts) > 3 else 0
        except ValueError as exc:
            raise WorkloadError(f"bad mix spec {target!r}: {exc}") from exc
        return synthetic_program(mix, iterations=iterations, seed=seed)
    if target.startswith("phased"):
        from repro.workloads.phases import phased_program
        from repro.workloads.synthetic import FP_MIX, INT_MIX, MEM_MIX

        parts = target.split(":")
        try:
            seed = int(parts[1]) if len(parts) > 1 else 0
        except ValueError as exc:
            raise WorkloadError(f"bad phased spec {target!r}: {exc}") from exc
        return phased_program(
            [(INT_MIX, 50), (MEM_MIX, 50), (FP_MIX, 50)], seed=seed
        )
    from repro.workloads.kernels import kernel_by_name

    return kernel_by_name(target).program


def build_job(spec: Any) -> SimJob:
    """Validate a JSON job spec and build the SimJob it describes.

    Raises :class:`ConfigurationError` / :class:`WorkloadError` on any
    malformed field (the API layer maps those to HTTP 400).
    """
    if not isinstance(spec, dict):
        raise ConfigurationError("job spec must be a JSON object")
    target = spec.get("target")
    if not isinstance(target, str) or not target:
        raise ConfigurationError("job spec needs a 'target' workload name")
    factory = spec.get("factory", "steering")
    if not isinstance(factory, str):
        raise ConfigurationError("'factory' must be a string")

    params_spec = spec.get("params") or {}
    if not isinstance(params_spec, dict):
        raise ConfigurationError("'params' must be an object")
    unknown = set(params_spec) - _PARAM_FIELDS
    if unknown:
        raise ConfigurationError(
            f"unknown processor parameters: {', '.join(sorted(unknown))}"
        )
    params = ProcessorParams(**params_spec)

    try:
        max_cycles = int(spec.get("max_cycles", 400_000))
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(f"bad 'max_cycles': {exc}") from exc
    if not 1 <= max_cycles <= MAX_SUBMITTED_CYCLES:
        raise ConfigurationError(
            f"'max_cycles' must be in [1, {MAX_SUBMITTED_CYCLES}]"
        )

    kwargs = spec.get("kwargs") or {}
    if not isinstance(kwargs, dict) or not all(
        isinstance(k, str) and isinstance(v, (bool, int, float, str))
        for k, v in kwargs.items()
    ):
        raise ConfigurationError(
            "'kwargs' must map strings to JSON primitives"
        )

    label = spec.get("label", "")
    if not isinstance(label, str):
        raise ConfigurationError("'label' must be a string")

    return SimJob(
        factory,
        resolve_program(target),
        params,
        max_cycles=max_cycles,
        kwargs=dict(kwargs),
        label=(label or target)[:200],
    )


@dataclass
class JobRecord:
    """Lifecycle of one submitted job (what the API reports back)."""

    job_id: str
    key: str
    spec: dict
    state: str = "queued"  # queued | running | done | failed
    cached: bool = False
    submitted: float = field(default_factory=time.time)
    #: when the drain thread picked the job up (None while queued/cached).
    started: float | None = None
    finished: float | None = None
    error: str | None = None
    #: run-store id once the result is registered.
    run_id: str | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "job_id": self.job_id,
            "key": self.key,
            "state": self.state,
            "cached": self.cached,
            "submitted": self.submitted,
            "started": self.started,
            "finished": self.finished,
            "error": self.error,
            "run_id": self.run_id,
            "spec": self.spec,
        }


class JobQueue:
    """Bounded background executor for submitted jobs.

    One daemon thread drains the queue serially; ``capacity`` bounds the
    queued-but-not-started backlog, and :meth:`submit` raises
    :class:`JobQueueFull` instead of blocking when it is reached.
    ``sim_workers`` is forwarded to :func:`run_many` (0 = simulate in the
    drain thread; >1 = process pool per job, for heavyweight sweeps).
    """

    def __init__(
        self,
        cache: ResultCache | None = None,
        store: Any | None = None,
        sim_workers: int = 0,
        capacity: int = 8,
        registry: Any | None = None,
    ) -> None:
        self.cache = cache if cache is not None else ResultCache()
        self.store = store
        self.sim_workers = sim_workers
        self.capacity = capacity
        self._pending: queue.Queue[str | None] = queue.Queue(maxsize=capacity)
        self._records: dict[str, JobRecord] = {}
        self._jobs: dict[str, SimJob] = {}
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None
        #: simulations actually dispatched (cache answers excluded).
        self.executed = 0
        # metrics (a null registry absorbs everything when none is given)
        reg = registry if registry is not None else NULL_REGISTRY
        self._submissions = reg.counter(
            "repro_jobs_submitted_total",
            "Job submissions, by outcome.",
            ("outcome",),
        )
        self._queue_wait = reg.histogram(
            "repro_job_queue_wait_seconds",
            "Seconds a submitted job waited before the drain thread ran it.",
        )
        self._run_seconds = reg.histogram(
            "repro_job_run_seconds",
            "Wall-clock seconds executing one submitted job.",
        )
        #: batch-engine telemetry forwarded into run_many (shared registry).
        self.batch_telemetry = (
            BatchTelemetry(registry=registry) if registry is not None else None
        )

    # ----------------------------------------------------------- lifecycle
    def start(self) -> None:
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._drain, daemon=True, name="repro-job-queue"
            )
            self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        if self._thread is not None and self._thread.is_alive():
            self._pending.put(None)
            self._thread.join(timeout)

    # ---------------------------------------------------------- submission
    def submit(self, spec: dict) -> JobRecord:
        """Validate, answer from cache, or enqueue; never blocks."""
        job = build_job(spec)
        key = job_key(job)
        with self._lock:
            job_id = f"job-{len(self._records) + 1:04d}"
            record = JobRecord(job_id=job_id, key=key, spec=spec)
            self._records[job_id] = record

        cached = self.cache.get(key)
        if cached is not None:
            record.state = "done"
            record.cached = True
            record.finished = time.time()
            if self.store is not None:
                record.run_id = self.store.record_result(
                    key, cached, job=job, experiment=f"job/{job.factory}"
                )
            self._submissions.labels("cached").inc()
            return record

        with self._lock:
            self._jobs[job_id] = job
        try:
            self._pending.put_nowait(job_id)
        except queue.Full:
            with self._lock:
                self._records.pop(job_id, None)
                self._jobs.pop(job_id, None)
            self._submissions.labels("rejected").inc()
            raise JobQueueFull(
                f"job queue full ({self.capacity} pending); retry later"
            ) from None
        self._submissions.labels("accepted").inc()
        self.start()
        return record

    def _drain(self) -> None:
        while True:
            job_id = self._pending.get()
            if job_id is None:
                return
            with self._lock:
                record = self._records[job_id]
                job = self._jobs.pop(job_id)
            record.state = "running"
            record.started = time.time()
            self._queue_wait.observe(record.started - record.submitted)
            try:
                result = run_many(
                    [job], workers=self.sim_workers, cache=self.cache,
                    telemetry=self.batch_telemetry,
                )[0]
                self.executed += 1
                if self.store is not None:
                    record.run_id = self.store.record_result(
                        record.key, result, job=job,
                        experiment=f"job/{job.factory}",
                    )
                record.state = "done"
            except Exception as exc:  # surface, don't kill the drain thread
                record.error = f"{type(exc).__name__}: {exc}"
                record.state = "failed"
            record.finished = time.time()
            self._run_seconds.observe(record.finished - record.started)

    # ------------------------------------------------------------- queries
    def get(self, job_id: str) -> JobRecord | None:
        with self._lock:
            return self._records.get(job_id)

    def list(self) -> list[JobRecord]:
        with self._lock:
            return sorted(self._records.values(), key=lambda r: r.job_id)

    def depth(self) -> int:
        """Jobs queued but not yet started."""
        return self._pending.qsize()

    def wait(self, job_id: str, timeout: float = 30.0) -> JobRecord:
        """Block until a job settles (tests and smoke scripts)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            record = self.get(job_id)
            if record is None:
                raise KeyError(job_id)
            if record.state in ("done", "failed"):
                return record
            time.sleep(0.01)
        raise TimeoutError(f"job {job_id} still {self.get(job_id).state}")
