"""Bounded job queue: HTTP-submitted simulations through the batch engine.

The API accepts a *job spec* — plain JSON naming a factory, a workload
target and parameter overrides — which :func:`build_job` turns into a
:class:`~repro.evaluation.batch.SimJob`.  Submissions whose content key
is already answerable from the result cache complete immediately without
simulating; everything else goes through a bounded queue drained through
:func:`run_many` (so submitted jobs share the dedup/cache/shipping
machinery with the report pipeline).  A full queue rejects the
submission — backpressure surfaces as HTTP 503 rather than unbounded
memory growth.

Two queue implementations share that contract:

:class:`JobQueue`
    In-memory, drained by one background thread — the single-process
    server and the unit tests.
:class:`StoreJobQueue`
    Durable, backed by the run store's ``jobs`` table.  Any API worker
    process can enqueue and any simulation pool worker can drain
    (atomic claim-by-update in SQLite), which is how ``repro serve
    --workers N`` fans submitted work out across processes (see
    :mod:`repro.serving.supervisor`).

Job specs (all fields except ``target`` optional)::

    {
      "factory": "steering",          # any FACTORY_NAMES entry
      "target": "checksum",           # kernel name, "mix:int:40:7", "phased:3"
      "params": {"reconfig_latency": 8, "window_size": 7},
      "max_cycles": 400000,
      "kwargs": {"use_exact_metric": true},
      "label": "my sweep point"
    }

Targets resolve only to built-in kernels and seeded synthetic programs —
never to filesystem paths (the server must not read arbitrary files).
"""

from __future__ import annotations

import queue
import secrets
import threading
import time
from dataclasses import dataclass, field, fields
from typing import Any

from repro.core.params import ProcessorParams
from repro.errors import ConfigurationError, WorkloadError
from repro.evaluation.batch import ResultCache, SimJob, job_key, run_many
from repro.isa.program import Program
from repro.telemetry import NULL_REGISTRY, BatchTelemetry

__all__ = [
    "JobQueue",
    "JobQueueFull",
    "JobRecord",
    "StoreJobQueue",
    "build_job",
    "resolve_program",
]

#: upper bound on a submitted job's cycle budget (DoS guard).
MAX_SUBMITTED_CYCLES = 2_000_000

_PARAM_FIELDS = {f.name for f in fields(ProcessorParams)}


class JobQueueFull(ConfigurationError):
    """The bounded submission queue is at capacity (HTTP 503)."""


def resolve_program(target: str) -> Program:
    """Resolve a job-spec target to a program.

    Supports kernel names (``checksum``), synthetic mixes
    (``mix:<int|mem|fp|balanced>[:iterations[:seed]]``) and phased
    workloads (``phased[:seed]``).  Unlike the CLI loader this never
    touches the filesystem.
    """
    if target.startswith("mix:"):
        from repro.workloads.synthetic import (
            BALANCED_MIX, FP_MIX, INT_MIX, MEM_MIX, synthetic_program,
        )

        parts = target.split(":")
        mixes = {"int": INT_MIX, "mem": MEM_MIX, "fp": FP_MIX,
                 "balanced": BALANCED_MIX}
        mix = mixes.get(parts[1] if len(parts) > 1 else "")
        if mix is None:
            raise WorkloadError(
                f"unknown mix in {target!r}; choose from {sorted(mixes)}"
            )
        try:
            iterations = int(parts[2]) if len(parts) > 2 else 50
            seed = int(parts[3]) if len(parts) > 3 else 0
        except ValueError as exc:
            raise WorkloadError(f"bad mix spec {target!r}: {exc}") from exc
        return synthetic_program(mix, iterations=iterations, seed=seed)
    if target.startswith("phased"):
        from repro.workloads.phases import phased_program
        from repro.workloads.synthetic import FP_MIX, INT_MIX, MEM_MIX

        parts = target.split(":")
        try:
            seed = int(parts[1]) if len(parts) > 1 else 0
        except ValueError as exc:
            raise WorkloadError(f"bad phased spec {target!r}: {exc}") from exc
        return phased_program(
            [(INT_MIX, 50), (MEM_MIX, 50), (FP_MIX, 50)], seed=seed
        )
    from repro.workloads.kernels import kernel_by_name

    return kernel_by_name(target).program


def build_job(spec: Any) -> SimJob:
    """Validate a JSON job spec and build the SimJob it describes.

    Raises :class:`ConfigurationError` / :class:`WorkloadError` on any
    malformed field (the API layer maps those to HTTP 400).
    """
    if not isinstance(spec, dict):
        raise ConfigurationError("job spec must be a JSON object")
    target = spec.get("target")
    if not isinstance(target, str) or not target:
        raise ConfigurationError("job spec needs a 'target' workload name")
    factory = spec.get("factory", "steering")
    if not isinstance(factory, str):
        raise ConfigurationError("'factory' must be a string")

    params_spec = spec.get("params") or {}
    if not isinstance(params_spec, dict):
        raise ConfigurationError("'params' must be an object")
    unknown = set(params_spec) - _PARAM_FIELDS
    if unknown:
        raise ConfigurationError(
            f"unknown processor parameters: {', '.join(sorted(unknown))}"
        )
    params = ProcessorParams(**params_spec)

    try:
        max_cycles = int(spec.get("max_cycles", 400_000))
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(f"bad 'max_cycles': {exc}") from exc
    if not 1 <= max_cycles <= MAX_SUBMITTED_CYCLES:
        raise ConfigurationError(
            f"'max_cycles' must be in [1, {MAX_SUBMITTED_CYCLES}]"
        )

    kwargs = spec.get("kwargs") or {}
    if not isinstance(kwargs, dict) or not all(
        isinstance(k, str) and isinstance(v, (bool, int, float, str))
        for k, v in kwargs.items()
    ):
        raise ConfigurationError(
            "'kwargs' must map strings to JSON primitives"
        )

    label = spec.get("label", "")
    if not isinstance(label, str):
        raise ConfigurationError("'label' must be a string")

    return SimJob(
        factory,
        resolve_program(target),
        params,
        max_cycles=max_cycles,
        kwargs=dict(kwargs),
        label=(label or target)[:200],
    )


@dataclass
class JobRecord:
    """Lifecycle of one submitted job (what the API reports back)."""

    job_id: str
    key: str
    spec: dict
    state: str = "queued"  # queued | running | done | failed
    cached: bool = False
    submitted: float = field(default_factory=time.time)
    #: when the drain thread picked the job up (None while queued/cached).
    started: float | None = None
    finished: float | None = None
    error: str | None = None
    #: run-store id once the result is registered.
    run_id: str | None = None
    #: trace-context id minted at HTTP ingress ("" when not traced).
    trace_id: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "job_id": self.job_id,
            "key": self.key,
            "state": self.state,
            "cached": self.cached,
            "submitted": self.submitted,
            "started": self.started,
            "finished": self.finished,
            "error": self.error,
            "run_id": self.run_id,
            "trace_id": self.trace_id,
            "spec": self.spec,
        }


class JobQueue:
    """Bounded background executor for submitted jobs.

    One daemon thread drains the queue serially; ``capacity`` bounds the
    queued-but-not-started backlog, and :meth:`submit` raises
    :class:`JobQueueFull` instead of blocking when it is reached.
    ``sim_workers`` is forwarded to :func:`run_many` (0 = simulate in the
    drain thread; >1 = process pool per job, for heavyweight sweeps).
    """

    def __init__(
        self,
        cache: ResultCache | None = None,
        store: Any | None = None,
        sim_workers: int = 0,
        capacity: int = 8,
        registry: Any | None = None,
    ) -> None:
        self.cache = cache if cache is not None else ResultCache()
        self.store = store
        self.sim_workers = sim_workers
        self.capacity = capacity
        self._pending: queue.Queue[str | None] = queue.Queue(maxsize=capacity)
        self._records: dict[str, JobRecord] = {}
        self._jobs: dict[str, SimJob] = {}
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None
        #: simulations actually dispatched (cache answers excluded).
        self.executed = 0
        # metrics (a null registry absorbs everything when none is given)
        reg = registry if registry is not None else NULL_REGISTRY
        self._submissions = reg.counter(
            "repro_jobs_submitted_total",
            "Job submissions, by outcome.",
            ("outcome",),
        )
        self._queue_wait = reg.histogram(
            "repro_job_queue_wait_seconds",
            "Seconds a submitted job waited before the drain thread ran it.",
        )
        self._run_seconds = reg.histogram(
            "repro_job_run_seconds",
            "Wall-clock seconds executing one submitted job.",
        )
        #: batch-engine telemetry forwarded into run_many (shared registry).
        self.batch_telemetry = (
            BatchTelemetry(registry=registry) if registry is not None else None
        )

    # ----------------------------------------------------------- lifecycle
    def start(self) -> None:
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._drain, daemon=True, name="repro-job-queue"
            )
            self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        if self._thread is not None and self._thread.is_alive():
            self._pending.put(None)
            self._thread.join(timeout)

    # ---------------------------------------------------------- submission
    def submit(self, spec: dict, trace_id: str = "") -> JobRecord:
        """Validate, answer from cache, or enqueue; never blocks."""
        job = build_job(spec)
        key = job_key(job)
        with self._lock:
            job_id = f"job-{len(self._records) + 1:04d}"
            record = JobRecord(
                job_id=job_id, key=key, spec=spec, trace_id=trace_id
            )
            self._records[job_id] = record

        cached = self.cache.get(key)
        if cached is not None:
            record.state = "done"
            record.cached = True
            record.finished = time.time()
            if self.store is not None:
                record.run_id = self.store.record_result(
                    key, cached, job=job, experiment=f"job/{job.factory}"
                )
            self._submissions.labels("cached").inc()
            return record

        with self._lock:
            self._jobs[job_id] = job
        try:
            self._pending.put_nowait(job_id)
        except queue.Full:
            with self._lock:
                self._records.pop(job_id, None)
                self._jobs.pop(job_id, None)
            self._submissions.labels("rejected").inc()
            raise JobQueueFull(
                f"job queue full ({self.capacity} pending); retry later"
            ) from None
        self._submissions.labels("accepted").inc()
        self.start()
        return record

    def _drain(self) -> None:
        while True:
            job_id = self._pending.get()
            if job_id is None:
                return
            with self._lock:
                record = self._records[job_id]
                job = self._jobs.pop(job_id)
            record.state = "running"
            record.started = time.time()
            self._queue_wait.observe(record.started - record.submitted)
            try:
                result = run_many(
                    [job], workers=self.sim_workers, cache=self.cache,
                    telemetry=self.batch_telemetry,
                )[0]
                self.executed += 1
                if self.store is not None:
                    record.run_id = self.store.record_result(
                        record.key, result, job=job,
                        experiment=f"job/{job.factory}",
                    )
                record.state = "done"
            except Exception as exc:  # surface, don't kill the drain thread
                record.error = f"{type(exc).__name__}: {exc}"
                record.state = "failed"
            record.finished = time.time()
            self._run_seconds.observe(record.finished - record.started)

    # ------------------------------------------------------------- queries
    def get(self, job_id: str) -> JobRecord | None:
        with self._lock:
            return self._records.get(job_id)

    def list(self) -> list[JobRecord]:
        with self._lock:
            return sorted(self._records.values(), key=lambda r: r.job_id)

    def depth(self) -> int:
        """Jobs queued but not yet started."""
        return self._pending.qsize()

    def wait(self, job_id: str, timeout: float = 30.0) -> JobRecord:
        """Block until a job settles (tests and smoke scripts)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            record = self.get(job_id)
            if record is None:
                raise KeyError(job_id)
            if record.state in ("done", "failed"):
                return record
            time.sleep(0.01)
        raise TimeoutError(f"job {job_id} still {self.get(job_id).state}")


class StoreJobQueue:
    """Durable bounded job queue over the run store's ``jobs`` table.

    Same submit/query contract as :class:`JobQueue`, but the queue lives
    in SQLite: every API worker process sees every submission, and the
    backlog survives restarts.  Draining happens wherever
    :meth:`claim_and_run_one` runs — the local :meth:`start` thread in a
    single-process server, or a pool of dedicated simulation worker
    processes under the supervisor (each claim is an atomic
    ``queued -> running`` update, so a job runs exactly once).

    ``capacity`` bounds the *queued* backlog across all workers; a full
    queue raises :class:`JobQueueFull` (HTTP 503 + ``Retry-After``).
    """

    def __init__(
        self,
        store: Any,
        cache: ResultCache | None = None,
        sim_workers: int = 0,
        capacity: int = 8,
        registry: Any | None = None,
        owner: str | None = None,
        poll_interval: float = 0.05,
        events: Any | None = None,
    ) -> None:
        self.store = store
        self.cache = cache if cache is not None else ResultCache()
        self.sim_workers = sim_workers
        self.capacity = capacity
        self.owner = owner or f"worker-{secrets.token_hex(3)}"
        self.poll_interval = poll_interval
        #: optional :class:`~repro.telemetry.events.EventLog`; job
        #: lifecycle transitions are emitted with the job's trace id.
        self.events = events
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        #: simulations actually dispatched by THIS worker (cache answers
        #: and jobs drained elsewhere excluded).
        self.executed = 0
        reg = registry if registry is not None else NULL_REGISTRY
        self._submissions = reg.counter(
            "repro_jobs_submitted_total",
            "Job submissions, by outcome.",
            ("outcome",),
        )
        self._queue_wait = reg.histogram(
            "repro_job_queue_wait_seconds",
            "Seconds a submitted job waited before a pool worker ran it.",
        )
        self._run_seconds = reg.histogram(
            "repro_job_run_seconds",
            "Wall-clock seconds executing one submitted job.",
        )
        self.batch_telemetry = (
            BatchTelemetry(registry=registry) if registry is not None else None
        )

    # ---------------------------------------------------------- submission
    @staticmethod
    def _new_job_id() -> str:
        # random, not sequential: ids must not collide across API workers
        return f"job-{secrets.token_hex(6)}"

    def submit(self, spec: dict, trace_id: str = "") -> JobRecord:
        """Validate, answer from cache, or enqueue durably; never blocks."""
        job = build_job(spec)
        key = job_key(job)
        job_id = self._new_job_id()

        cached = self.cache.get(key)
        if cached is not None:
            now = time.time()
            run_id = None
            if self.store is not None:
                run_id = self.store.record_result(
                    key, cached, job=job, experiment=f"job/{job.factory}"
                )
            # settled on arrival; inserted for cross-worker visibility
            self.store.enqueue_job(
                job_id, key, spec, state="done", cached=True,
                run_id=run_id, submitted=now, finished=now,
                trace_id=trace_id,
            )
            self._submissions.labels("cached").inc()
            return JobRecord(
                job_id=job_id, key=key, spec=spec, state="done",
                cached=True, submitted=now, finished=now, run_id=run_id,
                trace_id=trace_id,
            )

        accepted = self.store.enqueue_job(
            job_id, key, spec, capacity=self.capacity, trace_id=trace_id
        )
        if not accepted:
            self._submissions.labels("rejected").inc()
            raise JobQueueFull(
                f"job queue full ({self.capacity} pending); retry later"
            )
        self._submissions.labels("accepted").inc()
        return self._record(self.store.get_job(job_id))

    # ------------------------------------------------------------ draining
    def claim_and_run_one(self) -> bool:
        """Claim the oldest queued job and execute it; False when idle.

        Runs in whatever process calls it — the jobs travel as JSON
        specs, so the claimer rebuilds the :class:`SimJob` locally and
        executes through the same cached/deduplicated ``run_many`` path
        as the report pipeline.
        """
        claimed = self.store.claim_job(self.owner)
        if claimed is None:
            return False
        job_id = claimed["job_id"]
        trace = claimed.get("trace_id") or None
        self._queue_wait.observe(claimed["started"] - claimed["submitted"])
        if self.events is not None:
            self.events.emit(
                "job_claimed", trace=trace, job_id=job_id, owner=self.owner,
                queue_wait_s=round(claimed["started"] - claimed["submitted"], 6),
            )
        start = time.time()
        try:
            job = build_job(claimed["spec"])
            result = run_many(
                [job], workers=self.sim_workers, cache=self.cache,
                telemetry=self.batch_telemetry,
            )[0]
            self.executed += 1
            run_id = None
            if self.store is not None:
                run_id = self.store.record_result(
                    claimed["key"], result, job=job,
                    experiment=f"job/{job.factory}",
                )
            self.store.finish_job(job_id, "done", run_id=run_id)
            if self.events is not None:
                self.events.emit(
                    "job_done", trace=trace, job_id=job_id,
                    owner=self.owner, run_id=run_id,
                    run_seconds=round(time.time() - start, 6),
                )
        except Exception as exc:  # surface, don't kill the drain loop
            self.store.finish_job(
                job_id, "failed", error=f"{type(exc).__name__}: {exc}"
            )
            if self.events is not None:
                self.events.emit(
                    "job_failed", trace=trace, job_id=job_id,
                    owner=self.owner, error=f"{type(exc).__name__}: {exc}",
                )
        self._run_seconds.observe(time.time() - start)
        return True

    def drain_until_stopped(self, stop: threading.Event | None = None) -> None:
        """Claim-and-run until ``stop`` is set (pool worker main loop)."""
        stop = stop if stop is not None else self._stop
        while not stop.is_set():
            if not self.claim_and_run_one():
                stop.wait(self.poll_interval)

    def start(self) -> None:
        """Local drain thread (single-process servers; supervisor uses
        dedicated pool processes instead)."""
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self.drain_until_stopped, daemon=True,
                name="repro-store-job-queue",
            )
            self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._thread is not None and self._thread.is_alive():
            self._thread.join(timeout)

    def stopped(self) -> bool:
        """Whether :meth:`stop` was requested (pool worker loop check)."""
        return self._stop.is_set()

    # ------------------------------------------------------------- queries
    @staticmethod
    def _record(row: dict | None) -> JobRecord | None:
        if row is None:
            return None
        return JobRecord(
            job_id=row["job_id"],
            key=row["key"],
            spec=row["spec"],
            state=row["state"],
            cached=row["cached"],
            submitted=row["submitted"],
            started=row["started"],
            finished=row["finished"],
            error=row["error"],
            run_id=row["run_id"],
            trace_id=row.get("trace_id", ""),
        )

    def get(self, job_id: str) -> JobRecord | None:
        return self._record(self.store.get_job(job_id))

    def list(self) -> list[JobRecord]:
        return [self._record(row) for row in self.store.list_jobs()]

    def depth(self) -> int:
        """Jobs queued but not yet claimed by any worker."""
        return self.store.queued_depth()

    def wait(self, job_id: str, timeout: float = 30.0) -> JobRecord:
        """Block until a job settles (tests and smoke scripts)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            record = self.get(job_id)
            if record is None:
                raise KeyError(job_id)
            if record.state in ("done", "failed"):
                return record
            time.sleep(0.01)
        raise TimeoutError(f"job {job_id} still {self.get(job_id).state}")
