"""Experiment results service: run store, HTTP API and dashboard.

Three layers over the report pipeline:

* :mod:`repro.serving.store` — :class:`RunStore`, a SQLite index of every
  experiment/benchmark run (id, experiment, content hash, git rev,
  timestamp, flat metrics JSON), with the heavyweight result artifacts
  staying in the content-addressed ``.report-cache`` blobs;
* :mod:`repro.serving.jobs` — :class:`JobQueue`, a bounded worker queue
  that executes HTTP-submitted simulation jobs through the batch engine
  (cache hits answer without simulating);
* :mod:`repro.serving.app` — a threaded :mod:`http.server`-based JSON
  API (``python -m repro serve``) plus the self-contained dashboard page
  served at ``/``.
"""

from repro.serving.app import ServingApp, make_server
from repro.serving.jobs import JobQueue, JobQueueFull, build_job
from repro.serving.store import RunStore, metrics_of

__all__ = [
    "RunStore",
    "ServingApp",
    "JobQueue",
    "JobQueueFull",
    "build_job",
    "make_server",
    "metrics_of",
]
