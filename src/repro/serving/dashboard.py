"""The dashboard: one self-contained HTML page served at ``/``.

No build step, no external assets — the page talks to the JSON API with
``fetch`` and renders four views: the run list, a per-experiment metric
trend (inline SVG line chart with a crosshair tooltip), a
metric-by-metric diff of two selected runs (diverging delta bars), and a
per-run telemetry panel plotting the downsampled per-cycle series
(windowed IPC, slot occupancy, CEM error) from
``/api/runs/<id>/timeseries`` with the same SVG/crosshair machinery,
plus a per-run decisions panel tabulating the steering decision ledger
from ``/api/runs/<id>/decisions`` (inputs, chosen configuration, and
predicted vs. realized IPC).  All API-sourced strings enter the DOM via
``textContent``.
"""

from __future__ import annotations

__all__ = ["DASHBOARD_HTML"]

DASHBOARD_HTML = """<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>repro — experiment runs</title>
<style>
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --text-muted: #898781;
  --grid: #e1e0d9;
  --baseline: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6;   /* trend line + positive delta */
  --series-2: #d98227;   /* second telemetry series (occupancy) */
  --diverge-neg: #e34948; /* negative delta pole + CEM error series */
}
@media (prefers-color-scheme: dark) {
  .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted: #898781;
    --grid: #2c2c2a;
    --baseline: #383835;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5;
    --series-2: #e09a48;
    --diverge-neg: #e66767;
  }
}
* { box-sizing: border-box; }
body.viz-root {
  margin: 0; padding: 24px;
  background: var(--page); color: var(--text-primary);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 20px; font-weight: 600; margin: 0 0 4px; }
h2 { font-size: 15px; font-weight: 600; margin: 0 0 10px; }
.sub { color: var(--text-secondary); margin: 0 0 20px; }
.card {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 10px; padding: 16px 18px; margin-bottom: 16px;
}
.tiles { display: flex; gap: 16px; flex-wrap: wrap; margin-bottom: 16px; }
.tile { flex: 0 1 180px; }
.tile .label { color: var(--text-secondary); font-size: 13px; }
.tile .value { font-size: 30px; font-weight: 600; }
.filters { display: flex; gap: 12px; align-items: center; margin-bottom: 16px; }
.filters label { color: var(--text-secondary); }
select {
  font: inherit; color: var(--text-primary);
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 6px; padding: 4px 8px;
}
table { border-collapse: collapse; width: 100%; }
th, td { text-align: left; padding: 6px 10px; border-bottom: 1px solid var(--grid); }
th { color: var(--text-secondary); font-weight: 500; font-size: 13px; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
td.mono { font-family: ui-monospace, monospace; font-size: 12.5px; color: var(--text-secondary); }
tr:hover td { background: color-mix(in srgb, var(--grid) 35%, transparent); }
.hint { color: var(--text-muted); }
svg text { fill: var(--text-muted); font: 11px system-ui, sans-serif; }
#chart-wrap { position: relative; }
#tooltip {
  position: absolute; display: none; pointer-events: none;
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 6px; padding: 6px 10px; font-size: 12.5px;
  box-shadow: 0 2px 8px rgba(0,0,0,0.12);
}
#tooltip .val { font-weight: 600; font-size: 14px; color: var(--text-primary); }
#tooltip .when { color: var(--text-secondary); }
.bar-wrap { position: relative; width: 140px; height: 14px; }
.bar-axis { position: absolute; left: 50%; top: 0; bottom: 0; width: 1px; background: var(--baseline); }
.bar {
  position: absolute; top: 1px; height: 12px;
}
.bar.pos { left: 50%; background: var(--series-1); border-radius: 0 4px 4px 0; }
.bar.neg { right: 50%; background: var(--diverge-neg); border-radius: 4px 0 0 4px; }
.delta-pos { color: var(--text-primary); }
.delta-neg { color: var(--text-primary); }
.error { color: var(--diverge-neg); }
button.series-btn {
  font: inherit; font-size: 12.5px; color: var(--text-primary);
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 6px; padding: 2px 8px; cursor: pointer;
}
button.series-btn:hover { border-color: var(--series-1); }
.series-chart { position: relative; margin-bottom: 8px; }
.series-chart .series-label {
  color: var(--text-secondary); font-size: 13px; margin: 8px 0 2px;
}
.series-tip {
  position: absolute; display: none; pointer-events: none;
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 6px; padding: 4px 8px; font-size: 12px;
  box-shadow: 0 2px 8px rgba(0,0,0,0.12);
}
</style>
</head>
<body class="viz-root">
<h1>repro — experiment runs</h1>
<p class="sub">Configuration-steering reproduction: persisted simulation &amp; experiment results.</p>

<div class="tiles">
  <div class="card tile"><div class="label">Runs</div><div class="value" id="tile-runs">–</div></div>
  <div class="card tile"><div class="label">Experiments</div><div class="value" id="tile-exps">–</div></div>
  <div class="card tile"><div class="label">Cached artifacts</div><div class="value" id="tile-blobs">–</div></div>
</div>

<div class="filters">
  <label for="exp-select">Experiment</label>
  <select id="exp-select"></select>
  <label for="metric-select">Metric</label>
  <select id="metric-select"></select>
</div>

<div class="card">
  <h2 id="trend-title">Trend</h2>
  <div id="chart-wrap">
    <svg id="trend" width="680" height="240" role="img"></svg>
    <div id="tooltip"></div>
  </div>
  <p class="hint" id="trend-hint"></p>
</div>

<div class="card">
  <h2>Runs <span class="hint" style="font-weight:400">(check two to diff)</span></h2>
  <table id="runs-table">
    <thead><tr>
      <th></th><th>run</th><th>experiment</th><th>label</th><th>rev</th>
      <th>when</th><th class="num">ipc</th><th class="num">cycles</th><th></th>
    </tr></thead>
    <tbody></tbody>
  </table>
</div>

<div class="card" id="diff-card">
  <h2>Diff</h2>
  <div id="diff-body"><p class="hint">Select two runs above to compare them metric by metric.</p></div>
</div>

<div class="card" id="series-card">
  <h2 id="series-title">Run telemetry</h2>
  <div id="series-body"><p class="hint">Press “series” on a run to plot its per-cycle probes (telemetry-enabled runs only).</p></div>
</div>

<div class="card" id="decisions-card">
  <h2 id="decisions-title">Steering decisions</h2>
  <div id="decisions-body"><p class="hint">Press “decisions” on a run to list its steering decision ledger (ledger-enabled runs only).</p></div>
</div>

<script>
"use strict";
const $ = (id) => document.getElementById(id);
const state = { runs: [], experiment: "", metric: "ipc", picked: [] };

async function fetchJSON(url, options) {
  const resp = await fetch(url, options);
  if (!resp.ok) throw new Error(url + " -> HTTP " + resp.status);
  return resp.json();
}
const fmt = (v) => {
  if (typeof v !== "number") return v == null ? "–" : String(v);
  if (Number.isInteger(v)) return v.toLocaleString("en-US");
  return v.toFixed(3);
};
const when = (ts) => new Date(ts * 1000).toISOString().replace("T", " ").slice(0, 16);
const el = (tag, cls, text) => {
  const node = document.createElement(tag);
  if (cls) node.className = cls;
  if (text !== undefined) node.textContent = text;
  return node;
};

async function loadHealth() {
  const h = await fetchJSON("/api/health");
  $("tile-runs").textContent = fmt(h.runs);
  $("tile-exps").textContent = fmt(h.experiments);
  $("tile-blobs").textContent = h.cache ? fmt(h.cache.disk_blobs) : "0";
}

async function loadExperiments() {
  const data = await fetchJSON("/api/experiments");
  const select = $("exp-select");
  select.replaceChildren(el("option", null, "all"));
  select.firstChild.value = "";
  for (const e of data.experiments) {
    const opt = el("option", null, e.experiment + " (" + e.runs + ")");
    opt.value = e.experiment;
    select.append(opt);
  }
  select.value = state.experiment;
}

async function loadRuns() {
  const q = state.experiment ? "&experiment=" + encodeURIComponent(state.experiment) : "";
  const data = await fetchJSON("/api/runs?limit=200" + q);
  state.runs = data.runs;
  renderMetricOptions();
  renderTable();
  renderTrend();
}

function metricNames() {
  const names = new Set();
  for (const run of state.runs)
    for (const name of Object.keys(run.metrics)) names.add(name);
  return [...names].sort();
}

function renderMetricOptions() {
  const names = metricNames();
  if (!names.includes(state.metric)) state.metric = names.includes("ipc") ? "ipc" : names[0] || "";
  const select = $("metric-select");
  select.replaceChildren();
  for (const name of names) {
    const opt = el("option", null, name);
    opt.value = name;
    select.append(opt);
  }
  select.value = state.metric;
}

function renderTable() {
  const tbody = $("runs-table").querySelector("tbody");
  tbody.replaceChildren();
  for (const run of state.runs) {
    const tr = document.createElement("tr");
    const pick = el("td");
    const box = el("input");
    box.type = "checkbox";
    box.checked = state.picked.includes(run.run_id);
    box.addEventListener("change", () => togglePick(run.run_id, box));
    pick.append(box);
    tr.append(pick);
    tr.append(el("td", "mono", run.run_id));
    tr.append(el("td", null, run.experiment));
    tr.append(el("td", null, run.label || ""));
    tr.append(el("td", "mono", run.git_rev || ""));
    tr.append(el("td", "mono", when(run.created)));
    tr.append(el("td", "num", run.metrics.ipc !== undefined ? fmt(run.metrics.ipc) : "–"));
    tr.append(el("td", "num", run.metrics.cycles !== undefined ? fmt(run.metrics.cycles) : "–"));
    const seriesCell = el("td");
    const seriesBtn = el("button", "series-btn", "series");
    seriesBtn.addEventListener("click", () => loadSeries(run));
    const decisionsBtn = el("button", "series-btn", "decisions");
    decisionsBtn.addEventListener("click", () => loadDecisions(run));
    seriesCell.append(seriesBtn, document.createTextNode(" "), decisionsBtn);
    tr.append(seriesCell);
    tbody.append(tr);
  }
}

/* ------------------------------------------------- per-run telemetry panel */
async function loadSeries(run) {
  const body = $("series-body");
  $("series-title").textContent = "Run telemetry — " + run.run_id;
  body.replaceChildren(el("p", "hint", "loading…"));
  try {
    const data = await fetchJSON("/api/runs/" + run.run_id + "/timeseries");
    const series = (data.timeseries && data.timeseries.series) || {};
    const panels = [
      ["windowed_ipc", "windowed IPC", "--series-1"],
      ["slot_occupancy", "slot occupancy (fraction of RFU slots)", "--series-2"],
      ["cem_error", "CEM error of the winning configuration", "--diverge-neg"],
    ];
    body.replaceChildren();
    let drawn = 0;
    for (const [key, title, colorVar] of panels) {
      const s = series[key];
      if (!s || !s.x || s.x.length < 2) continue;
      renderSeriesChart(body, title, s.x, s.v, cssVar(colorVar));
      drawn++;
    }
    if (drawn === 0) {
      body.append(el("p", "hint", "Run carries telemetry but none of the plottable series."));
    } else {
      const interval = data.timeseries.sample_interval;
      body.append(el("p", "hint",
        "x axis is the simulated cycle; one point per " + fmt(interval) +
        "-cycle sample window (stride-downsampled)."));
    }
  } catch (err) {
    body.replaceChildren(el("p", "hint",
      "No telemetry series for this run — only telemetry-enabled runs " +
      "(e.g. the steering-telemetry factory) record them."));
  }
}

function renderSeriesChart(container, title, xs, vs, color) {
  const W = 680, H = 150, m = { l: 56, r: 20, t: 10, b: 22 };
  const iw = W - m.l - m.r, ih = H - m.t - m.b;
  const wrap = el("div", "series-chart");
  wrap.append(el("div", "series-label", title));
  const svg = svgEl("svg", { width: W, height: H, role: "img" });
  const tip = el("div", "series-tip");
  container.append(wrap);
  wrap.append(svg, tip);

  const x0 = xs[0], x1 = xs[xs.length - 1] || x0 + 1;
  let v0 = Math.min(...vs), v1 = Math.max(...vs);
  if (v0 === v1) { v0 -= Math.abs(v0) * 0.1 + 0.5; v1 += Math.abs(v1) * 0.1 + 0.5; }
  const pad = (v1 - v0) * 0.08;
  v0 -= pad; v1 += pad;
  const x = (t) => m.l + (x1 === x0 ? iw / 2 : ((t - x0) / (x1 - x0)) * iw);
  const y = (v) => m.t + ih - ((v - v0) / (v1 - v0)) * ih;
  const gridC = cssVar("--grid"), base = cssVar("--baseline"),
        surface = cssVar("--surface-1");

  for (let i = 0; i <= 2; i++) {
    const gy = m.t + (ih * i) / 2;
    svg.append(svgEl("line",
      { x1: m.l, x2: W - m.r, y1: gy, y2: gy, stroke: gridC, "stroke-width": 1 }));
    const label = svgEl("text", { x: m.l - 8, y: gy + 4, "text-anchor": "end" });
    label.textContent = fmt(v1 - ((v1 - v0) * i) / 2);
    svg.append(label);
  }
  const lx = svgEl("text", { x: m.l, y: H - 6 });
  lx.textContent = "cycle " + fmt(x0);
  svg.append(lx);
  const rx = svgEl("text", { x: W - m.r, y: H - 6, "text-anchor": "end" });
  rx.textContent = "cycle " + fmt(x1);
  svg.append(rx);

  const d = xs.map((t, i) =>
    (i ? "L" : "M") + x(t).toFixed(1) + " " + y(vs[i]).toFixed(1)).join(" ");
  svg.append(svgEl("path", { d, fill: "none", stroke: color,
    "stroke-width": 1.5, "stroke-linejoin": "round", "stroke-linecap": "round" }));

  /* crosshair + tooltip, same interaction as the trend chart */
  const cross = svgEl("line", { y1: m.t, y2: m.t + ih, stroke: base,
    "stroke-width": 1, visibility: "hidden" });
  svg.append(cross);
  const hover = svgEl("circle", { r: 4, fill: color, stroke: surface,
    "stroke-width": 2, visibility: "hidden" });
  svg.append(hover);
  const hit = svgEl("rect", { x: m.l, y: m.t, width: iw, height: ih,
    fill: "transparent" });
  hit.addEventListener("pointermove", (ev) => {
    const box = svg.getBoundingClientRect();
    const px = ((ev.clientX - box.left) / box.width) * W;
    let best = 0;
    for (let i = 1; i < xs.length; i++)
      if (Math.abs(x(xs[i]) - px) < Math.abs(x(xs[best]) - px)) best = i;
    cross.setAttribute("x1", x(xs[best]));
    cross.setAttribute("x2", x(xs[best]));
    cross.setAttribute("visibility", "visible");
    hover.setAttribute("cx", x(xs[best]));
    hover.setAttribute("cy", y(vs[best]));
    hover.setAttribute("visibility", "visible");
    tip.replaceChildren(
      el("div", "val", fmt(vs[best])),
      el("div", "when", "cycle " + fmt(xs[best])));
    tip.style.display = "block";
    const wrapBox = wrap.getBoundingClientRect();
    const tx = ((x(xs[best]) / W) * box.width) + 12;
    tip.style.left = Math.min(tx, wrapBox.width - 140) + "px";
    tip.style.top = (((y(vs[best]) / H) * box.height) +
      (svg.getBoundingClientRect().top - wrapBox.top) - 10) + "px";
  });
  hit.addEventListener("pointerleave", () => {
    tip.style.display = "none";
    cross.setAttribute("visibility", "hidden");
    hover.setAttribute("visibility", "hidden");
  });
  svg.append(hit);
}

/* ------------------------------------------------ steering decision panel */
async function loadDecisions(run) {
  const body = $("decisions-body");
  $("decisions-title").textContent = "Steering decisions — " + run.run_id;
  body.replaceChildren(el("p", "hint", "loading…"));
  try {
    const data = await fetchJSON("/api/runs/" + run.run_id + "/decisions");
    const ledger = data.decisions || {};
    const decisions = ledger.decisions || [];
    body.replaceChildren();
    if (decisions.length === 0) {
      body.append(el("p", "hint", "Ledger attached but no steering decisions were recorded."));
      return;
    }
    const table = document.createElement("table");
    const thead = document.createElement("thead");
    const hrow = document.createElement("tr");
    for (const h of ["cycle", "sel", "config", "err", "demand", "idle", "pred IPC", "real IPC", "Δ"]) {
      hrow.append(el("th", ["cycle", "sel", "err", "pred IPC", "real IPC", "Δ"].includes(h) ? "num" : null, h));
    }
    thead.append(hrow);
    table.append(thead);
    const tbody = document.createElement("tbody");
    const counts = (obj) => Object.entries(obj || {})
      .filter(([, n]) => n > 0).map(([t, n]) => t + ":" + n).join(" ") || "–";
    for (const d of decisions) {
      const tr = document.createElement("tr");
      tr.append(el("td", "num", fmt(d.cycle)));
      tr.append(el("td", "num", fmt(d.selection)));
      tr.append(el("td", "mono", d.config || "?"));
      tr.append(el("td", "num", fmt(d.error)));
      tr.append(el("td", "mono", counts(d.demand)));
      tr.append(el("td", "mono", counts(d.idle)));
      tr.append(el("td", "num", d.predicted_ipc == null ? "–" : d.predicted_ipc.toFixed(2)));
      tr.append(el("td", "num", d.realized_ipc == null ? "–" : d.realized_ipc.toFixed(2)));
      const pe = d.prediction_error;
      tr.append(el("td", "num " + (pe >= 0 ? "delta-pos" : "delta-neg"),
        pe == null ? "–" : (pe >= 0 ? "+" : "") + pe.toFixed(2)));
      tbody.append(tr);
    }
    table.append(tbody);
    body.append(table);
    body.append(el("p", "hint",
      fmt(ledger.seen) + " decisions seen, " + fmt(ledger.dropped) +
      " thinned; realized IPC measured over the next " + fmt(ledger.window) +
      "-cycle window (or until the next decision)."));
  } catch (err) {
    body.replaceChildren(el("p", "hint",
      "No decision ledger for this run — only ledger-enabled runs " +
      "(e.g. the steering-telemetry factory) record one."));
  }
}

function togglePick(runId, box) {
  if (box.checked) {
    state.picked.push(runId);
    while (state.picked.length > 2) state.picked.shift();
  } else {
    state.picked = state.picked.filter((id) => id !== runId);
  }
  renderTable();
  if (state.picked.length === 2) loadDiff(state.picked[0], state.picked[1]);
}

async function loadDiff(a, b) {
  const body = $("diff-body");
  try {
    const diff = await fetchJSON("/api/diff?a=" + a + "&b=" + b);
    body.replaceChildren();
    body.append(el("p", "hint",
      "A = " + diff.a.run_id + " (" + diff.a.experiment + ")  ·  B = " +
      diff.b.run_id + " (" + diff.b.experiment + ")"));
    const table = document.createElement("table");
    const thead = document.createElement("thead");
    const hrow = document.createElement("tr");
    for (const h of ["metric", "A", "B", "Δ (B−A)", ""]) {
      const th = el("th", h === "metric" ? null : "num", h);
      hrow.append(th);
    }
    thead.append(hrow);
    table.append(thead);
    const tbody = document.createElement("tbody");
    const entries = Object.entries(diff.metrics);
    const maxPct = Math.max(0.0001, ...entries.map(([, m]) =>
      m.delta !== undefined && m.a ? Math.abs(m.delta / m.a) : 0));
    for (const [name, m] of entries) {
      const tr = document.createElement("tr");
      tr.append(el("td", null, name));
      tr.append(el("td", "num", fmt(m.a)));
      tr.append(el("td", "num", fmt(m.b)));
      const delta = m.delta;
      tr.append(el("td", "num " + (delta >= 0 ? "delta-pos" : "delta-neg"),
        delta === undefined ? "–" : (delta >= 0 ? "+" : "") + fmt(delta)));
      const cell = el("td");
      if (delta !== undefined && m.a) {
        const wrap = el("div", "bar-wrap");
        wrap.append(el("div", "bar-axis"));
        const bar = el("div", "bar " + (delta >= 0 ? "pos" : "neg"));
        const pct = Math.min(1, Math.abs(delta / m.a) / maxPct);
        bar.style.width = (pct * 48) + "%";
        wrap.append(bar);
        wrap.title = name + ": " + (delta >= 0 ? "+" : "") +
          (100 * delta / m.a).toFixed(1) + "% vs A";
        cell.append(wrap);
      }
      tr.append(cell);
      tbody.append(tr);
    }
    table.append(tbody);
    body.append(table);
  } catch (err) {
    body.replaceChildren(el("p", "error", String(err)));
  }
}

/* ---------------------------------------------------------- trend chart */
const SVG_NS = "http://www.w3.org/2000/svg";
const svgEl = (tag, attrs) => {
  const node = document.createElementNS(SVG_NS, tag);
  for (const [k, v] of Object.entries(attrs || {})) node.setAttribute(k, v);
  return node;
};
const cssVar = (name) =>
  getComputedStyle(document.body).getPropertyValue(name).trim();

function renderTrend() {
  const svg = $("trend");
  svg.replaceChildren();
  $("trend-title").textContent =
    (state.experiment || "all experiments") + " — " + (state.metric || "metric");
  const pts = state.runs
    .filter((r) => typeof r.metrics[state.metric] === "number")
    .sort((x, y) => x.created - y.created)
    .map((r) => ({ t: r.created, v: r.metrics[state.metric], run: r }));
  const hint = $("trend-hint");
  if (pts.length === 0) {
    hint.textContent = "No runs carry this metric yet.";
    return;
  }
  hint.textContent = pts.length === 1
    ? "One point so far — trends appear as more runs land."
    : pts.length + " runs, oldest to newest.";

  const W = 680, H = 240, m = { l: 56, r: 20, t: 12, b: 28 };
  const iw = W - m.l - m.r, ih = H - m.t - m.b;
  const t0 = pts[0].t, t1 = pts[pts.length - 1].t || t0 + 1;
  let v0 = Math.min(...pts.map((p) => p.v)), v1 = Math.max(...pts.map((p) => p.v));
  if (v0 === v1) { v0 -= Math.abs(v0) * 0.1 + 0.5; v1 += Math.abs(v1) * 0.1 + 0.5; }
  const pad = (v1 - v0) * 0.08;
  v0 -= pad; v1 += pad;
  const x = (t) => m.l + (t1 === t0 ? iw / 2 : ((t - t0) / (t1 - t0)) * iw);
  const y = (v) => m.t + ih - ((v - v0) / (v1 - v0)) * ih;

  const line = cssVar("--series-1"), gridC = cssVar("--grid"),
        base = cssVar("--baseline"), surface = cssVar("--surface-1");

  for (let i = 0; i <= 4; i++) {                 /* hairline solid grid */
    const gy = m.t + (ih * i) / 4;
    svg.append(svgEl("line",
      { x1: m.l, x2: W - m.r, y1: gy, y2: gy, stroke: gridC, "stroke-width": 1 }));
    const label = svgEl("text", { x: m.l - 8, y: gy + 4, "text-anchor": "end" });
    label.textContent = fmt(v1 - ((v1 - v0) * i) / 4);
    svg.append(label);
  }
  svg.append(svgEl("line",                        /* x baseline */
    { x1: m.l, x2: W - m.r, y1: m.t + ih, y2: m.t + ih, stroke: base, "stroke-width": 1 }));
  const lx = svgEl("text", { x: m.l, y: H - 8 });
  lx.textContent = when(t0);
  svg.append(lx);
  if (t1 !== t0) {
    const rx = svgEl("text", { x: W - m.r, y: H - 8, "text-anchor": "end" });
    rx.textContent = when(t1);
    svg.append(rx);
  }

  const d = pts.map((p, i) => (i ? "L" : "M") + x(p.t).toFixed(1) + " " + y(p.v).toFixed(1)).join(" ");
  svg.append(svgEl("path", { d, fill: "none", stroke: line,
    "stroke-width": 2, "stroke-linejoin": "round", "stroke-linecap": "round" }));
  const last = pts[pts.length - 1];               /* end-dot + surface ring */
  svg.append(svgEl("circle", { cx: x(last.t), cy: y(last.v), r: 4.5,
    fill: line, stroke: surface, "stroke-width": 2 }));
  const endLabel = svgEl("text",
    { x: Math.min(x(last.t) + 8, W - m.r), y: y(last.v) - 8 });
  endLabel.textContent = fmt(last.v);
  endLabel.style.fill = cssVar("--text-secondary");
  svg.append(endLabel);

  /* crosshair + tooltip: the hit area is the whole plot, snap to nearest X */
  const cross = svgEl("line", { y1: m.t, y2: m.t + ih, stroke: base,
    "stroke-width": 1, visibility: "hidden" });
  svg.append(cross);
  const hover = svgEl("circle", { r: 4.5, fill: line, stroke: surface,
    "stroke-width": 2, visibility: "hidden" });
  svg.append(hover);
  const hit = svgEl("rect", { x: m.l, y: m.t, width: iw, height: ih,
    fill: "transparent" });
  const tip = $("tooltip");
  hit.addEventListener("pointermove", (ev) => {
    const box = svg.getBoundingClientRect();
    const px = ((ev.clientX - box.left) / box.width) * W;
    let best = pts[0];
    for (const p of pts) if (Math.abs(x(p.t) - px) < Math.abs(x(best.t) - px)) best = p;
    cross.setAttribute("x1", x(best.t));
    cross.setAttribute("x2", x(best.t));
    cross.setAttribute("visibility", "visible");
    hover.setAttribute("cx", x(best.t));
    hover.setAttribute("cy", y(best.v));
    hover.setAttribute("visibility", "visible");
    tip.replaceChildren(
      el("div", "val", fmt(best.v)),
      el("div", "when", when(best.t) + " · " + (best.run.label || best.run.run_id)));
    tip.style.display = "block";
    const wrap = $("chart-wrap").getBoundingClientRect();
    const tx = ((x(best.t) / W) * box.width) + 12;
    tip.style.left = Math.min(tx, wrap.width - 170) + "px";
    tip.style.top = ((y(best.v) / H) * box.height - 14) + "px";
  });
  hit.addEventListener("pointerleave", () => {
    tip.style.display = "none";
    cross.setAttribute("visibility", "hidden");
    hover.setAttribute("visibility", "hidden");
  });
  svg.append(hit);
}

$("exp-select").addEventListener("change", (ev) => {
  state.experiment = ev.target.value;
  state.picked = [];
  loadRuns();
});
$("metric-select").addEventListener("change", (ev) => {
  state.metric = ev.target.value;
  renderTrend();
});

(async function init() {
  try {
    await loadHealth();
    await loadExperiments();
    await loadRuns();
  } catch (err) {
    document.body.append(el("p", "error", "dashboard failed to load: " + err));
  }
})();
</script>
</body>
</html>
"""
