"""Threaded HTTP JSON API over the run store, plus the dashboard page.

The request logic lives in :class:`ServingApp.handle`, a pure function
from ``(method, path, query, headers, body)`` to ``(status, headers,
payload)`` — unit-testable without sockets — and a thin
:class:`http.server.BaseHTTPRequestHandler` adapter plugs it into a
:class:`~http.server.ThreadingHTTPServer` for real traffic
(``python -m repro serve``).

Endpoints::

    GET  /                   dashboard (self-contained HTML)
    GET  /metrics            Prometheus text exposition (always on)
    GET  /api/health         service + store + cache counters
    GET  /api/runs           run list   (?experiment=&limit=&offset=)
    GET  /api/runs/<id>      one run    (?format=text for a curl view)
    GET  /api/runs/<id>/artifact     full result payload from the blob cache
    GET  /api/runs/<id>/timeseries   per-cycle telemetry series of the run
    GET  /api/experiments    distinct experiments with counts
    GET  /api/diff?a=&b=     metric-by-metric diff of two runs
    GET  /api/runs/<id>/decisions    steering decision ledger of the run
    GET  /api/logs           structured event log (?trace=&event=&limit=)
    GET  /api/jobs           submitted-job records
    GET  /api/jobs/<id>      one submitted job
    POST /api/jobs           submit a simulation job spec (202 / 200 cached)

Job submissions mint a trace-context id (honouring an
``X-Repro-Trace-Id`` request header) that rides on the job row through
claim and simulation, stamps every event-log record the job touches,
and lets ``repro trace <run-id>`` assemble one merged Perfetto file per
request — see :mod:`repro.telemetry.tracing2`.

Every request is counted and timed into a
:class:`~repro.telemetry.MetricsRegistry` (labels are the route
*template*, never the raw path, so cardinality stays bounded); an
optional ``access_log`` callable receives one structured record per
request (``repro serve --verbose``).

Run and diff responses carry an ``ETag`` derived from the run's content
hash (``If-None-Match`` revalidates to 304) and a ``Cache-Control``
matched to the resource's mutability: artifacts are content-addressed
and therefore immutable; run rows can be upserted and get a short TTL.
"""

from __future__ import annotations

import json
import re
import time
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.errors import ReproError
from repro.evaluation.batch import ResultCache
from repro.evaluation.report import render_kv
from repro.serving.dashboard import DASHBOARD_HTML
from repro.serving.jobs import JobQueueFull, StoreJobQueue
from repro.serving.store import RunStore
from repro.telemetry import (
    EventLog,
    MetricsRegistry,
    TRACE_HEADER,
    events_path_for,
    mint_trace_id,
    read_events,
    render_merged,
)

__all__ = ["ServingApp", "make_server", "serve"]

_RUN_PATH = re.compile(r"/api/runs/([0-9a-f]{8,64})")
_ARTIFACT_PATH = re.compile(r"/api/runs/([0-9a-f]{8,64})/artifact")
_TIMESERIES_PATH = re.compile(r"/api/runs/([0-9a-f]{8,64})/timeseries")
_DECISIONS_PATH = re.compile(r"/api/runs/([0-9a-f]{8,64})/decisions")
_JOB_PATH = re.compile(r"/api/jobs/([\w-]+)")

#: last-run metrics surfaced as gauges on /metrics.
_LAST_RUN_METRICS = (
    "ipc", "cycles", "retired", "reconfigurations", "steering_mean_error",
)

#: Cache-Control values by resource mutability.
_CC_IMMUTABLE = "public, max-age=31536000, immutable"
_CC_RUN = "public, max-age=60"
_CC_NONE = "no-cache"


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of a result payload to JSON-safe values."""
    to_dict = getattr(value, "to_dict", None)
    if callable(to_dict):
        return _jsonable(to_dict())
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


class ServingApp:
    """The HTTP-facing façade over store + cache + job queue."""

    def __init__(
        self,
        store: RunStore,
        cache: ResultCache | None = None,
        jobs=None,
        registry: MetricsRegistry | None = None,
        access_log=None,
        worker_name: str | None = None,
        events: EventLog | None = None,
    ) -> None:
        self.store = store
        self.cache = cache
        self.jobs = jobs
        self.registry = MetricsRegistry() if registry is None else registry
        #: optional callable receiving one dict per handled request.
        self.access_log = access_log
        #: optional structured event log; backs ``GET /api/logs`` and
        #: receives a ``job_submitted`` record per accepted submission.
        self.events = events
        #: set under the pre-fork supervisor: this worker's identity.
        #: When set, /metrics publishes a snapshot into the store and
        #: answers with the merged view across all live workers.
        self.worker_name = worker_name
        self.started = time.time()
        self._requests = self.registry.counter(
            "repro_http_requests_total",
            "HTTP requests handled, by method/route/status.",
            ("method", "route", "status"),
        )
        self._latency = self.registry.histogram(
            "repro_http_request_seconds",
            "Request handling latency in seconds.",
            ("route",),
        )
        self._rejected = self.registry.counter(
            "repro_jobs_rejected_total",
            "Job submissions rejected with 503, by reason.",
            ("reason",),
        )

    # -------------------------------------------------------- entry point
    def handle(
        self,
        method: str,
        path: str,
        query: dict[str, str] | None = None,
        headers: dict[str, str] | None = None,
        body: bytes = b"",
    ) -> tuple[int, dict[str, str], bytes]:
        query = query or {}
        headers = {k.lower(): v for k, v in (headers or {}).items()}
        start = time.perf_counter()
        try:
            response = self._route(method, path, query, headers, body)
        except ReproError as exc:
            response = self._error(400, str(exc))
        except KeyError as exc:
            response = self._error(404, f"no such run: {exc.args[0]}")
        elapsed = time.perf_counter() - start
        route = self._route_label(path)
        self._requests.labels(method, route, str(response[0])).inc()
        self._latency.labels(route).observe(elapsed)
        if self.access_log is not None:
            self.access_log(
                {
                    "method": method,
                    "path": path,
                    "status": response[0],
                    "latency_ms": round(elapsed * 1000, 3),
                }
            )
        return response

    _KNOWN_ROUTES = frozenset(
        {
            "/", "/metrics", "/api/health", "/api/runs", "/api/experiments",
            "/api/diff", "/api/jobs", "/api/logs",
        }
    )

    @classmethod
    def _route_label(cls, path: str) -> str:
        """Collapse a request path to its route template (bounded label set)."""
        if path == "/index.html":
            return "/"
        if path in cls._KNOWN_ROUTES:
            return path
        if _TIMESERIES_PATH.fullmatch(path):
            return "/api/runs/{id}/timeseries"
        if _DECISIONS_PATH.fullmatch(path):
            return "/api/runs/{id}/decisions"
        if _ARTIFACT_PATH.fullmatch(path):
            return "/api/runs/{id}/artifact"
        if _RUN_PATH.fullmatch(path):
            return "/api/runs/{id}"
        if _JOB_PATH.fullmatch(path):
            return "/api/jobs/{id}"
        return "(other)"

    def _route(self, method, path, query, headers, body):
        if method in ("GET", "HEAD"):
            if path in ("/", "/index.html"):
                return (
                    200,
                    {
                        "Content-Type": "text/html; charset=utf-8",
                        "Cache-Control": _CC_NONE,
                    },
                    DASHBOARD_HTML.encode(),
                )
            if path == "/metrics":
                return self._metrics()
            if path == "/api/health":
                return self._health()
            if path == "/api/runs":
                return self._runs(query)
            if path == "/api/experiments":
                return self._experiments()
            if path == "/api/diff":
                return self._diff(query, headers)
            match = _TIMESERIES_PATH.fullmatch(path)
            if match:
                return self._timeseries(match.group(1), headers)
            match = _DECISIONS_PATH.fullmatch(path)
            if match:
                return self._decisions(match.group(1), headers)
            match = _ARTIFACT_PATH.fullmatch(path)
            if match:
                return self._artifact(match.group(1), headers)
            match = _RUN_PATH.fullmatch(path)
            if match:
                return self._run(match.group(1), query, headers)
            if path == "/api/logs":
                return self._logs(query)
            if path == "/api/jobs":
                return self._jobs_list()
            match = _JOB_PATH.fullmatch(path)
            if match:
                return self._job(match.group(1))
        elif method == "POST":
            if path == "/api/jobs":
                return self._submit(headers, body)
            return self._error(405, f"POST not supported on {path}")
        else:
            return self._error(405, f"method {method} not supported")
        return self._error(404, f"no such resource: {path}")

    # ----------------------------------------------------------- responses
    @staticmethod
    def _json(
        status: int,
        payload: Any,
        etag: str | None = None,
        cache_control: str | None = None,
        extra: dict[str, str] | None = None,
    ) -> tuple[int, dict[str, str], bytes]:
        headers = {"Content-Type": "application/json; charset=utf-8"}
        if etag is not None:
            headers["ETag"] = etag
        if cache_control is not None:
            headers["Cache-Control"] = cache_control
        if extra:
            headers.update(extra)
        body = json.dumps(payload, indent=1, sort_keys=True).encode()
        return status, headers, body + b"\n"

    @classmethod
    def _error(cls, status: int, message: str):
        return cls._json(status, {"error": message, "status": status})

    @staticmethod
    def _etag_matches(headers: dict[str, str], etag: str) -> bool:
        got = headers.get("if-none-match", "")
        return got == "*" or etag in [t.strip() for t in got.split(",")]

    @staticmethod
    def _run_etag(run: dict[str, Any]) -> str:
        return f'"{run["config_hash"][:24]}.{int(run["created"])}"'

    def _not_modified(self, etag: str, cache_control: str):
        return 304, {"ETag": etag, "Cache-Control": cache_control}, b""

    # ------------------------------------------------------------- handlers
    def _metrics(self):
        """Prometheus text exposition: request metrics + live gauges."""
        r = self.registry
        r.gauge(
            "repro_uptime_seconds", "Seconds since the server started."
        ).set(time.time() - self.started)
        r.gauge(
            "repro_store_runs", "Runs indexed in the run store."
        ).set(self.store.count())
        r.gauge(
            "repro_jobs_pending", "Submitted jobs queued but not started."
        ).set(self.jobs.depth() if self.jobs is not None else 0)
        if self.cache is not None:
            stats = self.cache.stats()
            r.gauge(
                "repro_cache_memory_entries", "Result-cache in-memory entries."
            ).set(stats["memory_entries"])
            r.gauge(
                "repro_cache_disk_blobs", "Result-cache blobs on disk."
            ).set(stats["disk_blobs"])
            r.gauge(
                "repro_cache_disk_bytes", "Result-cache bytes on disk."
            ).set(stats["disk_bytes"])
            r.gauge(
                "repro_cache_hits", "Result-cache hits over this process."
            ).set(stats["hits"])
            r.gauge(
                "repro_cache_misses", "Result-cache misses over this process."
            ).set(stats["misses"])
        runs = self.store.list_runs(limit=1)
        if runs:
            metrics = runs[0].get("metrics") or {}
            last = r.gauge(
                "repro_last_run_metric",
                "Simulator metrics of the most recently recorded run.",
                ("metric",),
            )
            for name in _LAST_RUN_METRICS:
                value = metrics.get(name)
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    last.labels(name).set(value)
        if self.worker_name is not None:
            # Publish this worker's fresh snapshot, then answer with the
            # merged view: every live worker's series, `worker`-labelled.
            self.store.publish_worker_metrics(self.worker_name, r.snapshot())
            body = render_merged(self.store.worker_metrics())
        else:
            body = r.render()
        return (
            200,
            {
                "Content-Type": "text/plain; version=0.0.4; charset=utf-8",
                "Cache-Control": _CC_NONE,
            },
            body.encode(),
        )

    def _health(self):
        payload = {
            "status": "ok",
            "uptime_seconds": round(time.time() - self.started, 1),
            "runs": self.store.count(),
            "experiments": len(self.store.experiments()),
            "cache": self.cache.stats() if self.cache is not None else None,
            "jobs_pending": self.jobs.depth() if self.jobs is not None else 0,
        }
        return self._json(200, payload, cache_control=_CC_NONE)

    def _runs(self, query):
        try:
            limit = int(query.get("limit", 100))
            offset = int(query.get("offset", 0))
        except ValueError:
            return self._error(400, "limit/offset must be integers")
        runs = self.store.list_runs(
            experiment=query.get("experiment"), limit=limit, offset=offset
        )
        return self._json(
            200,
            {"runs": runs, "count": len(runs)},
            cache_control=_CC_NONE,
        )

    def _experiments(self):
        return self._json(
            200, {"experiments": self.store.experiments()}, cache_control=_CC_NONE
        )

    def _run(self, run_id, query, headers):
        run = self.store.get_run(run_id)
        if run is None:
            return self._error(404, f"no such run: {run_id}")
        etag = self._run_etag(run)
        if self._etag_matches(headers, etag):
            return self._not_modified(etag, _CC_RUN)
        run["artifact"] = (
            self.cache is not None and self.cache.has(run["config_hash"])
        )
        if query.get("format") == "text":
            flat = {k: v for k, v in run.items() if k != "metrics"}
            text = (
                render_kv(flat, title=f"run {run_id}")
                + "\n\n"
                + render_kv(run["metrics"], title="metrics")
                + "\n"
            )
            return (
                200,
                {
                    "Content-Type": "text/plain; charset=utf-8",
                    "ETag": etag,
                    "Cache-Control": _CC_RUN,
                },
                text.encode(),
            )
        return self._json(200, run, etag=etag, cache_control=_CC_RUN)

    def _artifact(self, run_id, headers):
        run = self.store.get_run(run_id)
        if run is None:
            return self._error(404, f"no such run: {run_id}")
        key = run["config_hash"]
        etag = f'"{key}"'
        if self._etag_matches(headers, etag):
            return self._not_modified(etag, _CC_IMMUTABLE)
        result = self.cache.get(key) if self.cache is not None else None
        if result is None:
            return self._error(
                404, f"run {run_id} has no cached artifact (key {key[:12]}…)"
            )
        return self._json(
            200,
            {"run_id": run_id, "key": key, "artifact": _jsonable(result)},
            etag=etag,
            cache_control=_CC_IMMUTABLE,
        )

    def _timeseries(self, run_id, headers):
        """Per-cycle telemetry series of a stored run.

        Served from the run's result-cache blob: only results produced
        with telemetry attached (e.g. the ``steering-telemetry`` factory)
        carry a ``timeseries`` payload; anything else is a 404, like a
        missing artifact.  Content-addressed, hence immutable.
        """
        run = self.store.get_run(run_id)
        if run is None:
            return self._error(404, f"no such run: {run_id}")
        key = run["config_hash"]
        etag = f'"{key[:24]}.ts"'
        if self._etag_matches(headers, etag):
            return self._not_modified(etag, _CC_IMMUTABLE)
        result = self.cache.get(key) if self.cache is not None else None
        payload = result.get("timeseries") if isinstance(result, dict) else None
        if payload is None:
            return self._error(
                404,
                f"run {run_id} has no telemetry time series "
                "(only telemetry-enabled runs carry one)",
            )
        return self._json(
            200,
            {"run_id": run_id, "key": key, "timeseries": _jsonable(payload)},
            etag=etag,
            cache_control=_CC_IMMUTABLE,
        )

    def _decisions(self, run_id, headers):
        """Steering decision ledger of a stored run (``repro explain``).

        Served from the run's result-cache blob: only runs produced with
        a decision ledger attached (``steering-telemetry`` factory with
        ``decision_ledger`` on, the default) carry a ``decisions``
        payload.  Content-addressed, hence immutable.
        """
        run = self.store.get_run(run_id)
        if run is None:
            return self._error(404, f"no such run: {run_id}")
        key = run["config_hash"]
        etag = f'"{key[:24]}.dec"'
        if self._etag_matches(headers, etag):
            return self._not_modified(etag, _CC_IMMUTABLE)
        result = self.cache.get(key) if self.cache is not None else None
        payload = result.get("decisions") if isinstance(result, dict) else None
        if payload is None:
            return self._error(
                404,
                f"run {run_id} has no decision ledger "
                "(only ledger-enabled runs carry one)",
            )
        return self._json(
            200,
            {"run_id": run_id, "key": key, "decisions": _jsonable(payload)},
            etag=etag,
            cache_control=_CC_IMMUTABLE,
        )

    def _logs(self, query):
        """Tail of the structured event log, filterable by trace/event."""
        try:
            limit = int(query.get("limit", 100))
        except ValueError:
            return self._error(400, "limit must be an integer")
        limit = max(1, min(limit, 1000))
        trace = query.get("trace") or None
        event = query.get("event") or None
        if self.events is None:
            entries: list[dict] = []
        elif self.events.path is not None:
            # the file sink sees every process's records, not just ours
            entries = read_events(
                self.events.path, trace=trace, event=event, limit=limit
            )
        else:
            entries = self.events.tail(limit, trace=trace, event=event)
        return self._json(
            200,
            {"events": entries, "count": len(entries)},
            cache_control=_CC_NONE,
        )

    def _diff(self, query, headers):
        a, b = query.get("a"), query.get("b")
        if not a or not b:
            return self._error(400, "diff needs ?a=<run_id>&b=<run_id>")
        diff = self.store.diff(a, b)  # KeyError -> 404 via handle()
        etag = (
            f'"{diff["a"]["config_hash"][:16]}'
            f'.{diff["b"]["config_hash"][:16]}"'
        )
        if self._etag_matches(headers, etag):
            return self._not_modified(etag, _CC_RUN)
        return self._json(200, diff, etag=etag, cache_control=_CC_RUN)

    def _jobs_list(self):
        if self.jobs is None:
            return self._error(404, "no job queue on this server")
        return self._json(
            200,
            {"jobs": [r.to_dict() for r in self.jobs.list()]},
            cache_control=_CC_NONE,
        )

    def _job(self, job_id):
        if self.jobs is None:
            return self._error(404, "no job queue on this server")
        record = self.jobs.get(job_id)
        if record is None:
            return self._error(404, f"no such job: {job_id}")
        return self._json(200, record.to_dict(), cache_control=_CC_NONE)

    def _submit(self, headers, body):
        if self.jobs is None:
            # Same backpressure contract as a full queue: clients retry
            # (this worker may be restarting), and the rejection is counted.
            self._rejected.labels("disabled").inc()
            return self._json(
                503,
                {
                    "error": "job submission disabled on this server",
                    "status": 503,
                },
                extra={"Retry-After": "1"},
            )
        try:
            spec = json.loads(body or b"")
        except json.JSONDecodeError as exc:
            return self._error(400, f"body is not valid JSON: {exc}")
        # trace context is born here: honour the client's id or mint one
        trace_id = mint_trace_id(headers.get(TRACE_HEADER.lower()))
        try:
            record = self.jobs.submit(spec, trace_id=trace_id)
        except JobQueueFull as exc:
            self._rejected.labels("queue_full").inc()
            return self._json(
                503,
                {"error": str(exc), "status": 503},
                extra={"Retry-After": "1"},
            )
        if self.events is not None:
            self.events.emit(
                "job_submitted", trace=trace_id, job_id=record.job_id,
                state=record.state, cached=record.cached,
            )
        # cached submissions are already complete; fresh ones are accepted
        status = 200 if record.cached else 202
        return self._json(status, record.to_dict(), cache_control=_CC_NONE)


# ----------------------------------------------------------- socket layer
def make_server(
    app: ServingApp,
    host: str = "127.0.0.1",
    port: int = 8734,
    sock=None,
):
    """Build a ThreadingHTTPServer around ``app`` (port 0 = ephemeral).

    When ``sock`` is given it must already be bound and listening (the
    pre-fork supervisor hands each worker its socket); the server adopts
    it instead of binding ``(host, port)`` itself.
    """
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    class Handler(BaseHTTPRequestHandler):
        server_version = "repro-serving/1.0"
        protocol_version = "HTTP/1.1"

        def _dispatch(self, method: str) -> None:
            parts = urlsplit(self.path)
            query = {
                k: v[-1] for k, v in parse_qs(parts.query).items()
            }
            length = int(self.headers.get("Content-Length") or 0)
            body = self.rfile.read(length) if length else b""
            status, headers, payload = self.server.app.handle(
                method, parts.path, query, dict(self.headers), body
            )
            self.send_response(status)
            for name, value in headers.items():
                self.send_header(name, value)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            if method != "HEAD" and status != 304:
                self.wfile.write(payload)

        def do_GET(self):
            self._dispatch("GET")

        def do_HEAD(self):
            self._dispatch("HEAD")

        def do_POST(self):
            self._dispatch("POST")

        def log_message(self, fmt, *args):  # quiet by default
            pass

    if sock is None:
        server = ThreadingHTTPServer((host, port), Handler)
    else:
        server = ThreadingHTTPServer((host, port), Handler, bind_and_activate=False)
        server.socket.close()
        server.socket = sock
        server.server_address = sock.getsockname()
        server.server_name = host
        server.server_port = server.server_address[1]
    server.daemon_threads = True
    server.app = app
    return server


def serve(
    store_path: str,
    cache_dir: str | None = None,
    host: str = "127.0.0.1",
    port: int = 8734,
    sim_workers: int = 0,
    queue_capacity: int = 8,
    cache_max_bytes: int | None = None,
    cache_max_age: float | None = None,
    retention_max_runs: int | None = None,
    retention_max_age_days: float | None = None,
    verbose: bool = False,
    log=None,
):
    """Wire up store + cache + job queue and serve until interrupted.

    Prunes the on-disk result cache on startup (LRU, per the given
    limits — with no limits only stale tmp files are cleared), so a
    long-running server keeps ``.report-cache`` bounded; run-store
    retention (``retention_max_runs`` / ``retention_max_age_days``)
    trims old runs and settled jobs the same way.  ``/metrics`` is
    always exposed.  Every request lands in the structured event log
    (``<store>.events.jsonl`` + ``GET /api/logs``); ``verbose``
    additionally echoes each event-log line to stderr.
    """
    def note(msg: str) -> None:
        if log is not None:
            log(msg)

    store = RunStore(store_path)
    if retention_max_runs is not None or retention_max_age_days is not None:
        trimmed = store.prune(
            max_runs=retention_max_runs, max_age_days=retention_max_age_days
        )
        note(
            f"store retention: removed {trimmed['removed_runs']} runs, "
            f"{trimmed['removed_jobs']} settled jobs, "
            f"kept {trimmed['kept_runs']} runs"
        )
    cache = ResultCache(cache_dir) if cache_dir is not None else ResultCache()
    if cache.directory is not None:
        pruned = cache.prune(max_bytes=cache_max_bytes, max_age=cache_max_age)
        note(
            f"cache GC: removed {pruned['removed']} blobs "
            f"({pruned['bytes_freed']} bytes), kept {pruned['kept']}"
        )
    registry = MetricsRegistry()
    events = EventLog(
        "serve", path=events_path_for(store_path), echo=verbose
    )
    jobs = StoreJobQueue(
        store, cache=cache, sim_workers=sim_workers,
        capacity=queue_capacity, registry=registry, events=events,
    )
    jobs.start()

    def access_log(record: dict) -> None:
        events.emit("http_request", **record)

    app = ServingApp(
        store, cache=cache, jobs=jobs, registry=registry,
        access_log=access_log, events=events,
    )
    server = make_server(app, host, port)
    note(f"serving on http://{host}:{server.server_address[1]}/")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        note("shutting down")
    finally:
        server.server_close()
        jobs.stop()
        store.close()
        events.close()
    return 0
