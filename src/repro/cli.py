"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``kernels``
    List the built-in workload kernels.
``run <kernel-or-file.s> [--policy P] [--reconfig-latency N] ...``
    Simulate a kernel (by name) or an assembly file and print the result
    summary; with ``--compare`` runs every policy and prints an IPC table.
``disasm <file.s>``
    Assemble a file and print the binary encoding next to the disassembly.
``artifacts [name ...]``
    Regenerate paper artifacts (tables/figures); default: all of them.
``trace <kernel-or-file.s> [--cycles N]``
    Run with event recording and print the fabric-occupancy timeline.
``trace <run-id> [--store runs.sqlite] [-o trace.json]``
    Assemble the merged end-to-end Perfetto trace of a served run:
    queue-wait + claim/execute spans, the cycle-domain simulation
    trace, and matching event-log records, all under one trace id.
``explain <run-id> [--store runs.sqlite] [--json]``
    Print the run's steering decision ledger: the demand/availability
    inputs, candidate errors, chosen configuration and predicted vs.
    realized IPC of every recorded steering decision.
``serve [--port N] [--store runs.sqlite] [--cache-dir .report-cache]``
    Serve the run store + dashboard over HTTP (see docs/serving.md).
``lint [--format json] [--update-baseline]``
    Static analysis of the simulator's performance/determinism/
    concurrency/layering invariants (see docs/static-analysis.md).
``goldens check|diff|update [--root tests/goldens]``
    Golden-trace corpus: replay every (policy x workload) cell and
    compare against the committed canonical records; ``update``
    requires an explicit ``--spec-version`` bump (docs/verification.md).
``fuzz [--seed S] [--iterations N] [--time-budget T] [--out DIR]``
    Differential policy fuzzing: generated programs through every
    catalogue policy, cross-checked against the functional reference;
    failures are minimized and written as ready-to-run reproducers.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

from repro.core.baselines import policy_catalogue
from repro.core.params import ProcessorParams
from repro.core.policies import PaperSteering
from repro.core.processor import Processor
from repro.core.tracing import render_fabric_timeline
from repro.evaluation import artifacts as artifacts_mod
from repro.evaluation.report import render_table
from repro.isa.assembler import assemble
from repro.isa.disassembler import format_instruction
from repro.isa.program import Program
from repro.workloads.kernels import all_kernels, kernel_by_name

__all__ = ["main"]

_ARTIFACTS = {
    "table1": lambda: artifacts_mod.table1(),
    "table2": lambda: artifacts_mod.table2(),
    "fig1": lambda: artifacts_mod.figure1_inventory(),
    "fig2": lambda: artifacts_mod.figure2_selection_demo(),
    "fig3": lambda: artifacts_mod.figure3_cem_study().table,
    "fig456": lambda: artifacts_mod.figure456_wakeup_example(),
    "fig7": lambda: artifacts_mod.figure7_availability_check(),
}


def _load_program(target: str) -> Program:
    """Kernel name, assembly file, or synthetic spec.

    Synthetic specs: ``mix:<int|mem|fp|balanced>[:iterations[:seed]]`` and
    ``phased[:seed]`` (int -> mem -> fp phases).
    """
    if target.startswith("mix:"):
        from repro.workloads.synthetic import (
            BALANCED_MIX, FP_MIX, INT_MIX, MEM_MIX, synthetic_program,
        )

        parts = target.split(":")
        mixes = {"int": INT_MIX, "mem": MEM_MIX, "fp": FP_MIX,
                 "balanced": BALANCED_MIX}
        mix = mixes.get(parts[1])
        if mix is None:
            raise SystemExit(f"unknown mix {parts[1]!r}; choose from {sorted(mixes)}")
        iterations = int(parts[2]) if len(parts) > 2 else 50
        seed = int(parts[3]) if len(parts) > 3 else 0
        return synthetic_program(mix, iterations=iterations, seed=seed)
    if target.startswith("phased"):
        from repro.workloads.phases import phased_program
        from repro.workloads.synthetic import FP_MIX, INT_MIX, MEM_MIX

        parts = target.split(":")
        seed = int(parts[1]) if len(parts) > 1 else 0
        return phased_program(
            [(INT_MIX, 50), (MEM_MIX, 50), (FP_MIX, 50)], seed=seed
        )
    path = pathlib.Path(target)
    if path.suffix == ".s" or path.exists():
        return assemble(path.read_text())
    return kernel_by_name(target).program


def _params_from_args(args: argparse.Namespace) -> ProcessorParams:
    return ProcessorParams(
        window_size=args.window,
        fetch_width=args.width,
        retire_width=args.width,
        reconfig_latency=args.reconfig_latency,
    )


def _cmd_kernels(_args: argparse.Namespace) -> int:
    rows = [(k.name, k.description) for k in all_kernels()]
    print(render_table(["kernel", "description"], rows))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    program = _load_program(args.target)
    params = _params_from_args(args)
    catalogue = policy_catalogue()
    if args.compare:
        rows = []
        for name, factory in catalogue.items():
            result = factory(program, params).run(max_cycles=args.max_cycles)
            rows.append((name, result.ipc, result.cycles, result.reconfigurations))
        rows.sort(key=lambda r: -r[1])
        print(render_table(["policy", "IPC", "cycles", "reconfigs"], rows))
        return 0
    if args.policy not in catalogue:
        print(f"unknown policy {args.policy!r}; choose from "
              f"{', '.join(sorted(catalogue))}", file=sys.stderr)
        return 2
    telemetry = None
    if args.telemetry or args.telemetry_out:
        from repro.telemetry import ProcessorTelemetry, SpanTracer

        telemetry = ProcessorTelemetry(
            tracer=SpanTracer(), profile_stages=args.profile_stages
        )
    proc = catalogue[args.policy](program, params)
    if telemetry is not None:
        proc.attach_telemetry(telemetry)
    result = proc.run(max_cycles=args.max_cycles)
    if args.json:
        from repro.utils.canonical import canonical_dumps

        record = result.to_dict()
        if telemetry is not None:
            record["telemetry"] = telemetry.snapshot()
        print(canonical_dumps(record, pretty=True))
    else:
        print(result.summary())
        if telemetry is not None:
            for line in telemetry.summary_lines():
                print(f"  {line}")
    if args.telemetry_out:
        from repro.utils.canonical import canonical_dumps

        prefix = pathlib.Path(args.telemetry_out)
        trace_path = prefix.with_name(prefix.name + ".trace.json")
        series_path = prefix.with_name(prefix.name + ".series.json")
        telemetry.tracer.write(str(trace_path))
        series_path.write_text(canonical_dumps(telemetry.snapshot(), pretty=True))
        print(
            f"telemetry written to {trace_path} (load in ui.perfetto.dev) "
            f"and {series_path}",
            file=sys.stderr,
        )
    return 0 if result.halted else 1


def _cmd_disasm(args: argparse.Namespace) -> int:
    program = _load_program(args.target)
    for pc, (word, instr) in enumerate(
        zip(program.to_binary(), program.instructions)
    ):
        print(f"{pc:5d}: {word:#010x}  {format_instruction(instr)}")
    return 0


def _cmd_artifacts(args: argparse.Namespace) -> int:
    names = args.names or list(_ARTIFACTS)
    for name in names:
        if name not in _ARTIFACTS:
            print(f"unknown artifact {name!r}; choose from "
                  f"{', '.join(_ARTIFACTS)}", file=sys.stderr)
            return 2
        print(f"==== {name} ====")
        print(_ARTIFACTS[name]())
        print()
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.evaluation.harness import generate_report

    store = None
    if args.store:
        from repro.serving.store import RunStore

        store = RunStore(args.store)
    try:
        text = generate_report(
            fast=not args.full,
            progress=lambda msg: print(f"[report] {msg}", file=sys.stderr),
            workers=args.workers,
            use_cache=not args.no_cache,
            cache_dir=args.cache_dir,
            store=store,
            cache_max_bytes=args.cache_max_bytes,
            telemetry=args.telemetry,
        )
    finally:
        if store is not None:
            store.close()
    if args.output:
        pathlib.Path(args.output).write_text(text)
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    common = dict(
        store_path=args.store,
        cache_dir=args.cache_dir,
        host=args.host,
        port=args.port,
        queue_capacity=args.queue_capacity,
        cache_max_bytes=args.cache_max_bytes,
        cache_max_age=args.cache_max_age_days * 86400
        if args.cache_max_age_days is not None
        else None,
        retention_max_runs=args.retention_max_runs,
        retention_max_age_days=args.retention_max_age_days,
        verbose=args.verbose,
        log=lambda msg: print(f"[serve] {msg}", file=sys.stderr),
    )
    if args.workers > 0:
        from repro.serving.supervisor import serve_forked

        return serve_forked(
            workers=args.workers, sim_pool=args.sim_pool, **common
        )
    from repro.serving.app import serve

    return serve(sim_workers=args.sim_workers, **common)


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import run_lint

    return run_lint(args)


def _cmd_goldens(args: argparse.Namespace) -> int:
    from repro.verify.goldens import check_corpus, read_spec, update_corpus

    progress = (
        (lambda msg: print(f"[goldens] {msg}", file=sys.stderr))
        if args.verbose
        else None
    )
    if args.action == "update":
        if args.spec_version is None:
            print("goldens update requires --spec-version N (strictly above "
                  "the committed version) — see docs/verification.md",
                  file=sys.stderr)
            return 2
        from repro.errors import ConfigurationError

        try:
            written = update_corpus(
                args.root, args.spec_version, workers=args.workers,
                progress=progress,
            )
        except ConfigurationError as exc:
            print(f"goldens update refused: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {written} golden cells at spec_version "
              f"{args.spec_version} under {args.root}")
        return 0
    diffs = check_corpus(args.root, workers=args.workers, progress=progress)
    if not diffs:
        spec = read_spec(args.root)
        print(f"golden corpus clean (spec_version {spec['spec_version']}, "
              f"{len(spec['cells'])} cells)")
        return 0
    for diff in diffs:
        print(diff)
    if args.action == "check":
        print(f"\n{len(diffs)} golden difference(s). A drifting cell is a "
              "bug in the change that drifted it; if the change is intended, "
              "run 'repro goldens update --spec-version N+1' and justify the "
              "bump in the commit.", file=sys.stderr)
        return 1
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.verify.fuzz import run_fuzz

    report = run_fuzz(
        seed=args.seed,
        iterations=args.iterations,
        time_budget=args.time_budget,
        max_cycles=args.max_cycles,
        workers=args.workers,
        out_dir=args.out,
        shrink=not args.no_shrink,
        keep_going=args.keep_going,
        progress=lambda msg: print(f"[fuzz] {msg}", file=sys.stderr),
    )
    print(
        f"fuzz seed={report.seed}: {report.iterations_run}/"
        f"{report.iterations_requested} iterations, {report.simulations} "
        f"simulations, {len(report.failures)} failure(s) "
        f"(stopped: {report.stopped})"
    )
    for failure in report.failures:
        print(f"\niteration {failure.iteration} "
              f"(program seed {failure.program_seed}):")
        for violation in failure.violations:
            print(f"  {violation}")
        if failure.minimized is not None:
            print(f"  minimized to {failure.minimized.instructions} "
                  f"instructions ({failure.minimized.attempts} shrink "
                  f"attempts)")
        for path in failure.artifacts:
            print(f"  wrote {path}")
    return 0 if report.ok else 1


#: a trace target of >=12 lowercase hex chars is a run id, not a kernel.
_RUN_ID_RE = re.compile(r"[0-9a-f]{12,64}")


def _cmd_trace(args: argparse.Namespace) -> int:
    if _RUN_ID_RE.fullmatch(args.target):
        return _trace_run(args)
    program = _load_program(args.target)
    proc = Processor(
        program,
        params=_params_from_args(args),
        policy=PaperSteering(record_trace=True),
        record_events=True,
    )
    proc.run(max_cycles=args.max_cycles)
    print(render_fabric_timeline(proc.events, stride=args.stride))
    return 0


def _trace_run(args: argparse.Namespace) -> int:
    """``repro trace <run-id>``: the merged end-to-end Perfetto file."""
    from repro.evaluation.batch import ResultCache
    from repro.serving.store import RunStore
    from repro.telemetry import events_path_for, merge_job_trace, read_events
    from repro.utils.canonical import canonical_dumps

    run_id = args.target
    store = RunStore(args.store)
    try:
        run = store.get_run(run_id)
        if run is None:
            print(f"no such run in {args.store}: {run_id}", file=sys.stderr)
            return 2
        job = store.job_for_run(run_id)
    finally:
        store.close()

    # the trace id lives on the job row; direct (non-served) runs fall
    # back to the run id so the merge is still self-consistent
    trace_id = (job or {}).get("trace_id") or run_id[:16]
    cache = ResultCache(args.cache_dir)
    payload = cache.get(run["config_hash"])
    sim_trace = payload.get("trace") if isinstance(payload, dict) else None
    events = []
    events_path = events_path_for(args.store)
    if events_path is not None:
        events = read_events(events_path, trace=trace_id, limit=1000)
    merged = merge_job_trace(
        trace_id, job=job, sim_trace=sim_trace, events=events, run_id=run_id
    )
    out = args.output or f"trace-{run_id[:12]}.json"
    pathlib.Path(out).write_text(canonical_dumps(merged, pretty=True) + "\n")
    print(
        f"merged trace: {len(merged['traceEvents'])} events under trace id "
        f"{trace_id} -> {out} (load in ui.perfetto.dev)"
    )
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.evaluation.batch import ResultCache
    from repro.serving.store import RunStore

    store = RunStore(args.store)
    try:
        run = store.get_run(args.run_id)
    finally:
        store.close()
    if run is None:
        print(f"no such run in {args.store}: {args.run_id}", file=sys.stderr)
        return 2
    cache = ResultCache(args.cache_dir)
    payload = cache.get(run["config_hash"])
    ledger = payload.get("decisions") if isinstance(payload, dict) else None
    if ledger is None:
        print(
            f"run {args.run_id} has no decision ledger (only "
            "steering-telemetry runs carry one)",
            file=sys.stderr,
        )
        return 2
    if args.json:
        from repro.utils.canonical import canonical_dumps

        print(canonical_dumps(ledger, pretty=True))
        return 0
    decisions = ledger.get("decisions", [])
    if args.limit is not None:
        decisions = decisions[-args.limit:]

    def fmt(value, spec):
        return "" if value is None else format(value, spec)

    rows = [
        (
            d.get("cycle"),
            d.get("selection"),
            d.get("config") or "?",
            d.get("error"),
            fmt(d.get("predicted_ipc"), ".2f"),
            fmt(d.get("realized_ipc"), ".2f"),
            fmt(d.get("prediction_error"), "+.2f"),
        )
        for d in decisions
    ]
    print(render_table(
        ["cycle", "sel", "config", "err", "pred IPC", "real IPC", "delta"],
        rows,
    ))
    print(
        f"{ledger.get('seen', len(decisions))} decisions seen, "
        f"{ledger.get('dropped', 0)} thinned "
        f"(capacity {ledger.get('capacity')}, window {ledger.get('window')})"
    )
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reconfigurable superscalar processor with configuration steering",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("kernels", help="list built-in kernels").set_defaults(
        func=_cmd_kernels
    )

    def add_sim_args(p):
        p.add_argument("target", help="kernel name or .s assembly file")
        p.add_argument("--reconfig-latency", type=int, default=16)
        p.add_argument("--window", type=int, default=7)
        p.add_argument("--width", type=int, default=4)
        p.add_argument("--max-cycles", type=int, default=1_000_000)

    run = sub.add_parser("run", help="simulate a program")
    add_sim_args(run)
    run.add_argument("--policy", default="steering")
    run.add_argument("--json", action="store_true",
                     help="emit the result record as JSON")
    run.add_argument("--compare", action="store_true",
                     help="run every policy and print an IPC table")
    run.add_argument("--telemetry", action="store_true",
                     help="collect metrics/time-series/trace spans during "
                          "the run and print a telemetry summary")
    run.add_argument("--telemetry-out", default=None, metavar="PREFIX",
                     help="write PREFIX.trace.json (Chrome/Perfetto trace) "
                          "and PREFIX.series.json (implies --telemetry)")
    run.add_argument("--profile-stages", action="store_true",
                     help="wall-clock each pipeline stage (implies the "
                          "slower instrumented cycle loop)")
    run.set_defaults(func=_cmd_run)

    disasm = sub.add_parser("disasm", help="print binary + disassembly")
    disasm.add_argument("target")
    disasm.set_defaults(func=_cmd_disasm)

    art = sub.add_parser("artifacts", help="regenerate paper artifacts")
    art.add_argument("names", nargs="*")
    art.set_defaults(func=_cmd_artifacts)

    report = sub.add_parser("report", help="regenerate the full reproduction report")
    report.add_argument("--full", action="store_true", help="full-scale experiments")
    report.add_argument("--output", "-o", help="write to a file instead of stdout")
    report.add_argument("--workers", type=int, default=0,
                        help="simulation worker processes (0 = sequential)")
    report.add_argument("--no-cache", action="store_true",
                        help="disable the content-keyed simulation result cache")
    report.add_argument("--cache-dir", default=None,
                        help="persist the result cache to this directory "
                             "(shared across report runs; CI keys it on the "
                             "source tree)")
    report.add_argument("--store", default=None,
                        help="register every experiment + simulation as a run "
                             "in this SQLite run store (see 'repro serve')")
    report.add_argument("--cache-max-bytes", type=int, default=None,
                        help="LRU-prune the on-disk result cache to this many "
                             "bytes after the report")
    report.add_argument("--telemetry", action="store_true",
                        help="add an E-TEL section: one instrumented steering "
                             "run whose time-series persist into the cache/"
                             "store (powers the dashboard telemetry panel)")
    report.set_defaults(func=_cmd_report)

    srv = sub.add_parser(
        "serve",
        help="serve the run store + dashboard over HTTP",
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8734)
    srv.add_argument("--store", default="runs.sqlite",
                     help="SQLite run index (created if missing)")
    srv.add_argument("--cache-dir", default=".report-cache",
                     help="content-addressed result blob directory")
    srv.add_argument("--workers", type=int, default=0,
                     help="API worker processes (0 = single threaded "
                          "process; N>=1 forks a pre-fork supervisor with "
                          "N HTTP workers sharing the port)")
    srv.add_argument("--sim-pool", type=int, default=1,
                     help="dedicated simulation worker processes draining "
                          "the durable job queue (supervisor mode only; "
                          "0 = API workers run jobs themselves)")
    srv.add_argument("--sim-workers", type=int, default=0,
                     help="simulation worker processes per submitted job "
                          "(0 = simulate in the server's job thread)")
    srv.add_argument("--retention-max-runs", type=int, default=None,
                     help="on startup, keep only the newest N runs in the "
                          "store")
    srv.add_argument("--retention-max-age-days", type=float, default=None,
                     help="on startup, drop runs (and settled jobs) older "
                          "than this many days")
    srv.add_argument("--queue-capacity", type=int, default=8,
                     help="max queued-but-not-started submitted jobs "
                          "(further submissions get HTTP 503)")
    srv.add_argument("--cache-max-bytes", type=int, default=None,
                     help="LRU-prune the result cache to this many bytes on "
                          "startup")
    srv.add_argument("--cache-max-age-days", type=float, default=None,
                     help="drop cache blobs untouched for this many days on "
                          "startup")
    srv.add_argument("--verbose", action="store_true",
                     help="log one structured line per HTTP request "
                          "(method, path, status, latency)")
    srv.set_defaults(func=_cmd_serve)

    lint = sub.add_parser(
        "lint",
        help="check the tree against the performance/determinism/"
             "concurrency/layering invariants",
    )
    from repro.analysis.cli import add_lint_arguments

    add_lint_arguments(lint)
    lint.set_defaults(func=_cmd_lint)

    goldens = sub.add_parser(
        "goldens",
        help="check/diff/update the golden-trace corpus",
    )
    goldens.add_argument("action", choices=("check", "diff", "update"))
    goldens.add_argument("--root", default="tests/goldens",
                         help="corpus directory (default: tests/goldens)")
    goldens.add_argument("--spec-version", type=int, default=None,
                         help="new corpus version for 'update'; must be "
                              "strictly greater than the committed one")
    goldens.add_argument("--workers", type=int, default=0,
                         help="simulation worker processes (0 = in-process "
                              "vector batching)")
    goldens.add_argument("--verbose", action="store_true",
                         help="print per-cell progress to stderr")
    goldens.set_defaults(func=_cmd_goldens)

    fuzz = sub.add_parser(
        "fuzz",
        help="differential policy fuzzing against the reference interpreter",
    )
    fuzz.add_argument("--seed", type=int, default=0,
                      help="master seed for the fuzzing schedule")
    fuzz.add_argument("--iterations", type=int, default=100,
                      help="generated programs to try")
    fuzz.add_argument("--time-budget", type=float, default=None, metavar="SECONDS",
                      help="stop early after this much wall-clock time")
    fuzz.add_argument("--max-cycles", type=int, default=200_000,
                      help="cycle budget per simulation")
    fuzz.add_argument("--workers", type=int, default=0,
                      help="simulation worker processes (0 = in-process "
                           "vector batching)")
    fuzz.add_argument("--out", default=None, metavar="DIR",
                      help="write failure artifacts (source, minimized "
                           "source, violations, repro script) to this "
                           "directory")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="skip minimizing failing programs")
    fuzz.add_argument("--keep-going", action="store_true",
                      help="continue fuzzing after the first failing "
                           "iteration")
    fuzz.set_defaults(func=_cmd_fuzz)

    trace = sub.add_parser(
        "trace",
        help="print the fabric timeline of a kernel, or assemble the "
             "merged Perfetto trace of a served run id",
    )
    add_sim_args(trace)
    trace.add_argument("--stride", type=int, default=2)
    trace.add_argument("--store", default="runs.sqlite",
                       help="run store to resolve a run-id target against")
    trace.add_argument("--cache-dir", default=".report-cache",
                       help="result blob directory holding the run's "
                            "cycle-domain trace")
    trace.add_argument("--output", "-o", default=None,
                       help="merged trace output file "
                            "(default: trace-<run-id>.json)")
    trace.set_defaults(func=_cmd_trace)

    explain = sub.add_parser(
        "explain",
        help="print a served run's steering decision ledger",
    )
    explain.add_argument("run_id", help="run id from the store/dashboard")
    explain.add_argument("--store", default="runs.sqlite")
    explain.add_argument("--cache-dir", default=".report-cache")
    explain.add_argument("--json", action="store_true",
                         help="emit the raw ledger payload as JSON")
    explain.add_argument("--limit", type=int, default=None,
                         help="show only the newest N decisions")
    explain.set_defaults(func=_cmd_explain)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
