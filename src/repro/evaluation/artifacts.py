"""Executable regeneration of every table and figure of the paper.

Each function derives its artifact from the living implementation — if the
code drifts from the paper's specification, the corresponding artifact (and
its tests) change visibly.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field

from repro.core.baselines import steering_processor
from repro.core.params import ProcessorParams
from repro.evaluation.report import render_table
from repro.fabric.allocation import EMPTY_ENCODING, SPAN_ENCODING, encoding_name
from repro.fabric.availability import available
from repro.fabric.configuration import (
    FFU_COUNTS,
    PREDEFINED_CONFIGS,
    steering_table,
)
from repro.fabric.fabric import Fabric
from repro.frontend.fetch import FetchedInstruction
from repro.frontend.memory import DataMemory
from repro.isa.assembler import assemble
from repro.isa.futypes import FU_TYPES, FUType
from repro.sched.ruu import RegisterUpdateUnit
from repro.steering.error_metric import cem_error, exact_error, hardwired_shifts
from repro.steering.selection import ConfigurationSelectionUnit
from repro.circuits.shifters import cem_shift_control

__all__ = [
    "table1",
    "table2",
    "figure1_inventory",
    "figure2_selection_demo",
    "figure3_cem_study",
    "CemStudy",
    "figure456_wakeup_example",
    "figure7_availability_check",
]


# ---------------------------------------------------------------- Table 1
def table1() -> str:
    """Table 1: functional units per configuration (fixed + steering)."""
    return steering_table(PREDEFINED_CONFIGS)


# ---------------------------------------------------------------- Table 2
def table2() -> str:
    """Table 2: the 3-bit resource-type encodings, including the special
    EMPTY and SPAN entries, and the slot cost of each type."""
    rows = [("000", "EMPTY", "-", "unoccupied slot")]
    for t in FU_TYPES:
        rows.append(
            (f"{t.encoding:03b}", t.short_name, str(t.slot_cost), t.name)
        )
    rows.append(("111", "SPAN", "-", "continuation of a multi-slot unit"))
    return render_table(
        ["encoding", "type", "slots", "meaning"], rows, title="Table 2: resource-type encodings"
    )


# --------------------------------------------------------------- Figure 1
def figure1_inventory() -> str:
    """Figure 1: the architecture's module inventory, taken from a live
    assembled processor (proves every box exists and is wired)."""
    proc = steering_processor(assemble("halt\n"), ProcessorParams())
    rows = [(module, impl) for module, impl in proc.module_inventory().items()]
    return render_table(["Fig. 1 module", "implementation"], rows,
                        title="Figure 1: architecture inventory")


# --------------------------------------------------------------- Figure 2
def figure2_selection_demo() -> str:
    """Figure 2: the four-stage selection unit evaluated end-to-end on the
    three characteristic queue contents (integer / memory / floating)."""
    unit = ConfigurationSelectionUnit()
    ffus_only = tuple(FFU_COUNTS[t] for t in FU_TYPES)
    queues = {
        "integer": "add x1,x2,x3\nsub x4,x5,x6\nxor x7,x8,x9\nand x1,x2,x3\n"
                   "mul x4,x5,x6\nmul x7,x8,x9\nadd x1,x1,x1\n",
        "memory": "lw x1,0(x9)\nlw x2,4(x9)\nsw x1,8(x9)\nlw x3,12(x9)\n"
                  "sw x2,16(x9)\nadd x4,x1,x2\nlw x5,20(x9)\n",
        "floating": "fadd f1,f2,f3\nfmul f4,f5,f6\nfsub f7,f8,f9\n"
                    "fdiv f1,f2,f3\nflw f4,0(x1)\nfadd f5,f6,f7\nfmul f8,f9,f1\n",
    }
    rows = []
    for name, src in queues.items():
        queue = assemble(src.replace(",", ", ")).instructions
        result = unit.select(queue, ffus_only)
        chosen = "current" if result.keeps_current else result.config.name
        rows.append(
            (
                name,
                "/".join(str(r) for r in result.required),
                "/".join(str(e) for e in result.errors),
                result.index,
                chosen,
            )
        )
    return render_table(
        ["queue", "required (per type)", "errors (cur/1/2/3)", "select", "configuration"],
        rows,
        title="Figure 2: selection unit end-to-end (current = FFUs only)",
    )


# --------------------------------------------------------------- Figure 3
@dataclass
class CemStudy:
    """Approximation study of the Fig. 3 shift-based divider."""

    max_term_error: float
    mean_term_error: float
    selection_agreement: float
    table: str
    shift_table: str


def figure3_cem_study(samples: int = 2000, seed: int = 0) -> CemStudy:
    """Figure 3: the CEM circuit versus exact division.

    Exhaustively compares the per-term shifter approximation against true
    division over every (required, available) pair, and measures how often
    the approximate metric selects the same configuration as the exact one
    over random queue requirement vectors.
    """
    # per-term error, exhaustive over required 0..7, available 1..7
    term_rows = []
    errors = []
    for avail in range(1, 8):
        shift = cem_shift_control(avail)
        for req in range(8):
            approx = req >> shift
            exact = req / avail
            errors.append(abs(approx - exact))
        term_rows.append(
            (
                avail,
                f">>{shift} (/{1 << shift})",
                f"{max(abs((r >> shift) - r / avail) for r in range(8)):.3f}",
            )
        )
    shift_table = render_table(
        ["available", "divider", "max |approx - exact| (req 0..7)"],
        term_rows,
        title="Figure 3(c): shift control vs exact division, per term",
    )

    # end-to-end selection agreement on random requirement vectors
    rng = random.Random(seed)
    ffus_only = tuple(FFU_COUNTS[t] for t in FU_TYPES)
    candidates = []
    for cfg in PREDEFINED_CONFIGS:
        candidates.append(tuple(cfg.count(t) + FFU_COUNTS[t] for t in FU_TYPES))
    agree = 0
    for _ in range(samples):
        total = rng.randint(0, 7)
        required = [0] * 5
        for _ in range(total):
            required[rng.randrange(5)] += 1
        required = tuple(min(7, r) for r in required)
        approx_errs = [cem_error(required, tuple(cem_shift_control(c) for c in ffus_only))]
        exact_errs = [exact_error(required, ffus_only)]
        for cfg, avail in zip(PREDEFINED_CONFIGS, candidates):
            approx_errs.append(cem_error(required, hardwired_shifts(cfg)))
            exact_errs.append(exact_error(required, avail))
        if approx_errs.index(min(approx_errs)) == exact_errs.index(min(exact_errs)):
            agree += 1

    demo_rows = []
    for name, required in (
        ("integer-heavy", (5, 2, 0, 0, 0)),
        ("memory-heavy", (2, 0, 5, 0, 0)),
        ("fp-heavy", (1, 0, 1, 3, 2)),
        ("balanced", (2, 1, 2, 1, 1)),
    ):
        row = [name]
        for cfg in PREDEFINED_CONFIGS:
            avail = tuple(cfg.count(t) + FFU_COUNTS[t] for t in FU_TYPES)
            row.append(
                f"{cem_error(required, hardwired_shifts(cfg))} "
                f"({exact_error(required, avail):.2f})"
            )
        demo_rows.append(tuple(row))
    table = render_table(
        ["queue"] + [f"cfg {c.name}: approx (exact)" for c in PREDEFINED_CONFIGS],
        demo_rows,
        title="Figure 3: CEM output per candidate, approximate vs exact",
    )
    return CemStudy(
        max_term_error=max(errors),
        mean_term_error=sum(errors) / len(errors),
        selection_agreement=agree / samples,
        table=table,
        shift_table=shift_table,
    )


# ----------------------------------------------------------- Figures 4-6
_PAPER_EXAMPLE = """
    shift:  sll  x3, x1, x2      # Entry 1 (Shift)
    sub:    sub  x4, x5, x6      # Entry 2 (Sub)
    add:    add  x7, x3, x4      # Entry 3 (Add) <- Shift, Sub
    mul:    mul  x8, x4, x9      # Entry 4 (Mul) <- Sub
    load:   flw  f1, 0(x10)      # Entry 5 (Load)
    fpmul:  fmul f2, f1, f3      # Entry 6 (FPMul) <- Load
    fpadd:  fadd f4, f2, f5      # Entry 7 (FPAdd) <- FPMul
"""


def figure456_wakeup_example() -> str:
    """Figures 4-6: the paper's seven-instruction worked example.

    Builds the dependency graph of Fig. 4 as a real program, dispatches it
    into a live RUU, renders the wake-up array exactly as Fig. 5, and then
    runs the scheduler cycle by cycle showing the request/grant waves of
    the Fig. 6 logic.
    """
    program = assemble(_PAPER_EXAMPLE)
    fabric = Fabric(reconfig_latency=1)
    ruu = RegisterUpdateUnit(fabric, DataMemory(size=4096), window_size=7)
    names = ["Shift", "Sub", "Add", "Mul", "Load", "FPMul", "FPAdd"]
    for pc, instr in enumerate(program.instructions):
        ruu.dispatch(FetchedInstruction(pc=pc, instruction=instr, predicted_next=pc + 1))

    sections = ["Figure 4: dependency graph (producer -> consumer)"]
    for row, entry in sorted(ruu._entries.items()):
        deps = [
            names[b.producer_seq]
            for b in entry.sources
            if b is not None and b.producer_seq is not None
        ]
        arrow = f" <- {', '.join(deps)}" if deps else ""
        sections.append(f"  Entry {row + 1} ({names[row]}){arrow}")

    labels = {row: f"({names[row]}) E{row + 1}" for row in range(7)}
    sections.append("")
    sections.append("Figure 5: wake-up array contents")
    sections.append(ruu.wakeup.render(labels))

    sections.append("")
    sections.append("Figure 6: cycle-by-cycle requests and grants")
    for cycle in itertools.count():
        if ruu.empty or cycle > 60:
            break
        requests = ruu.wakeup.requests(
            ruu._resource_available_bits(), ruu._result_available_bits()
        )
        report = ruu.issue_and_execute(cycle)
        req_names = [names[r] for r in requests]
        grant_names = [names[r] for r in report.granted]
        retired = [names[e.seq] for e in ruu.retire()]
        sections.append(
            f"  cycle {cycle:2d}: request={req_names or '-'} "
            f"grant={grant_names or '-'} retire={retired or '-'}"
        )
        fabric.tick()
        ruu.tick()
    return "\n".join(sections)


# --------------------------------------------------------------- Figure 7
def figure7_availability_check(samples: int = 500, seed: int = 0) -> str:
    """Figure 7 / Eq. 1: the availability circuit checked against its
    specification over random allocation/availability vectors, plus a
    worked demonstration on a live fabric."""
    rng = random.Random(seed)
    checked = 0
    for _ in range(samples):
        n = rng.randint(0, 12)
        entries = []
        for _ in range(n):
            entries.append(
                rng.choice(
                    [EMPTY_ENCODING, SPAN_ENCODING] + [int(t) for t in FU_TYPES]
                )
            )
        avail = [rng.random() < 0.5 for _ in entries]
        for t in FU_TYPES:
            spec = any(
                e == t.encoding and a for e, a in zip(entries, avail)
            )
            got = available(t, entries, avail)
            assert got == spec, (entries, avail, t)
            checked += 1

    fabric = Fabric(reconfig_latency=1)
    fabric.rfus.begin_reconfigure(0, FUType.FP_ALU)
    while not fabric.rfus.bus_free:
        fabric.tick()
    fabric.issue(FUType.FP_ALU, cycles=10)  # FFU copy busy
    allocation, availability = fabric.full_allocation()
    rows = []
    for i, (e, a) in enumerate(zip(allocation, availability)):
        kind = f"slot {i}" if i < fabric.rfus.n_slots else f"FFU {i - fabric.rfus.n_slots}"
        rows.append((kind, f"{e:03b}", encoding_name(e), a))
    demo = render_table(
        ["entry", "encoding", "type", "available"],
        rows,
        title="Figure 7 inputs: allocation + availability vectors (live fabric)",
    )
    out = [
        f"Eq. 1 circuit verified against specification on {checked} "
        f"(type x vector) random cases: all agree.",
        "",
        demo,
        "",
        "available(t) per type: "
        + ", ".join(
            f"{t.short_name}={available(t, allocation, availability)}"
            for t in FU_TYPES
        ),
    ]
    return "\n".join(out)
