"""Steering-basis design (§5: "how to formulate an optimal basis").

Choosing the predefined steering configurations is a clustering problem:
the demand vectors a workload population produces must each be served well
by *some* basis member.  This module implements exactly that view:

* :func:`demand_profile` samples per-window required-unit vectors from a
  program's dynamic trace (what the Fig. 2 encoders would see);
* :func:`design_basis` runs Lloyd-style k-means in configuration space —
  assign each demand sample to its best-serving configuration, then
  re-synthesize each configuration greedily from its cluster's mean demand
  — with multi-start (including the paper's basis as one start), so the
  returned basis never scores worse on the profile than the paper's.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.errors import ConfigurationError
from repro.evaluation.batch import ResultCache, SimJob, run_many
from repro.fabric.configuration import (
    FFU_COUNTS,
    NUM_RFU_SLOTS,
    PREDEFINED_CONFIGS,
    Configuration,
)
from repro.isa.futypes import FU_TYPES
from repro.isa.program import Program
from repro.steering.demand import greedy_fill
from repro.steering.error_metric import exact_error

__all__ = ["demand_profile", "profile_cost", "design_basis"]


def demand_profile(
    programs: Sequence[Program],
    window: int = 7,
    stride: int = 4,
    max_instructions: int = 200_000,
    workers: int = 0,
    cache: ResultCache | None = None,
) -> list[tuple[int, ...]]:
    """Required-unit vectors over sliding windows of the dynamic traces."""
    if window <= 0 or stride <= 0:
        raise ConfigurationError("window and stride must be positive")
    references = run_many(
        [
            SimJob("reference", p, kwargs={"max_instructions": max_instructions})
            for p in programs
        ],
        workers,
        cache,
    )
    profile: list[tuple[int, ...]] = []
    for reference in references:
        trace = reference.trace
        for start in range(0, max(1, len(trace) - window + 1), stride):
            chunk = trace[start : start + window]
            profile.append(
                tuple(sum(1 for t in chunk if t is ty) for ty in FU_TYPES)
            )
    if not profile:
        raise ConfigurationError("empty demand profile")
    return profile


def _config_avail(config: Configuration, ffus: dict) -> tuple[int, ...]:
    return tuple(config.count(t) + ffus.get(t, 0) for t in FU_TYPES)


def profile_cost(
    profile: Sequence[Sequence[int]],
    basis: Sequence[Configuration],
    ffu_counts: dict | None = None,
) -> float:
    """Mean best-candidate exact error over the profile (lower = better)."""
    ffus = FFU_COUNTS if ffu_counts is None else ffu_counts
    avails = [_config_avail(c, ffus) for c in basis]
    total = 0.0
    for required in profile:
        total += min(exact_error(required, a) for a in avails)
    return total / len(profile)


def _lloyd_iterate(
    profile: Sequence[Sequence[int]],
    basis: list[Configuration],
    ffus: dict,
    iterations: int,
) -> list[Configuration]:
    for round_no in range(iterations):
        avails = [_config_avail(c, ffus) for c in basis]
        sums = [[0.0] * len(FU_TYPES) for _ in basis]
        sizes = [0] * len(basis)
        for required in profile:
            errors = [exact_error(required, a) for a in avails]
            k = errors.index(min(errors))
            sizes[k] += 1
            for i, r in enumerate(required):
                sums[k][i] += r
        new_basis = []
        changed = False
        for k, cfg in enumerate(basis):
            if sizes[k] == 0:
                new_basis.append(cfg)  # empty cluster: keep the member
                continue
            mean_demand = [s / sizes[k] for s in sums[k]]
            candidate = greedy_fill(
                mean_demand,
                n_slots=NUM_RFU_SLOTS,
                ffu_counts=ffus,
                name=f"designed{k}",
            )
            if candidate.counts != cfg.counts:
                changed = True
            new_basis.append(candidate)
        basis = new_basis
        if not changed:
            break
    return basis


def design_basis(
    profile: Sequence[Sequence[int]],
    n_configs: int = 3,
    iterations: int = 10,
    restarts: int = 4,
    seed: int = 0,
    ffu_counts: dict | None = None,
) -> tuple[list[Configuration], float]:
    """Search for a steering basis minimising :func:`profile_cost`.

    Multi-start Lloyd iterations; the paper's basis seeds one start when
    ``n_configs == 3``, so the result is never worse than the paper's on
    the given profile.  Returns ``(basis, cost)``.
    """
    if n_configs <= 0:
        raise ConfigurationError("n_configs must be positive")
    ffus = FFU_COUNTS if ffu_counts is None else ffu_counts
    rng = random.Random(seed)

    starts: list[list[Configuration]] = []
    if n_configs == len(PREDEFINED_CONFIGS):
        starts.append(list(PREDEFINED_CONFIGS))
    for _ in range(restarts):
        seeds = rng.sample(list(profile), min(n_configs, len(profile)))
        while len(seeds) < n_configs:
            seeds.append(rng.choice(list(profile)))
        starts.append(
            [
                greedy_fill(list(map(float, s)), NUM_RFU_SLOTS, ffus, f"seed{i}")
                for i, s in enumerate(seeds)
            ]
        )

    best_basis: list[Configuration] | None = None
    best_cost = float("inf")
    for start in starts:
        basis = _lloyd_iterate(profile, list(start), ffus, iterations)
        for candidate in (start, basis):  # a start may already be optimal
            cost = profile_cost(profile, candidate, ffus)
            if cost < best_cost:
                best_cost = cost
                best_basis = list(candidate)
    assert best_basis is not None
    return best_basis, best_cost
