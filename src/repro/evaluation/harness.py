"""One-shot report generator: every artifact and experiment in one document.

``generate_report()`` regenerates all paper artifacts and runs the
quantitative experiments (at a configurable scale) into a single markdown
string — the executable counterpart of EXPERIMENTS.md.  Exposed on the
command line as ``python -m repro report``.
"""

from __future__ import annotations

import hashlib
from collections.abc import Callable
from typing import Any

from repro.core.params import ProcessorParams
from repro.evaluation import artifacts
from repro.evaluation.batch import ResultCache, SimJob, run_many
from repro.evaluation.experiments import (
    cem_metrics,
    latency_sweep_metrics,
    queue_depth_metrics,
    run_cem_ablation,
    run_circuit_cost_report,
    run_frontend_ablation,
    run_ipc_comparison,
    run_phase_adaptation,
    run_queue_depth_sweep,
    run_reconfig_latency_sweep,
)
from repro.evaluation.report import render_table
from repro.workloads.kernels import checksum, memcpy, saxpy

__all__ = ["generate_report"]


def _section(title: str, body: str) -> str:
    return f"## {title}\n\n```\n{body}\n```\n"


def generate_report(
    fast: bool = True,
    progress: Callable[[str], None] | None = None,
    workers: int = 0,
    use_cache: bool = True,
    cache_dir: str | None = None,
    store: Any | None = None,
    cache_max_bytes: int | None = None,
    telemetry: bool = False,
) -> str:
    """Regenerate everything.  ``fast`` shrinks the experiment workloads so
    the whole report completes in tens of seconds.

    ``workers > 1`` fans each experiment's simulations out over a process
    pool; ``use_cache`` shares one content-keyed result cache across the
    experiments, so simulations asked for twice (e.g. the same
    steering/workload pair in E-IPC and E-CEM) run once.  ``cache_dir``
    additionally spills the cache to disk, so identical simulations are
    answered from previous report runs (the CI persists this directory
    across workflow runs).

    ``store`` (a :class:`repro.serving.store.RunStore`) registers every
    experiment's summary metrics — and, through the cache hook, every
    individual simulation — as queryable runs for ``repro serve``.
    ``cache_max_bytes`` LRU-prunes the on-disk cache after the report so
    ``.report-cache`` stays bounded.

    ``telemetry`` adds an E-TEL section: one instrumented steering run
    (the ``steering-telemetry`` batch factory) whose per-cycle
    time-series and trace spans persist into the cache/store, so
    ``repro serve`` can answer ``/api/runs/<id>/timeseries`` for it and
    the dashboard telemetry panel has something to draw.
    """

    def note(msg: str) -> None:
        if progress is not None:
            progress(msg)

    def record(experiment: str, metrics: dict[str, float]) -> None:
        """Register an experiment-level summary run in the store."""
        if store is not None:
            question = hashlib.sha256(
                f"{experiment}|fast={fast}".encode()
            ).hexdigest()
            store.record_run(
                experiment, question, metrics, label="fast" if fast else "full"
            )

    cache = (
        ResultCache(cache_dir, store=store)
        if (use_cache or cache_dir)
        else None
    )

    parts = ["# Reproduction report (generated)\n"]

    note("artifacts: tables")
    parts.append(_section("Table 1 — steering configurations", artifacts.table1()))
    parts.append(_section("Table 2 — resource encodings", artifacts.table2()))
    note("artifacts: figures")
    parts.append(_section("Figure 1 — architecture inventory", artifacts.figure1_inventory()))
    parts.append(_section("Figure 2 — selection unit", artifacts.figure2_selection_demo()))
    study = artifacts.figure3_cem_study(samples=500 if fast else 5000)
    parts.append(
        _section(
            "Figure 3 — CEM approximation",
            f"{study.shift_table}\n\n{study.table}\n\n"
            f"max term error {study.max_term_error:.3f}, "
            f"mean {study.mean_term_error:.3f}, "
            f"selection agreement {study.selection_agreement:.3f}",
        )
    )
    parts.append(_section("Figures 4-6 — wake-up array example", artifacts.figure456_wakeup_example()))
    parts.append(
        _section(
            "Figure 7 — availability circuit",
            artifacts.figure7_availability_check(samples=100 if fast else 1000),
        )
    )

    params = ProcessorParams(reconfig_latency=8)
    scale = 1 if fast else 4
    workloads = [
        ("checksum", checksum(iterations=150 * scale).program),
        ("memcpy", memcpy(n=60 * scale).program),
        ("saxpy", saxpy(n=32 * scale).program),
    ]

    note("experiment: E-IPC")
    comparison = run_ipc_comparison(
        workloads=workloads, params=params, workers=workers, cache=cache
    )
    parts.append(_section("E-IPC — policy comparison", comparison.render()))
    record("E-IPC", comparison.metrics())

    note("experiment: E-RL")
    rl = run_reconfig_latency_sweep(
        [1, 16, 128] if fast else [1, 4, 16, 64, 256],
        workers=workers,
        cache=cache,
    )
    parts.append(
        _section(
            "E-RL — reconfiguration latency",
            render_table(
                ["latency", "steering IPC", "ffu-only IPC", "reconfigs"], rl
            ),
        )
    )
    record("E-RL", latency_sweep_metrics(rl))

    note("experiment: E-PH")
    adaptation = run_phase_adaptation(params=params, workers=workers, cache=cache)
    parts.append(
        _section(
            "E-PH — phase adaptation",
            f"IPC {adaptation.result.ipc:.3f}, "
            f"{adaptation.result.reconfigurations} reconfigurations, "
            f"kept-current {adaptation.kept_fraction:.3f}, "
            f"settle points {adaptation.settle_points()[:6]}",
        )
    )
    record("E-PH", adaptation.metrics())

    note("experiment: E-Q")
    qd = run_queue_depth_sweep(
        [3, 7, 16] if fast else [3, 5, 7, 11, 16], workers=workers, cache=cache
    )
    parts.append(
        _section("E-Q — queue depth", render_table(["depth", "IPC"], qd))
    )
    record("E-Q", queue_depth_metrics(qd))

    note("experiment: E-CEM")
    cem = run_cem_ablation(
        workloads=workloads, params=params, workers=workers, cache=cache
    )
    parts.append(
        _section(
            "E-CEM — metric ablation",
            render_table(["workload", "approx IPC", "exact IPC"], cem),
        )
    )
    record("E-CEM", cem_metrics(cem))

    note("experiment: E-FRONT")
    front = run_frontend_ablation(
        max_cycles=100_000 if fast else 400_000, workers=workers, cache=cache
    )
    parts.append(_section("E-FRONT — front-end ablations", front.render()))
    record("E-FRONT", front.metrics())

    note("experiment: E-COST")
    parts.append(_section("E-COST — circuit cost", run_circuit_cost_report([7])))

    if telemetry:
        note("experiment: E-TEL")
        from repro.workloads.phases import phased_program
        from repro.workloads.synthetic import FP_MIX, INT_MIX, MEM_MIX

        tel_job = SimJob(
            "steering-telemetry",
            phased_program(
                [(INT_MIX, 40 * scale), (MEM_MIX, 40 * scale), (FP_MIX, 40 * scale)],
                seed=0,
            ),
            params,
            max_cycles=100_000 if fast else 400_000,
            label="E-TEL phased steering",
        )
        payload = run_many([tel_job], workers=workers, cache=cache)[0]
        result = payload["result"]
        snapshot = payload["timeseries"]
        trace = payload["trace"]
        series = snapshot.get("series", {})
        n_points = sum(len(s.get("x", ())) for s in series.values())
        parts.append(
            _section(
                "E-TEL — instrumented steering run",
                f"IPC {result.ipc:.3f}, {result.cycles} cycles, "
                f"{result.reconfigurations} reconfigurations\n"
                f"{len(series)} time-series ({n_points} samples, "
                f"interval {snapshot.get('sample_interval')}), "
                f"{len(trace.get('traceEvents', ()))} trace events",
            )
        )
        record(
            "E-TEL",
            {
                "ipc": result.ipc,
                "cycles": float(result.cycles),
                "reconfigurations": float(result.reconfigurations),
                "series": float(len(series)),
                "series_samples": float(n_points),
                "trace_events": float(len(trace.get("traceEvents", ()))),
            },
        )

    if cache is not None and cache.directory is not None and cache_max_bytes:
        pruned = cache.prune(max_bytes=cache_max_bytes)
        note(
            f"cache GC: removed {pruned['removed']} blobs "
            f"({pruned['bytes_freed']} bytes)"
        )

    return "\n".join(parts)
