"""The quantitative experiments (DESIGN.md E-IPC .. E-COST).

The paper's stated objective is "to increase the achieved instruction
level parallelism of the processor by best matching the processor
configuration to the instructions that are ready to be executed"; it
reports no measurements.  These experiments supply that evaluation.  The
reproduction target is the *shape* of each result (orderings, trends,
crossovers), not absolute numbers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.circuits.cost import selection_unit_cost
from repro.core.params import ProcessorParams
from repro.core.stats import SimulationResult
from repro.errors import ConfigurationError
from repro.evaluation.batch import ResultCache, SimJob, run_many
from repro.evaluation.report import render_table
from repro.fabric.configuration import (
    NUM_RFU_SLOTS,
    PREDEFINED_CONFIGS,
    Configuration,
)
from repro.isa.futypes import FU_TYPES, FUType
from repro.isa.program import Program
from repro.workloads.kernels import all_kernels
from repro.workloads.phases import phased_program
from repro.workloads.synthetic import FP_MIX, INT_MIX, MEM_MIX, MixSpec

__all__ = [
    "IpcComparison",
    "FrontendAblation",
    "run_ipc_comparison",
    "run_reconfig_latency_sweep",
    "run_phase_adaptation",
    "run_queue_depth_sweep",
    "run_cem_ablation",
    "run_frontend_ablation",
    "run_orthogonality_study",
    "run_circuit_cost_report",
    "latency_sweep_metrics",
    "queue_depth_metrics",
    "cem_metrics",
]

_DEFAULT_PARAMS = ProcessorParams(reconfig_latency=8)


# ------------------------------------------------------------------ E-IPC
@dataclass
class IpcComparison:
    """IPC of every policy on every workload."""

    workloads: list[str]
    policies: list[str]
    #: ipc[workload][policy]
    ipc: dict[str, dict[str, float]]
    results: dict[str, dict[str, SimulationResult]] = field(default_factory=dict)

    def winner(self, workload: str) -> str:
        row = self.ipc[workload]
        return max(row, key=row.get)

    def mean_ipc(self, policy: str) -> float:
        vals = [self.ipc[w][policy] for w in self.workloads]
        return sum(vals) / len(vals)

    def render(self) -> str:
        rows = []
        for w in self.workloads:
            rows.append([w] + [self.ipc[w][p] for p in self.policies])
        rows.append(
            ["MEAN"] + [self.mean_ipc(p) for p in self.policies]
        )
        return render_table(
            ["workload"] + self.policies, rows, title="E-IPC: IPC by policy"
        )

    def metrics(self) -> dict[str, float]:
        """Flat scalar view for the run store (mean IPC per policy)."""
        out = {f"mean_ipc_{p}": self.mean_ipc(p) for p in self.policies}
        out["steering_wins"] = sum(
            1 for w in self.workloads if self.winner(w) == "steering"
        )
        return out


def run_ipc_comparison(
    workloads: list[tuple[str, Program]] | None = None,
    params: ProcessorParams | None = None,
    include_oracle: bool = True,
    max_cycles: int = 400_000,
    workers: int = 0,
    cache: ResultCache | None = None,
) -> IpcComparison:
    """E-IPC: steering vs every baseline across the workload suite."""
    params = params if params is not None else _DEFAULT_PARAMS
    if workloads is None:
        workloads = [(k.name, k.program) for k in all_kernels()]

    def jobs_for(program) -> list[tuple[str, SimJob]]:
        def job(factory, **kwargs):
            return SimJob(
                factory, program, params, max_cycles=max_cycles, kwargs=kwargs
            )

        out = [("ffu-only", job("ffu-only")), ("steering", job("steering"))]
        for cfg in PREDEFINED_CONFIGS:
            out.append((f"static-{cfg.name}", job("static", config=cfg)))
        out.append(("random", job("random", period=100)))
        if include_oracle:
            out.append(("oracle", job("oracle")))
        return out

    policies = [p for p, _ in jobs_for(workloads[0][1])]
    batch: list[SimJob] = []
    slots: list[tuple[str, str]] = []
    for name, program in workloads:
        for policy, job in jobs_for(program):
            job.label = f"{name}/{policy}"
            batch.append(job)
            slots.append((name, policy))

    ipc: dict[str, dict[str, float]] = {w: {} for w, _ in workloads}
    results: dict[str, dict[str, SimulationResult]] = {w: {} for w, _ in workloads}
    for (name, policy), result in zip(slots, run_many(batch, workers, cache)):
        ipc[name][policy] = result.ipc
        results[name][policy] = result
    return IpcComparison(
        workloads=[w for w, _ in workloads],
        policies=policies,
        ipc=ipc,
        results=results,
    )


# ------------------------------------------------------------------- E-RL
def run_reconfig_latency_sweep(
    latencies: list[int] | None = None,
    program: Program | None = None,
    max_cycles: int = 400_000,
    workers: int = 0,
    cache: ResultCache | None = None,
) -> list[tuple[int, float, float, int]]:
    """E-RL: IPC vs reconfiguration latency.

    Returns ``(latency, steering_ipc, ffu_only_ipc, reconfigurations)``
    per point; the FFU-only IPC is latency-independent and serves as the
    floor steering degrades toward.
    """
    if latencies is None:
        latencies = [1, 4, 16, 64, 256]
    if program is None:
        program = phased_program(
            [(INT_MIX, 30), (FP_MIX, 30), (MEM_MIX, 30)], seed=11
        )
    batch = []
    for latency in latencies:
        params = ProcessorParams(reconfig_latency=latency)
        for factory in ("steering", "ffu-only"):
            batch.append(
                SimJob(
                    factory,
                    program,
                    params,
                    max_cycles=max_cycles,
                    label=f"latency={latency}/{factory}",
                )
            )
    results = run_many(batch, workers, cache)
    out = []
    for i, latency in enumerate(latencies):
        steer, ffu = results[2 * i], results[2 * i + 1]
        out.append((latency, steer.ipc, ffu.ipc, steer.reconfigurations))
    return out


def latency_sweep_metrics(
    rows: list[tuple[int, float, float, int]],
) -> dict[str, float]:
    """Flatten E-RL rows for the run store."""
    out: dict[str, float] = {}
    for latency, steering_ipc, ffu_ipc, reconfigs in rows:
        out[f"steering_ipc_lat{latency}"] = steering_ipc
        out[f"reconfigs_lat{latency}"] = reconfigs
    if rows:
        out["ffu_ipc"] = rows[0][2]
    return out


# ------------------------------------------------------------------- E-PH
@dataclass
class PhaseAdaptation:
    """Steering behaviour across workload phases."""

    result: SimulationResult
    #: per-cycle selected candidate index (0 = current).
    selections: list[int]
    #: cycles in which a partial reconfiguration started.
    load_cycles: list[int]
    #: fraction of cycles the current configuration was kept.
    kept_fraction: float

    def settle_points(self, window: int = 50) -> list[int]:
        """Cycles after which the selection stayed 'current' for ``window``
        consecutive cycles (the steering 'settled')."""
        out = []
        run = 0
        for i, s in enumerate(self.selections):
            run = run + 1 if s == 0 else 0
            if run == window:
                out.append(i - window + 1)
        return out

    def metrics(self) -> dict[str, float]:
        """Flat scalar view for the run store."""
        settles = self.settle_points()
        return {
            "ipc": self.result.ipc,
            "reconfigurations": self.result.reconfigurations,
            "kept_fraction": self.kept_fraction,
            "loads": len(self.load_cycles),
            "first_settle": settles[0] if settles else -1,
        }


def run_phase_adaptation(
    phases: list[tuple[MixSpec, int]] | None = None,
    params: ProcessorParams | None = None,
    seed: int = 3,
    max_cycles: int = 400_000,
    workers: int = 0,
    cache: ResultCache | None = None,
) -> PhaseAdaptation:
    """E-PH: track the steering trajectory over a phase-changing workload.

    Runs through the batch engine (the ``steering-traced`` factory ships
    the trace back as a picklable dict), so the traced simulation joins
    the report's shared result cache and job graph like every other
    experiment.
    """
    if phases is None:
        phases = [(INT_MIX, 60), (MEM_MIX, 60), (FP_MIX, 60)]
    params = params if params is not None else _DEFAULT_PARAMS
    program = phased_program(phases, seed=seed)
    job = SimJob(
        "steering-traced",
        program,
        params,
        max_cycles=max_cycles,
        label="phase-adaptation",
    )
    traced = run_many([job], workers, cache)[0]
    return PhaseAdaptation(
        result=traced["result"],
        selections=traced["selections"],
        load_cycles=traced["load_cycles"],
        kept_fraction=traced["kept_fraction"],
    )


# -------------------------------------------------------------------- E-Q
def run_queue_depth_sweep(
    depths: list[int] | None = None,
    program: Program | None = None,
    max_cycles: int = 400_000,
    workers: int = 0,
    cache: ResultCache | None = None,
) -> list[tuple[int, float]]:
    """E-Q: IPC vs wake-up window / instruction queue depth."""
    if depths is None:
        depths = [3, 5, 7, 11, 16]
    if program is None:
        program = phased_program([(INT_MIX, 40), (FP_MIX, 40)], seed=7)
    batch = [
        SimJob(
            "steering",
            program,
            ProcessorParams(window_size=depth, reconfig_latency=8),
            max_cycles=max_cycles,
            label=f"depth={depth}",
        )
        for depth in depths
    ]
    results = run_many(batch, workers, cache)
    return [(depth, result.ipc) for depth, result in zip(depths, results)]


def queue_depth_metrics(rows: list[tuple[int, float]]) -> dict[str, float]:
    """Flatten E-Q rows for the run store."""
    return {f"ipc_depth{depth}": ipc for depth, ipc in rows}


# ------------------------------------------------------------------ E-CEM
def run_cem_ablation(
    workloads: list[tuple[str, Program]] | None = None,
    params: ProcessorParams | None = None,
    max_cycles: int = 400_000,
    workers: int = 0,
    cache: ResultCache | None = None,
) -> list[tuple[str, float, float]]:
    """E-CEM: steering with the shift-approximate metric vs exact division.

    Returns ``(workload, approx_ipc, exact_ipc)`` rows.  The expectation
    (justifying the cheap circuit) is near-identical IPC.
    """
    params = params if params is not None else _DEFAULT_PARAMS
    if workloads is None:
        workloads = [(k.name, k.program) for k in all_kernels()]
    batch = []
    for name, program in workloads:
        for exact in (False, True):
            batch.append(
                SimJob(
                    "steering",
                    program,
                    params,
                    max_cycles=max_cycles,
                    # the approx case keeps empty kwargs so it shares a
                    # cache key with E-IPC's plain steering job
                    kwargs={"use_exact_metric": True} if exact else {},
                    label=f"{name}/{'exact' if exact else 'approx'}",
                )
            )
    results = run_many(batch, workers, cache)
    return [
        (name, results[2 * i].ipc, results[2 * i + 1].ipc)
        for i, (name, _) in enumerate(workloads)
    ]


def cem_metrics(rows: list[tuple[str, float, float]]) -> dict[str, float]:
    """Flatten E-CEM rows for the run store (mean IPCs + worst gap)."""
    if not rows:
        return {}
    return {
        "mean_approx_ipc": sum(r[1] for r in rows) / len(rows),
        "mean_exact_ipc": sum(r[2] for r in rows) / len(rows),
        "max_abs_ipc_gap": max(abs(r[1] - r[2]) for r in rows),
    }


# ---------------------------------------------------------------- E-FRONT
@dataclass
class FrontendAblation:
    """Front-end substrate ablations (trace cache, predictor, width)."""

    #: ``(variant, loopy_ipc, branchy_ipc, branch_accuracy)`` rows.
    variant_rows: list[tuple[str, float, float, float]]
    #: ``(fetch/retire width, loopy_ipc)`` rows.
    width_rows: list[tuple[int, float]]

    def variant(self, label: str) -> tuple[str, float, float, float]:
        for row in self.variant_rows:
            if row[0] == label:
                return row
        raise ConfigurationError(f"no ablation variant {label!r}")

    def render(self) -> str:
        variants = render_table(
            ["variant", "loopy IPC", "branchy IPC", "branch accuracy"],
            [(v, f"{li:.3f}", f"{bi:.3f}", f"{acc:.3f}")
             for v, li, bi, acc in self.variant_rows],
            title="E-FRONT: front-end ablations",
        )
        widths = render_table(
            ["fetch/retire width", "loopy IPC"],
            [(w, f"{ipc:.3f}") for w, ipc in self.width_rows],
            title="E-FRONT: machine width sweep",
        )
        return variants + "\n\n" + widths

    def metrics(self) -> dict[str, float]:
        """Flat scalar view for the run store."""
        _, loopy, branchy, accuracy = self.variant_rows[0]
        out = {
            "baseline_loopy_ipc": loopy,
            "baseline_branchy_ipc": branchy,
            "baseline_branch_accuracy": accuracy,
        }
        for width, ipc in self.width_rows:
            out[f"ipc_width{width}"] = ipc
        return out


#: the E-FRONT parameter variants (baseline first).
_FRONTEND_VARIANTS: tuple[tuple[str, dict], ...] = (
    ("baseline (tc=64, bp=256)", {}),
    ("no trace cache", {"use_trace_cache": False}),
    ("tiny predictor (4)", {"predictor_entries": 4}),
    ("tiny BTB (1)", {"btb_entries": 1}),
)

#: the E-FRONT machine-width sweep points.
_FRONTEND_WIDTHS = (1, 2, 4, 8)


def run_frontend_ablation(
    loopy: Program | None = None,
    branchy: Program | None = None,
    max_cycles: int = 400_000,
    workers: int = 0,
    cache: ResultCache | None = None,
) -> FrontendAblation:
    """E-FRONT: front-end substrate ablations as one batch job graph.

    Two workloads (a tight loop and a branchy kernel) across the
    trace-cache / predictor / BTB variants, plus a fetch+retire width
    sweep on the loop — all submitted through :func:`run_many` so the
    whole study parallelises and caches like the other experiments.
    """
    if loopy is None:
        loopy = _frontend_loopy()
    if branchy is None:
        branchy = _frontend_branchy()

    batch: list[SimJob] = []
    for label, overrides in _FRONTEND_VARIANTS:
        params = ProcessorParams(reconfig_latency=8, **overrides)
        batch.append(SimJob("steering", loopy, params, max_cycles=max_cycles,
                            label=f"front/{label}/loopy"))
        batch.append(SimJob("steering", branchy, params, max_cycles=max_cycles,
                            label=f"front/{label}/branchy"))
    for width in _FRONTEND_WIDTHS:
        params = ProcessorParams(
            reconfig_latency=8, fetch_width=width, retire_width=width
        )
        batch.append(SimJob("steering", loopy, params, max_cycles=max_cycles,
                            label=f"front/width={width}"))

    results = run_many(batch, workers, cache)
    variant_rows = []
    for i, (label, _) in enumerate(_FRONTEND_VARIANTS):
        loopy_res, branchy_res = results[2 * i], results[2 * i + 1]
        variant_rows.append(
            (label, loopy_res.ipc, branchy_res.ipc, branchy_res.branch_accuracy)
        )
    offset = 2 * len(_FRONTEND_VARIANTS)
    width_rows = [
        (width, results[offset + j].ipc)
        for j, width in enumerate(_FRONTEND_WIDTHS)
    ]
    return FrontendAblation(variant_rows=variant_rows, width_rows=width_rows)


def _frontend_loopy() -> Program:
    from repro.workloads.kernels import checksum

    return checksum(iterations=250).program


def _frontend_branchy() -> Program:
    from repro.workloads.kernels_extra import bubble_sort

    return bubble_sort(n=20).program


# ----------------------------------------------------------------- E-ORTH
def _random_basis(rng: random.Random, n_configs: int = 3) -> list[Configuration]:
    """A random steering basis: ``n_configs`` configurations each filling
    the slot budget greedily with random unit types."""
    basis = []
    for k in range(n_configs):
        counts: dict[FUType, int] = {}
        free = NUM_RFU_SLOTS
        attempts = 0
        while free > 0 and attempts < 50:
            t = rng.choice(list(FU_TYPES))
            attempts += 1
            if t.slot_cost <= free:
                counts[t] = counts.get(t, 0) + 1
                free -= t.slot_cost
        basis.append(Configuration(f"rand{k}", counts).validate())
    return basis


def _basis_similarity(basis: list[Configuration]) -> float:
    """Mean pairwise cosine similarity of the count vectors (0 = fully
    orthogonal, 1 = identical)."""
    import math

    vecs = [b.as_vector() for b in basis]
    sims = []
    for i in range(len(vecs)):
        for j in range(i + 1, len(vecs)):
            a, b = vecs[i], vecs[j]
            na = math.sqrt(sum(x * x for x in a))
            nb = math.sqrt(sum(x * x for x in b))
            if na == 0 or nb == 0:
                sims.append(0.0)
                continue
            sims.append(sum(x * y for x, y in zip(a, b)) / (na * nb))
    return sum(sims) / len(sims) if sims else 0.0


def run_orthogonality_study(
    n_bases: int = 6,
    seed: int = 0,
    params: ProcessorParams | None = None,
    max_cycles: int = 200_000,
    workers: int = 0,
    cache: ResultCache | None = None,
) -> list[tuple[str, float, float]]:
    """E-ORTH (§5 future work): does a more orthogonal steering basis help?

    Evaluates the paper's basis plus ``n_bases`` random bases on a mixed
    phase-changing workload.  Returns ``(basis, similarity, ipc)`` rows —
    the expected shape is a loose negative relation between similarity and
    IPC, with the paper's hand-designed basis among the best.
    """
    params = params if params is not None else _DEFAULT_PARAMS
    rng = random.Random(seed)
    program = phased_program([(INT_MIX, 40), (MEM_MIX, 40), (FP_MIX, 40)], seed=5)

    bases: list[tuple[str, list[Configuration]]] = [
        ("paper", list(PREDEFINED_CONFIGS)),
        # anchor: a maximally non-orthogonal basis (three identical members)
        # covers exactly one workload regime and should lose on phased code
        ("degenerate", [PREDEFINED_CONFIGS[0]] * 3),
    ]
    for k in range(n_bases):
        bases.append((f"random-{k}", _random_basis(rng)))

    batch = [
        SimJob(
            "steering-basis",
            program,
            params,
            max_cycles=max_cycles,
            kwargs={"configs": list(basis)},
            label=name,
        )
        for name, basis in bases
    ]
    results = run_many(batch, workers, cache)
    return [
        (name, _basis_similarity(basis), result.ipc)
        for (name, basis), result in zip(bases, results)
    ]


# ----------------------------------------------------------------- E-COST
def run_circuit_cost_report(
    queue_sizes: list[int] | None = None,
) -> str:
    """E-COST: gate count and logic depth of the selection unit."""
    if queue_sizes is None:
        queue_sizes = [7]
    sections = []
    for n in queue_sizes:
        costs = selection_unit_cost(n_entries=n)
        rows = [
            (stage, c.gates, c.depth)
            for stage, c in costs.items()
        ]
        sections.append(
            render_table(
                ["stage", "gate equivalents", "logic depth"],
                rows,
                title=f"E-COST: selection unit, {n}-entry queue",
            )
        )
    return "\n\n".join(sections)
