"""Evaluation harness: regenerates every table and figure of the paper.

The paper's artifacts are architectural specifications and worked examples
(Tables 1-2, Figures 1-7); :mod:`repro.evaluation.artifacts` regenerates
each one executably from the implementation.  The quantitative experiments
the paper motivates but does not report (E-IPC, E-RL, E-PH, E-Q, E-CEM,
E-ORTH, E-COST in DESIGN.md) live in :mod:`repro.evaluation.experiments`.
"""

from repro.evaluation.basis_search import demand_profile, design_basis, profile_cost
from repro.evaluation.artifacts import (
    figure1_inventory,
    figure2_selection_demo,
    figure3_cem_study,
    figure456_wakeup_example,
    figure7_availability_check,
    table1,
    table2,
)
from repro.evaluation.experiments import (
    run_cem_ablation,
    run_circuit_cost_report,
    run_ipc_comparison,
    run_orthogonality_study,
    run_phase_adaptation,
    run_queue_depth_sweep,
    run_reconfig_latency_sweep,
)
from repro.evaluation.report import render_table

__all__ = [
    "table1",
    "table2",
    "figure1_inventory",
    "figure2_selection_demo",
    "figure3_cem_study",
    "figure456_wakeup_example",
    "figure7_availability_check",
    "run_ipc_comparison",
    "run_reconfig_latency_sweep",
    "run_phase_adaptation",
    "run_queue_depth_sweep",
    "run_cem_ablation",
    "run_orthogonality_study",
    "run_circuit_cost_report",
    "render_table",
    "demand_profile",
    "design_basis",
    "profile_cost",
]
