"""Fixed-width text-table rendering for the evaluation harness."""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["render_table", "render_kv", "format_value"]


def format_value(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def render_kv(mapping: dict, title: str | None = None) -> str:
    """Render a flat mapping as an aligned two-column block.

    The curl-friendly sibling of :func:`render_table` for single-record
    views (a run's metrics, a health snapshot).
    """
    return render_table(
        ["field", "value"],
        [(k, format_value(v)) for k, v in mapping.items()],
        title=title,
    )


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
) -> str:
    """Render rows as an aligned plain-text table."""
    cells = [[format_value(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
