"""Parallel batch simulation engine.

Every evaluation experiment reduces to the same shape: a list of
independent (program, parameters, policy) simulations whose results are
then aggregated.  This module gives that shape one engine:

* :class:`SimJob` — a fully serialisable job description.  Policies are
  named through a factory registry (a policy object holds live fabric
  references, so jobs carry the *recipe*, never the instance);
* :func:`run_many` — executes a batch sequentially or across worker
  processes (:class:`concurrent.futures.ProcessPoolExecutor`), preserving
  job order in the returned results.  The parallel path ships each
  distinct **program image once per worker** (not once per job): the
  distinct programs of the batch are keyed by their content hash and
  installed into a worker-global registry through the pool initializer —
  inherited for free under the ``fork`` start method, pickled exactly
  once per worker otherwise — and the per-job payload submitted to the
  pool carries only the factory name, parameters and the program's hash.
  A thousand-job sweep over one workload serialises the program image a
  handful of times (once per worker), not a thousand;
* :class:`ResultCache` — a content-addressed result store (in-memory,
  optionally spilled to disk) keyed by :func:`job_key`, a SHA-256 over the
  job's complete semantic fingerprint: program binary + data image,
  processor parameters, factory name and arguments, and cycle budget.
  Identical jobs resubmitted — across experiments or across report runs —
  are answered from the cache without simulating.

Determinism: a job's result depends only on its fingerprint (the
simulator is seeded and has no wall-clock dependence), which is what makes
content-keyed caching sound.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import pickle
import threading
import time
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any

from repro.core.baselines import (
    demand_processor,
    fixed_superscalar,
    oracle_processor,
    random_processor,
    static_processor,
    steering_processor,
)
from repro.core.params import ProcessorParams
from repro.core.reference import run_reference
from repro.errors import ConfigurationError
from repro.evaluation.vector import (
    run_vector_batch,
    vector_dispatch_enabled,
    vector_eligible,
)
from repro.fabric.configuration import Configuration
from repro.isa.futypes import FUType
from repro.isa.program import Program
from repro.utils.canonical import canonical_dumps

__all__ = [
    "SimJob",
    "ResultCache",
    "run_many",
    "execute_job",
    "job_key",
    "program_key",
    "FACTORY_NAMES",
]


# ------------------------------------------------------------ job factories
def _make_ffu_only(program, params, max_cycles, **kw):
    return fixed_superscalar(program, params).run(max_cycles=max_cycles)


def _make_steering(program, params, max_cycles, **kw):
    return steering_processor(
        program, params, use_exact_metric=kw.get("use_exact_metric", False)
    ).run(max_cycles=max_cycles)


def _make_steering_traced(program, params, max_cycles, **kw):
    # steering with the manager trace recorded; returns a picklable dict so
    # the trace survives the process boundary and the result cache.
    proc = steering_processor(
        program,
        params,
        use_exact_metric=kw.get("use_exact_metric", False),
        record_trace=True,
        trace_limit=kw.get("trace_limit"),
    )
    result = proc.run(max_cycles=max_cycles)
    trace = proc.policy.manager.trace
    return {
        "result": result,
        "selections": [t.selection for t in trace],
        "load_cycles": [t.cycle for t in trace if t.load is not None],
        "kept_fraction": proc.policy.manager.stats.current_kept_fraction,
    }


def _make_steering_telemetry(program, params, max_cycles, **kw):
    """Steering run with full telemetry: per-cycle series + Chrome trace.

    Returns a picklable dict: ``metrics_of``/the run store read the
    ``result`` key unchanged, the serving layer exposes ``timeseries``
    (``GET /api/runs/<id>/timeseries``), ``trace`` (Perfetto JSON) and
    ``decisions`` (the steering decision ledger behind
    ``GET /api/runs/<id>/decisions`` / ``repro explain``; disable with
    ``decision_ledger=false`` in the job kwargs).
    """
    from repro.telemetry import DecisionLedger, ProcessorTelemetry, SpanTracer

    tracer = SpanTracer(max_events=kw.get("max_span_events", 8192))
    ledger = (
        DecisionLedger(
            capacity=kw.get("ledger_capacity", 256),
            window=kw.get("ledger_window", 64),
        )
        if kw.get("decision_ledger", True)
        else None
    )
    tel = ProcessorTelemetry(
        series_capacity=kw.get("series_capacity", 2048),
        sample_interval=kw.get("sample_interval", 32),
        tracer=tracer,
        ledger=ledger,
    )
    proc = steering_processor(
        program,
        params,
        use_exact_metric=kw.get("use_exact_metric", False),
        telemetry=tel,
    )
    result = proc.run(max_cycles=max_cycles)
    out = {
        "result": result,
        "timeseries": tel.snapshot(),
        "trace": tracer.to_chrome_trace(),
    }
    if ledger is not None:
        out["decisions"] = ledger.to_dict()
    return out


def _make_steering_basis(program, params, max_cycles, **kw):
    from repro.core.policies import PaperSteering
    from repro.core.processor import Processor

    params = params if params is not None else ProcessorParams()
    policy = PaperSteering(
        configs=tuple(kw["configs"]), queue_size=params.window_size
    )
    return Processor(program, params=params, policy=policy).run(
        max_cycles=max_cycles
    )


def _make_static(program, params, max_cycles, **kw):
    return static_processor(program, kw["config"], params).run(
        max_cycles=max_cycles
    )


def _make_random(program, params, max_cycles, **kw):
    return random_processor(
        program, params, period=kw.get("period", 200), seed=kw.get("seed", 0)
    ).run(max_cycles=max_cycles)


def _make_oracle(program, params, max_cycles, **kw):
    return oracle_processor(
        program, params, lookahead=kw.get("lookahead", 64)
    ).run(max_cycles=max_cycles)


def _make_demand(program, params, max_cycles, **kw):
    return demand_processor(
        program,
        params,
        smoothing=kw.get("smoothing", 0.1),
        improvement_margin=kw.get("improvement_margin", 0.15),
    ).run(max_cycles=max_cycles)


def _make_reference(program, params, max_cycles, **kw):
    # functional (non-cycle-accurate) reference execution; ``params`` and
    # ``max_cycles`` do not apply — the budget is in dynamic instructions.
    return run_reference(
        program, max_instructions=kw.get("max_instructions", 1_000_000)
    )


_FACTORIES: dict[str, Callable[..., Any]] = {
    "ffu-only": _make_ffu_only,
    "steering": _make_steering,
    "steering-telemetry": _make_steering_telemetry,
    "steering-traced": _make_steering_traced,
    "steering-basis": _make_steering_basis,
    "static": _make_static,
    "random": _make_random,
    "oracle": _make_oracle,
    "demand": _make_demand,
    "reference": _make_reference,
}

#: registered job factory names.
FACTORY_NAMES = tuple(sorted(_FACTORIES))


# ------------------------------------------------------------------ job spec
@dataclass
class SimJob:
    """One simulation, described entirely by picklable values."""

    #: factory registry name (see :data:`FACTORY_NAMES`).
    factory: str
    program: Program
    params: ProcessorParams | None = None
    max_cycles: int = 400_000
    #: extra factory arguments (must be fingerprintable: primitives,
    #: sequences, dicts, Configuration, FUType).
    kwargs: dict[str, Any] = field(default_factory=dict)
    #: free-form tag carried through to progress callbacks.
    label: str = ""

    def __post_init__(self) -> None:
        if self.factory not in _FACTORIES:
            raise ConfigurationError(
                f"unknown job factory {self.factory!r}; "
                f"choose from {', '.join(FACTORY_NAMES)}"
            )


def execute_job(job: SimJob) -> Any:
    """Run one job to completion (in this process) and return its result."""
    return _FACTORIES[job.factory](
        job.program, job.params, job.max_cycles, **job.kwargs
    )


# ------------------------------------------------------------- content keys
def _canon(value: Any) -> Any:
    """Reduce a job component to primitives with a deterministic repr."""
    if isinstance(value, Program):
        return (
            "program",
            tuple(value.to_binary()),
            bytes(value.data),
            tuple(sorted(value.labels.items())),
            tuple(sorted(value.data_labels.items())),
        )
    if isinstance(value, ProcessorParams):
        return ("params",) + tuple(
            (f.name, _canon(getattr(value, f.name))) for f in fields(value)
        )
    if isinstance(value, Configuration):
        return (
            "config",
            value.name,
            tuple(sorted((t.name, n) for t, n in value.counts.items())),
        )
    if isinstance(value, FUType):
        return ("futype", value.name)
    if isinstance(value, dict):
        return (
            "dict",
            tuple(sorted(((_canon(k), _canon(v)) for k, v in value.items()), key=repr)),
        )
    if isinstance(value, (list, tuple)):
        return ("seq",) + tuple(_canon(v) for v in value)
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return value
    raise ConfigurationError(
        f"job component {value!r} has no canonical fingerprint"
    )


def job_key(job: SimJob) -> str:
    """Content key of a job: SHA-256 over its semantic fingerprint.

    The label is deliberately excluded — two jobs asking the same question
    share one key no matter how the caller tagged them.
    """
    fingerprint = _canon(
        (job.factory, job.program, job.params, job.max_cycles, job.kwargs)
    )
    return hashlib.sha256(repr(fingerprint).encode()).hexdigest()


def program_key(program: Program) -> str:
    """Content key of a program image alone (SHA-256 of its fingerprint).

    Used by the parallel path of :func:`run_many` to ship each distinct
    program to the worker processes exactly once, however many jobs of the
    batch reference it.
    """
    return hashlib.sha256(repr(_canon(program)).encode()).hexdigest()


# ------------------------------------------------- worker-side program store
#: per-worker registry of program images, installed by :func:`_init_worker`
#: before the worker accepts its first job.  Keyed by :func:`program_key`.
_WORKER_PROGRAMS: dict[str, Program] = {}


# repro: allow[CON002] -- worker-process-local state: each pool worker owns
# its copy of _WORKER_PROGRAMS; no threads share it
def _init_worker(programs: dict[str, Program]) -> None:
    """Pool initializer: install the batch's distinct programs.

    Runs once per worker process.  Under the ``fork`` start method the
    dict arrives through the copied address space for free; under
    ``spawn``/``forkserver`` it is pickled once per worker — either way
    the cost is O(workers), not O(jobs).
    """
    _WORKER_PROGRAMS.update(programs)


def _shm_pack(programs: dict[str, Program]):
    """Place the pickled program registry in a shared-memory block.

    Spawn-start platforms pickle the pool initializer's arguments once
    per worker; with the registry in shared memory every worker instead
    attaches to one block and the per-worker cost drops to the block
    *name*.  Returns ``(block, payload_size)``, or ``None`` when shared
    memory is unavailable (the caller falls back to shipping the dict).
    """
    try:
        from multiprocessing import shared_memory
    except ImportError:  # pragma: no cover - stdlib module, but gate anyway
        return None
    payload = pickle.dumps(programs)
    try:
        block = shared_memory.SharedMemory(create=True, size=max(1, len(payload)))
    except (OSError, ValueError):  # pragma: no cover - platform without shm
        return None
    block.buf[: len(payload)] = payload
    return block, len(payload)


def _shm_unregister(block) -> None:
    """Detach a block from this process's resource tracker.

    On Python < 3.13 merely *attaching* registers the segment with the
    worker's resource tracker, which would unlink it behind the parent's
    back at worker exit; the parent owns cleanup, so undo the
    registration.
    """
    try:  # pragma: no cover - tracker layout is an implementation detail
        from multiprocessing import resource_tracker

        resource_tracker.unregister(
            getattr(block, "_name", block.name), "shared_memory"
        )
    except Exception:
        pass


# repro: allow[CON002] -- worker-process-local state, as in _init_worker
def _init_worker_shm(name: str, size: int) -> None:
    """Pool initializer (spawn path): read the registry out of shared memory."""
    from multiprocessing import shared_memory

    block = shared_memory.SharedMemory(name=name)
    try:
        _WORKER_PROGRAMS.update(pickle.loads(bytes(block.buf[:size])))
    finally:
        block.close()
        _shm_unregister(block)


@dataclass
class _ShippedJob:
    """The per-job payload crossing the process boundary.

    A :class:`SimJob` minus its heaviest member: the program image is
    replaced by its content key and resolved from the worker-global
    registry on arrival.
    """

    factory: str
    program_hash: str
    params: ProcessorParams | None
    max_cycles: int
    kwargs: dict[str, Any]


def _ship(job: SimJob, key: str) -> _ShippedJob:
    return _ShippedJob(
        factory=job.factory,
        program_hash=key,
        params=job.params,
        max_cycles=job.max_cycles,
        kwargs=job.kwargs,
    )


def _execute_shipped(payload: _ShippedJob) -> Any:
    """Worker-side entry point: rehydrate the program and run the job."""
    program = _WORKER_PROGRAMS.get(payload.program_hash)
    if program is None:
        raise ConfigurationError(
            f"worker has no program for hash {payload.program_hash[:12]}…; "
            "was the pool started with the run_many initializer?"
        )
    return _FACTORIES[payload.factory](
        program, payload.params, payload.max_cycles, **payload.kwargs
    )


def _execute_shipped_timed(payload: _ShippedJob) -> tuple[float, Any]:
    """Timed worker entry point (batch telemetry): (run_seconds, result).

    The worker reports its own execution wall time; the parent subtracts
    it from the submit→completion round trip to estimate queue wait.
    """
    start = time.perf_counter()
    result = _execute_shipped(payload)
    return time.perf_counter() - start, result


def _execute_shipped_vector(payloads: list[_ShippedJob]) -> list[Any]:
    """Worker-side entry point for one lock-step vector batch.

    Every payload of the batch carries the same program hash; the batch is
    rehydrated against the worker's single copy of the image and run as
    one :func:`run_vector_batch` call, so a parallel sweep gets both the
    process-level and the lane-level parallelism.
    """
    program = _WORKER_PROGRAMS.get(payloads[0].program_hash)
    if program is None:
        raise ConfigurationError(
            f"worker has no program for hash {payloads[0].program_hash[:12]}…; "
            "was the pool started with the run_many initializer?"
        )
    jobs = [
        SimJob(
            factory=p.factory,
            program=program,
            params=p.params,
            max_cycles=p.max_cycles,
            kwargs=p.kwargs,
        )
        for p in payloads
    ]
    return run_vector_batch(jobs)


def _execute_shipped_vector_timed(
    payloads: list[_ShippedJob],
) -> tuple[float, list[Any]]:
    """Timed vector-batch worker entry point: (run_seconds, results)."""
    start = time.perf_counter()
    results = _execute_shipped_vector(payloads)
    return time.perf_counter() - start, results


def _group_by_program(
    unique: Sequence[tuple[str, SimJob]],
) -> tuple[dict[str, Program], dict[str, list[tuple[str, SimJob]]]]:
    """Group a deduplicated batch by program **content hash**.

    Returns ``(programs, groups)``: ``programs`` maps each content key to
    the batch's canonical :class:`Program` instance, ``groups`` maps the
    same key to the group's ``(job_key, job)`` pairs in submission order.
    Jobs whose programs are distinct objects with identical content land
    in one group and are rebound (``dataclasses.replace``) to the
    canonical instance, so the vector engine's lanes, the per-program
    decode cache and the worker shipping path all see one image per
    distinct program — the same identity the :class:`ResultCache` keys
    already encode.  Hashing is memoised per program *object*, so the
    common sweep (thousands of jobs sharing one ``Program``) fingerprints
    it once.
    """
    programs: dict[str, Program] = {}
    groups: dict[str, list[tuple[str, SimJob]]] = {}
    key_by_id: dict[int, str] = {}
    for key, job in unique:
        pkey = key_by_id.get(id(job.program))
        if pkey is None:
            pkey = program_key(job.program)
            key_by_id[id(job.program)] = pkey
        canonical = programs.setdefault(pkey, job.program)
        if canonical is not job.program:
            job = replace(job, program=canonical)
        groups.setdefault(pkey, []).append((key, job))
    return programs, groups


def _vector_partition(
    groups: dict[str, list[tuple[str, SimJob]]],
) -> tuple[list[list[tuple[str, SimJob]]], list[tuple[str, SimJob]]]:
    """Split program groups into vector batches and scalar leftovers.

    A group contributes a lock-step batch when at least two of its jobs
    are :func:`vector_eligible`; everything else (ineligible factories,
    singleton lanes, or all jobs when ``REPRO_VECTOR_DISABLE`` is set)
    falls back to the per-job scalar path.
    """
    batches: list[list[tuple[str, SimJob]]] = []
    scalar: list[tuple[str, SimJob]] = []
    if not vector_dispatch_enabled():
        for pairs in groups.values():
            scalar.extend(pairs)
        return batches, scalar
    for pairs in groups.values():
        vec: list[tuple[str, SimJob]] = []
        rest: list[tuple[str, SimJob]] = []
        for key, job in pairs:
            if vector_eligible(job.factory, job.params):
                vec.append((key, job))
            else:
                rest.append((key, job))
        if len(vec) >= 2:
            batches.append(vec)
            scalar.extend(rest)
        else:
            scalar.extend(pairs)
    return batches, scalar


def _prepare_shipment(
    unique: Sequence[tuple[str, SimJob]],
) -> tuple[dict[str, Program], list[tuple[str, _ShippedJob]]]:
    """Split a deduplicated batch into (distinct programs, light payloads).

    The returned ``programs`` dict goes to the workers once (via the pool
    initializer); the payloads — one per unique job — carry only the
    program's content hash.  Separated from :func:`run_many` so the tests
    can assert on exactly what crosses the process boundary.
    """
    programs, groups = _group_by_program(unique)
    shipped = [
        (key, _ship(job, pkey))
        for pkey, pairs in groups.items()
        for key, job in pairs
    ]
    return programs, shipped


# ------------------------------------------------------------- result cache
def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (tmp file + :func:`os.replace`).

    A killed worker or a concurrent reader never observes a truncated
    file: the final name appears only after the full payload is on disk.
    The tmp name carries pid + thread id so concurrent writers of the
    same key never collide with each other.
    """
    tmp = path.with_name(
        f"{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
    )
    try:
        tmp.write_bytes(data)
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


class ResultCache:
    """Content-addressed result store: memory first, optionally disk.

    With a ``directory`` every stored result is also pickled to
    ``<directory>/<key>.pkl``, so caches survive across processes and
    report invocations; without one the cache lives for the object's
    lifetime only.  Blob writes are atomic (tmp file + ``os.replace``),
    and every get/put refreshes the key's entry in an LRU touch-time
    index (``_touch.json`` in the directory) that :meth:`prune` uses to
    evict least-recently-used blobs first.

    An optional ``store`` (:class:`repro.serving.store.RunStore` or any
    object with a ``record_result(key, result, job=...)`` method) is
    notified on every :meth:`put`, so batch runs register their results
    as queryable runs without the callers changing.
    """

    #: name of the LRU touch-time index file inside the cache directory.
    INDEX_NAME = "_touch.json"

    def __init__(
        self,
        directory: str | Path | None = None,
        store: Any | None = None,
    ) -> None:
        self._memory: dict[str, Any] = {}
        self.directory = Path(directory) if directory is not None else None
        self.store = store
        self._touch: dict[str, float] = {}
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._touch = self._load_index()
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    # ------------------------------------------------ LRU touch-time index
    def _index_path(self) -> Path:
        return self.directory / self.INDEX_NAME

    def _load_index(self) -> dict[str, float]:
        try:
            raw = json.loads(self._index_path().read_text())
            return {str(k): float(v) for k, v in raw.items()}
        except (OSError, ValueError, TypeError, AttributeError):
            return {}

    def _save_index(self) -> None:
        _atomic_write_bytes(
            self._index_path(), canonical_dumps(self._touch).encode()
        )

    # ------------------------------------------------------------ get / put
    def get(self, key: str) -> Any | None:
        if key in self._memory:
            self.hits += 1
            if self.directory is not None:
                self._touch[key] = time.time()
            return self._memory[key]
        if self.directory is not None:
            path = self._path(key)
            if path.exists():
                result = pickle.loads(path.read_bytes())
                self._memory[key] = result
                self._touch[key] = time.time()
                self.hits += 1
                return result
        self.misses += 1
        return None

    def put(self, key: str, result: Any, job: SimJob | None = None) -> None:
        self._memory[key] = result
        if self.directory is not None:
            _atomic_write_bytes(self._path(key), pickle.dumps(result))
            self._touch[key] = time.time()
            self._save_index()
        if self.store is not None:
            self.store.record_result(key, result, job=job)

    def has(self, key: str) -> bool:
        """Whether ``key`` is answerable (memory or disk), without loading."""
        if key in self._memory:
            return True
        return self.directory is not None and self._path(key).exists()

    def __len__(self) -> int:
        return len(self._memory)

    # -------------------------------------------------------- GC / stats
    def prune(
        self,
        max_bytes: int | None = None,
        max_age: float | None = None,
        now: float | None = None,
    ) -> dict[str, int]:
        """Evict disk blobs so the cache stops growing without bound.

        ``max_age`` (seconds) drops every blob whose last touch — get or
        put, via the LRU index, falling back to file mtime — is older;
        ``max_bytes`` then evicts least-recently-used blobs until the
        directory total fits.  Stale ``*.tmp`` files from killed writers
        (older than an hour) are removed as well.  Returns eviction
        statistics; a memory-only cache is a no-op.
        """
        stats = {"removed": 0, "kept": 0, "bytes_freed": 0, "bytes_kept": 0}
        if self.directory is None:
            stats["kept"] = len(self._memory)
            return stats
        now = time.time() if now is None else now
        for tmp in self.directory.glob("*.tmp"):
            try:
                if now - tmp.stat().st_mtime > 3600:
                    tmp.unlink(missing_ok=True)
            except OSError:
                pass
        blobs: list[tuple[float, int, str, Path]] = []
        for path in self.directory.glob("*.pkl"):
            try:
                stat = path.stat()
            except OSError:  # racing concurrent eviction
                continue
            key = path.stem
            blobs.append(
                (self._touch.get(key, stat.st_mtime), stat.st_size, key, path)
            )
        blobs.sort()  # oldest touch first = LRU eviction order
        total = sum(size for _, size, _, _ in blobs)
        freed = 0
        for touched, size, key, path in blobs:
            too_old = max_age is not None and now - touched > max_age
            over_budget = max_bytes is not None and total - freed > max_bytes
            if too_old or over_budget:
                path.unlink(missing_ok=True)
                self._memory.pop(key, None)
                self._touch.pop(key, None)
                stats["removed"] += 1
                freed += size
            else:
                stats["kept"] += 1
        stats["bytes_freed"] = freed
        stats["bytes_kept"] = total - freed
        self._save_index()
        return stats

    def stats(self) -> dict[str, int]:
        """Occupancy counters for health endpoints and logs."""
        disk_blobs = disk_bytes = 0
        if self.directory is not None:
            for path in self.directory.glob("*.pkl"):
                try:
                    disk_bytes += path.stat().st_size
                except OSError:
                    continue
                disk_blobs += 1
        return {
            "memory_entries": len(self._memory),
            "disk_blobs": disk_blobs,
            "disk_bytes": disk_bytes,
            "hits": self.hits,
            "misses": self.misses,
        }


# -------------------------------------------------------------- batch runner
def run_many(
    jobs: Iterable[SimJob],
    workers: int = 0,
    cache: ResultCache | None = None,
    progress: Callable[[int, int, SimJob], None] | None = None,
    mp_context: str | None = None,
    telemetry: Any | None = None,
) -> list[Any]:
    """Execute a batch of jobs; results come back in submission order.

    ``workers <= 1`` runs sequentially in this process (the default keeps
    single-simulation behaviour and avoids process start-up for small
    batches); ``workers > 1`` fans out over a process pool.  Jobs with
    identical content keys are simulated once per batch, and a ``cache``
    answers repeats across batches.  ``progress(done, total, job)`` is
    invoked as each job resolves (cache hits included).

    Jobs are grouped by program **content hash** before dispatch; groups
    with two or more vector-eligible jobs run as one lock-step batch on
    the lane engine (:func:`repro.evaluation.vector.run_vector_batch`) —
    sequentially in-process, or as a single pool task per batch in the
    parallel path — and everything else takes the per-job scalar path.
    Setting ``REPRO_VECTOR_DISABLE`` forces the scalar path throughout.

    ``mp_context`` forces a multiprocessing start method ("fork",
    "spawn", "forkserver"); the default is the platform's.  On non-fork
    start methods the program registry travels to the workers through
    one :mod:`multiprocessing.shared_memory` block instead of being
    pickled once per worker, falling back to per-worker pickling when
    shared memory is unavailable.

    ``telemetry`` (a :class:`repro.telemetry.BatchTelemetry`) records job
    outcomes, per-job queue-wait and run wall-time, and worker heartbeats
    on the engine's existing completion path; scheduling is unchanged.
    """
    jobs = list(jobs)
    total = len(jobs)
    results: list[Any] = [None] * total
    done = 0

    def resolved(index: int, result: Any) -> None:
        nonlocal done
        results[index] = result
        done += 1
        if progress is not None:
            progress(done, total, jobs[index])

    # cache lookups + within-batch dedup --------------------------------
    pending: dict[str, list[int]] = {}
    for i, job in enumerate(jobs):
        key = job_key(job)
        if cache is not None:
            hit = cache.get(key)
            if hit is not None:
                if telemetry is not None:
                    telemetry.cache_hit()
                resolved(i, hit)
                continue
        pending.setdefault(key, []).append(i)
    if telemetry is not None:
        telemetry.deduped(
            sum(len(indices) - 1 for indices in pending.values())
        )

    def settle(key: str, result: Any) -> None:
        if cache is not None:
            cache.put(key, result, job=jobs[pending[key][0]])
        for i in pending[key]:
            resolved(i, result)

    # group by program content-hash: vector batching, the per-program
    # decode cache and worker shipping all key on the same identity the
    # ResultCache uses, so equal-content programs collapse either way.
    unique = [(key, jobs[indices[0]]) for key, indices in pending.items()]
    programs, groups = _group_by_program(unique)
    batches, singles = _vector_partition(groups)
    if telemetry is not None:
        telemetry.scalar_dispatch(len(singles))

    if workers <= 1:
        for batch in batches:
            if telemetry is not None:
                telemetry.submitted(len(batch))
            start = time.perf_counter()
            batch_results = run_vector_batch([job for _, job in batch])
            elapsed = time.perf_counter() - start
            if telemetry is not None:
                telemetry.vector_batch(
                    len(batch),
                    [getattr(r, "cycles", 0) for r in batch_results],
                )
                per_lane = elapsed / len(batch)
                for _, job in batch:
                    telemetry.finished(
                        job.label or job.factory,
                        run_seconds=per_lane,
                        queue_wait=0.0,
                    )
            for (key, _), result in zip(batch, batch_results):
                settle(key, result)
        for key, job in singles:
            if telemetry is not None:
                telemetry.submitted()
                start = time.perf_counter()
                result = execute_job(job)
                telemetry.finished(
                    job.label or job.factory,
                    run_seconds=time.perf_counter() - start,
                    queue_wait=0.0,
                )
            else:
                result = execute_job(job)
            settle(key, result)
        return results

    # Ship each distinct program once per worker (via the pool initializer),
    # not once per job: payloads carry only the program's content hash.
    # Vector batches cross the boundary as one task each, so a parallel
    # sweep gets both process-level and lane-level parallelism.
    pkey_of = {id(program): pkey for pkey, program in programs.items()}

    ctx = multiprocessing.get_context(mp_context) if mp_context else None
    start_method = (ctx or multiprocessing).get_start_method()
    initializer: Callable[..., None] = _init_worker
    initargs: tuple[Any, ...] = (programs,)
    block = None
    if start_method != "fork":
        packed = _shm_pack(programs)
        if packed is not None:
            block, payload_size = packed
            initializer, initargs = _init_worker_shm, (block.name, payload_size)
    try:
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=ctx,
            initializer=initializer,
            initargs=initargs,
        ) as pool:
            timed = telemetry is not None
            run_fn = _execute_shipped_timed if timed else _execute_shipped
            vec_fn = (
                _execute_shipped_vector_timed if timed
                else _execute_shipped_vector
            )
            label_of = {key: (job.label or job.factory) for key, job in unique}
            #: fut -> ("single", job_key) or ("vector", [job_key, ...])
            futures: dict[Any, tuple[str, Any]] = {}
            submitted_at: dict[Any, float] = {}
            for batch in batches:
                payloads = [
                    _ship(job, pkey_of[id(job.program)]) for _, job in batch
                ]
                fut = pool.submit(vec_fn, payloads)
                futures[fut] = ("vector", [key for key, _ in batch])
                submitted_at[fut] = time.perf_counter()
                if telemetry is not None:
                    telemetry.submitted(len(batch))
            for key, job in singles:
                fut = pool.submit(run_fn, _ship(job, pkey_of[id(job.program)]))
                futures[fut] = ("single", key)
                submitted_at[fut] = time.perf_counter()
                if telemetry is not None:
                    telemetry.submitted()
            remaining = set(futures)
            while remaining:
                finished, remaining = wait(
                    remaining, return_when=FIRST_COMPLETED
                )
                for fut in finished:
                    kind, ref = futures[fut]
                    outcome = fut.result()
                    if kind == "vector":
                        if timed:
                            run_seconds, batch_results = outcome
                        else:
                            run_seconds, batch_results = None, outcome
                        if telemetry is not None:
                            telemetry.vector_batch(
                                len(ref),
                                [
                                    getattr(r, "cycles", 0)
                                    for r in batch_results
                                ],
                            )
                            round_trip = (
                                time.perf_counter() - submitted_at[fut]
                            )
                            per_lane = run_seconds / len(ref)
                            lane_wait = max(
                                0.0, (round_trip - run_seconds) / len(ref)
                            )
                            for key in ref:
                                telemetry.finished(
                                    label_of[key],
                                    run_seconds=per_lane,
                                    queue_wait=lane_wait,
                                )
                        for key, result in zip(ref, batch_results):
                            settle(key, result)
                        continue
                    if timed:
                        run_seconds, result = outcome
                        round_trip = (
                            time.perf_counter() - submitted_at[fut]
                        )
                        telemetry.finished(
                            label_of[ref],
                            run_seconds=run_seconds,
                            queue_wait=max(0.0, round_trip - run_seconds),
                        )
                    else:
                        result = outcome
                    settle(ref, result)
    finally:
        if block is not None:
            block.close()
            try:
                block.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
    return results
