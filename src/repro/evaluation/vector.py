"""Lock-step vectorized multi-simulation stepping (the lane engine).

Every evaluation sweep — policy catalogue x workload grid, CEM basis-search
generations, parameter sweeps — runs N independent simulations of the
*same program*.  The scalar engine interprets N separate cycle loops; this
module runs them as N *lanes* advanced in lock-step, so the per-cycle
bookkeeping of the whole batch collapses into shared, batched structures:

* **wake-up evaluation** — one call into the packed ``(lanes, rows)``
  kernel (:mod:`repro.sched.wakeup_vec`) computes every lane's request and
  resource-blocked masks for the cycle;
* **execution count-downs** — one batched timer array replaces the scalar
  engine's per-cycle sweeps over every functional unit and window entry;
  the batch pays O(completions) per cycle, not O(lanes x units), and a
  lane's units are released by event exactly when their timers expire;
* **steering selection** — lanes with identical selection-unit parameters
  share one :class:`~repro.steering.selection.ConfigurationSelectionUnit`
  (and its memo); each lane re-evaluates the selection only when its
  waiting window or configured counts actually changed, so a 64-lane sweep
  answers most selection queries from one warm memo instead of 64 cold
  ones;
* **dispatch decode** — per-PC operand/destination templates are shared
  across every lane of the batch (all lanes run the same program).

Each lane still owns a **real** :class:`~repro.core.processor.Processor`
with all of its event-driven components — fabric, loader, policy,
predictor, BTB, trace cache, decode buffer, fetch unit, register file,
data memory.  Event-driven state is cheapest exactly where the scalar
engine keeps it, and reusing the construction path makes lane results
identical to the scalar engine *by construction*: ``Processor.result()``
builds the final :class:`~repro.core.stats.SimulationResult` in both
engines.  Each lane's wake-up array is swapped for :class:`_MirrorWakeup`,
which mirrors need-field changes into the shared bank, so retirement and
flush recovery keep running the proven scalar code.

Lanes that halt or exhaust their cycle budget are masked out of the batch
and simply stop stepping — ragged finish times cost nothing.

Equivalence: the scalar engine stays the reference.  The opt-in
``REPRO_VECTOR_CROSSCHECK`` debug toggle (same pattern as the SWAR and
availability crosschecks) steps a shadow scalar :class:`Processor` next to
every lane and compares the key pipeline state after every cycle; the
equivalence test suite additionally pins bit-identical
``SimulationResult.to_dict()`` output across the policy catalogue.
"""

from __future__ import annotations

from typing import Any

from repro.core.baselines import (
    demand_processor,
    fixed_superscalar,
    random_processor,
    static_processor,
    steering_processor,
)
from repro.core.params import ProcessorParams
from repro.core.policies import OracleSteering, PaperSteering
from repro.core.processor import Processor
from repro.core.reference import run_reference
from repro.errors import SimulationError
from repro.isa.futypes import FU_TYPES
from repro.isa.opcodes import Opcode, OperandClass
from repro.sched.entry import EntryState, RuuEntry, SourceBinding
from repro.sched.wakeup import WakeupArray
from repro.sched.wakeup_vec import make_countdown_bank, make_lane_bank
from repro.steering.selection import ConfigurationSelectionUnit
from repro.utils.env import env_flag

__all__ = [
    "VECTOR_FACTORIES",
    "vector_eligible",
    "vector_dispatch_enabled",
    "crosscheck_enabled",
    "run_vector_batch",
]

#: job factories the lane engine can replicate exactly.  The excluded ones
#: are excluded deliberately: steering-traced / steering-telemetry attach
#: per-cycle observers the lane engine does not drive, and reference is not
#: a cycle-level simulation at all.
VECTOR_FACTORIES = frozenset(
    {
        "ffu-only",
        "steering",
        "steering-basis",
        "static",
        "random",
        "oracle",
        "demand",
    }
)

_DEFAULT_PARAMS = ProcessorParams()

_WAITING = EntryState.WAITING
_ISSUED = EntryState.ISSUED
_COMPLETED = EntryState.COMPLETED

#: number of functional-unit types = width of the resource field.
_NUM_TYPES = len(FU_TYPES)
#: ``(bit_index, type)`` pairs — FU_TYPES is in bit-index order, so plain
#: lists indexed by ``fu_type.bit_index`` line up with ``counts_tuple()``.
_FU_INDEXED = tuple(enumerate(FU_TYPES))
#: type -> bit index as one dict hit (the property resolves a descriptor
#: plus a table lookup per call; the hot loops below call it constantly).
_BI = {t: t.bit_index for t in FU_TYPES}

# lane policy kinds: how the steering phase of a lane's cycle is driven.
_KIND_NONE = 0  # ffu-only: the policy cycle is a no-op
_KIND_PAPER = 1  # PaperSteering: lean manager cycle with the shared memo
_KIND_STATIC = 2  # StaticConfiguration: loader stepping until satisfied
_KIND_READY = 3  # policy.cycle needs the ready-unscheduled queue (demand)
_KIND_PLAIN = 4  # policy.cycle ignores the queue (random, oracle)


def vector_dispatch_enabled() -> bool:
    """Global kill switch: ``REPRO_VECTOR_DISABLE`` forces the scalar path."""
    return not env_flag("REPRO_VECTOR_DISABLE")


def crosscheck_enabled() -> bool:
    """Opt-in per-cycle shadow-scalar crosscheck (``REPRO_VECTOR_CROSSCHECK``)."""
    return env_flag("REPRO_VECTOR_CROSSCHECK")


def vector_eligible(factory: str, params: ProcessorParams | None) -> bool:
    """Can a job with this factory and these parameters run as a lane?

    Only the policy recipes in :data:`VECTOR_FACTORIES` are replicated,
    and the pipelined select-free scheduling mode is excluded (its stale
    availability bus is inherently per-lane sequential state the batched
    kernel does not model).
    """
    if factory not in VECTOR_FACTORIES:
        return False
    params = params if params is not None else _DEFAULT_PARAMS
    return not params.pipelined_scheduling


# --------------------------------------------------------------- lane setup
class _MirrorWakeup(WakeupArray):
    """A per-lane wake-up array that mirrors its need fields into the bank.

    Retirement and flush recovery keep calling the scalar array's proven
    remove logic; the override additionally clears the packed field in the
    shared ``(lanes, rows)`` bank, disarms the row's batched count-down
    timer, and maintains the lane's busy ledger and steering-signature
    dirtiness.  Occupancy and scheduled bits are *not* mirrored — the
    kernel's masks are combined with them lane-locally.
    """

    def __init__(self, n_entries: int, bank, lane_index: int) -> None:
        super().__init__(n_entries)
        self._bank = bank
        self._lane_index = lane_index
        #: back-reference to the driving lane, wired after _Lane creation.
        self._lane: _Lane | None = None

    def insert(self, fu_type, dep_rows):
        # the engine dispatches through _lean_dispatch, which writes the
        # field itself; this override keeps any out-of-band insert coherent
        row = super().insert(fu_type, dep_rows)
        dep_bits = 0
        for d in dep_rows:
            dep_bits |= 1 << d
        self._bank.set_row(
            self._lane_index,
            row,
            (1 << fu_type.bit_index) | (dep_bits << _NUM_TYPES),
        )
        return row

    def remove(self, index):
        lane = self._lane
        if lane is not None:
            entry = lane.ruu._entries.get(index)
            if entry is not None and entry.state is _WAITING:
                # a waiting entry left the window (flush): the steering
                # window signature changed
                lane.sig_dirty = True
            unit = lane.row_unit[index]
            if unit is not None:
                # squashed while executing: disarm the timer and return
                # the unit to the busy ledger (the flush path itself
                # releases the unit object, exactly as the scalar engine)
                lane.row_unit[index] = None
                lane.busy_by_type[_BI[unit.fu_type]] -= 1
                lane.ticker.cancel(self._lane_index, index)
        super().remove(index)
        self._bank.clear_row(self._lane_index, index)


class _Lane:
    """One simulation lane: a real processor plus lock-step driver state."""

    __slots__ = (
        "index",
        "proc",
        "ruu",
        "wakeup",
        "fabric",
        "rfus",
        "decode",
        "fetch",
        "predictor",
        "btb",
        "policy",
        "kind",
        "manager",
        "loader",
        "select_unit",
        "queue_size",
        "fetch_width",
        "max_cycles",
        "scratch_rem",
        "static_done",
        "shadow",
        "done",
        "bank",
        "ticker",
        "templates",
        "row_unit",
        "busy_by_type",
        "sig_dirty",
        "last_counts",
        "last_result",
        "fast_memo",
        "util_conf",
        "util_busy",
    )

    def __init__(self, index: int, proc: Processor, max_cycles: int) -> None:
        self.index = index
        self.proc = proc
        self.ruu = proc.ruu
        self.wakeup = proc.ruu.wakeup
        self.fabric = proc.fabric
        self.rfus = proc.fabric.rfus
        self.decode = proc.decode
        self.fetch = proc.fetch
        self.predictor = proc.predictor
        self.btb = proc.btb
        self.policy = proc.policy
        self.kind = _KIND_PLAIN
        self.manager = None
        self.loader = None
        self.select_unit: ConfigurationSelectionUnit | None = None
        self.queue_size = 0
        self.fetch_width = proc.params.fetch_width
        self.max_cycles = max_cycles
        self.scratch_rem = [0] * _NUM_TYPES
        self.static_done = False
        self.shadow: Processor | None = None
        self.done = False
        self.bank = None
        self.ticker = None
        self.templates: dict | None = None
        #: unit executing the instruction in each wake-up row (busy ledger).
        self.row_unit: list = [None] * proc.params.window_size
        self.busy_by_type = [0] * _NUM_TYPES
        #: True when the waiting-window signature may have changed since
        #: the last steering selection.
        self.sig_dirty = True
        self.last_counts: tuple | None = None
        self.last_result = None
        #: batch-shared (packed signature, counts) -> SelectResult cache.
        self.fast_memo: dict | None = None
        #: per-type utilisation accumulators, flushed into the processor's
        #: stat dicts when the lane finishes (plain list adds per cycle
        #: instead of ten enum-keyed dict updates).
        self.util_conf = [0] * _NUM_TYPES
        self.util_busy = [0] * _NUM_TYPES


def _build_processor(
    factory: str,
    program,
    params: ProcessorParams | None,
    kwargs: dict[str, Any],
    shared: dict,
) -> Processor:
    """Replicate a batch factory's processor construction without running it.

    Mirrors the recipes in :mod:`repro.evaluation.batch` exactly — same
    defaults, same ignored kwargs — so a lane's components are the ones the
    scalar engine would have built.  The oracle's profiling reference run
    is shared across the batch's lanes (it is a pure function of the
    program, and every lane of a batch shares the program).
    """
    if factory == "ffu-only":
        return fixed_superscalar(program, params)
    if factory == "steering":
        return steering_processor(
            program, params, use_exact_metric=kwargs.get("use_exact_metric", False)
        )
    if factory == "steering-basis":
        p = params if params is not None else ProcessorParams()
        policy = PaperSteering(
            configs=tuple(kwargs["configs"]), queue_size=p.window_size
        )
        return Processor(program, params=p, policy=policy)
    if factory == "static":
        return static_processor(program, kwargs["config"], params)
    if factory == "random":
        return random_processor(
            program,
            params,
            period=kwargs.get("period", 200),
            seed=kwargs.get("seed", 0),
        )
    if factory == "oracle":
        reference = shared.get("oracle-reference")
        if reference is None:
            reference = run_reference(program, max_instructions=1_000_000)
            shared["oracle-reference"] = reference
        policy = OracleSteering(
            reference.trace, lookahead=kwargs.get("lookahead", 64)
        )
        return Processor(program, params=params, policy=policy)
    if factory == "demand":
        return demand_processor(
            program,
            params,
            smoothing=kwargs.get("smoothing", 0.1),
            improvement_margin=kwargs.get("improvement_margin", 0.15),
        )
    raise SimulationError(f"factory {factory!r} has no vector lane recipe")


def _config_fingerprint(configs) -> tuple:
    return tuple(
        (c.name, tuple(sorted((t.name, n) for t, n in c.counts.items())))
        for c in configs
    )


def _classify(lane: _Lane, shared_units: dict) -> None:
    """Pick the lane's steering-phase driver and wire shared structures."""
    policy = lane.policy
    name = type(policy).__name__
    if name == "NoSteering":
        lane.kind = _KIND_NONE
    elif isinstance(policy, PaperSteering):
        lane.kind = _KIND_PAPER
        lane.manager = policy.manager
        lane.loader = policy.manager.loader
        lane.queue_size = policy.queue_size
        key = (
            _config_fingerprint(policy.configs),
            policy.queue_size,
            policy.use_exact_metric,
        )
        # the first lane of each selection-unit signature donates its unit;
        # select() is a pure function of (window types, counts), so sharing
        # it — and its memos — across lanes cannot change any lane's result
        unit, fast = shared_units.setdefault(
            key, (policy.manager.selection_unit, {})
        )
        lane.select_unit = unit
        lane.fast_memo = fast
    elif name == "StaticConfiguration":
        lane.kind = _KIND_STATIC
    elif name == "DemandSteering":
        lane.kind = _KIND_READY
    else:  # random, oracle: cycle() ignores the ready queue
        lane.kind = _KIND_PLAIN


# ------------------------------------------------------------ lean dispatch
def _dispatch_template(instr) -> tuple:
    """Per-PC dispatch invariants, shared across every lane of the batch.

    Mirrors the operand-class filtering of
    :meth:`repro.sched.ruu.RegisterUpdateUnit.dispatch`: a source is
    ``None`` when unused or hard-wired x0, else the ``(reg_class, index)``
    rename key.
    """
    spec = instr.spec
    srcs = []
    for cls, idx in ((spec.src1, instr.rs1), (spec.src2, instr.rs2)):
        if cls is OperandClass.NONE or (cls is OperandClass.INT and idx == 0):
            srcs.append(None)
        else:
            srcs.append(("int" if cls is OperandClass.INT else "fp", idx))
    return (srcs[0], srcs[1], instr.destination(), 1 << instr.fu_type.bit_index)


def _lean_dispatch(lane: _Lane, fetched) -> None:
    """``RegisterUpdateUnit.dispatch`` with the batch-shared template.

    Field-for-field identical to the scalar dispatch path (bindings,
    rename, wake-up row allocation, entry bookkeeping); the revalidation
    the scalar path performs per call is guaranteed here by the caller
    (row headroom) and by construction (producer rows come from the live
    rename map).  The packed need field is written to the lane's array and
    the shared bank in one place, skipping the mirror round-trip.
    """
    ruu = lane.ruu
    wk = lane.wakeup
    tmpl = lane.templates.get(fetched.pc)
    if tmpl is None:
        tmpl = _dispatch_template(fetched.instruction)
        lane.templates[fetched.pc] = tmpl
    s1, s2, dest, type_bit = tmpl
    rename = ruu._rename
    row_by_seq = ruu._row_by_seq
    dep_bits = 0
    if s1 is None:
        b1 = None
    else:
        pseq = rename.get(s1)
        b1 = SourceBinding(s1[0], s1[1], pseq)
        if pseq is not None:
            r = row_by_seq.get(pseq)
            if r is not None:
                dep_bits |= 1 << r
    if s2 is None:
        b2 = None
    else:
        pseq = rename.get(s2)
        b2 = SourceBinding(s2[0], s2[1], pseq)
        if pseq is not None:
            r = row_by_seq.get(pseq)
            if r is not None:
                dep_bits |= 1 << r
    occ = wk._occupied
    free = ~occ & wk._all_rows
    row = (free & -free).bit_length() - 1  # lowest free row, as insert()
    field = type_bit | (dep_bits << _NUM_TYPES)
    wk._need |= field << (row * wk._width)
    wk._occupied = occ | (1 << row)
    lane.bank.set_row(lane.index, row, field)
    seq = ruu._next_seq
    ruu._next_seq = seq + 1
    entry = RuuEntry(seq=seq, fetched=fetched, sources=(b1, b2))
    ruu._entries[row] = entry
    ruu._order.append(entry)
    row_by_seq[seq] = row
    if dest is not None:
        rename[dest] = seq
    ruu.dispatched += 1


# ------------------------------------------------------------ per-lane step
def _step_rest(lane: _Lane, req_kernel: int, all_kernel: int) -> None:
    """Phases 2-6 of one lane's cycle (everything after retirement).

    Keep in lockstep with :meth:`repro.core.processor.Processor.step` —
    the per-cycle crosscheck and the equivalence suite pin the two engines
    to identical state.  The wake-up request masks arrive precomputed from
    the batched kernel; execution count-downs are advanced by the driver's
    batched timer phase, so no per-unit or per-entry tick sweeps run here.
    """
    proc = lane.proc
    ruu = lane.ruu
    fabric = lane.fabric
    issued = 0
    memory_stalls = 0
    resolutions = None

    if not ruu.halted:
        # 2. issue / execute / branch repair --------------------------------
        if not ruu._entries:
            proc._frontend_empty_cycles += 1
        wk = lane.wakeup
        live = wk._occupied & ~wk._scheduled
        req_mask = req_kernel & live
        requests = req_mask.bit_count()
        proc._resource_blocked_cycles += (all_kernel & live).bit_count() - requests
        if req_mask:
            counts = fabric.counts_tuple()
            busy = lane.busy_by_type
            rem = lane.scratch_rem
            for i in range(_NUM_TYPES):
                rem[i] = counts[i] - busy[i]  # == the scalar idle_counts
            entries = ruu._entries
            issued_per_type = ruu.issued_per_type
            ticker = lane.ticker
            lane_index = lane.index
            # grant oldest-first over the requesting rows only: scan the
            # set bits of the mask and order by sequence number (the same
            # order as walking _order, without touching the whole window)
            m = req_mask
            cand = []
            while m:
                low = m & -m
                row = low.bit_length() - 1
                m ^= low
                e = entries[row]
                cand.append((e.seq, row, e))
            if len(cand) > 1:
                cand.sort()
            for _, row, entry in cand:
                fu_type = entry.fu_type
                bi = _BI[fu_type]
                if rem[bi] <= 0:
                    continue
                rem[bi] -= 1
                if entry.is_load:
                    ok, forward = ruu._load_memory_check(entry)
                    if not ok:
                        memory_stalls += 1
                        ruu.memory_stalls += 1
                        continue  # request persists next cycle
                    ruu._execute_load(entry, forward)
                elif entry.is_store:
                    ruu._execute_store(entry)
                elif entry.instruction.is_control:
                    resolution = ruu._execute_control(entry)
                    if resolutions is None:
                        resolutions = [resolution]
                    else:
                        resolutions.append(resolution)
                else:
                    ruu._execute_alu(entry)
                latency = entry.instruction.latency
                unit = fabric.issue(fu_type, latency, entry.seq)
                entry.unit_uid = unit.uid
                entry.state = _ISSUED
                entry.countdown = latency
                entry.issue_cycle = proc.cycle_count
                wk._scheduled |= 1 << row  # mark_scheduled: row is live here
                lane.row_unit[row] = unit
                busy[bi] += 1
                ticker.start(lane_index, row, latency)
                issued_per_type[fu_type] += 1
                issued += 1
            if issued:
                lane.sig_dirty = True
        if resolutions is not None:
            # train the predictors; repair the pipeline on the oldest
            # mispredict (Processor._handle_resolutions, inlined)
            oldest = None
            for res in resolutions:
                instr = res.entry.instruction
                if instr.is_branch:
                    proc._branch_resolutions += 1
                    lane.predictor.update(
                        res.entry.pc, res.taken, mispredicted=res.mispredicted
                    )
                elif instr.opcode is Opcode.JALR:
                    lane.btb.update(res.entry.pc, res.target)
                if res.mispredicted:
                    proc._mispredictions += 1
                    if oldest is None or res.entry.seq < oldest.entry.seq:
                        oldest = res
            if oldest is not None:
                proc._squashed += ruu.flush_younger(oldest.entry.seq)
                proc._flushes += 1
                lane.decode.flush()
                lane.fetch.redirect(oldest.target)
        contention = requests - issued - memory_stalls
        if contention > 0:
            proc._contention_cycles += contention

        # 3. dispatch -------------------------------------------------------
        decode = lane.decode
        if decode._buffer:
            room = wk.n_entries - wk._occupied.bit_count()
            if room:
                for fetched in decode.pop(limit=room):
                    _lean_dispatch(lane, fetched)
                lane.sig_dirty = True

        # 4. fetch into decode ---------------------------------------------
        if decode.can_accept(lane.fetch_width):
            packet = lane.fetch.fetch_packet()
            if packet:
                decode.push(packet)

    # 5. steering policy (runs in the halt cycle too, as in the scalar step)
    kind = lane.kind
    if kind == _KIND_PAPER:
        _paper_cycle(lane)
    elif kind == _KIND_READY:
        lane.policy.cycle(ruu.ready_unscheduled(), ruu.retired)
    elif kind == _KIND_STATIC:
        if not lane.static_done:
            policy = lane.policy
            if not policy.loader.satisfied or not lane.rfus.bus_free:
                policy.loader.step()
            else:
                # the loader never evicts without a pending load, so a
                # satisfied target with a free bus is a terminal state:
                # every later scalar cycle evaluates to this same no-op
                lane.static_done = True
    elif kind == _KIND_PLAIN:
        lane.policy.cycle((), ruu.retired)

    # 6. utilisation + advance time (Processor.step, minus event stashing).
    # The busy ledger equals counts - idle_counts: units only become busy
    # through fabric.issue, and only idle units can be evicted, so the two
    # bookkeepings cannot diverge.
    counts = fabric.counts_tuple()
    busy = lane.busy_by_type
    conf_acc = lane.util_conf
    busy_acc = lane.util_busy
    for i in range(_NUM_TYPES):
        n = counts[i]
        if n:
            conf_acc[i] += n
            busy_acc[i] += busy[i]
    lane.rfus.tick_bus()  # unit count-downs advance in the batched phase
    proc.cycle_count += 1


def _paper_cycle(lane: _Lane) -> None:
    """One PaperSteering clock with the batch-shared selection unit.

    Mirrors :meth:`repro.steering.manager.ConfigurationManager.cycle`
    stat-for-stat, with two lane-engine accelerations: the selection is
    resolved through the shared unit's memo with a precomputed window
    signature (the memo key built here is exactly the one ``select()``
    would build), and when neither the waiting window nor the configured
    counts changed since the previous cycle the previous selection result
    is reused outright — ``select()`` is a pure function of that pair.
    """
    manager = lane.manager
    loader = lane.loader
    counts = loader.current_counts()  # the fabric's cached counts tuple
    if lane.sig_dirty or counts is not lane.last_counts:
        # pack the waiting-window type signature into one int (3 bits per
        # slot, leading sentinel keeps it injective): cheaper to build and
        # hash than the tuple key, probed through the batch-shared cache
        qs = lane.queue_size
        n = 0
        sig_int = 1
        for e in lane.ruu._order:
            if e.state is _WAITING:
                sig_int = (sig_int << 3) | _BI[e.fu_type]
                n += 1
                if n == qs:
                    break
        fkey = (sig_int, counts)
        result = lane.fast_memo.get(fkey)
        if result is None:
            # cold for the batch: fall through to the selection unit's own
            # memo with the exact key select() would build, then the full
            # four-stage evaluation
            unit = lane.select_unit
            memo = unit._memo
            sig = []
            for e in lane.ruu._order:
                if e.state is _WAITING:
                    sig.append(_BI[e.fu_type])
                    if len(sig) == qs:
                        break
            key = (tuple(sig), counts)
            result = memo.get(key)
            if result is not None:
                memo.move_to_end(key)
            else:
                window = [
                    e.instruction
                    for e in lane.ruu._order
                    if e.state is _WAITING
                ]
                result = unit.select(window, counts)
            lane.fast_memo[fkey] = result
        lane.sig_dirty = False
        lane.last_counts = counts
        lane.last_result = result
    else:
        result = lane.last_result
    loader.set_target(result.config)
    plan = loader.step()

    index = result.index
    error = result.errors[index]
    manager.last_selection = index
    manager.last_error = error
    stats = manager.stats
    stats.cycles += 1
    selections = stats.selections
    selections[index] = selections.get(index, 0) + 1
    stats.total_selected_error += error
    if plan is not None:
        stats.loads += 1
        manager.last_load = plan


# ------------------------------------------------------------- batch driver
def _check_shadow(lane: _Lane) -> None:
    """Compare a lane against its shadow scalar processor (crosscheck mode)."""
    shadow = lane.shadow
    shadow.step()
    proc = lane.proc
    ruu = lane.ruu
    sruu = shadow.ruu
    mismatches = []
    for label, got, want in (
        ("cycle", proc.cycle_count, shadow.cycle_count),
        ("halted", ruu.halted, sruu.halted),
        ("retired", ruu.retired, sruu.retired),
        ("dispatched", ruu.dispatched, sruu.dispatched),
        ("completed_bits", ruu._completed_bits, sruu._completed_bits),
        ("occupied", ruu.wakeup._occupied, sruu.wakeup._occupied),
        ("scheduled", ruu.wakeup._scheduled, sruu.wakeup._scheduled),
        (
            "availability",
            lane.fabric.availability_bits(),
            shadow.fabric.availability_bits(),
        ),
        ("fetch_pc", lane.fetch.pc, shadow.fetch.pc),
        ("decode_depth", len(lane.decode), len(shadow.decode)),
        ("mispredictions", proc._mispredictions, shadow._mispredictions),
        ("memory_stalls", ruu.memory_stalls, sruu.memory_stalls),
    ):
        if got != want:
            mismatches.append(f"{label}: vector={got!r} scalar={want!r}")
    if mismatches:
        raise SimulationError(
            f"vector lane {lane.index} diverged from the scalar reference at "
            f"cycle {proc.cycle_count}: " + "; ".join(mismatches)
        )


def run_vector_batch(jobs, crosscheck: bool | None = None) -> list[Any]:
    """Run a batch of jobs sharing one program in lock-step lanes.

    ``jobs`` are :class:`~repro.evaluation.batch.SimJob`-shaped objects
    (``factory``/``program``/``params``/``max_cycles``/``kwargs``) that all
    reference the same program and satisfy :func:`vector_eligible`.
    Returns one result per job, in submission order — each the exact value
    the scalar engine's factory would have produced.

    ``crosscheck`` steps a shadow scalar processor per lane and verifies
    the pipeline state after every cycle (defaults to the
    ``REPRO_VECTOR_CROSSCHECK`` environment toggle).
    """
    jobs = list(jobs)
    if not jobs:
        return []
    if crosscheck is None:
        crosscheck = crosscheck_enabled()

    for job in jobs:
        if job.max_cycles <= 0:
            raise SimulationError("max_cycles must be positive")
        if not vector_eligible(job.factory, job.params):
            raise SimulationError(
                f"job factory {job.factory!r} is not vector-eligible"
            )

    program = jobs[0].program
    max_rows = max(
        (j.params if j.params is not None else _DEFAULT_PARAMS).window_size
        for j in jobs
    )
    n_lanes = len(jobs)
    bank = make_lane_bank(n_lanes, max_rows)
    ticker = make_countdown_bank(n_lanes, max_rows)

    shared: dict = {}
    shared_units: dict = {}
    templates: dict = {}
    lanes: list[_Lane] = []
    for i, job in enumerate(jobs):
        proc = _build_processor(
            job.factory, program, job.params, job.kwargs, shared
        )
        # swap in the mirrored wake-up array before anything dispatches
        mirror = _MirrorWakeup(proc.params.window_size, bank, i)
        proc.ruu.wakeup = mirror
        lane = _Lane(i, proc, job.max_cycles)
        lane.bank = bank
        lane.ticker = ticker
        lane.templates = templates
        mirror._lane = lane
        _classify(lane, shared_units)
        if crosscheck:
            lane.shadow = _build_processor(
                job.factory, program, job.params, job.kwargs, shared
            )
        lanes.append(lane)

    active = list(lanes)
    active_idx = list(range(n_lanes))
    avail_vals = [0] * n_lanes
    bank_requests = bank.requests
    while active:
        # phase 1: in-order retirement (frees rows, may halt the lane),
        # then this cycle's post-retire availability words, set in bulk
        n_active = 0
        for lane in active:
            ruu = lane.ruu
            order = ruu._order
            if order and order[0].state is _COMPLETED:
                proc = lane.proc
                # mirrors Processor.step exactly: phase 1 runs before this
                # cycle's _step_rest increments cycle_count, so the stamp
                # matches the scalar engine's pre-increment value
                proc._last_retire_cycle = proc.cycle_count
                rpt = proc._retired_per_type
                for entry in ruu.retire():
                    rpt[entry.fu_type] += 1
            avail_vals[n_active] = lane.fabric.availability_bits() | (
                ruu._completed_bits << _NUM_TYPES
            )
            n_active += 1
        bank.set_avail_many(active_idx, avail_vals[:n_active])
        # phase 2: one batched wake-up evaluation for every lane
        req_masks, all_masks = bank_requests()
        # phase 3: the rest of the cycle, lane by lane
        for lane in active:
            index = lane.index
            _step_rest(lane, req_masks[index], all_masks[index])
        # phase 4: batched count-down timers; apply the completions (the
        # scalar engine's fabric.tick + ruu.tick transitions, by event)
        for lane_i, row in ticker.advance():
            lane = lanes[lane_i]
            ruu = lane.ruu
            entry = ruu._entries[row]
            entry.countdown = 0
            entry.state = _COMPLETED
            ruu._completed_bits |= 1 << row
            unit = lane.row_unit[row]
            lane.row_unit[row] = None
            lane.busy_by_type[_BI[unit.fu_type]] -= 1
            unit.release()
        if crosscheck:
            for lane in active:
                _check_shadow(lane)
        # phase 5: mask out finished lanes (flushing their accumulated
        # utilisation stats into the processor's per-type dicts)
        finished = False
        for lane in active:
            if lane.ruu.halted or lane.proc.cycle_count >= lane.max_cycles:
                lane.done = True
                ticker.clear_lane(lane.index)
                proc = lane.proc
                conf_acc = lane.util_conf
                busy_acc = lane.util_busy
                for i, t in _FU_INDEXED:
                    proc._configured_cycles[t] += conf_acc[i]
                    proc._busy_cycles[t] += busy_acc[i]
                finished = True
        if finished:
            active = [lane for lane in active if not lane.done]
            active_idx = [lane.index for lane in active]

    return [lane.proc.result() for lane in lanes]
