"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch the whole family with a single ``except`` clause while
still being able to discriminate by subsystem.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "EncodingError",
    "AssemblerError",
    "DisassemblerError",
    "ConfigurationError",
    "FabricError",
    "SchedulerError",
    "SimulationError",
    "WorkloadError",
    "CircuitError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CircuitError(ReproError):
    """A combinational-circuit model was driven outside its bit-width."""


class EncodingError(ReproError):
    """An instruction could not be encoded to / decoded from binary."""


class AssemblerError(ReproError):
    """Assembly source text is malformed.

    Carries the 1-based source line for diagnostics.
    """

    def __init__(self, message: str, line: int | None = None) -> None:
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class DisassemblerError(ReproError):
    """A binary word does not decode to any known instruction."""


class ConfigurationError(ReproError):
    """A processor configuration is invalid (e.g. exceeds the slot budget)."""


class FabricError(ReproError):
    """Illegal operation on the reconfigurable fabric (e.g. reloading a busy slot)."""


class SchedulerError(ReproError):
    """Wake-up array / RUU invariant violation."""


class SimulationError(ReproError):
    """The cycle-level simulation reached an inconsistent state."""


class WorkloadError(ReproError):
    """A workload specification is invalid."""
