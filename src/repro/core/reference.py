"""A functional reference interpreter (golden model).

Executes a program architecturally — no pipeline, no timing — producing the
committed register file, the final data memory, and the dynamic
instruction trace.  It serves two purposes:

* correctness oracle: the cycle-level processor must commit exactly the
  same architectural state for every program;
* profiling: the dynamic functional-unit-type trace feeds the
  :class:`~repro.core.policies.OracleSteering` upper-bound policy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.frontend.memory import DataMemory
from repro.isa import semantics
from repro.isa.futypes import FUType
from repro.isa.program import Program
from repro.isa.opcodes import OperandClass
from repro.sched.regfile import RegisterFile

__all__ = ["ReferenceResult", "run_reference"]


@dataclass
class ReferenceResult:
    """Architectural outcome of a functional run."""

    registers: RegisterFile
    memory: DataMemory
    #: dynamic instruction count (including the halt).
    executed: int
    #: functional-unit type of every executed instruction, in order.
    trace: list[FUType]
    halted: bool


def run_reference(
    program: Program,
    dmem_size: int = 1 << 20,
    max_instructions: int = 1_000_000,
    entry: str = "main",
) -> ReferenceResult:
    """Architecturally execute ``program`` to completion."""
    regs = RegisterFile()
    mem = DataMemory(size=dmem_size, image=program.data)
    pc = program.entry(entry)
    trace: list[FUType] = []
    executed = 0
    halted = False

    while executed < max_instructions:
        if not 0 <= pc < len(program.instructions):
            raise SimulationError(f"reference run fell off the program at pc={pc}")
        instr = program.instructions[pc]
        spec = instr.spec
        trace.append(instr.fu_type)
        executed += 1

        def read(cls: OperandClass, idx: int) -> int | float:
            if cls is OperandClass.NONE:
                return 0
            return regs.read("int" if cls is OperandClass.INT else "fp", idx)

        s1 = read(spec.src1, instr.rs1)
        s2 = read(spec.src2, instr.rs2)

        if instr.is_halt:
            halted = True
            break
        if instr.is_control:
            _taken, target, link = semantics.control_outcome(instr, pc, int(s1), int(s2))
            if link is not None and instr.rd != 0:
                regs.write("int", instr.rd, link)
            pc = target
            continue
        if instr.is_store:
            addr = semantics.effective_address(instr, int(s1))
            mem.store(addr, semantics.store_bytes(instr, s2))
            pc += 1
            continue
        if instr.is_load:
            addr = semantics.effective_address(instr, int(s1))
            raw = mem.load(addr, semantics.access_size(instr))
            value = semantics.load_value(instr, raw)
            dest = instr.destination()
            if dest is not None:
                regs.write(dest[0], dest[1], value)
            pc += 1
            continue
        value = semantics.alu_result(instr, s1, s2)
        dest = instr.destination()
        if dest is not None:
            regs.write(dest[0], dest[1], value)
        pc += 1

    if not halted and executed >= max_instructions:
        raise SimulationError(
            f"reference run exceeded {max_instructions} instructions (no halt)"
        )
    return ReferenceResult(
        registers=regs, memory=mem, executed=executed, trace=trace, halted=halted
    )
