"""Per-cycle event records and ASCII timelines.

The processor records a :class:`CycleEvents` snapshot every cycle (cheap:
a handful of ints and short strings); these drive the fabric-occupancy
timeline used by ``examples/pipeline_trace.py`` and the E-PH analysis.

Slot glyphs: one character per reconfigurable slot —

* ``.``  empty slot
* ``*``  slot under reconfiguration (configuration bus busy on it)
* letter = configured unit type (``A`` IALU, ``M`` IMDU, ``L`` LSU,
  ``F`` FPALU, ``D`` FPMDU); lowercase while the unit is executing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fabric.fabric import Fabric
from repro.isa.futypes import FUType

__all__ = ["CycleEvents", "slot_glyphs", "render_fabric_timeline"]

_GLYPH = {
    FUType.INT_ALU: "A",
    FUType.INT_MDU: "M",
    FUType.LSU: "L",
    FUType.FP_ALU: "F",
    FUType.FP_MDU: "D",
}


@dataclass(frozen=True)
class CycleEvents:
    """What happened in one processor cycle."""

    cycle: int
    fetched: tuple[int, ...] = ()       # PCs fetched this cycle
    dispatched: tuple[int, ...] = ()    # seq numbers entering the window
    issued: tuple[int, ...] = ()        # seq numbers granted execution
    retired: tuple[int, ...] = ()       # seq numbers committed
    flushed: int = 0                    # entries squashed by a mispredict
    slots: str = ""                     # fabric occupancy glyphs
    #: configuration selected by the steering policy (None = no manager).
    selection: int | None = None


def slot_glyphs(fabric: Fabric) -> str:
    """One glyph per reconfigurable slot (see module docstring)."""
    out = []
    for slot in fabric.rfus.slots:
        if slot.is_reconfiguring:
            out.append("*")
            continue
        head = fabric.rfus.head_of(slot.index)
        if head is None:
            out.append(".")
            continue
        unit = fabric.rfus.slots[head].unit
        glyph = _GLYPH[unit.fu_type]
        out.append(glyph.lower() if not unit.available else glyph)
    return "".join(out)


def render_fabric_timeline(
    events: list[CycleEvents],
    stride: int = 1,
    max_rows: int = 200,
) -> str:
    """Render the slot-occupancy history, one row per ``stride`` cycles.

    Rows also show the pipeline activity of the sampled cycle:
    fetch/dispatch/issue/retire counts and steering selection.
    """
    header = "cycle   slots     F D I R  sel"
    lines = [header, "-" * len(header)]
    shown = 0
    for i in range(0, len(events), stride):
        if shown >= max_rows:
            # With stride > 1 only every stride-th cycle would have become
            # a row, so report both counts: rows suppressed and the raw
            # cycles (sampled or not) the truncation hides.
            remaining = len(events) - i
            if stride > 1:
                rows_left = (remaining + stride - 1) // stride
                lines.append(
                    f"... ({rows_left} more rows, {remaining} more cycles)"
                )
            else:
                lines.append(f"... ({remaining} more cycles)")
            break
        e = events[i]
        sel = "-" if e.selection is None else str(e.selection)
        lines.append(
            f"{e.cycle:6d}  {e.slots:<8s}  "
            f"{len(e.fetched)} {len(e.dispatched)} {len(e.issued)} "
            f"{len(e.retired)}  {sel}"
            + ("  FLUSH" if e.flushed else "")
        )
        shown += 1
    return "\n".join(lines)
