"""The cycle-level processor: every Fig. 1 module wired together.

Pipeline order within one simulated cycle (back to front, the standard
discipline so a value never traverses two stages in one cycle):

1. **retire** — in-order commit of completed entries (stores write memory);
2. **issue/execute** — wake-up requests, grants, functional execution,
   branch resolution and mispredict recovery;
3. **dispatch** — decoded instructions enter free wake-up rows;
4. **decode/fetch** — the fetch unit follows the predicted path into the
   decode buffer;
5. **steer** — the configuration-management policy observes the ready
   queue and (possibly) starts a partial reconfiguration;
6. **tick** — functional units, the configuration bus and the count-down
   timers advance one cycle.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.params import ProcessorParams
from repro.core.policies import PaperSteering, SteeringPolicy
from repro.core.stats import (
    OUTCOME_COMPLETED,
    OUTCOME_CUTOFF,
    OUTCOME_DEADLOCK,
    SimulationResult,
)
from repro.core.tracing import CycleEvents, slot_glyphs
from repro.errors import SimulationError
from repro.fabric.fabric import Fabric
from repro.frontend.branch import BTB, BranchPredictor
from repro.frontend.decode import DecodeStage
from repro.frontend.fetch import FetchUnit
from repro.frontend.memory import DataMemory, InstructionMemory
from repro.frontend.trace_cache import TraceCache
from repro.isa.futypes import FU_TYPES
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.sched.ruu import RegisterUpdateUnit

__all__ = ["Processor", "DEADLOCK_WINDOW"]

#: cycles without a single retirement after which a stopped, non-halted
#: run is classified ``deadlock`` rather than ``cutoff``.  Generously
#: above the longest legitimate stall the model can produce (a full
#: fabric reload is ``n_slots * reconfig_latency`` bus cycles, and
#: instruction latencies top out in the tens), so a window this wide
#: with zero retirements means the pipeline has wedged for good.
DEADLOCK_WINDOW = 4096


class Processor:
    """One simulated processor instance executing one program."""

    def __init__(
        self,
        program: Program,
        params: ProcessorParams | None = None,
        policy: SteeringPolicy | None = None,
        entry: str = "main",
        record_events: bool = False,
        telemetry=None,
    ) -> None:
        self.params = params if params is not None else ProcessorParams()
        self.policy = policy if policy is not None else PaperSteering()
        self.program = program

        self.imem = InstructionMemory(program)
        self.dmem = DataMemory(size=self.params.dmem_size, image=program.data)
        self.predictor = BranchPredictor(self.params.predictor_entries)
        self.btb = BTB(self.params.btb_entries)
        self.trace_cache = (
            TraceCache(self.params.trace_cache_capacity)
            if self.params.use_trace_cache
            else None
        )
        self.fetch = FetchUnit(
            self.imem,
            predictor=self.predictor,
            btb=self.btb,
            trace_cache=self.trace_cache,
            width=self.params.fetch_width,
            entry=program.entry(entry),
        )
        self.decode = DecodeStage(
            width=self.params.fetch_width, capacity=self.params.decode_capacity
        )
        self.fabric = Fabric(
            n_slots=self.params.n_slots,
            reconfig_latency=self.params.reconfig_latency,
            ffu_counts=self.params.ffu_counts,
            reconfig_mode=self.params.reconfig_mode,
        )
        self.ruu = RegisterUpdateUnit(
            self.fabric,
            self.dmem,
            window_size=self.params.window_size,
            retire_width=self.params.retire_width,
            pipelined_scheduling=self.params.pipelined_scheduling,
        )
        self.policy.bind(self.fabric)

        self.cycle_count = 0
        self._record_events = record_events
        #: full event history when ``record_events`` is set.
        self.events: list[CycleEvents] | None = [] if record_events else None
        #: materialised events of the most recent cycle (recording mode).
        self._last_events: CycleEvents | None = None
        # raw per-cycle facts stashed for the on-demand snapshot path: kept
        # as the tuples/lists the step already produced, so the fast path
        # never builds a CycleEvents or renders slot glyphs.
        self._last_cycle: int | None = None
        #: the raw fetch packet of the last cycle; pcs are materialised only
        #: when snapshot_events() asks, never in the per-cycle loop.
        self._last_packet: Sequence = ()
        self._last_dispatched: list[int] = []
        self._last_issued: tuple[int, ...] = ()
        self._last_retired: list = []
        self._last_flushed = 0
        self._retired_per_type = {t: 0 for t in FU_TYPES}
        #: cycle of the most recent retirement — drives the completed/
        #: cutoff/deadlock outcome classification in :meth:`result`.
        self._last_retire_cycle = 0
        self._busy_cycles = {t: 0 for t in FU_TYPES}
        self._configured_cycles = {t: 0 for t in FU_TYPES}
        self._mispredictions = 0
        self._branch_resolutions = 0
        self._flushes = 0
        self._squashed = 0
        # stall attribution (unit-cycles, accumulated every cycle) --------
        self._frontend_empty_cycles = 0
        self._resource_blocked_cycles = 0
        self._contention_cycles = 0
        #: per-cycle telemetry hook (``repro.telemetry.ProcessorTelemetry``).
        #: Inactive telemetry is normalised to None so the disabled hot
        #: loop pays exactly one truthiness check per cycle.
        self._telemetry = None
        if telemetry is not None:
            self.attach_telemetry(telemetry)

    def attach_telemetry(self, telemetry):
        """Attach (or with ``None`` detach) a per-cycle telemetry probe.

        A telemetry object whose ``active`` flag is false — null registry,
        no series bank, no tracer, no stage profiling — is normalised to
        ``None``: the simulation then runs the exact uninstrumented loop.
        Returns the normalised value.
        """
        if telemetry is not None and not telemetry.active:
            telemetry = None
        self._telemetry = telemetry
        return telemetry

    @property
    def telemetry(self):
        return self._telemetry

    # --------------------------------------------------------------- cycle
    def step(self) -> None:
        """Simulate one clock cycle."""
        tel = self._telemetry
        if tel is not None and tel.profile_stages:
            # repro: cold-call -- opt-in stage-profiling mode: instrumentation
            # cost is the point of this path
            return self._step_profiled(tel)
        # 1. retire
        retired = self.ruu.retire()
        if retired:
            self._last_retire_cycle = self.cycle_count
            for entry in retired:
                self._retired_per_type[entry.fu_type] += 1

        # 2. issue / execute / branch repair
        issued_seqs: tuple[int, ...] = ()
        flushed = 0
        if not self.ruu.halted:
            if self.ruu.empty:
                self._frontend_empty_cycles += 1
            flushed_before = self.ruu.flushed
            report = self.ruu.issue_and_execute(self.cycle_count)
            issued_seqs = tuple(report.issued)
            self._handle_resolutions(report.resolutions)
            flushed = self.ruu.flushed - flushed_before
            self._resource_blocked_cycles += report.resource_blocked
            self._contention_cycles += max(
                0, report.requests - len(report.granted) - report.memory_stalls
            )

        # 3. dispatch
        dispatched: list[int] = []
        if not self.ruu.halted:
            room = self.ruu.wakeup.free_count()
            for fetched in self.decode.pop(limit=room):
                dispatched.append(self.ruu.dispatch(fetched).seq)

        # 4. fetch into decode
        packet: Sequence = ()
        if not self.ruu.halted and self.decode.can_accept(self.params.fetch_width):
            fetched_packet = self.fetch.fetch_packet()
            if fetched_packet:
                self.decode.push(fetched_packet)
                packet = fetched_packet

        # 5. steering policy
        self.policy.cycle(self.ruu.ready_unscheduled(), self.ruu.retired)

        # 6. record + advance time
        if self._record_events:
            # repro: cold-call -- opt-in recording mode: per-cycle event
            # capture is what the caller asked to pay for
            self._record_cycle(packet, dispatched, issued_seqs, retired, flushed)
        else:
            # fast path: stash the raw facts; snapshot_events() materialises
            # a CycleEvents on demand
            self._last_packet = packet
            self._last_dispatched = dispatched
            self._last_issued = issued_seqs
            self._last_retired = retired
            self._last_flushed = flushed
        self._last_cycle = self.cycle_count
        self._accumulate_utilisation()
        self.fabric.tick()
        self.ruu.tick()
        if tel is not None:
            tel.on_cycle(self, len(issued_seqs), len(retired), flushed)
        self.cycle_count += 1

    # repro: allow[DET001] -- stage profiling *is* the telemetry layer:
    # wall-clock readings feed tel.stage_seconds only, never the results
    def _step_profiled(self, tel) -> None:
        """Stage-timed mirror of :meth:`step` (telemetry profiling mode).

        Keep in lockstep with :meth:`step` — the equivalence test in
        ``tests/telemetry/test_probes.py`` pins identical results.  The
        per-stage ``perf_counter`` pairs are the only difference.
        """
        from time import perf_counter

        t0 = perf_counter()
        # 1. retire
        retired = self.ruu.retire()
        if retired:
            self._last_retire_cycle = self.cycle_count
            for entry in retired:
                self._retired_per_type[entry.fu_type] += 1
        t1 = perf_counter()
        tel.stage_seconds("retire", t1 - t0)

        # 2. issue / execute / branch repair
        issued_seqs: tuple[int, ...] = ()
        flushed = 0
        if not self.ruu.halted:
            if self.ruu.empty:
                self._frontend_empty_cycles += 1
            flushed_before = self.ruu.flushed
            report = self.ruu.issue_and_execute(self.cycle_count)
            issued_seqs = tuple(report.issued)
            self._handle_resolutions(report.resolutions)
            flushed = self.ruu.flushed - flushed_before
            self._resource_blocked_cycles += report.resource_blocked
            self._contention_cycles += max(
                0, report.requests - len(report.granted) - report.memory_stalls
            )
        t2 = perf_counter()
        tel.stage_seconds("wakeup_select_execute", t2 - t1)

        # 3. dispatch
        dispatched: list[int] = []
        if not self.ruu.halted:
            room = self.ruu.wakeup.free_count()
            for fetched in self.decode.pop(limit=room):
                dispatched.append(self.ruu.dispatch(fetched).seq)
        t3 = perf_counter()
        tel.stage_seconds("dispatch", t3 - t2)

        # 4. fetch into decode
        packet: Sequence = ()
        if not self.ruu.halted and self.decode.can_accept(self.params.fetch_width):
            fetched_packet = self.fetch.fetch_packet()
            if fetched_packet:
                self.decode.push(fetched_packet)
                packet = fetched_packet
        t4 = perf_counter()
        tel.stage_seconds("fetch", t4 - t3)

        # 5. steering policy
        self.policy.cycle(self.ruu.ready_unscheduled(), self.ruu.retired)
        t5 = perf_counter()
        tel.stage_seconds("steer", t5 - t4)

        # 6. record + advance time
        if self._record_events:
            self._record_cycle(packet, dispatched, issued_seqs, retired, flushed)
        else:
            self._last_packet = packet
            self._last_dispatched = dispatched
            self._last_issued = issued_seqs
            self._last_retired = retired
            self._last_flushed = flushed
        self._last_cycle = self.cycle_count
        self._accumulate_utilisation()
        self.fabric.tick()
        self.ruu.tick()
        tel.stage_seconds("tick", perf_counter() - t5)
        tel.on_cycle(self, len(issued_seqs), len(retired), flushed)
        self.cycle_count += 1

    def _record_cycle(
        self, packet, dispatched, issued_seqs, retired, flushed
    ) -> None:
        """Recording-mode tail of a step: materialise and store the cycle's
        events.  Cold by construction — only runs when per-cycle recording
        was requested, so its allocations never tax the fast path."""
        self._last_events = CycleEvents(
            cycle=self.cycle_count,
            fetched=tuple(f.pc for f in packet),
            dispatched=tuple(dispatched),
            issued=issued_seqs,
            retired=tuple(e.seq for e in retired),
            flushed=flushed,
            slots=slot_glyphs(self.fabric),
            selection=self._current_selection(),
        )
        self.events.append(self._last_events)

    def _current_selection(self) -> int | None:
        """The steering selection of the most recent manager cycle (only
        policies recording a steering trace expose one)."""
        manager = getattr(self.policy, "manager", None)
        if manager is not None and manager.trace:
            return manager.trace[-1].selection
        return None

    @property
    def last_events(self) -> CycleEvents | None:
        """The most recent cycle's events.

        In recording mode this is the stored per-cycle record; otherwise it
        is built on demand by :meth:`snapshot_events` (the fast path pays
        nothing per cycle for it).
        """
        if self._record_events:
            return self._last_events
        return self.snapshot_events()

    def snapshot_events(self) -> CycleEvents | None:
        """Materialise a :class:`CycleEvents` for the last executed cycle.

        Cheap-on-demand counterpart of per-cycle recording: the pipeline
        facts (fetch/dispatch/issue/retire/flush) are exact; the slot
        glyphs show the fabric as it stands *after* that cycle's tick.
        Returns None before the first cycle.
        """
        if self._last_cycle is None:
            return None
        return CycleEvents(
            cycle=self._last_cycle,
            fetched=tuple(f.pc for f in self._last_packet),
            dispatched=tuple(self._last_dispatched),
            issued=self._last_issued,
            retired=tuple(e.seq for e in self._last_retired),
            flushed=self._last_flushed,
            slots=slot_glyphs(self.fabric),
            selection=self._current_selection(),
        )

    def _handle_resolutions(self, resolutions) -> None:
        """Train the predictors; repair the pipeline on the oldest mispredict."""
        oldest_mispredict = None
        for res in resolutions:
            instr = res.entry.instruction
            if instr.is_branch:
                self._branch_resolutions += 1
                self.predictor.update(
                    res.entry.pc, res.taken, mispredicted=res.mispredicted
                )
            elif instr.opcode is Opcode.JALR:
                self.btb.update(res.entry.pc, res.target)
            if res.mispredicted:
                self._mispredictions += 1
                if (
                    oldest_mispredict is None
                    or res.entry.seq < oldest_mispredict.entry.seq
                ):
                    oldest_mispredict = res
        if oldest_mispredict is not None:
            # repro: cold-call -- mispredict repair: bounded by branch
            # resolution events, not cycles
            self._squashed += self.ruu.flush_younger(oldest_mispredict.entry.seq)
            self._flushes += 1
            self.decode.flush()
            self.fetch.redirect(oldest_mispredict.target)

    def _accumulate_utilisation(self) -> None:
        # read the incrementally-maintained counts: no per-unit scan
        busy_cycles = self._busy_cycles
        configured_cycles = self._configured_cycles
        counts = self.fabric.counts_tuple()
        idle = self.fabric.idle_counts()
        for i, t in enumerate(FU_TYPES):
            n = counts[i]
            if not n:
                continue
            configured_cycles[t] += n
            busy_cycles[t] += n - idle[t]

    # ----------------------------------------------------------------- run
    def run(self, max_cycles: int = 1_000_000) -> SimulationResult:
        """Simulate until the program halts (or the cycle budget runs out)."""
        if max_cycles <= 0:
            raise SimulationError("max_cycles must be positive")
        while not self.ruu.halted and self.cycle_count < max_cycles:
            self.step()
        return self.result()

    def result(self) -> SimulationResult:
        """Snapshot the statistics collected so far."""
        if self.ruu.halted:
            outcome = OUTCOME_COMPLETED
        elif self.cycle_count - self._last_retire_cycle >= DEADLOCK_WINDOW:
            outcome = OUTCOME_DEADLOCK
        else:
            outcome = OUTCOME_CUTOFF
        res = SimulationResult(
            policy=self.policy.name,
            cycles=self.cycle_count,
            retired=self.ruu.retired,
            halted=self.ruu.halted,
            outcome=outcome,
            retired_per_type=dict(self._retired_per_type),
            busy_unit_cycles=dict(self._busy_cycles),
            configured_unit_cycles=dict(self._configured_cycles),
            mispredictions=self._mispredictions,
            branch_resolutions=self._branch_resolutions,
            flushes=self._flushes,
            squashed=self._squashed,
            memory_stalls=self.ruu.memory_stalls,
            scheduling_replays=self.ruu.scheduling_replays,
            frontend_empty_cycles=self._frontend_empty_cycles,
            resource_blocked_cycles=self._resource_blocked_cycles,
            contention_cycles=self._contention_cycles,
            reconfigurations=self.fabric.reconfigurations,
            reconfig_bus_cycles=self.fabric.rfus.bus_busy_cycles,
            fetch_packets=self.fetch.packets,
            fetched=self.fetch.fetched,
            trace_cache_hits=self.trace_cache.hits if self.trace_cache else 0,
            trace_cache_misses=self.trace_cache.misses if self.trace_cache else 0,
            final_registers=self.ruu.regfile.snapshot(),
        )
        manager = getattr(self.policy, "manager", None)
        if manager is not None:
            res.steering_selections = dict(manager.stats.selections)
            res.steering_mean_error = manager.stats.mean_selected_error
            res.steering_kept_fraction = manager.stats.current_kept_fraction
        return res

    # ------------------------------------------------------------- helpers
    def module_inventory(self) -> dict[str, str]:
        """The Fig. 1 module list with the implementing classes (F1 artefact)."""
        return {
            "instruction memory": type(self.imem).__name__,
            "data memory": type(self.dmem).__name__,
            "fetch unit": type(self.fetch).__name__,
            "trace cache": type(self.trace_cache).__name__ if self.trace_cache else "(disabled)",
            "instruction decoder": type(self.decode).__name__,
            "register update unit": type(self.ruu).__name__,
            "register files": type(self.ruu.regfile).__name__,
            "wake-up array": type(self.ruu.wakeup).__name__,
            "fixed functional units": type(self.fabric.ffus).__name__,
            "reconfigurable slots": type(self.fabric.rfus).__name__,
            "configuration management": self.policy.describe(),
        }
