"""Processor parameters (DESIGN.md §4 defaults)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.isa.futypes import FUType

__all__ = ["ProcessorParams"]


@dataclass(frozen=True)
class ProcessorParams:
    """Everything configurable about a simulated processor instance."""

    #: wake-up array / instruction queue entries (the paper's seven).
    window_size: int = 7
    #: instructions fetched per cycle along the predicted path.
    fetch_width: int = 4
    #: instructions retired per cycle.
    retire_width: int = 4
    #: reconfigurable slots in the fabric (the paper's eight).
    n_slots: int = 8
    #: configuration-bus cycles to reload one slot.
    reconfig_latency: int = 16
    #: 2-bit predictor table entries (power of two).
    predictor_entries: int = 256
    #: branch-target-buffer entries.
    btb_entries: int = 64
    #: enable the trace cache (fetch past predicted-taken branches).
    use_trace_cache: bool = True
    trace_cache_capacity: int = 64
    #: data memory size in bytes.
    dmem_size: int = 1 << 20
    #: decode buffer capacity.
    decode_capacity: int = 16
    #: steering evaluates the hardware (shift) metric unless exact is set.
    use_exact_metric: bool = False
    #: [9] extension: pipelined select-free scheduling (wake-up sees
    #: 1-cycle-stale availability; collision losers replay via reschedule).
    pipelined_scheduling: bool = False
    #: partial-reconfiguration flow: "module" (full region rewrite) or
    #: "difference" (only differing frames; cheaper for related units) [8].
    reconfig_mode: str = "module"
    #: fixed functional units per type; None = the paper's one-of-each.
    #: Passing ``{}`` builds the FFU-less pathological fabric §3.2 warns
    #: about (instructions whose unit type is never configured can starve).
    ffu_counts: dict[FUType, int] | None = None

    def __post_init__(self) -> None:
        for name in (
            "window_size",
            "fetch_width",
            "retire_width",
            "n_slots",
            "reconfig_latency",
            "dmem_size",
            "decode_capacity",
        ):
            if getattr(self, name) <= 0:
                raise SimulationError(f"{name} must be positive")
        if self.reconfig_mode not in ("module", "difference"):
            raise SimulationError(
                f"reconfig_mode must be 'module' or 'difference', got {self.reconfig_mode!r}"
            )
