"""Simulation statistics and the result record a run returns."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.isa.futypes import FU_TYPES, FUType

__all__ = ["SimulationResult", "OUTCOME_COMPLETED", "OUTCOME_CUTOFF", "OUTCOME_DEADLOCK"]

#: the program reached ``halt`` — the only outcome a correct run may have.
OUTCOME_COMPLETED = "completed"
#: the cycle budget expired while the pipeline was still retiring work.
OUTCOME_CUTOFF = "cutoff"
#: no instruction retired for a full deadlock window before the run
#: stopped — the pipeline had wedged, however large the budget.
OUTCOME_DEADLOCK = "deadlock"


@dataclass
class SimulationResult:
    """Everything measured during one simulation run."""

    policy: str
    cycles: int
    retired: int
    halted: bool
    #: how the run ended: ``completed`` (halt reached), ``cutoff`` (budget
    #: expired mid-progress) or ``deadlock`` (no retirement for a full
    #: :data:`repro.core.processor.DEADLOCK_WINDOW` before stopping).
    outcome: str = OUTCOME_COMPLETED
    #: dynamic instruction mix (retired instructions per unit type).
    retired_per_type: dict[FUType, int] = field(default_factory=dict)
    #: cumulative busy unit-cycles per type (utilisation numerator).
    busy_unit_cycles: dict[FUType, int] = field(default_factory=dict)
    #: cumulative configured unit-cycles per type (denominator).
    configured_unit_cycles: dict[FUType, int] = field(default_factory=dict)
    mispredictions: int = 0
    branch_resolutions: int = 0
    flushes: int = 0
    squashed: int = 0
    memory_stalls: int = 0
    #: select-free collision replays ([9] pipelined-scheduling mode only).
    scheduling_replays: int = 0
    #: cycles the window was completely empty (front-end starvation).
    frontend_empty_cycles: int = 0
    #: entry-cycles ready on data but lacking an idle unit of their type —
    #: the structural stalls configuration steering attacks.
    resource_blocked_cycles: int = 0
    #: entry-cycles that requested but lost grant arbitration.
    contention_cycles: int = 0
    reconfigurations: int = 0
    reconfig_bus_cycles: int = 0
    fetch_packets: int = 0
    fetched: int = 0
    trace_cache_hits: int = 0
    trace_cache_misses: int = 0
    #: configuration-manager statistics (steering policies only).
    steering_selections: dict[int, int] = field(default_factory=dict)
    steering_mean_error: float = 0.0
    steering_kept_fraction: float = 0.0
    #: committed architectural state (for functional checking).
    final_registers: dict | None = None

    @property
    def ipc(self) -> float:
        """Retired instructions per cycle — the headline metric."""
        return self.retired / self.cycles if self.cycles else 0.0

    @property
    def final_state_digest(self) -> str | None:
        """SHA-256 over the committed architectural state, or None.

        Hashes the ``repr`` of every register in index order (``repr`` is
        the shortest-round-trip form, identical across platforms for
        IEEE-754 doubles, and distinguishes ``nan``/``-0.0`` textually),
        so two runs share a digest iff they committed the same state.
        Keeps the full register dump out of ``to_dict()`` while still
        letting golden records pin functional behaviour.
        """
        if self.final_registers is None:
            return None
        h = hashlib.sha256()
        for bank in ("int", "fp"):
            h.update(bank.encode())
            for value in self.final_registers.get(bank, ()):
                h.update(b"|")
                h.update(repr(value).encode())
        return h.hexdigest()

    @property
    def branch_accuracy(self) -> float:
        if not self.branch_resolutions:
            return 1.0
        return 1.0 - self.mispredictions / self.branch_resolutions

    def utilisation(self, fu_type: FUType) -> float:
        """Busy fraction of the configured units of one type."""
        configured = self.configured_unit_cycles.get(fu_type, 0)
        if not configured:
            return 0.0
        return self.busy_unit_cycles.get(fu_type, 0) / configured

    def to_dict(self) -> dict:
        """JSON-serialisable flat view (enum keys become short names)."""
        return {
            "policy": self.policy,
            "cycles": self.cycles,
            "retired": self.retired,
            "ipc": self.ipc,
            "halted": self.halted,
            "outcome": self.outcome,
            "final_state_digest": self.final_state_digest,
            "retired_per_type": {
                t.short_name: n for t, n in self.retired_per_type.items()
            },
            "utilisation": {t.short_name: self.utilisation(t) for t in FU_TYPES},
            "mispredictions": self.mispredictions,
            "branch_resolutions": self.branch_resolutions,
            "branch_accuracy": self.branch_accuracy,
            "flushes": self.flushes,
            "squashed": self.squashed,
            "memory_stalls": self.memory_stalls,
            "scheduling_replays": self.scheduling_replays,
            "frontend_empty_cycles": self.frontend_empty_cycles,
            "resource_blocked_cycles": self.resource_blocked_cycles,
            "contention_cycles": self.contention_cycles,
            "reconfigurations": self.reconfigurations,
            "reconfig_bus_cycles": self.reconfig_bus_cycles,
            "fetch_packets": self.fetch_packets,
            "fetched": self.fetched,
            "trace_cache_hits": self.trace_cache_hits,
            "trace_cache_misses": self.trace_cache_misses,
            # stringified + sorted: the record must round-trip through JSON
            # unchanged (JSON object keys are strings), and insertion order
            # must not leak platform/selection-history differences
            "steering_selections": {
                str(k): v for k, v in sorted(self.steering_selections.items())
            },
            "steering_mean_error": self.steering_mean_error,
            "steering_kept_fraction": self.steering_kept_fraction,
        }

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"policy            : {self.policy}",
            f"cycles            : {self.cycles}",
            f"retired           : {self.retired}",
            f"IPC               : {self.ipc:.3f}",
            f"halted            : {self.halted} ({self.outcome})",
            f"branch accuracy   : {self.branch_accuracy:.3f}"
            f" ({self.mispredictions}/{self.branch_resolutions} mispredicted)",
            f"memory stalls     : {self.memory_stalls}",
            f"stalls            : frontend-empty {self.frontend_empty_cycles}, "
            f"resource-blocked {self.resource_blocked_cycles}, "
            f"contention {self.contention_cycles}",
            f"reconfigurations  : {self.reconfigurations}"
            f" ({self.reconfig_bus_cycles} bus cycles)",
        ]
        if self.steering_selections:
            picks = ", ".join(
                f"cfg{k}:{v}" for k, v in sorted(self.steering_selections.items())
            )
            lines.append(f"steering picks    : {picks}")
            lines.append(f"kept-current frac : {self.steering_kept_fraction:.3f}")
        mix = ", ".join(
            f"{t.short_name}:{self.retired_per_type.get(t, 0)}" for t in FU_TYPES
        )
        lines.append(f"dynamic mix       : {mix}")
        util = ", ".join(
            f"{t.short_name}:{self.utilisation(t):.2f}" for t in FU_TYPES
        )
        lines.append(f"unit utilisation  : {util}")
        return "\n".join(lines)
