"""The complete reconfigurable superscalar processor (Fig. 1) and its
evaluation baselines.

:class:`~repro.core.processor.Processor` assembles every module of the
architecture — fetch unit, trace cache, decoder, register update unit with
the wake-up array, the fixed and reconfigurable functional units, and a
pluggable steering policy — into an execution-driven, cycle-level
simulator.  :mod:`repro.core.policies` provides the paper's configuration
manager plus the baselines the evaluation compares against (no steering,
static configurations, random steering, and an oracle with future
knowledge).
"""

from repro.core.baselines import (
    demand_processor,
    fixed_superscalar,
    oracle_processor,
    policy_catalogue,
    steering_processor,
)
from repro.core.params import ProcessorParams
from repro.core.policies import (
    DemandSteering,
    NoSteering,
    OracleSteering,
    PaperSteering,
    RandomSteering,
    StaticConfiguration,
    SteeringPolicy,
)
from repro.core.processor import Processor
from repro.core.stats import SimulationResult

__all__ = [
    "Processor",
    "ProcessorParams",
    "SimulationResult",
    "SteeringPolicy",
    "PaperSteering",
    "NoSteering",
    "StaticConfiguration",
    "RandomSteering",
    "OracleSteering",
    "DemandSteering",
    "demand_processor",
    "fixed_superscalar",
    "steering_processor",
    "oracle_processor",
    "policy_catalogue",
]
