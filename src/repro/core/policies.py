"""Steering policies: the paper's configuration manager and the baselines.

A policy decides, each cycle, what the reconfigurable fabric should steer
toward.  The processor calls :meth:`SteeringPolicy.cycle` once per clock
with the ready-unscheduled instruction queue (what the Fig. 2 selection
unit sees) and the dynamic retire count (used only by the oracle).

Policies:

* :class:`PaperSteering` — the contribution: CEM-based selection among
  {current, three predefined configurations} with busy-aware partial
  reconfiguration;
* :class:`NoSteering` — fixed functional units only (the RFU slots stay
  empty): the legacy-processor baseline;
* :class:`StaticConfiguration` — one predefined configuration loaded at
  start-up and never changed (what a non-steering reconfigurable processor
  in the style of [7], configured once, would achieve);
* :class:`RandomSteering` — retargets a uniformly random predefined
  configuration on a fixed period: a lower bound showing that *matched*
  steering, not reconfiguration per se, provides the benefit;
* :class:`OracleSteering` — looks at the *future* dynamic instruction
  stream (a profiling trace) and always steers toward the exact-error
  optimum: an upper bound on what any reactive selector can achieve.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.fabric.configuration import FFU_COUNTS, PREDEFINED_CONFIGS, Configuration
from repro.fabric.fabric import Fabric
from repro.isa.futypes import FU_TYPES, FUType
from repro.isa.instruction import Instruction
from repro.steering.error_metric import exact_error
from repro.steering.loader import ConfigurationLoader
from repro.steering.manager import ConfigurationManager

__all__ = [
    "SteeringPolicy",
    "PaperSteering",
    "NoSteering",
    "StaticConfiguration",
    "RandomSteering",
    "OracleSteering",
    "DemandSteering",
]


class SteeringPolicy:
    """Base class: a no-op policy."""

    name = "base"

    def bind(self, fabric: Fabric) -> None:
        """Attach to the processor's fabric before simulation starts."""
        self.fabric = fabric

    def cycle(self, ready: Sequence[Instruction], retired: int) -> None:
        """One clock of the policy."""

    def describe(self) -> str:
        return self.name


class NoSteering(SteeringPolicy):
    """Fixed functional units only — the static legacy baseline."""

    name = "ffu-only"


class PaperSteering(SteeringPolicy):
    """The paper's configuration manager (Figs. 2 and 3)."""

    name = "steering"

    def __init__(
        self,
        configs: Sequence[Configuration] = PREDEFINED_CONFIGS,
        use_exact_metric: bool = False,
        queue_size: int = 7,
        record_trace: bool = False,
        trace_limit: int | None = None,
    ) -> None:
        self.configs = tuple(configs)
        self.use_exact_metric = use_exact_metric
        self.queue_size = queue_size
        self.record_trace = record_trace
        self.trace_limit = trace_limit
        self.manager: ConfigurationManager | None = None
        if use_exact_metric:
            self.name = "steering-exact"

    def bind(self, fabric: Fabric) -> None:
        super().bind(fabric)
        self.manager = ConfigurationManager(
            fabric,
            configs=self.configs,
            use_exact_metric=self.use_exact_metric,
            queue_size=self.queue_size,
            record_trace=self.record_trace,
            trace_limit=self.trace_limit,
        )

    def cycle(self, ready: Sequence[Instruction], retired: int) -> None:
        self.manager.cycle(ready)

    def describe(self) -> str:
        kind = "exact" if self.use_exact_metric else "shift-approximate"
        return f"{self.name} (CEM={kind}, {len(self.configs)} steering configs)"


class StaticConfiguration(SteeringPolicy):
    """Load one configuration at start-up, then never reconfigure."""

    def __init__(self, config: Configuration) -> None:
        self.config = config
        self.name = f"static-{config.name}"
        self.loader: ConfigurationLoader | None = None

    def bind(self, fabric: Fabric) -> None:
        super().bind(fabric)
        self.loader = ConfigurationLoader(fabric)
        self.loader.set_target(self.config)

    def cycle(self, ready: Sequence[Instruction], retired: int) -> None:
        if not self.loader.satisfied or not self.fabric.rfus.bus_free:
            self.loader.step()


class RandomSteering(SteeringPolicy):
    """Retarget a random predefined configuration every ``period`` cycles."""

    name = "random"

    def __init__(
        self,
        configs: Sequence[Configuration] = PREDEFINED_CONFIGS,
        period: int = 200,
        seed: int = 0,
    ) -> None:
        self.configs = tuple(configs)
        self.period = period
        self._rng = random.Random(seed)
        self._countdown = 0
        self.loader: ConfigurationLoader | None = None

    def bind(self, fabric: Fabric) -> None:
        super().bind(fabric)
        self.loader = ConfigurationLoader(fabric)

    def cycle(self, ready: Sequence[Instruction], retired: int) -> None:
        if self._countdown == 0:
            self.loader.set_target(self._rng.choice(self.configs))
            self._countdown = self.period
        self._countdown -= 1
        self.loader.step()


class DemandSteering(SteeringPolicy):
    """§5 extension: steer without predefined configurations.

    Synthesizes a bespoke target configuration from smoothed demand via
    :class:`repro.steering.demand.DemandSynthesizer` — the paper's
    "dynamically reconfigure without using predefined configurations"
    open problem.  Retargets only on a clear expected improvement
    (hysteresis), so it does not thrash the configuration bus.
    """

    name = "demand"

    def __init__(
        self,
        smoothing: float = 0.1,
        improvement_margin: float = 0.15,
        queue_size: int = 7,
    ) -> None:
        from repro.steering.decoders import UnitDecoder
        from repro.steering.demand import DemandSynthesizer
        from repro.steering.requirements import RequirementsEncoder

        self.queue_size = queue_size
        self._decoder = UnitDecoder()
        self._encoder = RequirementsEncoder()
        self.synthesizer = DemandSynthesizer(
            smoothing=smoothing, improvement_margin=improvement_margin
        )
        self.loader: ConfigurationLoader | None = None
        #: synthesized targets adopted over the run (for tracing/tests).
        self.retargets: list[Configuration] = []
        #: per-cycle scratch for the decoded window (the encoder only
        #: iterates it), so cycle() allocates nothing.
        self._scratch_onehots: list[int] = []

    def bind(self, fabric: Fabric) -> None:
        super().bind(fabric)
        self.loader = ConfigurationLoader(fabric)

    def cycle(self, ready: Sequence[Instruction], retired: int) -> None:
        onehots = self._scratch_onehots
        onehots.clear()
        for k in range(min(len(ready), self.queue_size)):
            onehots.append(self._decoder(ready[k]))
        required = self._encoder(onehots)
        self.synthesizer.observe(required)
        counts = self.synthesizer.synthesize_counts()
        if self.synthesizer.should_retarget_counts(
            counts, self.loader.current_counts()
        ):
            # repro: cold-call -- retarget adoption: bounded by accepted
            # reconfigurations (hysteresis-gated), not cycles
            target = self.synthesizer.materialize(counts)
            self.loader.set_target(target)
            self.retargets.append(target)
        elif self.loader.satisfied:
            self.loader.set_target(None)
        self.loader.step()

    def describe(self) -> str:
        return (
            f"{self.name} (predefined-config-free synthesis, "
            f"smoothing={self.synthesizer.smoothing})"
        )


class OracleSteering(SteeringPolicy):
    """Steer using future knowledge of the dynamic instruction stream.

    ``trace`` is the functional-unit-type sequence of the program's dynamic
    execution (from a profiling run).  Each cycle the oracle inspects the
    next ``lookahead`` instructions beyond the current retire point,
    computes the exact error of every candidate, and targets the best.
    """

    name = "oracle"

    def __init__(
        self,
        trace: Sequence[FUType],
        configs: Sequence[Configuration] = PREDEFINED_CONFIGS,
        lookahead: int = 64,
    ) -> None:
        self.trace = list(trace)
        self.configs = tuple(configs)
        self.lookahead = lookahead
        self.loader: ConfigurationLoader | None = None
        # candidate availability vectors never change after construction;
        # computing them here keeps cycle() allocation-free
        self._config_avails = tuple(
            tuple(cfg.count(t) + FFU_COUNTS.get(t, 0) for t in FU_TYPES)
            for cfg in self.configs
        )
        self._type_index = {ty: i for i, ty in enumerate(FU_TYPES)}
        self._window_counts = [0] * len(FU_TYPES)

    def bind(self, fabric: Fabric) -> None:
        super().bind(fabric)
        self.loader = ConfigurationLoader(fabric)

    def _window_required(self, retired: int) -> tuple[int, ...]:
        counts = self._window_counts
        for i in range(len(counts)):
            counts[i] = 0
        type_index = self._type_index
        trace = self.trace
        for pos in range(retired, min(retired + self.lookahead, len(trace))):
            index = type_index.get(trace[pos])
            if index is not None:
                counts[index] += 1
        return tuple(counts)

    def cycle(self, ready: Sequence[Instruction], retired: int) -> None:
        required = self._window_required(retired)
        if sum(required) == 0:
            self.loader.set_target(None)
            self.loader.step()
            return
        current = self.loader.current_counts()
        best_config: Configuration | None = None
        best_err = exact_error(required, current)
        for cfg, avail in zip(self.configs, self._config_avails):
            err = exact_error(required, avail)
            if err < best_err:
                best_err = err
                best_config = cfg
        self.loader.set_target(best_config)
        self.loader.step()
