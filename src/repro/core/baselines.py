"""Processor factories for the evaluation's policy comparison (E-IPC)."""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.core.params import ProcessorParams
from repro.core.policies import (
    DemandSteering,
    NoSteering,
    OracleSteering,
    PaperSteering,
    RandomSteering,
    StaticConfiguration,
)
from repro.core.processor import Processor
from repro.core.reference import run_reference
from repro.fabric.configuration import PREDEFINED_CONFIGS, Configuration
from repro.isa.program import Program

__all__ = [
    "fixed_superscalar",
    "steering_processor",
    "static_processor",
    "random_processor",
    "oracle_processor",
    "demand_processor",
    "policy_catalogue",
]


def fixed_superscalar(
    program: Program,
    params: ProcessorParams | None = None,
    telemetry=None,
) -> Processor:
    """The legacy baseline: fixed functional units only, RFU slots unused."""
    return Processor(
        program, params=params, policy=NoSteering(), telemetry=telemetry
    )


def steering_processor(
    program: Program,
    params: ProcessorParams | None = None,
    use_exact_metric: bool = False,
    record_trace: bool = False,
    trace_limit: int | None = None,
    telemetry=None,
) -> Processor:
    """The paper's processor: CEM-based configuration steering."""
    params = params if params is not None else ProcessorParams()
    policy = PaperSteering(
        use_exact_metric=use_exact_metric or params.use_exact_metric,
        queue_size=params.window_size,
        record_trace=record_trace,
        trace_limit=trace_limit,
    )
    return Processor(program, params=params, policy=policy, telemetry=telemetry)


def static_processor(
    program: Program,
    config: Configuration,
    params: ProcessorParams | None = None,
) -> Processor:
    """One predefined configuration loaded once, never changed."""
    return Processor(program, params=params, policy=StaticConfiguration(config))


def random_processor(
    program: Program,
    params: ProcessorParams | None = None,
    period: int = 200,
    seed: int = 0,
) -> Processor:
    return Processor(
        program, params=params, policy=RandomSteering(period=period, seed=seed)
    )


def demand_processor(
    program: Program,
    params: ProcessorParams | None = None,
    smoothing: float = 0.1,
    improvement_margin: float = 0.15,
) -> Processor:
    """§5 extension: predefined-configuration-free demand steering."""
    params = params if params is not None else ProcessorParams()
    policy = DemandSteering(
        smoothing=smoothing,
        improvement_margin=improvement_margin,
        queue_size=params.window_size,
    )
    return Processor(program, params=params, policy=policy)


def oracle_processor(
    program: Program,
    params: ProcessorParams | None = None,
    lookahead: int = 64,
    max_instructions: int = 1_000_000,
) -> Processor:
    """Upper bound: steers with the program's future dynamic trace."""
    reference = run_reference(program, max_instructions=max_instructions)
    policy = OracleSteering(reference.trace, lookahead=lookahead)
    return Processor(program, params=params, policy=policy)


def policy_catalogue(
    configs: Sequence[Configuration] = PREDEFINED_CONFIGS,
) -> dict[str, Callable[[Program, ProcessorParams | None], Processor]]:
    """Every comparison point of the E-IPC experiment, by name."""
    catalogue: dict[str, Callable] = {
        "ffu-only": fixed_superscalar,
        "steering": steering_processor,
        "random": random_processor,
        "oracle": oracle_processor,
        "demand": demand_processor,
    }
    for cfg in configs:
        catalogue[f"static-{cfg.name}"] = (
            lambda program, params=None, _c=cfg: static_processor(program, _c, params)
        )
    return catalogue
