"""Differential policy fuzzer: ``repro fuzz --seed S --iterations N``.

Each iteration derives a program seed + generator shape from the master
seed, generates one program, executes it once on the functional
reference interpreter, then runs **every** ``policy_catalogue()`` policy
on it through :func:`~repro.evaluation.batch.run_many` — all policies
share one program, the ideal lane shape for the lock-step vector
engine — and asserts the cross-policy invariants
(:mod:`repro.verify.invariants`).  On top, two metamorphic checks rotate
through the catalogue:

* **vector vs scalar** — the batch-engine result must be bit-identical
  to a direct scalar ``Processor.run`` of the same job;
* **telemetry on vs off** — attaching a live telemetry probe to the
  steering processor must not change a single field of the result.

A failing iteration is minimized by the instruction-deletion shrinker
(:mod:`repro.verify.shrink`) against the policies it implicated, and —
when an output directory is given — written out as the original source,
the minimized source, a canonical-JSON violation record and a
self-contained ready-to-run repro script.

Wall-clock budgeting and counters live here, *outside* the
deterministic core: given the same seed and iteration count the fuzzing
schedule is fully reproducible; ``--time-budget`` only decides how far
down that fixed schedule one invocation gets.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from random import Random
from typing import Any, Callable

from repro.core.baselines import policy_catalogue, steering_processor
from repro.core.params import ProcessorParams
from repro.core.reference import ReferenceResult, run_reference
from repro.errors import ReproError
from repro.evaluation.batch import SimJob, execute_job, run_many
from repro.fabric.configuration import PREDEFINED_CONFIGS
from repro.isa.futypes import FUType
from repro.isa.program import Program
from repro.utils.canonical import canonical_dumps
from repro.verify.generator import GeneratorConfig, generate_program, generate_source
from repro.verify.invariants import Violation, check_result_pair
from repro.verify.shrink import ShrinkOutcome, shrink_source

__all__ = ["FuzzFailure", "FuzzReport", "run_fuzz"]

#: dynamic-instruction budget for the reference run of one generated
#: program (far above the construction bound; exceeding it means the
#: generator itself is broken).
REFERENCE_BUDGET = 500_000

#: per-unit-pressure presets the schedule rotates through.
_WEIGHT_PRESETS: tuple[dict[FUType, float] | None, ...] = (
    None,  # balanced
    {FUType.INT_ALU: 0.55, FUType.INT_MDU: 0.3, FUType.LSU: 0.15},
    {FUType.INT_ALU: 0.25, FUType.LSU: 0.6, FUType.INT_MDU: 0.15},
    {
        FUType.FP_ALU: 0.35,
        FUType.FP_MDU: 0.35,
        FUType.INT_ALU: 0.2,
        FUType.LSU: 0.1,
    },
)

_FLUSH_DENSITIES = (0.0, 0.15, 0.3, 0.45)


@dataclass(frozen=True)
class FuzzFailure:
    """One failing iteration with its minimized reproducer."""

    iteration: int
    program_seed: int
    config: GeneratorConfig
    violations: tuple[Violation, ...]
    source: str
    minimized: ShrinkOutcome | None
    #: artifact paths written under the output directory (empty without one).
    artifacts: tuple[str, ...] = ()


@dataclass
class FuzzReport:
    """Outcome of one ``run_fuzz`` invocation."""

    seed: int
    iterations_requested: int
    iterations_run: int = 0
    simulations: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)
    #: why the loop ended: ``iterations``, ``time-budget`` or ``failure``.
    stopped: str = "iterations"

    @property
    def ok(self) -> bool:
        return not self.failures


def _iteration_config(rng: Random) -> GeneratorConfig:
    """The generator shape for one iteration (all draws seed-derived)."""
    return GeneratorConfig(
        blocks=rng.randrange(1, 4),
        body_len=rng.randrange(6, 15),
        max_iterations=rng.randrange(2, 8),
        flush_density=rng.choice(_FLUSH_DENSITIES),
        weights=rng.choice(_WEIGHT_PRESETS),
    )


def _job_for(policy: str, program: Program, params, max_cycles: int) -> SimJob:
    if policy.startswith("static-"):
        cfg = {c.name: c for c in PREDEFINED_CONFIGS}[policy[len("static-") :]]
        return SimJob(
            "static", program, params, max_cycles,
            kwargs={"config": cfg}, label=policy,
        )
    return SimJob(policy, program, params, max_cycles, label=policy)


def _run_policies(
    policies: list[str],
    program: Program,
    params: ProcessorParams,
    max_cycles: int,
    workers: int,
) -> tuple[dict[str, Any], list[Violation]]:
    """Results by policy via the batch engine; crashes become violations."""
    jobs = [_job_for(p, program, params, max_cycles) for p in policies]
    try:
        results = run_many(jobs, workers=workers)
        return dict(zip(policies, results)), []
    except ReproError:
        # a crash inside the batch kills the whole sweep — re-run policy
        # by policy, scalar, to attribute it
        results: dict[str, Any] = {}
        violations: list[Violation] = []
        for policy, job in zip(policies, jobs):
            try:
                results[policy] = execute_job(job)
            except ReproError as exc:
                violations.append(
                    Violation("crash", policy, f"{type(exc).__name__}: {exc}")
                )
        return results, violations


def _run_one_scalar(
    policy: str,
    program: Program,
    params: ProcessorParams,
    max_cycles: int,
    extra: dict[str, Callable] | None,
) -> tuple[Any, Violation | None]:
    """One policy, scalar path, crash converted to a violation."""
    try:
        if extra and policy in extra:
            return extra[policy](program, params).run(max_cycles=max_cycles), None
        catalogue = policy_catalogue()
        return catalogue[policy](program, params).run(max_cycles=max_cycles), None
    except ReproError as exc:
        return None, Violation("crash", policy, f"{type(exc).__name__}: {exc}")


def _metamorphic_checks(
    iteration: int,
    policies: list[str],
    results: dict[str, Any],
    program: Program,
    params: ProcessorParams,
    max_cycles: int,
) -> list[Violation]:
    """Vector-vs-scalar (rotating policy) and, on steering iterations,
    a rotating telemetry-on/off or decision-ledger-on/off comparison."""
    violations: list[Violation] = []
    probe = policies[iteration % len(policies)]
    if probe in results:
        try:
            scalar = execute_job(_job_for(probe, program, params, max_cycles))
        except ReproError as exc:
            scalar = None
            violations.append(
                Violation(
                    "metamorphic-vector", probe,
                    f"scalar re-run crashed: {type(exc).__name__}: {exc}",
                )
            )
        if scalar is not None and scalar.to_dict() != results[probe].to_dict():
            violations.append(
                Violation(
                    "metamorphic-vector", probe,
                    "batch-engine result differs from the direct scalar run "
                    "of the identical job",
                )
            )
    if probe == "steering" and "steering" in results:
        from repro.telemetry import DecisionLedger, ProcessorTelemetry

        # rotate the instrumentation under test: plain telemetry on even
        # iterations, telemetry + decision ledger on odd ones — both must
        # leave SimulationResult.to_dict() bit-identical
        with_ledger = bool(iteration % 2)
        tel = ProcessorTelemetry(
            series_capacity=256,
            sample_interval=64,
            ledger=DecisionLedger(capacity=64, window=32)
            if with_ledger
            else None,
        )
        instrumented = steering_processor(program, params, telemetry=tel).run(
            max_cycles=max_cycles
        )
        if instrumented.to_dict() != results["steering"].to_dict():
            invariant = (
                "metamorphic-ledger" if with_ledger else "metamorphic-telemetry"
            )
            what = (
                "attaching a decision ledger" if with_ledger
                else "attaching telemetry"
            )
            violations.append(
                Violation(
                    invariant, "steering",
                    f"{what} changed the simulation result",
                )
            )
    return violations


def _still_fails_predicate(
    implicated: list[str],
    params: ProcessorParams,
    max_cycles: int,
    extra: dict[str, Callable] | None,
    counter=None,
) -> Callable[[Program], bool]:
    """Shrink predicate: any implicated policy still violates an invariant."""

    def still_fails(candidate: Program) -> bool:
        if counter is not None:
            counter.inc()
        reference = run_reference(candidate, max_instructions=REFERENCE_BUDGET)
        for policy in implicated:
            result, crash = _run_one_scalar(
                policy, candidate, params, max_cycles, extra
            )
            if crash is not None:
                return True
            if check_result_pair(policy, result, reference, params):
                return True
        return False

    return still_fails


def _write_artifacts(
    out_dir: Path, failure: FuzzFailure, params: ProcessorParams, max_cycles: int
) -> tuple[str, ...]:
    """Original + minimized sources, violation record, runnable repro."""
    out_dir.mkdir(parents=True, exist_ok=True)
    stem = f"fail-i{failure.iteration:04d}-s{failure.program_seed}"
    implicated = sorted({v.policy for v in failure.violations})
    minimized = failure.minimized.source if failure.minimized else failure.source
    paths = []

    source_path = out_dir / f"{stem}.s"
    source_path.write_text(failure.source + "\n")
    paths.append(str(source_path))

    min_path = out_dir / f"{stem}.min.s"
    min_path.write_text(minimized + "\n")
    paths.append(str(min_path))

    record_path = out_dir / f"{stem}.json"
    record_path.write_text(
        canonical_dumps(
            {
                "iteration": failure.iteration,
                "program_seed": failure.program_seed,
                "violations": [
                    {
                        "invariant": v.invariant,
                        "policy": v.policy,
                        "message": v.message,
                    }
                    for v in failure.violations
                ],
                "minimized_instructions": (
                    failure.minimized.instructions if failure.minimized else None
                ),
                "implicated_policies": implicated,
            },
            pretty=True,
        )
        + "\n"
    )
    paths.append(str(record_path))

    repro_path = out_dir / f"{stem}.repro.py"
    repro_path.write_text(
        '"""Auto-generated fuzz reproducer — run with PYTHONPATH=src."""\n'
        "from repro.core.params import ProcessorParams\n"
        "from repro.core.baselines import policy_catalogue\n"
        "from repro.core.reference import run_reference\n"
        "from repro.isa.assembler import assemble\n"
        "from repro.verify.invariants import check_result_pair\n\n"
        f"SOURCE = '''\n{minimized}\n'''\n\n"
        f"POLICIES = {implicated!r}\n"
        f"MAX_CYCLES = {max_cycles}\n"
        f"PARAMS = ProcessorParams(reconfig_latency={params.reconfig_latency})\n\n"
        "program = assemble(SOURCE)\n"
        "reference = run_reference(program)\n"
        "catalogue = policy_catalogue()\n"
        "failed = False\n"
        "checked = 0\n"
        "for policy in POLICIES:\n"
        "    if policy not in catalogue:\n"
        "        print(f'{policy}: not in catalogue (injected policy?)')\n"
        "        continue\n"
        "    checked += 1\n"
        "    result = catalogue[policy](program, PARAMS).run(max_cycles=MAX_CYCLES)\n"
        "    for violation in check_result_pair(policy, result, reference, PARAMS):\n"
        "        failed = True\n"
        "        print(violation)\n"
        "if not checked:\n"
        "    print('no implicated policy is in the catalogue; re-run the fuzz '\n"
        "          'harness that injected the extra policy to reproduce')\n"
        "    raise SystemExit(2)\n"
        "# exits 1 while the bug reproduces, 0 once it is fixed\n"
        "print('reproduced' if failed else 'did not reproduce')\n"
        "raise SystemExit(1 if failed else 0)\n"
    )
    paths.append(str(repro_path))
    return tuple(paths)


def run_fuzz(
    seed: int = 0,
    iterations: int = 100,
    time_budget: float | None = None,
    *,
    params: ProcessorParams | None = None,
    max_cycles: int = 200_000,
    base_config: GeneratorConfig | None = None,
    workers: int = 0,
    out_dir: str | Path | None = None,
    registry=None,
    shrink: bool = True,
    keep_going: bool = False,
    extra_policies: dict[str, Callable] | None = None,
    progress: Callable[[str], None] | None = None,
) -> FuzzReport:
    """Run the differential sweep; returns a :class:`FuzzReport`.

    ``extra_policies`` maps extra policy names to ``factory(program,
    params) -> Processor`` — they join the differential comparison on the
    scalar path (the mutation self-test injects a known-buggy steering
    build this way).  ``base_config`` freezes the generator shape instead
    of rotating it.  ``registry`` (a telemetry ``MetricsRegistry``)
    receives the fuzz counters.
    """
    params = params if params is not None else ProcessorParams(reconfig_latency=8)
    rng = Random(seed)
    catalogue_policies = sorted(policy_catalogue())
    report = FuzzReport(seed=seed, iterations_requested=iterations)
    out_path = Path(out_dir) if out_dir is not None else None

    if registry is not None:
        programs_c = registry.counter(
            "repro_fuzz_programs_total", help="generated programs fuzzed"
        )
        sims_c = registry.counter(
            "repro_fuzz_simulations_total", help="policy simulations executed"
        )
        violations_c = registry.counter(
            "repro_fuzz_violations_total", help="invariant violations found"
        )
        shrink_c = registry.counter(
            "repro_fuzz_shrink_attempts_total", help="shrink candidates evaluated"
        )
    else:
        programs_c = sims_c = violations_c = shrink_c = None

    deadline = time.monotonic() + time_budget if time_budget is not None else None
    for iteration in range(iterations):
        if deadline is not None and time.monotonic() >= deadline:
            report.stopped = "time-budget"
            break
        # one rng draw sequence per iteration, independent of whether a
        # fixed base_config is in use — the schedule stays aligned
        program_seed = rng.getrandbits(32)
        config = _iteration_config(rng)
        if base_config is not None:
            config = base_config
        program = generate_program(program_seed, config)
        reference = run_reference(program, max_instructions=REFERENCE_BUDGET)
        if programs_c is not None:
            programs_c.inc()

        results, violations = _run_policies(
            catalogue_policies, program, params, max_cycles, workers
        )
        for name, factory in sorted((extra_policies or {}).items()):
            result, crash = _run_one_scalar(
                name, program, params, max_cycles, extra_policies
            )
            if crash is not None:
                violations.append(crash)
            else:
                results[name] = result
        report.simulations += len(results)
        if sims_c is not None:
            sims_c.inc(len(results))

        for policy in sorted(results):
            violations.extend(
                check_result_pair(policy, results[policy], reference, params)
            )
        violations.extend(
            _metamorphic_checks(
                iteration, catalogue_policies, results, program, params,
                max_cycles,
            )
        )
        report.iterations_run += 1

        if not violations:
            if progress is not None and (iteration + 1) % 25 == 0:
                progress(
                    f"iteration {iteration + 1}/{iterations}: "
                    f"{report.simulations} simulations, all invariants hold"
                )
            continue

        if violations_c is not None:
            violations_c.inc(len(violations))
        if progress is not None:
            progress(
                f"iteration {iteration}: {len(violations)} violation(s) on "
                f"program seed {program_seed} — "
                + "; ".join(str(v) for v in violations[:3])
            )
        source = generate_source(program_seed, config)
        minimized: ShrinkOutcome | None = None
        implicated = sorted({v.policy for v in violations})
        # metamorphic failures implicate engine plumbing, not a policy's
        # semantics — shrink against the plain invariants of the policies
        # they name (falling back to the steering policy)
        shrink_targets = [p for p in implicated if p in set(results)] or ["steering"]
        if shrink:
            minimized = shrink_source(
                source,
                _still_fails_predicate(
                    shrink_targets, params, max_cycles, extra_policies,
                    counter=shrink_c,
                ),
            )
            if progress is not None:
                progress(
                    f"shrunk to {minimized.instructions} instructions in "
                    f"{minimized.attempts} attempts"
                )
        failure = FuzzFailure(
            iteration=iteration,
            program_seed=program_seed,
            config=config,
            violations=tuple(violations),
            source=source,
            minimized=minimized,
        )
        if out_path is not None:
            failure = FuzzFailure(
                **{**failure.__dict__, "artifacts": _write_artifacts(
                    out_path, failure, params, max_cycles
                )}
            )
        report.failures.append(failure)
        if not keep_going:
            report.stopped = "failure"
            break
    return report
