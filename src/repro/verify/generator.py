"""Seeded random-program generator for differential fuzzing.

Programs are **valid by construction**:

* register dataflow is respected — every source register is initialised
  by the prologue (or a dominating write) before it is read, reusing the
  synthetic-workload body emitter and its register pools;
* every backward branch closes a counted loop on a dedicated counter
  register with a fixed trip count, and every data-dependent branch
  jumps strictly forward — so every generated program terminates, with
  a dynamic length bounded by ``blocks * max_iterations * body``;
* data-dependent branches are keyed on the live loop counter (low bits
  after a small shift), so their direction *changes across iterations* —
  exactly the mispredict/flush/reconfigure interaction the steering
  invariants are most fragile under.

Everything is derived from one ``random.Random(seed)`` stream, so a
single integer seed reproduces the program bit-for-bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.isa.assembler import assemble
from repro.isa.futypes import FUType
from repro.isa.program import Program
from repro.workloads.synthetic import MixSpec, emit_body

__all__ = ["GeneratorConfig", "generate_source", "generate_program"]

#: registers the emitted control flow owns (disjoint from the synthetic
#: emitter's x1..x9 / f1..f9 pools): x10 holds branch conditions, x11 a
#: skippable accumulator, x12 the constant 1, x20+ the loop counters.
_COND = "x10"
_ACC = "x11"
_ONE = "x12"
_COUNTER_BASE = 20

#: branch mnemonics usable with (condition, x0) operands.
_BRANCH_OPS = ("beq", "bne", "blt", "bge")

#: the synthetic emitter addresses ``buf`` modulo 64 words.
_BUFFER_BYTES = 64 * 4


@dataclass(frozen=True)
class GeneratorConfig:
    """Tunable shape of generated programs (all draws are seed-driven)."""

    #: number of sequential counted loops.
    blocks: int = 3
    #: straight-line instructions per loop body (before branch insertion).
    body_len: int = 10
    #: loop trip counts are drawn uniformly from ``1..max_iterations``.
    max_iterations: int = 6
    #: probability of inserting a data-dependent forward branch after
    #: each body instruction (the flush-pressure knob).
    flush_density: float = 0.25
    #: probability a source operand reuses a recently-written register.
    dep_density: float = 0.35
    #: relative per-unit-type pressure; None means the balanced mix.
    weights: dict[FUType, float] | None = None

    def __post_init__(self) -> None:
        if self.blocks < 1 or self.blocks > 8:
            raise WorkloadError("blocks must be in 1..8 (one counter each)")
        if self.body_len < 1:
            raise WorkloadError("body_len must be positive")
        if self.max_iterations < 1:
            raise WorkloadError("max_iterations must be positive")
        if not 0.0 <= self.flush_density <= 1.0:
            raise WorkloadError("flush_density must be in [0, 1]")

    def mix(self) -> MixSpec:
        weights = self.weights
        if weights is None:
            weights = {
                FUType.INT_ALU: 0.35,
                FUType.INT_MDU: 0.15,
                FUType.LSU: 0.2,
                FUType.FP_ALU: 0.15,
                FUType.FP_MDU: 0.15,
            }
        return MixSpec("fuzz", dict(weights), dep_density=self.dep_density)


def _data_section() -> list[str]:
    consts = ", ".join(repr(0.5 + 0.25 * i) for i in range(9))
    return [
        ".data",
        f"consts: .float {consts}",
        f"buf:    .space {_BUFFER_BYTES}",
        ".text",
    ]


def _prologue() -> list[str]:
    lines = [f"li x{i}, {i * 3 + 1}" for i in range(1, 10)]
    lines += [f"flw f{i}, consts+{(i - 1) * 4}(x0)" for i in range(1, 10)]
    lines += [f"li {_ACC}, 0", f"li {_ONE}, 1"]
    return lines


def _branch_group(
    rng: random.Random, counter: str, label: str, mix: MixSpec
) -> list[str]:
    """A forward, iteration-varying branch over 1-2 skippable instructions.

    The condition register is the loop counter's bit ``shift`` — it flips
    as the counter decrements, so a 2-bit predictor keeps mispredicting
    and the pipeline keeps flushing through reconfigurations.
    """
    shift = rng.randrange(0, 2)
    lines = []
    if shift:
        lines.append(f"srl {_COND}, {counter}, {_ONE}")
        lines.append(f"and {_COND}, {_COND}, {_ONE}")
    else:
        lines.append(f"and {_COND}, {counter}, {_ONE}")
    lines.append(f"{rng.choice(_BRANCH_OPS)} {_COND}, x0, {label}")
    for _ in range(rng.randrange(1, 3)):
        if rng.random() < 0.5:
            lines.append(f"addi {_ACC}, {_ACC}, 1")
        else:
            lines.extend(emit_body(rng, mix, 1))
    lines.append(f"{label}:")
    return lines


def generate_source(seed: int, config: GeneratorConfig | None = None) -> str:
    """The assembly text of program ``seed`` under ``config``."""
    config = config if config is not None else GeneratorConfig()
    rng = random.Random(seed)
    mix = config.mix()
    lines = _data_section()
    lines.append("main:")
    lines += _prologue()
    skip_labels = 0
    for block in range(config.blocks):
        counter = f"x{_COUNTER_BASE + block}"
        trips = rng.randrange(1, config.max_iterations + 1)
        top = f"g{block}_loop"
        lines.append(f"li {counter}, {trips}")
        lines.append(f"{top}:")
        for line in emit_body(rng, mix, config.body_len):
            lines.append(line)
            if rng.random() < config.flush_density:
                lines += _branch_group(
                    rng, counter, f"g_sk{skip_labels}", mix
                )
                skip_labels += 1
        lines.append(f"addi {counter}, {counter}, -1")
        lines.append(f"bne {counter}, x0, {top}")
    lines.append("halt")
    return "\n".join(lines)


def generate_program(seed: int, config: GeneratorConfig | None = None) -> Program:
    """Assemble program ``seed`` (see :func:`generate_source`)."""
    return assemble(generate_source(seed, config))
