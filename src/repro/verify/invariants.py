"""Cross-policy invariants the differential fuzzer asserts.

The source paper's core claim is that configuration steering changes
*which configuration executes* a program, never *what the program
computes*.  Concretely, for one program run under every catalogue
policy against the functional reference interpreter:

``completed``
    Every policy reaches ``halt`` under the cycle budget (a ``cutoff``
    or ``deadlock`` outcome is a scheduling bug, not a slow program —
    generated programs are tiny by construction).
``retired-count``
    Every policy commits exactly the reference's dynamic instruction
    count: speculation may fetch down wrong paths, but squashed work
    must never commit.
``final-state``
    Every policy's committed register file equals the reference's
    (NaN-safe on the FP bank: two NaNs agree).
``ipc-bound``
    ``0 < IPC <= min(fetch_width, retire_width)`` — the configuration-
    derived ceiling; more retirements per cycle than the retire width
    is a bookkeeping impossibility.
``crash``
    A policy raising mid-simulation is itself a finding (the fuzzer
    converts the exception; nothing here raises).

Each failed check yields one :class:`Violation` naming the policy and
invariant — the fuzzer attaches these to the minimized reproducer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.params import ProcessorParams
from repro.core.reference import ReferenceResult
from repro.core.stats import OUTCOME_COMPLETED, SimulationResult

__all__ = ["Violation", "check_cross_policy", "check_result_pair"]


@dataclass(frozen=True)
class Violation:
    """One invariant failure for one policy on one program."""

    invariant: str
    policy: str
    message: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.policy}: {self.message}"


def _fp_equal(a: float, b: float) -> bool:
    # NaN-safe: two NaNs are the same committed value
    return a == b or (a != a and b != b)


def _register_mismatch(
    got: dict, want: dict
) -> str | None:
    """First differing register between two ``{"int": [...], "fp": [...]}``
    snapshots, rendered for the violation message; None when equal."""
    for i, (g, w) in enumerate(zip(got.get("int", ()), want.get("int", ()))):
        if g != w:
            return f"x{i} = {g!r}, expected {w!r}"
    for i, (g, w) in enumerate(zip(got.get("fp", ()), want.get("fp", ()))):
        if not _fp_equal(g, w):
            return f"f{i} = {g!r}, expected {w!r}"
    return None


def check_result_pair(
    policy: str,
    result: SimulationResult,
    reference: ReferenceResult,
    params: ProcessorParams,
) -> list[Violation]:
    """All invariant violations of one policy's result vs the reference."""
    violations: list[Violation] = []
    if result.outcome != OUTCOME_COMPLETED:
        violations.append(
            Violation(
                "completed",
                policy,
                f"outcome {result.outcome!r} after {result.cycles} cycles "
                f"({result.retired} retired)",
            )
        )
        # without a completed run the remaining checks only echo the same
        # failure; report the root cause alone
        return violations
    if result.retired != reference.executed:
        violations.append(
            Violation(
                "retired-count",
                policy,
                f"retired {result.retired} instructions, reference executed "
                f"{reference.executed}",
            )
        )
    if result.final_registers is not None:
        mismatch = _register_mismatch(
            result.final_registers, reference.registers.snapshot()
        )
        if mismatch is not None:
            violations.append(Violation("final-state", policy, mismatch))
    ceiling = min(params.fetch_width, params.retire_width)
    if not 0.0 < result.ipc <= ceiling:
        violations.append(
            Violation(
                "ipc-bound",
                policy,
                f"IPC {result.ipc:.4f} outside (0, {ceiling}] "
                f"({result.retired} retired / {result.cycles} cycles)",
            )
        )
    return violations


def check_cross_policy(
    results: dict[str, SimulationResult],
    reference: ReferenceResult,
    params: ProcessorParams,
) -> list[Violation]:
    """Check every policy's result against the shared reference."""
    violations: list[Violation] = []
    for policy in sorted(results):
        violations.extend(
            check_result_pair(policy, results[policy], reference, params)
        )
    return violations
