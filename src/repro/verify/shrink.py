"""Instruction-deletion shrinker for fuzzer failures.

Given a failing assembly source and a ``still_fails(program)`` predicate,
repeatedly delete instruction lines (delta-debugging style: halving
chunk sizes down to single lines, to a fixed point) while the failure
persists.  Labels, directives, data definitions and the ``halt`` are
never deleted, so every candidate that assembles is still a structurally
valid, terminating program — candidates that fail to assemble, or on
which the predicate itself errors, simply don't count as reproductions.

The result is the smallest reproducer this process can reach, which the
fuzzer writes next to a ready-to-run repro script.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.isa.assembler import assemble
from repro.isa.program import Program

__all__ = ["ShrinkOutcome", "shrink_source"]

#: cap on candidate evaluations per shrink (each runs simulations).
DEFAULT_MAX_ATTEMPTS = 2000


@dataclass(frozen=True)
class ShrinkOutcome:
    """Result of one shrink run."""

    #: minimized assembly source (still failing).
    source: str
    #: instruction count of the minimized program.
    instructions: int
    #: deletable lines removed from the original.
    removed: int
    #: candidate programs evaluated.
    attempts: int


def _normalise(source: str) -> list[str]:
    """Source lines with ``label: instr`` split into two lines."""
    out: list[str] = []
    for raw in source.splitlines():
        line = raw.strip()
        if not line:
            continue
        head, sep, rest = line.partition(":")
        if (
            sep
            and rest.strip()
            and " " not in head.strip()
            and not head.strip().startswith(".")
            and not rest.strip().startswith((".word", ".float", ".space"))
        ):
            out.append(f"{head.strip()}:")
            out.append(rest.strip())
        else:
            out.append(line)
    return out


def _deletable_indices(lines: list[str]) -> list[int]:
    """Indices of plain instruction lines (never labels/directives/halt)."""
    indices: list[int] = []
    in_text = True
    for i, line in enumerate(lines):
        if line.startswith("."):
            in_text = line.startswith(".text")
            continue
        if not in_text or line.endswith(":") or line.startswith(("#", ";")):
            continue
        if line == "halt":
            continue
        indices.append(i)
    return indices


def _try_assemble(lines: list[str], kept: set[int]) -> Program | None:
    try:
        return assemble("\n".join(lines[i] for i in sorted(kept)))
    except ReproError:
        return None


def shrink_source(
    source: str,
    still_fails,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
) -> ShrinkOutcome:
    """Minimize ``source`` while ``still_fails(program)`` holds.

    ``still_fails`` receives an assembled candidate :class:`Program` and
    returns whether the original failure still reproduces; a predicate
    that raises :class:`~repro.errors.ReproError` counts as "does not
    reproduce" (e.g. the candidate no longer terminates under the
    reference budget).
    """
    lines = _normalise(source)
    kept = set(range(len(lines)))
    deletable = _deletable_indices(lines)
    attempts = 0
    removed = 0

    def reproduces(candidate_kept: set[int]) -> bool:
        nonlocal attempts
        attempts += 1
        program = _try_assemble(lines, candidate_kept)
        if program is None:
            return False
        try:
            return bool(still_fails(program))
        except ReproError:
            return False

    chunk = max(1, len(deletable) // 2)
    while deletable and attempts < max_attempts:
        removed_this_pass = False
        i = 0
        while i < len(deletable) and attempts < max_attempts:
            trial = deletable[i : i + chunk]
            candidate = kept - set(trial)
            if reproduces(candidate):
                kept = candidate
                removed += len(trial)
                del deletable[i : i + chunk]
                removed_this_pass = True
            else:
                i += chunk
        if chunk == 1:
            if not removed_this_pass:
                break
        else:
            chunk = max(1, chunk // 2)

    final_source = "\n".join(lines[i] for i in sorted(kept))
    program = assemble(final_source)
    return ShrinkOutcome(
        source=final_source,
        instructions=len(program.instructions),
        removed=removed,
        attempts=attempts,
    )
