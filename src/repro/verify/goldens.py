"""Golden-trace corpus: committed result records per (policy x workload).

The corpus under ``tests/goldens/`` pins the full canonical-JSON
``SimulationResult.to_dict()`` record — cycles, IPC, flushes,
reconfigurations, the final-state digest, everything — for every
catalogue policy on a small set of fast workloads.  Tier-1 CI replays
every cell and compares **structurally and exactly** (bit-identical
floats included; PR 5 made the whole catalogue deterministic, this
banks it).

Corpus discipline (see ``docs/verification.md``):

* ``SPEC.json`` records the corpus ``spec_version``, the parameter
  fingerprint and the cell list.  A drifting cell is a bug in the
  change that drifted it, **never** a reason to regenerate.
* ``repro goldens update --spec-version N`` rewrites the corpus only
  when ``N`` is strictly greater than the committed version — the bump
  is the reviewable, auditable statement "results are expected to
  change here".
* ``repro goldens diff`` prints the per-field drift without judging it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from repro.core.baselines import policy_catalogue
from repro.core.params import ProcessorParams
from repro.errors import ConfigurationError
from repro.evaluation.batch import SimJob, job_key, run_many
from repro.fabric.configuration import PREDEFINED_CONFIGS
from repro.isa.program import Program
from repro.utils.canonical import canonical_dumps
from repro.verify.generator import GeneratorConfig, generate_program

__all__ = [
    "GoldenDiff",
    "SPEC_NAME",
    "GOLDEN_MAX_CYCLES",
    "golden_params",
    "golden_workloads",
    "golden_cells",
    "compute_cell_records",
    "check_corpus",
    "diff_corpus",
    "update_corpus",
    "read_spec",
]

#: name of the corpus spec file inside the corpus directory.
SPEC_NAME = "SPEC.json"

#: cycle budget per cell — matches the determinism regression suite.
GOLDEN_MAX_CYCLES = 200_000

#: sentinel rendered for a missing side of a structural diff.
_ABSENT = "<absent>"


def golden_params() -> ProcessorParams:
    """The pinned processor parameters every cell runs under."""
    return ProcessorParams(reconfig_latency=8)


def golden_workloads() -> dict[str, Program]:
    """The pinned workload set: one program per corpus row.

    Chosen to be fast (every cell finishes in well under 200k cycles)
    while covering the interesting axes: a numeric kernel, an
    integer/branchy kernel, a mixed synthetic loop, and one generated
    program with heavy flush pressure (dogfooding the fuzzer's
    generator, so its output is itself pinned).
    """
    from repro.workloads.kernels import checksum, saxpy
    from repro.workloads.synthetic import BALANCED_MIX, synthetic_program

    return {
        "saxpy-n16": saxpy(n=16).program,
        "checksum-i20": checksum(iterations=20).program,
        "mix-balanced": synthetic_program(
            BALANCED_MIX, body_len=16, iterations=5, seed=3
        ),
        "gen-flush-s7": generate_program(
            7, GeneratorConfig(flush_density=0.4)
        ),
    }


def golden_cells() -> list[tuple[str, str]]:
    """Sorted (workload, policy) pairs the corpus must cover."""
    workloads = sorted(golden_workloads())
    policies = sorted(policy_catalogue())
    return [(w, p) for w in workloads for p in policies]


def _cell_name(workload: str, policy: str) -> str:
    return f"{workload}__{policy}.json"


def _job_for(policy: str, program: Program) -> SimJob:
    params = golden_params()
    if policy.startswith("static-"):
        configs = {c.name: c for c in PREDEFINED_CONFIGS}
        cfg = configs.get(policy[len("static-") :])
        if cfg is None:
            raise ConfigurationError(f"unknown static configuration {policy!r}")
        return SimJob(
            "static", program, params, GOLDEN_MAX_CYCLES,
            kwargs={"config": cfg}, label=policy,
        )
    return SimJob(policy, program, params, GOLDEN_MAX_CYCLES, label=policy)


def params_fingerprint() -> str:
    """Content hash of the pinned cell question (params + budget).

    Folds in the batch engine's job keys for every cell, so *any*
    semantic drift in what a cell asks — parameter defaults, programs,
    the cycle budget — shows up as a spec mismatch instead of a silently
    different question.
    """
    h = hashlib.sha256()
    for workload, program in sorted(golden_workloads().items()):
        h.update(workload.encode())
        for policy in sorted(policy_catalogue()):
            h.update(policy.encode())
            h.update(job_key(_job_for(policy, program)).encode())
    return h.hexdigest()[:16]


@dataclass(frozen=True)
class GoldenDiff:
    """One structural difference between corpus and current behaviour."""

    cell: str
    path: str
    expected: object
    actual: object

    def __str__(self) -> str:
        return (
            f"{self.cell}: {self.path} — "
            f"golden {self.expected!r}, current {self.actual!r}"
        )


def _structural_diff(
    cell: str, expected, actual, path: str = "$"
) -> list[GoldenDiff]:
    """Exact recursive comparison; every mismatching leaf is one diff."""
    if isinstance(expected, dict) and isinstance(actual, dict):
        out: list[GoldenDiff] = []
        for key in sorted(set(expected) | set(actual)):
            if key not in expected:
                out.append(GoldenDiff(cell, f"{path}.{key}", _ABSENT, actual[key]))
            elif key not in actual:
                out.append(GoldenDiff(cell, f"{path}.{key}", expected[key], _ABSENT))
            else:
                out.extend(
                    _structural_diff(cell, expected[key], actual[key], f"{path}.{key}")
                )
        return out
    if isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            return [
                GoldenDiff(
                    cell, f"{path}.length", len(expected), len(actual)
                )
            ]
        out = []
        for i, (e, a) in enumerate(zip(expected, actual)):
            out.extend(_structural_diff(cell, e, a, f"{path}[{i}]"))
        return out
    # scalars (or mismatched shapes): strict byte-level equality of the
    # canonical encodings — 0 vs 0.0, true vs 1 and every float-bit
    # difference all count as drift
    if canonical_dumps(expected) != canonical_dumps(actual):
        return [GoldenDiff(cell, path, expected, actual)]
    return []


def compute_cell_records(workers: int = 0, progress=None) -> dict[tuple[str, str], dict]:
    """Freshly simulated canonical result record per corpus cell.

    All cells go through :func:`~repro.evaluation.batch.run_many`, so
    the per-workload policy sweeps ride the lock-step vector engine.
    """
    workloads = golden_workloads()
    cells = golden_cells()
    jobs = [_job_for(policy, workloads[workload]) for workload, policy in cells]
    results = run_many(jobs, workers=workers, progress=progress)
    records: dict[tuple[str, str], dict] = {}
    for cell, result in zip(cells, results):
        # canonical round-trip: the in-memory record compares exactly
        # against the parsed committed file (int keys become strings, etc.)
        records[cell] = json.loads(canonical_dumps(result.to_dict()))
    return records


def read_spec(root: str | Path) -> dict | None:
    """The parsed ``SPEC.json``, or None when the corpus doesn't exist."""
    path = Path(root) / SPEC_NAME
    try:
        text = path.read_text()
    except OSError:
        return None
    try:
        spec = json.loads(text)
    except ValueError as exc:
        raise ConfigurationError(f"corrupt corpus spec {path}: {exc}") from exc
    if not isinstance(spec, dict) or "spec_version" not in spec:
        raise ConfigurationError(f"corrupt corpus spec {path}: no spec_version")
    return spec


def _current_spec(spec_version: int) -> dict:
    return {
        "spec_version": spec_version,
        "params_fingerprint": params_fingerprint(),
        "max_cycles": GOLDEN_MAX_CYCLES,
        "cells": [
            {"workload": w, "policy": p, "file": _cell_name(w, p)}
            for w, p in golden_cells()
        ],
    }


def diff_corpus(
    root: str | Path, workers: int = 0, progress=None
) -> list[GoldenDiff]:
    """Every structural difference between the corpus and current code.

    Covers spec drift (fingerprint/budget/cell-list changes), missing or
    corrupt cell files, and per-field result drift.  Empty list = clean.
    """
    root = Path(root)
    spec = read_spec(root)
    if spec is None:
        return [GoldenDiff(SPEC_NAME, "$", "a committed corpus", _ABSENT)]
    diffs: list[GoldenDiff] = []
    current = _current_spec(spec["spec_version"])
    diffs.extend(_structural_diff(SPEC_NAME, spec, current))
    expected_cells = {
        (c["workload"], c["policy"]): c["file"]
        for c in spec.get("cells", [])
        if isinstance(c, dict)
    }
    records = compute_cell_records(workers=workers, progress=progress)
    for cell, record in records.items():
        name = expected_cells.get(cell, _cell_name(*cell))
        path = root / name
        try:
            committed = json.loads(path.read_text())
        except OSError:
            diffs.append(GoldenDiff(name, "$", "a committed cell file", _ABSENT))
            continue
        except ValueError as exc:
            raise ConfigurationError(f"corrupt golden cell {path}: {exc}") from exc
        diffs.extend(_structural_diff(name, committed.get("result"), record))
    return diffs


def check_corpus(
    root: str | Path, workers: int = 0, progress=None
) -> list[GoldenDiff]:
    """Alias of :func:`diff_corpus` — the tier-1 gate fails on any diff."""
    return diff_corpus(root, workers=workers, progress=progress)


def update_corpus(
    root: str | Path, spec_version: int, workers: int = 0, progress=None
) -> int:
    """(Re)generate the corpus at ``spec_version``; returns cells written.

    Refuses to run unless ``spec_version`` is strictly greater than the
    committed one — drift is never papered over silently.  Stale cell
    files from removed workloads/policies are deleted.
    """
    root = Path(root)
    spec = read_spec(root)
    if spec is not None and spec_version <= int(spec["spec_version"]):
        raise ConfigurationError(
            f"corpus is at spec_version {spec['spec_version']}; regeneration "
            f"requires an explicit bump (got {spec_version}). If results "
            "legitimately changed, bump the version and explain why in the "
            "commit; if they didn't, the drift is a bug to fix."
        )
    if spec_version < 1:
        raise ConfigurationError("spec_version must be >= 1")
    root.mkdir(parents=True, exist_ok=True)
    records = compute_cell_records(workers=workers, progress=progress)
    written = set()
    for (workload, policy), record in records.items():
        name = _cell_name(workload, policy)
        payload = {
            "spec_version": spec_version,
            "workload": workload,
            "policy": policy,
            "result": record,
        }
        (root / name).write_text(canonical_dumps(payload, pretty=True) + "\n")
        written.add(name)
    for stale in root.glob("*.json"):
        if stale.name != SPEC_NAME and stale.name not in written:
            stale.unlink()
    spec_payload = _current_spec(spec_version)
    (root / SPEC_NAME).write_text(
        canonical_dumps(spec_payload, pretty=True) + "\n"
    )
    return len(written)
