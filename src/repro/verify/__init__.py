"""Verification subsystem: golden-trace corpus + differential fuzzing.

Three parts, layered on the deterministic batch/vector engines:

:mod:`repro.verify.goldens`
    A committed corpus of canonical-JSON ``SimulationResult`` records per
    (policy x workload) cell with a strict structural-diff comparator and
    an explicit spec version (``repro goldens check|update|diff``).
:mod:`repro.verify.generator`
    Seeded, valid-by-construction random programs over the ISA — register
    dataflow respected, loops bounded by construction, tunable per-unit
    pressure and flush density.
:mod:`repro.verify.fuzz`
    The differential fuzzer (``repro fuzz``): every catalogue policy runs
    each generated program through ``run_many`` and must agree on the
    committed architectural outcome; failures are shrunk
    (:mod:`repro.verify.shrink`) to a minimal reproducer.

See ``docs/verification.md`` for the corpus discipline and the invariant
catalogue.
"""

from repro.verify.generator import GeneratorConfig, generate_program, generate_source
from repro.verify.goldens import check_corpus, diff_corpus, update_corpus
from repro.verify.invariants import Violation, check_cross_policy
from repro.verify.shrink import shrink_source

__all__ = [
    "GeneratorConfig",
    "generate_program",
    "generate_source",
    "check_corpus",
    "diff_corpus",
    "update_corpus",
    "Violation",
    "check_cross_policy",
    "shrink_source",
]
