"""Bounded, stride-downsampled time-series buffers.

A ``StrideSeries`` accepts an unbounded stream of ``(x, value)`` samples
but stores at most ``capacity`` points.  It keeps every ``stride``-th
sample; when the buffer fills, every second stored point is discarded
and the stride doubles, so memory stays O(capacity) while the retained
points remain evenly spaced over the whole run.  Appending is O(1)
amortised and the kept points are always in ascending ``x`` order.

``SeriesBank`` is a named collection of series sharing one capacity —
the container ``ProcessorTelemetry`` writes into and ``/api/runs/<id>/
timeseries`` serves out.
"""

from __future__ import annotations

__all__ = ["StrideSeries", "SeriesBank"]


class StrideSeries:
    """Fixed-memory series that self-coarsens as samples stream in."""

    __slots__ = ("capacity", "stride", "_seen", "_xs", "_vs")

    def __init__(self, capacity: int = 2048):
        if capacity < 4:
            raise ValueError("capacity must be at least 4")
        self.capacity = capacity
        self.stride = 1
        self._seen = 0  # total samples offered, kept or not
        self._xs: list[float] = []
        self._vs: list[float] = []

    def append(self, x: float, value: float) -> None:
        if self._seen % self.stride == 0:
            if len(self._xs) >= self.capacity:
                # Halve resolution: keep every 2nd point, double the stride.
                self._xs = self._xs[::2]
                self._vs = self._vs[::2]
                self.stride *= 2
            if self._seen % self.stride == 0:
                self._xs.append(x)
                self._vs.append(value)
        self._seen += 1

    def __len__(self) -> int:
        return len(self._xs)

    @property
    def seen(self) -> int:
        return self._seen

    def samples(self) -> list[tuple[float, float]]:
        return list(zip(self._xs, self._vs))

    def to_dict(self) -> dict:
        return {
            "x": list(self._xs),
            "v": list(self._vs),
            "stride": self.stride,
            "seen": self._seen,
        }


class SeriesBank:
    """Lazily-created named ``StrideSeries`` sharing one capacity."""

    __slots__ = ("capacity", "_series")

    def __init__(self, capacity: int = 2048):
        self.capacity = capacity
        self._series: dict[str, StrideSeries] = {}

    def series(self, name: str) -> StrideSeries:
        s = self._series.get(name)
        if s is None:
            s = self._series[name] = StrideSeries(self.capacity)
        return s

    def append(self, name: str, x: float, value: float) -> None:
        self.series(name).append(x, value)

    def names(self) -> list[str]:
        return list(self._series)

    def __len__(self) -> int:
        return len(self._series)

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def to_dict(self) -> dict:
        return {name: s.to_dict() for name, s in self._series.items()}
