"""Batch-engine telemetry: job outcomes, queue waits, worker heartbeats.

``BatchTelemetry`` plugs into :func:`repro.evaluation.batch.run_many`.
It rides the engine's existing completion path (the same place progress
callbacks fire), so enabling it changes no scheduling behaviour:

* ``repro_batch_jobs_total{outcome=...}`` — executed / cache_hit / deduped;
* ``repro_batch_job_queue_wait_seconds`` — submission→execution-start lag
  (parallel path; the worker reports its own run time, the remainder of
  the round-trip is queue wait);
* ``repro_batch_job_run_seconds`` — per-job wall time;
* ``repro_batch_jobs_inflight`` — submitted minus finished;
* ``repro_batch_last_completion_timestamp_seconds`` — worker heartbeat;
* ``repro_batch_lane_dispatch_total{mode=...}`` — jobs routed through the
  lock-step vector engine (``vector``) vs the per-job scalar path
  (``scalar``);
* ``repro_batch_lanes_per_batch`` — lane count of each vector batch;
* ``repro_batch_lane_retire_cycles`` — per-lane simulated cycle counts at
  retirement, the ragged-finish profile of vector batches.

With a :class:`~repro.telemetry.spans.SpanTracer` attached, each executed
job also becomes a wall-clock span on the ``batch`` track.
"""

from __future__ import annotations

import time

from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.spans import SpanTracer

__all__ = ["BatchTelemetry"]


class BatchTelemetry:
    """Counters + histograms + heartbeat for one or more ``run_many`` calls."""

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        tracer: SpanTracer | None = None,
    ) -> None:
        self.registry = MetricsRegistry() if registry is None else registry
        self.tracer = tracer
        self._epoch = time.perf_counter()
        r = self.registry
        self.jobs = r.counter(
            "repro_batch_jobs_total",
            "Batch jobs resolved, by outcome.",
            ("outcome",),
        )
        self.queue_wait = r.histogram(
            "repro_batch_job_queue_wait_seconds",
            "Seconds between pool submission and execution start.",
        )
        self.run_wall = r.histogram(
            "repro_batch_job_run_seconds",
            "Wall-clock seconds executing one simulation job.",
        )
        self.inflight = r.gauge(
            "repro_batch_jobs_inflight",
            "Jobs submitted to the engine and not yet finished.",
        )
        self.heartbeat = r.gauge(
            "repro_batch_last_completion_timestamp_seconds",
            "Unix time of the most recent job completion (worker heartbeat).",
        )
        self.lane_dispatch = r.counter(
            "repro_batch_lane_dispatch_total",
            "Batch jobs dispatched, by engine mode.",
            ("mode",),
        )
        self.lanes_per_batch = r.histogram(
            "repro_batch_lanes_per_batch",
            "Lane count of each lock-step vector batch.",
            buckets=(2, 4, 8, 16, 32, 64, 128, 256),
        )
        self.lane_retire = r.histogram(
            "repro_batch_lane_retire_cycles",
            "Simulated cycles at which each vector lane retired.",
            buckets=(100, 500, 1_000, 5_000, 20_000, 100_000, 400_000),
        )

    def _beat(self) -> None:
        self.heartbeat.set(time.time())

    def cache_hit(self) -> None:
        self.jobs.labels("cache_hit").inc()
        self._beat()

    def deduped(self, count: int) -> None:
        if count > 0:
            self.jobs.labels("deduped").inc(count)

    def submitted(self, count: int = 1) -> None:
        self.inflight.inc(count)

    def scalar_dispatch(self, count: int = 1) -> None:
        """Record jobs executed on the per-job scalar path."""
        if count > 0:
            self.lane_dispatch.labels("scalar").inc(count)

    def vector_batch(self, lanes: int, lane_cycles=()) -> None:
        """Record one lock-step vector batch and its lanes' retire cycles."""
        self.lane_dispatch.labels("vector").inc(lanes)
        self.lanes_per_batch.observe(lanes)
        for cycles in lane_cycles:
            self.lane_retire.observe(cycles)

    def finished(
        self,
        label: str,
        run_seconds: float | None = None,
        queue_wait: float | None = None,
    ) -> None:
        self.inflight.dec()
        self.jobs.labels("executed").inc()
        if run_seconds is not None:
            self.run_wall.observe(run_seconds)
        if queue_wait is not None:
            self.queue_wait.observe(max(0.0, queue_wait))
        if self.tracer is not None and run_seconds is not None:
            end_us = (time.perf_counter() - self._epoch) * 1e6
            self.tracer.complete(
                label or "job",
                ts=max(0.0, end_us - run_seconds * 1e6),
                dur=run_seconds * 1e6,
                track="batch",
            )
        self._beat()
