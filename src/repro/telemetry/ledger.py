"""The steering decision ledger: *why* each reconfiguration was chosen.

PR 4 telemetry shows **that** the policy switched configurations; the
ledger records the inputs behind every switch — the per-type demand in
the ready queue, the fabric's idle units and Eq. 1 availability bits,
the candidate CEM errors the selection unit scored, the winning
configuration — plus a throughput prediction and, once the next window
of cycles has retired, the realized IPC it can be judged against.

The buffer is bounded ``StrideSeries``-style: it keeps at most
``capacity`` finalized decisions; when full, every second stored record
is dropped and the keep-stride doubles, so arbitrarily long runs hold
O(capacity) memory while the kept decisions stay evenly spread over the
run.  ``dropped`` counts thinned records.

Prediction model (deliberately simple and documented — the point is to
measure its error, feeding the ROADMAP's queuing-model ablation):
``predicted_ipc = min(retire_width, sum_t min(demand_t, chosen_t))``,
the demand the chosen configuration could serve per cycle if nothing
else stalled.  ``realized_ipc`` is retirements over the next ``window``
cycles (or up to the next decision, whichever comes first).

Attaching a ledger must never change simulation results — the fuzzer's
``metamorphic-ledger`` check and ``tests/telemetry/test_ledger.py`` pin
bit-identical ``SimulationResult.to_dict()`` with the ledger on and off.
"""

from __future__ import annotations

from repro.isa.futypes import FU_TYPES

__all__ = ["DecisionLedger"]


class DecisionLedger:
    """Bounded, self-coarsening record of steering decisions."""

    __slots__ = (
        "capacity",
        "window",
        "stride",
        "_records",
        "_seen",
        "_pending",
        "_pending_retired",
        "_prev_selection",
    )

    def __init__(self, capacity: int = 256, window: int = 64) -> None:
        if capacity < 4:
            raise ValueError("capacity must be at least 4")
        self.capacity = int(capacity)
        self.window = max(1, int(window))
        self.stride = 1
        self._records: list[dict] = []
        self._seen = 0
        self._pending: dict | None = None
        self._pending_retired = 0
        self._prev_selection: int | None = None

    # ------------------------------------------------------------ hot hook
    def on_cycle(self, proc, cycle: int, manager) -> None:
        """Driven by ``ProcessorTelemetry.on_cycle`` (post-tick state).

        Pure observation: reads the processor and manager, never writes
        them.  Cost is O(1) except in the cycle of an actual selection
        change, where the ready queue is scanned once.
        """
        pending = self._pending
        if pending is not None and cycle - pending["cycle"] >= self.window:
            self._finalize(proc, cycle)
        selection = manager.last_selection
        if selection is None or selection == self._prev_selection:
            return
        self._prev_selection = selection
        if self._pending is not None:
            # a new decision closes the previous window early
            self._finalize(proc, cycle)
        self._open(proc, cycle, manager, selection)

    # ------------------------------------------------------------ internals
    def _open(self, proc, cycle: int, manager, selection: int) -> None:
        demand: dict = {}
        for instr in proc.ruu.ready_unscheduled():
            demand[instr.fu_type] = demand.get(instr.fu_type, 0) + 1
        idle = proc.fabric.idle_counts()
        result = getattr(manager, "last_result", None)
        chosen = result.config if result is not None else None
        chosen_counts = chosen.counts if chosen is not None else {}
        servable = sum(
            min(demand.get(t, 0), chosen_counts.get(t, 0)) for t in FU_TYPES
        )
        self._pending = {
            "cycle": cycle,
            "selection": selection,
            "config": chosen.name if chosen is not None else None,
            "error": manager.last_error,
            "errors": list(result.errors) if result is not None else [],
            "required": list(result.required) if result is not None else [],
            "demand": {t.short_name: demand.get(t, 0) for t in FU_TYPES},
            "idle": {t.short_name: idle[t] for t in FU_TYPES},
            "availability_bits": proc.fabric.availability_bits(),
            "predicted_ipc": float(min(proc.params.retire_width, servable)),
            "realized_ipc": None,
            "prediction_error": None,
            "window": None,
        }
        self._pending_retired = proc.ruu.retired

    def _finalize(self, proc, cycle: int) -> None:
        record = self._pending
        self._pending = None
        span = max(1, cycle - record["cycle"])
        realized = (proc.ruu.retired - self._pending_retired) / span
        record["realized_ipc"] = realized
        record["prediction_error"] = realized - record["predicted_ipc"]
        record["window"] = span
        # StrideSeries-style admission: keep every stride-th decision,
        # thin + double the stride when the buffer fills.
        if self._seen % self.stride == 0:
            if len(self._records) >= self.capacity:
                self._records = self._records[::2]
                self.stride *= 2
            if self._seen % self.stride == 0:
                self._records.append(record)
        self._seen += 1

    # -------------------------------------------------------------- exports
    def __len__(self) -> int:
        return len(self._records)

    @property
    def seen(self) -> int:
        """Finalized decisions offered to the buffer (kept or thinned)."""
        return self._seen

    @property
    def dropped(self) -> int:
        return self._seen - len(self._records)

    def decisions(self) -> list[dict]:
        """Kept decisions, oldest first; the still-open one (if any) last."""
        out = [dict(r) for r in self._records]
        if self._pending is not None:
            out.append(dict(self._pending))
        return out

    def to_dict(self) -> dict:
        """JSON-safe payload persisted beside the run's result record."""
        return {
            "version": 1,
            "capacity": self.capacity,
            "window": self.window,
            "stride": self.stride,
            "seen": self._seen,
            "dropped": self.dropped,
            "decisions": self.decisions(),
        }
