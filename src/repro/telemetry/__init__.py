"""Unified observability layer: metrics, time series, span tracing.

Cooperating pieces, all stdlib-only and near-zero-overhead when
disabled:

* :mod:`repro.telemetry.registry` — counters/gauges/histograms with a
  Prometheus text renderer and a falsy null registry;
* :mod:`repro.telemetry.timeseries` — bounded stride-downsampled series;
* :mod:`repro.telemetry.spans` — Chrome trace-event spans (Perfetto);
* :mod:`repro.telemetry.probes` — the per-cycle processor hook;
* :mod:`repro.telemetry.batch` — ``run_many`` instrumentation;
* :mod:`repro.telemetry.events` — the structured JSON event log;
* :mod:`repro.telemetry.tracing2` — trace-context ids + the merged
  request-to-retire Perfetto view;
* :mod:`repro.telemetry.ledger` — the steering decision ledger.

See ``docs/observability.md`` for the probe catalogue and usage.
"""

from repro.telemetry.batch import BatchTelemetry
from repro.telemetry.events import EventLog, events_path_for, read_events
from repro.telemetry.ledger import DecisionLedger
from repro.telemetry.probes import STAGES, ProcessorTelemetry
from repro.telemetry.registry import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    render_merged,
)
from repro.telemetry.spans import SpanTracer
from repro.telemetry.timeseries import SeriesBank, StrideSeries
from repro.telemetry.tracing2 import (
    TRACE_HEADER,
    is_trace_id,
    merge_job_trace,
    mint_trace_id,
)

__all__ = [
    "BatchTelemetry",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DecisionLedger",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "ProcessorTelemetry",
    "STAGES",
    "SeriesBank",
    "SpanTracer",
    "StrideSeries",
    "TRACE_HEADER",
    "events_path_for",
    "is_trace_id",
    "merge_job_trace",
    "mint_trace_id",
    "read_events",
    "render_merged",
]
