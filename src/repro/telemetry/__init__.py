"""Unified observability layer: metrics, time series, span tracing.

Three cooperating pieces, all stdlib-only and near-zero-overhead when
disabled:

* :mod:`repro.telemetry.registry` — counters/gauges/histograms with a
  Prometheus text renderer and a falsy null registry;
* :mod:`repro.telemetry.timeseries` — bounded stride-downsampled series;
* :mod:`repro.telemetry.spans` — Chrome trace-event spans (Perfetto);
* :mod:`repro.telemetry.probes` — the per-cycle processor hook;
* :mod:`repro.telemetry.batch` — ``run_many`` instrumentation.

See ``docs/observability.md`` for the probe catalogue and usage.
"""

from repro.telemetry.batch import BatchTelemetry
from repro.telemetry.probes import STAGES, ProcessorTelemetry
from repro.telemetry.registry import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    render_merged,
)
from repro.telemetry.spans import SpanTracer
from repro.telemetry.timeseries import SeriesBank, StrideSeries

__all__ = [
    "BatchTelemetry",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "ProcessorTelemetry",
    "STAGES",
    "SeriesBank",
    "SpanTracer",
    "StrideSeries",
    "render_merged",
]
